//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function, finish}`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter` — over a plain
//! warmup-then-measure timing loop instead of criterion's statistical
//! machinery.
//!
//! Mode selection mirrors criterion: `cargo bench` passes `--bench`, which
//! enables timed runs; under `cargo test` (no `--bench` flag) every
//! benchmark body executes exactly once so benches are smoke-tested
//! without burning minutes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation, reported as MB/s or Melem/s.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function` in place of a plain string.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// (total elapsed, iterations) of the measured phase; None in test mode.
    measured: Option<(Duration, u64)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: warm up, then time `sample_size` batches.
    Measure,
    /// `cargo test`: run the body once to prove it works.
    TestOnce,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::Measure => {
                // Warmup: at least one call, up to ~50 ms.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                loop {
                    black_box(routine());
                    warm_iters += 1;
                    if warm_start.elapsed() > Duration::from_millis(50) || warm_iters >= 10 {
                        break;
                    }
                }
                let per_iter = warm_start.elapsed() / warm_iters as u32;
                // Aim for roughly sample_size iterations but cap the
                // measured phase near 2 s for slow routines.
                let budget = Duration::from_secs(2);
                let mut iters = self.sample_size as u64;
                if per_iter > Duration::ZERO {
                    let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
                    iters = iters.min(fit).max(1);
                }
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.measured = Some((start.elapsed(), iters));
            }
        }
    }

    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine)
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut b);
        report(&full, self.throughput, &b);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(name: &str, throughput: Option<Throughput>, b: &Bencher) {
    match b.measured {
        None => {
            if b.mode == Mode::TestOnce {
                eprintln!("bench {name}: ok (test mode, 1 iteration)");
            } else {
                eprintln!("bench {name}: no measurement (b.iter never called)");
            }
        }
        Some((elapsed, iters)) => {
            let per = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                    format!(", {:.1} MiB/s", n as f64 / per / (1u64 << 20) as f64)
                }
                Some(Throughput::Elements(n)) => {
                    format!(", {:.2} Melem/s", n as f64 / per / 1e6)
                }
                None => String::new(),
            };
            eprintln!(
                "bench {name}: {:.3} ms/iter ({iters} iters{rate})",
                per * 1e3
            );
        }
    }
}

/// Top-level driver, mirroring `criterion::Criterion`'s builder calls.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench injects `--bench`; cargo test does not. Same probe
        // criterion itself uses to pick full-measurement vs test mode.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if bench_mode {
                Mode::Measure
            } else {
                Mode::TestOnce
            },
            sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("standalone").bench_function(id, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            sample_size: 10,
        };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut c = Criterion {
            mode: Mode::Measure,
            sample_size: 3,
        };
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .throughput(Throughput::Bytes(8))
                .bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| calls += 1));
        }
        assert!(calls >= 3, "warmup + measured phases ran: {calls}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
