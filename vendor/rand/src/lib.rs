//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides exactly the surface the workspace consumes: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen`] for `f64`/integer draws. The generator is SplitMix64 —
//! statistically fine for synthetic-scenario jitter, not cryptographic.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable from a generator via [`Rng::gen`].
///
/// Matches `rand`'s `Standard` distribution semantics for the types used
/// here: floats are uniform in `[0, 1)`, integers uniform over the full
/// domain, bools fair.
pub trait Standard01: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard01 for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard01 for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard01 for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard01 for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard01>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw in `[low, high)` (f64 only; enough for this workspace).
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.gen::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4096 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
