//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly, no `Result`). Poisoned locks are
//! recovered rather than propagated, matching `parking_lot` semantics
//! where a panicking holder does not poison the lock.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex` equivalent: `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock` equivalent with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
