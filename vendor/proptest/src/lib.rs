//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   generating one `#[test]` per property that runs `config.cases`
//!   deterministic randomized cases;
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   integer and float `Range`/`RangeInclusive`, 2-/3-/4-tuples of
//!   strategies, [`Just`], and [`collection::vec`];
//! * [`any`] for byte/word/float primitives;
//! * [`prop_assert!`] / [`prop_assert_eq!`] which fail the case without
//!   unwinding mid-generator;
//! * [`prop_oneof!`] over equally-weighted alternative strategies.
//!
//! Differences from real proptest: no shrinking (failures report the case
//! index and the failing assertion instead of a minimized input), and
//! case generation is seeded from the test name so runs are reproducible
//! byte-for-byte across invocations — override with `PROPTEST_SEED=<u64>`
//! to explore a different deterministic stream.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in [lo, hi] for integer-like spans given as u64 width.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Error type carried out of a failing property body.
pub type TestCaseError = String;
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

// Strategies compose by reference too (the proptest! macro generates
// `(&strat).generate(..)`-style calls through a shared helper).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats spanning many magnitudes (no NaN/inf: the real
        // crate's `any::<f64>()` includes them, but every use here feeds
        // numeric kernels that document finite input).
        let mag = rng.below(600) as i32 - 300;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.unit_f64() * 10f64.powi(mag)
    }
}

/// Whole-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`]: `lo..hi`, `lo..=hi`, or an exact size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`cases` is the only knob this shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name: a stable per-test seed base.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Executes `config.cases` deterministic cases of one property; panics on
/// the first failing case with its index (re-run is reproducible).
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => name_seed(name),
    };
    for i in 0..config.cases {
        let mut rng = TestRng::new(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(msg) = case(&mut rng) {
            panic!(
                "proptest {name}: case {i}/{} failed: {msg}\n\
                 (deterministic; re-run reproduces this case)",
                config.cases
            );
        }
    }
}

/// Pretty-printer used by `prop_assert_eq!` failures.
pub fn format_eq_failure(left: &dyn fmt::Debug, right: &dyn fmt::Debug) -> String {
    format!("prop_assert_eq failed: left = {left:?}, right = {right:?}")
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::format_eq_failure(&l, &r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "{} (left = {:?}, right = {:?})", ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne failed: both sides = {:?}",
                l
            ));
        }
    }};
}

/// Equally-weighted choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(__config, ::std::stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                let __out: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                __out
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = (5i32..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = collection::vec(any::<u8>(), 7..=7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let strat = (1usize..=4)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n..=n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(5), "det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(5), "det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "case 0/1 failed")]
    fn runner_reports_failures() {
        crate::run_cases(ProptestConfig::with_cases(1), "boom", |_rng| {
            Err("nope".to_string())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_tuple_patterns((a, b) in (0i64..10, 10i64..20), c in 0u32..5) {
            prop_assert!(a < b, "{} !< {}", a, b);
            prop_assert!(c < 5);
            prop_assert_eq!(a.min(b), a);
        }
    }
}
