//! Property-based tests (proptest) over the core invariants:
//! * every compressor respects its error bound on arbitrary data;
//! * lossless stages roundtrip arbitrary bytes;
//! * geometry operations preserve cell counts and disjointness;
//! * the parallel engine's ordered-reassembly queue preserves submission
//!   order under adversarial completion schedules.

use amr_mesh::prelude::*;
use proptest::prelude::*;
use rankpar::pool::{for_each_ordered_hooked, Reassembly};
use sz_codec::prelude::*;

/// Deterministic Fisher–Yates permutation of `0..n` from a seed (the
/// vendored proptest shim has no `prop_shuffle`, and an explicit LCG
/// keeps the schedule reproducible from the failing case's inputs).
fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

fn buffer_strategy(max_edge: usize) -> impl Strategy<Value = Buffer3> {
    (1..=max_edge, 1..=max_edge, 1..=max_edge).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        proptest::collection::vec(-1.0e6f64..1.0e6, n..=n)
            .prop_map(move |data| Buffer3::from_vec(Dims3::new(nx, ny, nz), data))
    })
}

/// Degenerate shapes and value regimes the randomized [`buffer_strategy`]
/// rarely produces: constant fields, single-cell boxes, 1-D pencils and
/// 2-D slabs, and NaN-free extreme magnitudes (±1e150 with tiny spread).
fn degenerate_buffer_strategy() -> impl Strategy<Value = Buffer3> {
    let constant =
        (1usize..=7, 1usize..=7, 1usize..=7, -1.0e15f64..1.0e15).prop_map(|(nx, ny, nz, v)| {
            Buffer3::from_vec(Dims3::new(nx, ny, nz), vec![v; nx * ny * nz])
        });
    let single_cell =
        (-1.0e150f64..1.0e150).prop_map(|v| Buffer3::from_vec(Dims3::new(1, 1, 1), vec![v]));
    let pencil = (0u8..3, 2usize..=32, -1.0e6f64..1.0e6).prop_flat_map(|(axis, n, base)| {
        proptest::collection::vec(-1.0f64..1.0, n..=n).prop_map(move |noise| {
            let dims = match axis {
                0 => Dims3::new(n, 1, 1),
                1 => Dims3::new(1, n, 1),
                _ => Dims3::new(1, 1, n),
            };
            Buffer3::from_vec(dims, noise.iter().map(|d| base + d).collect())
        })
    });
    let slab = (2usize..=8, 2usize..=8).prop_flat_map(|(nx, ny)| {
        let n = nx * ny;
        proptest::collection::vec(-1.0e3f64..1.0e3, n..=n)
            .prop_map(move |data| Buffer3::from_vec(Dims3::new(nx, ny, 1), data))
    });
    let extreme = (
        1usize..=5,
        1usize..=5,
        1usize..=5,
        prop_oneof![Just(1.0e150f64), Just(-1.0e150)],
    )
        .prop_flat_map(|(nx, ny, nz, scale)| {
            let n = nx * ny * nz;
            proptest::collection::vec(0.999f64..1.001, n..=n).prop_map(move |v| {
                Buffer3::from_vec(
                    Dims3::new(nx, ny, nz),
                    v.iter().map(|x| x * scale).collect(),
                )
            })
        });
    prop_oneof![constant, single_cell, pencil, slab, extreme]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lr_respects_bound_on_arbitrary_data(
        buf in buffer_strategy(10),
        eb_exp in -6i32..-1,
    ) {
        let abs_eb = 10f64.powi(eb_exp) * buf.value_range().max(1.0);
        let stream = lr::compress(&buf, &LrConfig::new(abs_eb));
        let back = lr::decompress(&stream).unwrap();
        prop_assert_eq!(back.dims(), buf.dims());
        let stats = ErrorStats::compare(buf.data(), back.data());
        prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9),
            "max err {} > bound {}", stats.max_abs_err, abs_eb);
    }

    #[test]
    fn interp_respects_bound_on_arbitrary_data(
        buf in buffer_strategy(9),
        eb_exp in -6i32..-1,
    ) {
        let abs_eb = 10f64.powi(eb_exp) * buf.value_range().max(1.0);
        let stream = interp::compress(&buf, &InterpConfig::new(abs_eb));
        let back = interp::decompress(&stream).unwrap();
        let stats = ErrorStats::compare(buf.data(), back.data());
        prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9));
    }

    #[test]
    fn sle_multi_domain_bound(
        bufs in proptest::collection::vec(buffer_strategy(6), 1..6),
        eb_exp in -5i32..-1,
    ) {
        let range = bufs.iter().map(|b| b.value_range()).fold(0.0f64, f64::max);
        let abs_eb = 10f64.powi(eb_exp) * range.max(1.0);
        let refs: Vec<&Buffer3> = bufs.iter().collect();
        let stream = lr::compress_domains(&refs, &LrConfig::new(abs_eb));
        let back = lr::decompress_domains(&stream).unwrap();
        prop_assert_eq!(back.len(), bufs.len());
        for (o, r) in bufs.iter().zip(&back) {
            let stats = ErrorStats::compare(o.data(), r.data());
            prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9));
        }
    }

    #[test]
    fn lossless_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = sz_codec::lossless::compress(&data);
        prop_assert_eq!(sz_codec::lossless::decompress(&c).unwrap(), data);
    }

    #[test]
    fn huffman_roundtrips_arbitrary_symbols(
        syms in proptest::collection::vec(0u32..70000, 0..2048),
    ) {
        let enc = sz_codec::huffman::encode_with_table(&syms);
        prop_assert_eq!(sz_codec::huffman::decode_with_table(&enc).unwrap(), syms);
    }

    #[test]
    fn quantizer_contract(val in -1e12f64..1e12, pred in -1e12f64..1e12, eb_exp in -9i32..2) {
        let eb = 10f64.powi(eb_exp);
        let q = sz_codec::quantizer::Quantizer::new(eb);
        let (sym, recon) = q.quantize(val, pred);
        if sym == sz_codec::quantizer::OUTLIER_SYMBOL {
            prop_assert_eq!(recon, val);
        } else {
            prop_assert!((recon - val).abs() <= eb);
            prop_assert_eq!(q.reconstruct(sym, pred), recon);
        }
    }

    #[test]
    fn box_subtraction_partitions(
        (alo, ahi) in (0i64..8, 8i64..16),
        (blo, bhi) in (0i64..12, 4i64..20),
    ) {
        let a = IntBox::new(IntVect::splat(alo), IntVect::splat(ahi));
        let b = IntBox::new(IntVect::splat(blo), IntVect::splat(bhi.max(blo)));
        let pieces = a.subtract(&b);
        let covered: u64 = pieces.iter().map(|p| p.num_cells()).sum();
        let overlap = a.intersection(&b).map(|i| i.num_cells()).unwrap_or(0);
        prop_assert_eq!(covered + overlap, a.num_cells());
        for (i, p) in pieces.iter().enumerate() {
            prop_assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn tiles_partition_any_box(
        (nx, ny, nz) in (1i64..40, 1i64..40, 1i64..40),
        tile in 1i64..12,
    ) {
        let b = IntBox::from_extents(nx, ny, nz);
        let tiles = b.tiles(tile);
        let total: u64 = tiles.iter().map(|t| t.num_cells()).sum();
        prop_assert_eq!(total, b.num_cells());
    }

    #[test]
    fn wire_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut w = sz_codec::wire::Writer::new();
        for &v in &vals {
            w.put_u64(v);
        }
        let bytes = w.into_bytes();
        let mut r = sz_codec::wire::Reader::new(&bytes);
        for &v in &vals {
            prop_assert_eq!(r.get_u64().unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn lr_bound_on_degenerate_inputs(
        buf in degenerate_buffer_strategy(),
        eb_exp in -6i32..-1,
    ) {
        let abs_eb = 10f64.powi(eb_exp) * buf.value_range().max(1.0);
        let stream = lr::compress(&buf, &LrConfig::new(abs_eb));
        let back = lr::decompress(&stream).unwrap();
        prop_assert_eq!(back.dims(), buf.dims());
        let stats = ErrorStats::compare(buf.data(), back.data());
        prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9),
            "max err {} > bound {} on dims {:?}", stats.max_abs_err, abs_eb, buf.dims());
    }

    #[test]
    fn interp_bound_on_degenerate_inputs(
        buf in degenerate_buffer_strategy(),
        eb_exp in -6i32..-1,
    ) {
        let abs_eb = 10f64.powi(eb_exp) * buf.value_range().max(1.0);
        let stream = interp::compress(&buf, &InterpConfig::new(abs_eb));
        let back = interp::decompress(&stream).unwrap();
        prop_assert_eq!(back.dims(), buf.dims());
        let stats = ErrorStats::compare(buf.data(), back.data());
        prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9),
            "max err {} > bound {} on dims {:?}", stats.max_abs_err, abs_eb, buf.dims());
    }

    #[test]
    fn constant_fields_compress_losslessly_enough(
        value in -1.0e12f64..1.0e12,
        edge in 1usize..9,
        eb_exp in -6i32..-1,
    ) {
        // A constant field has zero range; the bound still must hold with
        // the range-floor convention the other tests use.
        let buf = Buffer3::from_vec(Dims3::cube(edge), vec![value; edge * edge * edge]);
        let abs_eb = 10f64.powi(eb_exp) * buf.value_range().max(1.0);
        let back = lr::decompress(&lr::compress(&buf, &LrConfig::new(abs_eb))).unwrap();
        let stats = ErrorStats::compare(buf.data(), back.data());
        prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9));
    }

    #[test]
    fn lr_1d_respects_bound(
        data in proptest::collection::vec(-1.0e9f64..1.0e9, 1..600),
        eb_exp in -6i32..-1,
    ) {
        let range = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - data.iter().cloned().fold(f64::INFINITY, f64::min);
        let abs_eb = 10f64.powi(eb_exp) * range.max(1.0);
        let back = lr::decompress(&lr::compress_1d(&data, abs_eb)).unwrap();
        let stats = ErrorStats::compare(&data, back.data());
        prop_assert!(stats.max_abs_err <= abs_eb * (1.0 + 1e-9));
    }

    #[test]
    fn reassembly_preserves_order_under_forced_completion_schedule(
        n in 0usize..40,
        seed in any::<u64>(),
    ) {
        // The shuffle hook: deposits are forced to happen in exactly the
        // seeded permutation's order via a turn gate — an adversarial
        // "worker completion delay" schedule with no sleeps and no
        // timing dependence. The consumer must still receive 0, 1, 2, …
        let perm = seeded_permutation(n, seed);
        let mut pos = vec![0usize; n];
        for (p, &i) in perm.iter().enumerate() {
            pos[i] = p;
        }
        let queue = Reassembly::new(n.max(1));
        let gate = (std::sync::Mutex::new(0usize), std::sync::Condvar::new());
        let taken: Vec<usize> = std::thread::scope(|scope| {
            for i in 0..n {
                let (queue, gate, pos) = (&queue, &gate, &pos);
                scope.spawn(move || {
                    let (lock, cv) = gate;
                    let mut turn = lock.lock().unwrap();
                    while *turn != pos[i] {
                        turn = cv.wait(turn).unwrap();
                    }
                    queue.deposit(i, i);
                    *turn += 1;
                    cv.notify_all();
                });
            }
            (0..n).map(|_| queue.take_next().expect("no poison")).collect()
        });
        prop_assert_eq!(taken, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reassembly_preserves_order_under_racing_workers(
        n in 0usize..64,
        workers in 1usize..5,
        window in 1usize..5,
    ) {
        // Free-running depositors (OS scheduling is the randomness) with
        // a small backpressure window; the consumer interleaves takes
        // while deposits race, and order must still hold.
        let queue = Reassembly::new(window);
        let taken: Vec<usize> = std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                scope.spawn(move || {
                    for i in (w..n).step_by(workers) {
                        queue.deposit(i, i);
                    }
                });
            }
            (0..n).map(|_| queue.take_next().expect("no poison")).collect()
        });
        prop_assert_eq!(taken, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn pool_consumes_every_job_once_in_submission_order(
        n in 0usize..48,
        workers in 1usize..6,
        window in 1usize..6,
        seed in any::<u64>(),
    ) {
        // End-to-end over the pool driver: per-item payloads derived from
        // the seed, a hook that burns per-job "work" of pseudo-random
        // length (schedule jitter without sleeps), and the consumed
        // sequence must be the submission sequence exactly once each.
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let mut consumed = Vec::with_capacity(n);
        let res: Result<(), ()> = for_each_ordered_hooked(
            &items,
            workers,
            window,
            || (),
            |_s, i, v| Ok((i, *v)),
            |_i, pair| {
                consumed.push(pair);
                Ok(())
            },
            &|i| {
                // Unequal busy-work per job skews completion order.
                let spins = (seed.wrapping_add(i as u64) % 97) * 50;
                let mut acc = 0u64;
                for s in 0..spins {
                    acc = acc.wrapping_add(s ^ seed);
                }
                std::hint::black_box(acc);
            },
        );
        prop_assert!(res.is_ok());
        let expect: Vec<(usize, u64)> = items.iter().copied().enumerate().collect();
        prop_assert_eq!(consumed, expect);
    }

    #[test]
    fn cluster_grid_covers(n in 1usize..500) {
        let g = amric::reorganize::cluster_grid(n);
        prop_assert!(g.slots() >= n);
        // Slack stays bounded (never more than one extra layer).
        prop_assert!(g.slots() - n < g.gx * g.gy + g.gx * g.gz + g.gy * g.gz + 1,
            "n={} grid=({},{},{})", n, g.gx, g.gy, g.gz);
    }
}
