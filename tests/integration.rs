//! Cross-crate integration tests: the full in-situ pipeline from synthetic
//! application through preprocessing, compression, the h5lite container,
//! thread-rank collective writes, and back.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amric::prelude::*;
use amric::reader::{read_amric_hierarchy, read_baseline_hierarchy};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amric-it-{}-{name}.h5l", std::process::id()));
    p
}

fn nyx(seed: u64, nranks: usize) -> (AmrHierarchy, AmrRunConfig) {
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 32),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks,
        num_levels: 2,
        fine_fraction: 0.04,
        grid_eff: 0.7,
    };
    (build_hierarchy(&NyxScenario::new(seed), &cfg, 0.0), cfg)
}

fn warpx(seed: u64, nranks: usize) -> (AmrHierarchy, AmrRunConfig) {
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 64),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks,
        num_levels: 2,
        fine_fraction: 0.03,
        grid_eff: 0.7,
    };
    (build_hierarchy(&WarpXScenario::new(seed), &cfg, 0.0), cfg)
}

#[test]
fn full_pipeline_nyx_lr() {
    let (h, mesh) = nyx(1, 3);
    let path = tmp("nyx-lr");
    let report = write_amric(&path, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).unwrap();
    assert!(report.compression_ratio() > 2.0);
    let pf = read_amric_hierarchy(&path).unwrap();
    assert_eq!(pf.field_names, NYX_FIELDS.to_vec());
    for c in verify_against(&pf, &h, 1e-3) {
        assert!(c.bound_ok, "field {} out of bound", c.field);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_pipeline_warpx_interp() {
    let (h, mesh) = warpx(2, 4);
    let path = tmp("warpx-interp");
    let report = write_amric(&path, &h, &AmricConfig::interp(1e-3), mesh.blocking_factor).unwrap();
    // Smooth WarpX data must compress at least an order of magnitude.
    assert!(
        report.compression_ratio() > 10.0,
        "CR {}",
        report.compression_ratio()
    );
    let pf = read_amric_hierarchy(&path).unwrap();
    for c in verify_against(&pf, &h, 1e-3) {
        assert!(c.bound_ok, "field {} out of bound", c.field);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn warpx_compresses_much_better_than_nyx() {
    // The Table-2 contrast between the two applications.
    let (hn, mn) = nyx(3, 2);
    let (hw, mw) = warpx(3, 2);
    let pn = tmp("contrast-nyx");
    let pw = tmp("contrast-warpx");
    let rn = write_amric(&pn, &hn, &AmricConfig::lr(1e-3), mn.blocking_factor).unwrap();
    let rw = write_amric(&pw, &hw, &AmricConfig::lr(1e-3), mw.blocking_factor).unwrap();
    assert!(
        rw.compression_ratio() > 2.0 * rn.compression_ratio(),
        "WarpX {} vs Nyx {}",
        rw.compression_ratio(),
        rn.compression_ratio()
    );
    std::fs::remove_file(&pn).ok();
    std::fs::remove_file(&pw).ok();
}

#[test]
fn amric_beats_baseline_on_both_metrics() {
    // The paper's headline: better ratio AND better quality, with AMRIC at
    // a 10× tighter bound.
    let (h, mesh) = nyx(4, 2);
    let pb = tmp("headline-base");
    let pa = tmp("headline-amric");
    let rb = write_amrex_baseline(&pb, &h, &BaselineConfig::new(1e-2)).unwrap();
    let ra = write_amric(&pa, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).unwrap();
    assert!(ra.compression_ratio() > rb.compression_ratio());
    let pfb = read_baseline_hierarchy(&pb).unwrap();
    let pfa = read_amric_hierarchy(&pa).unwrap();
    let psnr = |checks: Vec<amric::reader::FieldVerification>| {
        checks.iter().map(|c| c.stats.psnr()).sum::<f64>() / checks.len() as f64
    };
    let qb = psnr(verify_against(&pfb, &h, 1e-2));
    let qa = psnr(verify_against(&pfa, &h, 1e-3));
    assert!(qa > qb, "AMRIC {qa} dB vs baseline {qb} dB");
    std::fs::remove_file(&pb).ok();
    std::fs::remove_file(&pa).ok();
}

#[test]
fn baseline_filter_call_explosion() {
    // §4.4: the baseline's calls scale with elements/1024; AMRIC's with
    // ranks × levels × fields.
    let (h, mesh) = nyx(5, 2);
    let pb = tmp("calls-base");
    let pa = tmp("calls-amric");
    let rb = write_amrex_baseline(&pb, &h, &BaselineConfig::new(1e-2)).unwrap();
    let ra = write_amric(&pa, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).unwrap();
    let cb: u64 = rb.ledgers.iter().map(|l| l.filter_calls).sum();
    let ca: u64 = ra.ledgers.iter().map(|l| l.filter_calls).sum();
    assert!(cb > 5 * ca, "baseline {cb} calls vs AMRIC {ca}");
    std::fs::remove_file(&pb).ok();
    std::fs::remove_file(&pa).ok();
}

#[test]
fn redundancy_removal_shrinks_stream() {
    let (h, mesh) = nyx(6, 2);
    let p1 = tmp("red-on");
    let p2 = tmp("red-off");
    let cfg = AmricConfig::lr(1e-3);
    let r_on = write_amric(&p1, &h, &cfg, mesh.blocking_factor).unwrap();
    let cfg_off = cfg.with_remove_redundancy(false);
    let r_off = write_amric(&p2, &h, &cfg_off, mesh.blocking_factor).unwrap();
    assert!(
        r_on.stored_bytes < r_off.stored_bytes,
        "with removal {} vs without {}",
        r_on.stored_bytes,
        r_off.stored_bytes
    );
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn multi_timestep_series_roundtrips() {
    let scenario = WarpXScenario::new(8);
    let mesh = AmrRunConfig {
        coarse_dims: (16, 16, 64),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.03,
        grid_eff: 0.7,
    };
    for (step, _t, h) in TimeSeries::new(&scenario, mesh, 0.4, 3) {
        let path = tmp(&format!("series-{step}"));
        write_amric(&path, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        for c in verify_against(&pf, &h, 1e-3) {
            assert!(c.bound_ok, "step {step} field {} out of bound", c.field);
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn nocomp_exact_and_sized() {
    let (h, _) = nyx(9, 2);
    let path = tmp("nocomp");
    let report = write_nocomp(&path, &h).unwrap();
    assert_eq!(report.stored_bytes, h.snapshot_bytes());
    let pf = read_baseline_hierarchy(&path).unwrap();
    for c in verify_against(&pf, &h, 1e-12) {
        assert_eq!(c.stats.max_abs_err, 0.0);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn single_level_hierarchy_writes() {
    // No refinement (empty tags) must degrade gracefully.
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 1,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&NyxScenario::new(10), &cfg, 0.0);
    assert_eq!(h.num_levels(), 1);
    let path = tmp("single-level");
    let report = write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    assert!(report.compression_ratio() > 1.0);
    let pf = read_amric_hierarchy(&path).unwrap();
    for c in verify_against(&pf, &h, 1e-3) {
        assert!(c.bound_ok);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn many_ranks_uneven_load() {
    // More ranks than fine boxes: some ranks hold no fine data; the
    // size-aware chunking must handle empty contributions.
    let (h, mesh) = nyx(12, 6);
    let path = tmp("uneven");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).unwrap();
    let pf = read_amric_hierarchy(&path).unwrap();
    for c in verify_against(&pf, &h, 1e-3) {
        assert!(c.bound_ok);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn three_level_amric_roundtrip() {
    // The writer/reader must generalize beyond the paper's 2-level runs:
    // unit edges halve per coarser level (16 → 8 → 4 at bf 16).
    let cfg = AmrRunConfig {
        coarse_dims: (32, 32, 32),
        max_grid_size: 16,
        blocking_factor: 16,
        nranks: 2,
        num_levels: 3,
        fine_fraction: 0.08,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&NyxScenario::new(55), &cfg, 0.0);
    if h.num_levels() < 3 {
        // Clustering may stop early on very concentrated tags; the 2-level
        // case is covered elsewhere.
        return;
    }
    assert_eq!(unit_edge_for_level(16, 2, 3), 16);
    assert_eq!(unit_edge_for_level(16, 1, 3), 8);
    assert_eq!(unit_edge_for_level(16, 0, 3), 4);
    let path = tmp("three-level");
    let report = write_amric(&path, &h, &AmricConfig::lr(1e-3), 16).unwrap();
    assert!(report.compression_ratio() > 1.0);
    let pf = amric::reader::read_amric_hierarchy(&path).unwrap();
    assert_eq!(pf.levels.len(), 3);
    for c in verify_against(&pf, &h, 1e-3) {
        assert!(c.bound_ok, "field {} out of bound", c.field);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn inspect_tool_compatible_file_layout() {
    // The plotfile must stay readable as a plain h5lite container (the
    // amric_inspect CLI path): dataset names, metadata and stored sizes.
    let (h, mesh) = nyx(60, 2);
    let path = tmp("inspectable");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).unwrap();
    let r = h5lite::H5Reader::open(&path).unwrap();
    let names = r.dataset_names();
    assert!(names.contains(&"meta/header"));
    assert!(names.contains(&"level_0/field_0"));
    assert!(names.contains(&"level_1/field_5"));
    for name in names {
        let m = r.meta(name).unwrap();
        assert!(m.stored_bytes() > 0 || m.total_elems == 0);
    }
    std::fs::remove_file(&path).ok();
}
