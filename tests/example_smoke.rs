//! Smoke tests for the runnable `examples/`: each must build and exit 0
//! via `cargo run --example`, so examples can't silently rot as the
//! crates evolve.
//!
//! Uses `--release` because the tier-1 verify (`cargo build --release &&
//! cargo test -q`) and CI both build release artifacts first, making
//! these runs incremental no-op builds plus a fast execution.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(cargo)
        .args(["run", "--release", "--offline", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn nyx_insitu_runs() {
    run_example("nyx_insitu");
}

#[test]
fn warpx_insitu_runs() {
    run_example("warpx_insitu");
}

#[test]
fn readback_analysis_runs() {
    run_example("readback_analysis");
}
