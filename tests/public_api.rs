//! Public-API smoke test: the prelude re-exports the workspace's intended
//! surface. If a refactor accidentally drops or renames one of these
//! items, this test fails tier-1 instead of breaking downstream users.

use amric_repro::prelude::*;

/// Every codec family is reachable as a `Codec` trait object through the
/// prelude alone.
fn assert_codec<C: Codec>() {}

#[test]
fn prelude_exposes_the_codec_api() {
    assert_codec::<LrCodec>();
    assert_codec::<InterpCodec>();
    assert_codec::<AmricCodec>();
    assert_codec::<TacCodec>();
    assert_codec::<ZmeshCodec>();
    assert_codec::<BaselineCodec>();

    // The registry path: all six ids registered, auto-dispatch works.
    let reg: CodecRegistry = default_registry();
    for id in [
        CodecId::LrSle,
        CodecId::Interp,
        CodecId::AmricPipeline,
        CodecId::Tac,
        CodecId::Zmesh,
        CodecId::AmrexBaseline,
    ] {
        assert!(reg.get(id as u16).is_some(), "{} unregistered", id.name());
    }
    let stream = AmricCodec::new(AmricConfig::lr(1e-3), 8)
        .compress(&[])
        .expect("compress");
    assert!(decompress_auto(&stream).expect("dispatch").is_empty());
}

#[test]
fn prelude_exposes_the_error_hierarchy() {
    // The typed errors and their lossless conversion into H5Error.
    let e: CodecError = CodecError::BadMode { found: 7 };
    let h: h5lite::H5Error = e.clone().into();
    assert!(matches!(
        h.as_codec(),
        Some(CodecError::BadMode { found: 7 })
    ));
    let _: CodecResult<()> = Err(e);
}

#[test]
fn prelude_exposes_configs_filters_and_pipeline() {
    // Builder-style configs.
    let cfg: AmricConfig = AmricConfig::interp(1e-3).with_cluster_arrangement(false);
    let _base: BaselineConfig = BaselineConfig::new(1e-2).with_chunk_elems(4096);
    let _merge: MergePolicy = MergePolicy::SharedEncoding;

    // The pipeline free functions and the zero-alloc writer path.
    let units = vec![Buffer3::zeros(Dims3::cube(4))];
    let abs = resolve_abs_eb(&units, 1e-3);
    let mut out = Vec::new();
    let info: StreamInfo = compress_field_units_with_bound_into(
        &units,
        &cfg,
        4,
        abs,
        &mut AmricScratch::default(),
        &mut out,
    );
    assert_eq!(info.codec, CodecId::AmricPipeline);
    assert_eq!(decompress_field_units(&out).expect("decode").len(), 1);
    assert_eq!(compress_field_units(&units, &cfg, 4), out);

    // h5lite filter surface.
    fn assert_filter<F: ChunkFilter>() {}
    assert_filter::<NoFilter>();
    assert_filter::<SzFilter>();
    let _mode: FilterMode = FilterMode::SizeAware;
}
