//! # amric-repro — workspace facade
//!
//! Root crate of the AMRIC (Wang et al., SC '23) reproduction. It
//! re-exports the eight member crates so downstream users can depend on a
//! single package, and it hosts the cross-crate `tests/` (integration,
//! property, example-smoke) and the runnable `examples/`.
//!
//! Layer map (dependencies point downward):
//!
//! ```text
//! bench ─► amr-serve ─► amr-query ─► amric ───► h5lite ───► rankpar
//!   │                                 │  │                     ▲
//!   │                                 │  └────► amr-apps ──► amr-mesh
//!   └► paper tables                   └──────► sz-codec
//! ```

pub use amr_apps;
pub use amr_mesh;
pub use amr_query;
pub use amr_serve;
pub use amric;
pub use h5lite;
pub use rankpar;
pub use sz_codec;

/// One-stop prelude pulling in every member crate's prelude.
pub mod prelude {
    pub use amr_apps::prelude::*;
    pub use amr_mesh::prelude::*;
    pub use amr_query::prelude::*;
    pub use amr_serve::prelude::*;
    pub use amric::prelude::*;
    pub use h5lite::prelude::*;
    pub use rankpar::prelude::*;
    pub use sz_codec::prelude::*;
}
