//! Fuzz-lite robustness suite for the temporal delta envelope, in the
//! style of the golden-stream corruption corpus: the decoder must be
//! total over `&[u8]` — truncations and bit flips return typed errors
//! (or, for flips the checks cannot see, a differently-decoded `Ok`),
//! never panic, and never let a forged header drive an absurd
//! allocation. Forged reference ids and forged unit modes are crafted
//! explicitly at the payload level, not just hoped for via random flips.

use std::sync::Arc;
use sz_codec::codec::{write_envelope, FLAG_REFERENCED};
use sz_codec::prelude::*;
use sz_codec::wire::Writer;
use sz_codec::{lossless, CodecError};

fn grain(i: usize, j: usize, k: usize) -> f64 {
    let h = (i.wrapping_mul(73_856_093) ^ j.wrapping_mul(19_349_663) ^ k.wrapping_mul(83_492_791))
        % 1024;
    h as f64 / 1024.0 - 0.5
}

fn snapshot(n: usize, t: f64) -> Vec<Buffer3> {
    (0..4)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(n));
            b.fill_with(|i, j, k| {
                let (x, y, z) = (
                    i as f64 / n as f64,
                    j as f64 / n as f64,
                    k as f64 / n as f64,
                );
                (6.0 * (x + t)).sin() * (5.0 * y).cos()
                    + 0.5 * (4.0 * (z - t)).sin()
                    + 0.05 * grain(i, j, k)
                    + u as f64 * 0.1
            });
            b
        })
        .collect()
}

/// A referenced stream (units 1 and 3 spatial, 0 and 2 delta) plus the
/// reference its decoder needs.
fn mixed_stream() -> (Vec<u8>, Arc<TemporalReference>) {
    let prev = snapshot(8, 0.0);
    let next = snapshot(8, 0.02);
    let reference = Arc::new(TemporalReference::new(9, prev));
    let codec = TemporalCodec::with_reference(
        TemporalConfig::new(1e-3),
        reference.clone(),
        vec![Some(0), None, Some(2), None],
    );
    (codec.compress(&next).unwrap(), reference)
}

fn spatial_stream() -> Vec<u8> {
    TemporalCodec::spatial(TemporalConfig::new(1e-3))
        .compress(&snapshot(8, 0.5))
        .unwrap()
}

/// Truncation lengths to probe: every short prefix, then an even spread.
fn truncation_points(len: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = (0..len.min(48)).collect();
    let step = (len / 64).max(1);
    pts.extend((48..len).step_by(step));
    pts.push(len.saturating_sub(1));
    pts.retain(|&p| p < len);
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Byte positions to flip: dense over the header, sampled over the body.
fn flip_points(len: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = (0..len.min(64)).collect();
    let step = (len / 96).max(1);
    pts.extend((64..len).step_by(step));
    pts.retain(|&p| p < len);
    pts.sort_unstable();
    pts.dedup();
    pts
}

fn assault(name: &str, valid: &[u8], codec: &TemporalCodec) {
    assert!(
        codec.decompress(valid).is_ok(),
        "{name}: pristine stream must decode"
    );
    for cut in truncation_points(valid.len()) {
        assert!(
            codec.decompress(&valid[..cut]).is_err(),
            "{name}: truncation to {cut}/{} bytes must be rejected",
            valid.len()
        );
    }
    for pos in flip_points(valid.len()) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = valid.to_vec();
            corrupt[pos] ^= mask;
            // Must return (Ok or Err) rather than panic/abort.
            let _ = codec.decompress(&corrupt);
        }
    }
}

#[test]
fn spatial_only_stream_total() {
    let stream = spatial_stream();
    assault("temporal/spatial", &stream, &TemporalCodec::decoder());
}

#[test]
fn referenced_stream_total() {
    let (stream, reference) = mixed_stream();
    assault(
        "temporal/mixed",
        &stream,
        &TemporalCodec::decoder_with(reference),
    );
}

#[test]
fn garbage_and_empty_inputs_rejected() {
    let garbage: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let dec = TemporalCodec::decoder();
    assert!(dec.decompress(&[]).is_err());
    assert!(dec.decompress(&garbage).is_err());
    // A valid envelope header over garbage payload still fails typed.
    let mut w = Writer::new();
    write_envelope(&mut w, CodecId::Temporal, 1, 0);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&garbage);
    assert!(dec.decompress(&bytes).is_err());
}

/// Re-envelope a hand-built temporal payload (the lossless wrap included)
/// so individual header fields can be forged precisely.
fn envelope(payload: &[u8], flags: u8) -> Vec<u8> {
    let mut w = Writer::new();
    write_envelope(&mut w, CodecId::Temporal, 1, flags);
    let mut bytes = w.into_bytes();
    lossless::compress_into(payload, &mut bytes);
    bytes
}

/// Payload *claiming* `claimed` units but materializing only `actual`
/// unit entries of `edge`³ cells against snapshot `rid`, with `mode` as
/// the per-unit mode byte and nothing after the unit table.
fn forged_payload(rid: u64, claimed: u32, actual: u32, edge: u32, mode: u8) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_f64(1e-3);
    w.put_u64(rid);
    w.put_u32(claimed);
    for u in 0..actual {
        w.put_u32(edge);
        w.put_u32(edge);
        w.put_u32(edge);
        w.put_u8(mode);
        if mode == 1 {
            w.put_u32(u);
        }
    }
    w.into_bytes()
}

#[test]
fn forged_reference_id_is_corrupt_never_wrong_data() {
    let (stream, reference) = mixed_stream();
    // Right units, wrong id: rejected up front as corruption.
    let forged = Arc::new(TemporalReference::new(
        reference.id + 1,
        reference.units.clone(),
    ));
    assert!(matches!(
        TemporalCodec::decoder_with(forged).decompress(&stream),
        Err(CodecError::Corrupt { .. })
    ));
    // No reference at all: typed parameter error naming the gap.
    assert!(matches!(
        TemporalCodec::decoder().decompress(&stream),
        Err(CodecError::BadParameter { .. })
    ));
}

#[test]
fn forged_mode_byte_is_typed_bad_mode() {
    let bytes = envelope(&forged_payload(1, 2, 2, 8, 7), FLAG_REFERENCED);
    assert!(matches!(
        TemporalCodec::decoder().decompress(&bytes),
        Err(CodecError::BadMode { found: 7 })
    ));
}

#[test]
fn forged_out_of_range_ref_unit_is_corrupt() {
    // One delta unit pointing at reference unit 0 of an *empty* reference.
    let reference = Arc::new(TemporalReference::new(3, Vec::new()));
    let mut payload = forged_payload(3, 1, 1, 2, 1);
    // Minimal delta block so the decoder reaches the reference lookup:
    // a real stream over a 2^3 unit provides the bytes.
    let real = {
        let prev = vec![Buffer3::zeros(Dims3::cube(2))];
        let mut next = Buffer3::zeros(Dims3::cube(2));
        next.fill_with(|i, j, k| (i + j + k) as f64 * 1e-4);
        let r = Arc::new(TemporalReference::new(3, prev));
        TemporalCodec::with_reference(TemporalConfig::new(1e-3), r, vec![Some(0)])
            .compress(std::slice::from_ref(&next))
            .unwrap()
    };
    // Splice the real stream's delta block onto the forged header by
    // reusing its payload past the identical-length unit table.
    let real_payload = lossless::decompress(&real[8..]).unwrap();
    payload.extend_from_slice(&real_payload[payload.len()..]);
    let bytes = envelope(&payload, FLAG_REFERENCED);
    assert!(matches!(
        TemporalCodec::decoder_with(reference).decompress(&bytes),
        Err(CodecError::Corrupt { .. })
    ));
}

#[test]
fn absurd_unit_counts_and_dims_are_bounded() {
    // Headers demanding far more cells than the stream could carry must
    // fail with a typed limit/count error before any allocation of that
    // size is attempted.
    let dec = TemporalCodec::decoder_with(Arc::new(TemporalReference::new(1, Vec::new())));
    // u32::MAX units of 1 byte each: rejected by the count check.
    let bytes = envelope(&forged_payload(1, u32::MAX, 2, 1, 1), FLAG_REFERENCED);
    assert!(dec.decompress(&bytes).is_err());
    // A few units, each claiming ~68 billion cells: rejected by the
    // delta-cell budget (u128 arithmetic — no overflow to small values).
    let bytes = envelope(&forged_payload(1, 3, 3, 4096, 1), FLAG_REFERENCED);
    match dec.decompress(&bytes) {
        Err(CodecError::LimitExceeded { .. }) => {}
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
    // Degenerate (zero-extent) dims are a typed dims error.
    let bytes = envelope(&forged_payload(1, 1, 1, 0, 1), FLAG_REFERENCED);
    assert!(matches!(
        dec.decompress(&bytes),
        Err(CodecError::DimsMismatch { .. })
    ));
}

#[test]
fn truncated_delta_symbol_block_is_corrupt_not_panic() {
    // Truncate *inside the lossless payload* (after decompression the
    // symbol iterator runs dry) by re-wrapping a shortened payload.
    let (stream, reference) = mixed_stream();
    let payload = lossless::decompress(&stream[8..]).unwrap();
    let dec = TemporalCodec::decoder_with(reference);
    for cut in (payload.len() / 2)..payload.len() {
        let bytes = envelope(&payload[..cut], FLAG_REFERENCED);
        assert!(
            dec.decompress(&bytes).is_err(),
            "payload truncated to {cut}/{} must be rejected",
            payload.len()
        );
    }
}
