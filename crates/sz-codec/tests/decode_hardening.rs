//! Crafted-stream decode hardening.
//!
//! A Huffman table is attacker-controlled bytes: it can carry *any* `u32`
//! as a symbol, including the outlier marker `0` for a stream that stored
//! no raw values, or a quantization symbol far beyond `2·QUANT_RADIUS`.
//! Every decode loop must surface those as typed [`CodecError::Corrupt`]
//! — never a panic, never silently garbage data.
//!
//! The tests build *real* streams with the encoder, then surgically patch
//! the serialized Huffman table inside the (lossless-unwrapped) payload
//! and re-wrap — so everything around the injected corruption stays
//! wire-exact.

use sz_codec::buffer3::{Buffer3, Dims3};
use sz_codec::codec::read_envelope;
use sz_codec::error::CodecError;
use sz_codec::huffman;
use sz_codec::interp::{self, InterpConfig};
use sz_codec::lossless;
use sz_codec::lr::{self, LrConfig};
use sz_codec::quantizer::QUANT_RADIUS;
use sz_codec::wire::Reader;

fn smooth(n: usize) -> Buffer3 {
    let mut b = Buffer3::zeros(Dims3::cube(n));
    b.fill_with(|i, j, k| (i as f64 * 0.2).sin() + 0.05 * j as f64 - 0.01 * k as f64);
    b
}

/// Split an envelope stream into (envelope prefix, lossless-decompressed
/// payload).
fn unwrap_stream(bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let env = read_envelope(bytes).expect("valid envelope");
    let payload = lossless::decompress(&bytes[env.payload_offset..]).expect("valid lossless");
    (bytes[..env.payload_offset].to_vec(), payload)
}

/// Reattach the envelope prefix and re-compress the (patched) payload.
fn rewrap_stream(prefix: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut out = prefix.to_vec();
    lossless::compress_into(payload, &mut out);
    out
}

/// Offset of the *data* Huffman block inside an SZ_L/R payload, found by
/// walking the container fields in front of it.
fn lr_data_block_offset(payload: &[u8]) -> usize {
    let mut r = Reader::new(payload);
    r.get_f64().unwrap(); // error bound
    r.get_u8().unwrap(); // block size
    let ndom = r.get_u32().unwrap() as usize;
    for _ in 0..3 * ndom {
        r.get_u32().unwrap(); // per-domain dims
    }
    let nsel = r.get_u64().unwrap() as usize;
    r.get_raw(nsel.div_ceil(8)).unwrap(); // selection bitmap
    r.get_block().unwrap(); // coefficient huffman block
    let ncoef = r.get_u64().unwrap() as usize;
    r.get_raw(ncoef * 8).unwrap(); // coefficient outliers
    payload.len() - r.remaining()
}

/// Offset of the data Huffman block inside an SZ_Interp payload.
fn interp_data_block_offset(payload: &[u8]) -> usize {
    let mut r = Reader::new(payload);
    r.get_f64().unwrap(); // error bound
    for _ in 0..3 {
        r.get_u32().unwrap(); // dims
    }
    payload.len() - r.remaining()
}

/// Overwrite the first Huffman-table entry's symbol inside the block at
/// `block_off`. Block layout: `[u64 outer len][u32 n_lens]
/// [(u32 symbol, u8 len) × n][u64 n_syms][u64 payload_len][bits]`.
/// Code *lengths* are untouched, so the canonical code set — and the bit
/// payload that follows — still decodes; only the symbol it maps to is
/// forged.
fn patch_first_table_symbol(payload: &mut [u8], block_off: usize, new_sym: u32) {
    let n_lens = u32::from_le_bytes(payload[block_off + 8..block_off + 12].try_into().unwrap());
    assert!(n_lens > 0, "data table must not be empty");
    payload[block_off + 12..block_off + 16].copy_from_slice(&new_sym.to_le_bytes());
}

fn assert_corrupt(res: Result<Buffer3, CodecError>) {
    match res {
        Err(CodecError::Corrupt { .. }) => {}
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("forged stream decoded successfully"),
    }
}

fn forged_lr_stream(new_sym: u32) -> Vec<u8> {
    let data = smooth(12);
    let stream = lr::compress(&data, &LrConfig::new(1e-3));
    assert!(lr::decompress(&stream).is_ok(), "baseline stream is valid");
    let (prefix, mut payload) = unwrap_stream(&stream);
    let off = lr_data_block_offset(&payload);
    patch_first_table_symbol(&mut payload, off, new_sym);
    rewrap_stream(&prefix, &payload)
}

fn forged_interp_stream(new_sym: u32) -> Vec<u8> {
    let data = smooth(12);
    let stream = interp::compress(&data, &InterpConfig::new(1e-3));
    assert!(
        interp::decompress(&stream).is_ok(),
        "baseline stream is valid"
    );
    let (prefix, mut payload) = unwrap_stream(&stream);
    let off = interp_data_block_offset(&payload);
    patch_first_table_symbol(&mut payload, off, new_sym);
    rewrap_stream(&prefix, &payload)
}

#[test]
fn lr_out_of_range_symbol_is_typed_corrupt() {
    // 2·QUANT_RADIUS is the first out-of-range quantization symbol; go
    // well past it to mimic an arbitrary forged u32.
    assert_corrupt(lr::decompress(&forged_lr_stream(
        2 * QUANT_RADIUS as u32 + 4404,
    )));
}

#[test]
fn lr_symbol_zero_without_raw_value_is_typed_corrupt() {
    // The smooth field stores no outliers, so a forged outlier marker has
    // no raw value to pull — the decoder must not invent one.
    assert_corrupt(lr::decompress(&forged_lr_stream(0)));
}

#[test]
fn interp_out_of_range_symbol_is_typed_corrupt() {
    assert_corrupt(interp::decompress(&forged_interp_stream(
        2 * QUANT_RADIUS as u32 + 4404,
    )));
}

#[test]
fn interp_symbol_zero_without_raw_value_is_typed_corrupt() {
    assert_corrupt(interp::decompress(&forged_interp_stream(0)));
}

/// Truncate an encoded Huffman stream at every byte boundary and, at each
/// boundary, damage every bit of the byte that becomes the new tail —
/// bit-offset-granular coverage of mid-stream loss. The decoder must
/// return a typed error or a clean value; it must never panic.
#[test]
fn truncated_huffman_streams_never_panic() {
    let syms: Vec<u32> = (0..4000u32)
        .map(|i| i.wrapping_mul(2654435761) % 300)
        .collect();
    let full = huffman::encode_with_table(&syms);
    assert_eq!(huffman::decode_with_table(&full).unwrap(), syms);
    for cut in 0..full.len() {
        let truncated = &full[..cut];
        if let Ok(decoded) = huffman::decode_with_table(truncated) {
            // A short prefix may still parse (e.g. cut lands after a
            // self-contained empty block) — but it must never silently
            // yield the full symbol stream.
            assert_ne!(decoded, syms, "truncation at {cut} decoded as complete");
        }
        if cut == 0 {
            continue;
        }
        let mut damaged = full[..cut].to_vec();
        for bit in 0..8 {
            damaged[cut - 1] ^= 1 << bit;
            let _ = huffman::decode_with_table(&damaged); // must not panic
            damaged[cut - 1] ^= 1 << bit;
        }
    }
}

/// Same sweep against full-length streams with a single flipped bit: any
/// byte of the stream — table, counts, payload — may be damaged, and the
/// decoder must come back with `Ok` (possibly different symbols: flips in
/// the table or payload are not detectable) or a typed error, never a
/// panic or an unbounded allocation.
#[test]
fn bit_flipped_huffman_streams_never_panic() {
    let syms: Vec<u32> = (0..1500u32).map(|i| (i * 40503) % 97).collect();
    let full = huffman::encode_with_table(&syms);
    for pos in 0..full.len() {
        let mut damaged = full.clone();
        for bit in 0..8 {
            damaged[pos] ^= 1 << bit;
            if let Err(e) = huffman::decode_with_table(&damaged) {
                let _ = e.to_string(); // typed, displayable
            }
            damaged[pos] ^= 1 << bit;
        }
    }
}
