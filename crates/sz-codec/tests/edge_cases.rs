//! Edge-case integration tests for the SZ codec: pathological data
//! distributions, extreme bounds, shape extremes, and stream robustness.

use sz_codec::prelude::*;

fn check_bound(orig: &Buffer3, stream: &[u8], abs_eb: f64) {
    let back = lr::decompress(stream).expect("decode");
    let stats = ErrorStats::compare(orig.data(), back.data());
    assert!(
        stats.max_abs_err <= abs_eb * (1.0 + 1e-9),
        "max err {} > {abs_eb}",
        stats.max_abs_err
    );
}

#[test]
fn all_outliers_still_roundtrip() {
    // Alternating ±1e12 with a microscopic bound: every point becomes an
    // outlier and is stored verbatim.
    let mut b = Buffer3::zeros(Dims3::cube(6));
    b.fill_with(|i, j, k| if (i + j + k) % 2 == 0 { 1e12 } else { -1e12 });
    let stream = lr::compress(&b, &LrConfig::new(1e-9));
    let back = lr::decompress(&stream).expect("decode");
    assert_eq!(back.data(), b.data(), "outliers must be lossless");
}

#[test]
fn denormal_and_tiny_values() {
    let mut b = Buffer3::zeros(Dims3::cube(5));
    b.fill_with(|i, j, k| (i as f64 - j as f64) * 1e-300 + k as f64 * 1e-305);
    let eb = 1e-310;
    // The quantizer saturates into outliers at this scale; roundtrip must
    // still hold the bound.
    let stream = lr::compress(&b, &LrConfig::new(eb));
    check_bound(&b, &stream, eb);
}

#[test]
fn huge_dynamic_range_nyx_style() {
    let mut b = Buffer3::zeros(Dims3::cube(16));
    b.fill_with(|i, j, k| 10f64.powi(((i + j + k) % 12) as i32));
    let eb = absolute_bound(1e-3, b.value_range());
    let stream = lr::compress(&b, &LrConfig::new(eb));
    check_bound(&b, &stream, eb);
}

#[test]
fn pencil_and_plane_shapes() {
    for dims in [
        Dims3::new(256, 1, 1),
        Dims3::new(64, 64, 1),
        Dims3::new(1, 1, 7),
    ] {
        let mut b = Buffer3::zeros(dims);
        b.fill_with(|i, j, k| ((i * 3 + j * 5 + k * 7) as f64 * 0.1).sin());
        let eb = 1e-4;
        let stream = lr::compress(&b, &LrConfig::new(eb));
        check_bound(&b, &stream, eb);
        let istream = interp::compress(&b, &InterpConfig::new(eb));
        let iback = interp::decompress(&istream).expect("interp decode");
        let stats = ErrorStats::compare(b.data(), iback.data());
        assert!(stats.max_abs_err <= eb * (1.0 + 1e-9), "{dims:?}");
    }
}

#[test]
fn block_size_variants_roundtrip() {
    let mut b = Buffer3::zeros(Dims3::new(17, 13, 11));
    b.fill_with(|i, j, k| (i as f64 * 1.1).cos() * (j as f64 + 1.0).ln() + k as f64);
    for bs in [1usize, 2, 4, 6, 8, 16] {
        let stream = lr::compress(&b, &LrConfig::new(1e-4).with_block_size(bs));
        check_bound(&b, &stream, 1e-4);
    }
}

#[test]
fn sle_with_hundreds_of_tiny_units() {
    let units: Vec<Buffer3> = (0..300)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(4));
            b.fill_with(|i, j, k| (u as f64 * 0.31).sin() + (i + j + k) as f64 * 0.01);
            b
        })
        .collect();
    let refs: Vec<&Buffer3> = units.iter().collect();
    let stream = lr::compress_domains(&refs, &LrConfig::new(1e-4));
    let back = lr::decompress_domains(&stream).expect("decode");
    assert_eq!(back.len(), 300);
    for (o, r) in units.iter().zip(&back) {
        let stats = ErrorStats::compare(o.data(), r.data());
        assert!(stats.max_abs_err <= 1e-4 * (1.0 + 1e-9));
    }
}

#[test]
fn interp_on_step_function() {
    // Discontinuities break interpolation predictions; quantizer must
    // absorb them within bound.
    let mut b = Buffer3::zeros(Dims3::cube(20));
    b.fill_with(|i, _, _| if i < 10 { 0.0 } else { 100.0 });
    let stream = interp::compress(&b, &InterpConfig::new(1e-2));
    let back = interp::decompress(&stream).expect("decode");
    let stats = ErrorStats::compare(b.data(), back.data());
    assert!(stats.max_abs_err <= 1e-2 * (1.0 + 1e-9));
}

#[test]
fn negative_zero_and_signed_values() {
    let mut b = Buffer3::zeros(Dims3::cube(4));
    b.fill_with(|i, j, k| if (i + j + k) % 2 == 0 { -0.0 } else { 0.0 });
    let stream = lr::compress(&b, &LrConfig::new(1e-6));
    let back = lr::decompress(&stream).expect("decode");
    for (&o, &r) in b.data().iter().zip(back.data()) {
        assert!((o - r).abs() <= 1e-6);
    }
}

#[test]
fn stream_is_deterministic() {
    let mut b = Buffer3::zeros(Dims3::cube(12));
    b.fill_with(|i, j, k| ((i * j + k) as f64).sqrt());
    let s1 = lr::compress(&b, &LrConfig::new(1e-3));
    let s2 = lr::compress(&b, &LrConfig::new(1e-3));
    assert_eq!(s1, s2, "same input must give identical streams");
    let i1 = interp::compress(&b, &InterpConfig::new(1e-3));
    let i2 = interp::compress(&b, &InterpConfig::new(1e-3));
    assert_eq!(i1, i2);
}

#[test]
fn truncated_streams_error_at_every_cut() {
    let mut b = Buffer3::zeros(Dims3::cube(8));
    b.fill_with(|i, j, k| (i + 2 * j + 3 * k) as f64);
    let stream = lr::compress(&b, &LrConfig::new(1e-3));
    // Any strict prefix must fail cleanly, never panic.
    for cut in (0..stream.len()).step_by(7) {
        assert!(
            lr::decompress(&stream[..cut]).is_err(),
            "prefix of {cut} bytes decoded successfully?!"
        );
    }
}

#[test]
fn tighter_bound_never_smaller_stream() {
    let mut b = Buffer3::zeros(Dims3::cube(24));
    b.fill_with(|i, j, k| {
        ((i as f64) * 0.37).sin() * ((j as f64) * 0.23).cos() + (k as f64 * 0.11).sin()
    });
    let mut prev = 0usize;
    for eb in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5] {
        let n = lr::compress(&b, &LrConfig::new(eb)).len();
        assert!(n + 64 >= prev, "eb {eb}: stream shrank from {prev} to {n}");
        prev = n;
    }
}

#[test]
fn psnr_improves_with_tighter_bound() {
    let mut b = Buffer3::zeros(Dims3::cube(24));
    b.fill_with(|i, j, k| ((i + j) as f64 * 0.2).sin() + (k as f64 * 0.1).cos());
    let mut prev_psnr = 0.0;
    for eb in [1e-1, 1e-2, 1e-3, 1e-4] {
        let stream = lr::compress(&b, &LrConfig::new(eb));
        let back = lr::decompress(&stream).expect("decode");
        let psnr = ErrorStats::compare(b.data(), back.data()).psnr();
        assert!(psnr > prev_psnr, "eb {eb}: PSNR {psnr} ≤ {prev_psnr}");
        prev_psnr = psnr;
    }
}
