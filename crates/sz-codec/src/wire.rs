//! Little-endian serialization helpers for the compressed-stream headers.
//!
//! Kept deliberately tiny (no serde in the hot format): every multi-byte
//! integer is little-endian, lengths are `u64`, floats are IEEE-754 bits.
//! Decode failures surface as the workspace-wide [`CodecError`].

pub use crate::error::{CodecError, CodecResult};

/// Append-only writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing buffer and append to it — the zero-alloc path:
    /// `mem::take` a caller's scratch `Vec`, write, hand it back with
    /// [`Writer::into_bytes`].
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (u64) byte block.
    pub fn put_block(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Raw bytes, no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Mutable access to the underlying buffer — lets `*_into` helpers
    /// append through an existing writer without unwrapping it.
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Finish.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential reader with bounds checking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        // `n` may come straight from a corrupted length field; checked
        // comparison avoids `pos + n` overflowing on absurd values.
        if n > self.buf.len() - self.pos {
            return Err(CodecError::Truncated {
                offset: self.pos,
                need: n,
                have: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed byte block (see [`Writer::put_block`]).
    pub fn get_block(&mut self) -> CodecResult<&'a [u8]> {
        let n = self.get_u64()? as usize;
        self.take(n)
    }

    /// Raw bytes of known length.
    pub fn get_raw(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Validate an element count decoded from the stream against the
    /// minimum bytes each element must still occupy. Rejecting implausible
    /// counts here keeps corrupted length fields from driving huge
    /// preallocations (which would abort, not unwind) in decode paths.
    pub fn check_count(&self, n: usize, min_bytes_per_elem: usize) -> CodecResult<usize> {
        let need = (n as u128) * (min_bytes_per_elem.max(1) as u128);
        if need > self.remaining() as u128 {
            return Err(CodecError::LimitExceeded {
                what: "element count",
                claimed: need,
                available: self.remaining() as u128,
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(-0.125);
        w.put_block(b"hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_block().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = Writer::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert!(matches!(
            r.get_u32(),
            Err(CodecError::Truncated {
                offset: 0,
                need: 4,
                have: 2
            })
        ));
        let mut r2 = Reader::new(&bytes);
        assert!(matches!(r2.get_u64(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn block_with_bad_length_errors() {
        let mut w = Writer::new();
        w.put_u64(1000); // claims 1000 bytes follow
        w.put_raw(b"xx");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_block(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn implausible_count_is_limit_exceeded() {
        let r = Reader::new(b"1234");
        assert!(matches!(
            r.check_count(10_000, 8),
            Err(CodecError::LimitExceeded { .. })
        ));
        assert_eq!(r.check_count(4, 1).unwrap(), 4);
    }

    #[test]
    fn from_vec_appends() {
        let mut w = Writer::from_vec(vec![0xFF]);
        w.put_u8(1);
        assert_eq!(w.into_bytes(), vec![0xFF, 1]);
    }
}
