//! The unified [`Codec`] abstraction: one trait, one self-describing
//! stream envelope, and a registry-backed auto-dispatching decoder shared
//! by every compressor family in the workspace.
//!
//! # The envelope
//!
//! Every compressed stream produced anywhere in the workspace starts with
//! the same 8-byte header:
//!
//! ```text
//! magic  u32  = AMEC ("AMric Envelope Codec")
//! codec  u16  — which family wrote the payload (see [`CodecId`])
//! version u8  — format version of that family's payload
//! flags  u8   — family-independent stream flags ([`FLAG_EMPTY`], …)
//! ```
//!
//! The payload that follows is family-specific, but because the id rides
//! in the header, a [`CodecRegistry`] can dispatch *any* workspace stream
//! to the right decoder without out-of-band context.
//!
//! # The trait
//!
//! [`Codec`] is the pluggable compressor interface AMRIC (a *framework*
//! hosting several error-bounded compressors) needs: compress a set of
//! unit blocks into a caller-provided output buffer, decompress any of
//! your own streams back. `compress_into` **appends** to `out` so hot
//! paths can reuse one buffer across calls instead of allocating a fresh
//! `Vec<u8>` per chunk.

use crate::buffer3::Buffer3;
use crate::error::{CodecError, CodecResult};
use crate::wire::{Reader, Writer};

/// Envelope magic: the bytes `AMEC` on disk (little-endian u32). The
/// header's version byte belongs to the family payload, so an envelope
/// layout change would come with a new magic.
pub const ENVELOPE_MAGIC: u32 = 0x4345_4D41;

/// Flag bit: the stream encodes zero unit blocks and carries no payload.
pub const FLAG_EMPTY: u8 = 0b0000_0001;

/// Flag bit: the payload is a multi-unit container (a `u32` unit count
/// followed by length-prefixed single-unit payloads) rather than one bare
/// single-unit payload. Used by families whose native stream holds exactly
/// one buffer (e.g. SZ_Interp).
pub const FLAG_MULTI: u8 = 0b0000_0010;

/// Flag bit: the payload depends on a **reference snapshot** — at least
/// one unit is delta-coded against previously decoded data identified by
/// the reference id in the payload header. Streams without this flag are
/// self-contained and decode through any registry; streams with it need
/// their reference installed in the decoder (see the `temporal` module).
pub const FLAG_REFERENCED: u8 = 0b0000_0100;

/// Flag bit: the payload header records a **per-unit error bound** — the
/// stream was produced under an adaptive bound policy and each unit block
/// carries (directly or via a group table) the absolute bound it was
/// quantized with, so decoders and quality metrics can recover the bound
/// actually used. Streams without this flag used one uniform bound.
pub const FLAG_UNIT_BOUNDS: u8 = 0b0000_1000;

/// Stable codec identifiers for the envelope header.
///
/// These ids are part of the on-disk format and must never be renumbered.
/// Families implemented outside this crate (the AMRIC pipeline and the
/// offline comparators) still take their ids from here so the namespace
/// stays collision-free workspace-wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(u16)]
pub enum CodecId {
    /// SZ_L/R with Shared Lossless Encoding (this crate, [`crate::lr`]).
    LrSle = 1,
    /// SZ_Interp dynamic spline (this crate, [`crate::interp`]).
    Interp = 2,
    /// The full AMRIC pipeline (reorganize + optimized SZ).
    AmricPipeline = 3,
    /// The TAC offline comparator (Morton grouping + black-box SZ).
    Tac = 4,
    /// The zMesh offline comparator (locality-ordered 1-D stream).
    Zmesh = 5,
    /// The AMReX baseline (1-D SZ through small chunks).
    AmrexBaseline = 6,
    /// Cross-snapshot temporal delta coding (this crate,
    /// [`crate::temporal`]).
    Temporal = 7,
}

impl CodecId {
    /// Decode a raw id from an envelope header.
    pub fn from_u16(v: u16) -> Option<CodecId> {
        Some(match v {
            1 => CodecId::LrSle,
            2 => CodecId::Interp,
            3 => CodecId::AmricPipeline,
            4 => CodecId::Tac,
            5 => CodecId::Zmesh,
            6 => CodecId::AmrexBaseline,
            7 => CodecId::Temporal,
            _ => return None,
        })
    }

    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::LrSle => "sz-lr",
            CodecId::Interp => "sz-interp",
            CodecId::AmricPipeline => "amric",
            CodecId::Tac => "tac",
            CodecId::Zmesh => "zmesh",
            CodecId::AmrexBaseline => "amrex-baseline",
            CodecId::Temporal => "temporal",
        }
    }
}

/// Parsed envelope header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Raw codec id (kept raw so registries can report unknown ids).
    pub codec: u16,
    /// Payload format version.
    pub version: u8,
    /// Stream flags ([`FLAG_EMPTY`], [`FLAG_MULTI`], …).
    pub flags: u8,
    /// Byte offset where the family payload starts.
    pub payload_offset: usize,
}

/// Append an envelope header for `id` to the writer.
pub fn write_envelope(w: &mut Writer, id: CodecId, version: u8, flags: u8) {
    w.put_u32(ENVELOPE_MAGIC);
    w.put_u16(id as u16);
    w.put_u8(version);
    w.put_u8(flags);
}

/// Parse the envelope header off the front of `bytes`.
pub fn read_envelope(bytes: &[u8]) -> CodecResult<Envelope> {
    let mut r = Reader::new(bytes);
    let magic = r.get_u32()?;
    if magic != ENVELOPE_MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    let codec = r.get_u16()?;
    let version = r.get_u8()?;
    let flags = r.get_u8()?;
    Ok(Envelope {
        codec,
        version,
        flags,
        payload_offset: bytes.len() - r.remaining(),
    })
}

/// Parse the envelope and require a specific codec id and version — the
/// standard prologue of every family's `decompress`.
pub fn expect_envelope(bytes: &[u8], id: CodecId, version: u8) -> CodecResult<Envelope> {
    let env = read_envelope(bytes)?;
    if env.codec != id as u16 {
        return Err(CodecError::WrongCodec {
            expected: id as u16,
            found: env.codec,
        });
    }
    if env.version != version {
        return Err(CodecError::BadVersion { found: env.version });
    }
    Ok(env)
}

/// Accounting for one `compress_into` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamInfo {
    /// Which family wrote the stream.
    pub codec: CodecId,
    /// Bytes appended to the output buffer (envelope included).
    pub bytes: usize,
    /// Unit blocks encoded.
    pub units: usize,
    /// Total cells encoded.
    pub cells: usize,
}

/// A pluggable error-bounded compressor over unit blocks.
///
/// Implementations carry their own configuration (error bound, merge
/// policy, spatial metadata, …); the trait surface is deliberately just
/// "units in, self-describing envelope stream out" so the writer, the
/// benches, and the comparators can treat all six families uniformly.
pub trait Codec: Send + Sync {
    /// The family id written into the envelope.
    fn id(&self) -> CodecId;

    /// Compress `units`, **appending** the envelope + payload to `out`.
    ///
    /// `out` is not cleared: callers own the buffer and decide when to
    /// reuse it, which is what keeps per-chunk hot paths allocation-free.
    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo>;

    /// Decompress a stream this codec produced, returning the unit blocks
    /// in their original order.
    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>>;

    /// Convenience: compress into a fresh buffer.
    fn compress(&self, units: &[Buffer3]) -> CodecResult<Vec<u8>> {
        let mut out = Vec::new();
        self.compress_into(units, &mut out)?;
        Ok(out)
    }
}

/// A set of decoders keyed by codec id, powering
/// [`decompress_auto`](CodecRegistry::decompress_auto) dispatch of any
/// envelope stream.
///
/// This crate's [`CodecRegistry::sz_only`] covers the two SZ families
/// implemented here; the `amric` crate layers the pipeline and comparator
/// families on top in its `default_registry()`.
#[derive(Default)]
pub struct CodecRegistry {
    entries: Vec<Box<dyn Codec>>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry with this crate's families (SZ_L/R + SZ_Interp).
    pub fn sz_only() -> Self {
        let mut reg = Self::new();
        reg.register(Box::new(crate::lr::LrCodec::default()));
        reg.register(Box::new(crate::interp::InterpCodec::default()));
        reg
    }

    /// Add a decoder. A later registration for the same id wins.
    pub fn register(&mut self, codec: Box<dyn Codec>) -> &mut Self {
        self.entries.retain(|c| c.id() != codec.id());
        self.entries.push(codec);
        self
    }

    /// Look up the decoder for a raw envelope id.
    pub fn get(&self, id: u16) -> Option<&dyn Codec> {
        self.entries
            .iter()
            .find(|c| c.id() as u16 == id)
            .map(|c| c.as_ref())
    }

    /// Registered ids, in registration order.
    pub fn ids(&self) -> Vec<CodecId> {
        self.entries.iter().map(|c| c.id()).collect()
    }

    /// Parse the envelope of `bytes` and dispatch to the registered
    /// decoder for its codec id.
    pub fn decompress_auto(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        let env = read_envelope(bytes)?;
        let codec = self
            .get(env.codec)
            .ok_or(CodecError::UnknownCodec { id: env.codec })?;
        codec.decompress(bytes)
    }
}

/// Sum of cells across unit blocks (StreamInfo helper).
pub(crate) fn total_cells(units: &[Buffer3]) -> usize {
    units.iter().map(|u| u.dims().len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let mut w = Writer::new();
        write_envelope(&mut w, CodecId::Tac, 3, FLAG_EMPTY);
        w.put_u8(0xAB);
        let bytes = w.into_bytes();
        let env = read_envelope(&bytes).unwrap();
        assert_eq!(env.codec, CodecId::Tac as u16);
        assert_eq!(env.version, 3);
        assert_eq!(env.flags, FLAG_EMPTY);
        assert_eq!(bytes[env.payload_offset], 0xAB);
    }

    #[test]
    fn envelope_rejects_bad_magic_and_truncation() {
        assert!(matches!(
            read_envelope(b"XXXXXXXX"),
            Err(CodecError::BadMagic { .. })
        ));
        let mut w = Writer::new();
        write_envelope(&mut w, CodecId::LrSle, 1, 0);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_envelope(&bytes[..5]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn expect_envelope_checks_id_and_version() {
        let mut w = Writer::new();
        write_envelope(&mut w, CodecId::Interp, 1, 0);
        let bytes = w.into_bytes();
        assert!(expect_envelope(&bytes, CodecId::Interp, 1).is_ok());
        assert!(matches!(
            expect_envelope(&bytes, CodecId::LrSle, 1),
            Err(CodecError::WrongCodec { expected, found })
                if expected == CodecId::LrSle as u16 && found == CodecId::Interp as u16
        ));
        assert!(matches!(
            expect_envelope(&bytes, CodecId::Interp, 2),
            Err(CodecError::BadVersion { found: 1 })
        ));
    }

    #[test]
    fn codec_id_round_trips_through_u16() {
        for id in [
            CodecId::LrSle,
            CodecId::Interp,
            CodecId::AmricPipeline,
            CodecId::Tac,
            CodecId::Zmesh,
            CodecId::AmrexBaseline,
            CodecId::Temporal,
        ] {
            assert_eq!(CodecId::from_u16(id as u16), Some(id));
            assert!(!id.name().is_empty());
        }
        assert_eq!(CodecId::from_u16(0), None);
        assert_eq!(CodecId::from_u16(999), None);
    }

    #[test]
    fn registry_dispatches_and_reports_unknown() {
        let reg = CodecRegistry::sz_only();
        assert!(reg.get(CodecId::LrSle as u16).is_some());
        assert!(reg.get(CodecId::Tac as u16).is_none());
        let mut w = Writer::new();
        write_envelope(&mut w, CodecId::Tac, 1, 0);
        assert!(matches!(
            reg.decompress_auto(&w.into_bytes()),
            Err(CodecError::UnknownCodec { id }) if id == CodecId::Tac as u16
        ));
    }
}
