//! Row-oriented predict+quantize kernels for the SZ hot loops.
//!
//! The per-point closures in `lr.rs`/`interp.rs` cost an index
//! computation, a bounds check, and an unpredictable outlier branch per
//! cell. These kernels restructure the same work into contiguous-row
//! passes: neighbour loads become slice iteration, the outlier branch is
//! replaced by [`Quantizer::quantize_select`]'s data-dependent selects
//! (hoisting the rare outlier handling into a separate scalar sweep over
//! the produced symbol row), and loops with no loop-carried dependence
//! (affine prediction, interpolation prediction) autovectorize into
//! `f64x4`-style lanes on stable Rust.
//!
//! **Bitstream invariant:** every kernel evaluates exactly the
//! floating-point expression tree of the scalar code it replaces — same
//! association, same operand order, same comparison order — so symbols,
//! outliers, and reconstructions are bit-identical. The `*_reference`
//! twins keep the original per-point forms as equivalence oracles and as
//! the "before" series of the kernel benches; the golden-stream corpus
//! under `crates/amric/tests/golden/` pins the end-to-end bytes.

use crate::buffer3::{Buffer3, Dims3};
use crate::quantizer::Quantizer;
use crate::regression::Coefficients;

/// Fused affine-predict + quantize over one x-row of a regression block.
///
/// The prediction at local `(i, y, z)` is `((b0 + bx·i) + by) + bz` with
/// `by = b[1]·y`, `bz = b[2]·z` hoisted by the caller — the exact
/// expression tree of [`Coefficients::predict`] (the hoisted products do
/// not depend on `i`, and the sum order is unchanged). No loop-carried
/// dependence, so the loop vectorizes.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn quantize_affine_row(
    q: &Quantizer,
    vals: &[f64],
    b0: f64,
    bx: f64,
    by: f64,
    bz: f64,
    syms: &mut [u32],
    recon: &mut [f64],
) {
    assert_eq!(vals.len(), syms.len());
    assert_eq!(vals.len(), recon.len());
    for (i, ((&v, s), r)) in vals
        .iter()
        .zip(syms.iter_mut())
        .zip(recon.iter_mut())
        .enumerate()
    {
        let pred = ((b0 + bx * i as f64) + by) + bz;
        let (sym, rec) = q.quantize_select(v, pred);
        *s = sym;
        *r = rec;
    }
}

/// Per-point form of [`quantize_affine_row`] (original scalar path):
/// full predict expression and the branchy [`Quantizer::quantize`].
#[allow(clippy::too_many_arguments)]
pub fn quantize_affine_row_reference(
    q: &Quantizer,
    vals: &[f64],
    b0: f64,
    bx: f64,
    by: f64,
    bz: f64,
    syms: &mut [u32],
    recon: &mut [f64],
) {
    for i in 0..vals.len() {
        let pred = ((b0 + bx * i as f64) + by) + bz;
        let (sym, rec) = q.quantize(vals[i], pred);
        syms[i] = sym;
        recon[i] = rec;
    }
}

/// Quantize one row of values against a precomputed prediction row.
/// The interp passes build `preds` with the row predictors below, then
/// fuse quantization in a second lane loop (no dependence → vectorizes).
#[inline]
pub fn quantize_row(
    q: &Quantizer,
    vals: &[f64],
    preds: &[f64],
    syms: &mut [u32],
    recon: &mut [f64],
) {
    assert_eq!(vals.len(), preds.len());
    assert_eq!(vals.len(), syms.len());
    assert_eq!(vals.len(), recon.len());
    for (((&v, &p), s), r) in vals
        .iter()
        .zip(preds.iter())
        .zip(syms.iter_mut())
        .zip(recon.iter_mut())
    {
        let (sym, rec) = q.quantize_select(v, p);
        *s = sym;
        *r = rec;
    }
}

/// Per-point form of [`quantize_row`] through the branchy quantizer.
pub fn quantize_row_reference(
    q: &Quantizer,
    vals: &[f64],
    preds: &[f64],
    syms: &mut [u32],
    recon: &mut [f64],
) {
    for i in 0..vals.len() {
        let (sym, rec) = q.quantize(vals[i], preds[i]);
        syms[i] = sym;
        recon[i] = rec;
    }
}

/// Cubic interpolation predictor over whole rows:
/// `(-a + 9·b + 9·c - d) / 16` per element — the expression
/// `interp::predict` evaluates, with the four stride-`s` neighbour rows
/// passed as contiguous slices.
#[inline]
pub fn predict_cubic_row(a: &[f64], b: &[f64], c: &[f64], d: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), out.len());
    assert_eq!(b.len(), out.len());
    assert_eq!(c.len(), out.len());
    assert_eq!(d.len(), out.len());
    for i in 0..out.len() {
        out[i] = (-a[i] + 9.0 * b[i] + 9.0 * c[i] - d[i]) / 16.0;
    }
}

/// Linear interpolation predictor over whole rows: `0.5 · (b + c)`.
#[inline]
pub fn predict_linear_row(b: &[f64], c: &[f64], out: &mut [f64]) {
    assert_eq!(b.len(), out.len());
    assert_eq!(c.len(), out.len());
    for i in 0..out.len() {
        out[i] = 0.5 * (b[i] + c[i]);
    }
}

/// One x-row of the Lorenzo encode pass.
///
/// The prediction feeds on the value written one step earlier
/// (`recon[i-1]`), so the loop is inherently sequential; the win is
/// structural: the 7 closure calls with per-neighbour `isize` bounds
/// checks become three slice loads plus four rolling registers, and the
/// outlier branch collapses into selects. `left` holds the recon values
/// at `(i₀−1, ·)` for the four stencil rows (zeros at the domain face),
/// in stencil order `[(j,k), (j−1,k), (j,k−1), (j−1,k−1)]`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn lorenzo_quantize_row(
    q: &Quantizer,
    vals: &[f64],
    jm: &[f64],
    km: &[f64],
    jkm: &[f64],
    left: [f64; 4],
    syms: &mut [u32],
    recon: &mut [f64],
) {
    assert_eq!(vals.len(), jm.len());
    assert_eq!(vals.len(), km.len());
    assert_eq!(vals.len(), jkm.len());
    assert_eq!(vals.len(), syms.len());
    assert_eq!(vals.len(), recon.len());
    let [mut l00, mut l10, mut l01, mut l11] = left;
    for i in 0..vals.len() {
        // Exactly lorenzo3's inclusion–exclusion sum order.
        let pred = l00 + jm[i] + km[i] - l10 - l01 - jkm[i] + l11;
        let (sym, rec) = q.quantize_select(vals[i], pred);
        syms[i] = sym;
        recon[i] = rec;
        l00 = rec;
        l10 = jm[i];
        l01 = km[i];
        l11 = jkm[i];
    }
}

/// Fused single-sweep predictor-selection statistics for one block:
/// returns `(regression_error, lorenzo_error)` — the values
/// [`crate::regression::regression_block_error`] and
/// [`crate::lorenzo::lorenzo3_block_error`] produce, accumulated in the
/// same sequential point order but in one pass over the block instead of
/// two (the block is walked once while it is L1-resident).
///
/// The Lorenzo statistic keeps SZ2's zero-extension semantics: stencil
/// reads outside the *domain* contribute 0 (see `lorenzo.rs` for why
/// that is the faithful selection statistic).
pub fn selection_errors(
    data: &Buffer3,
    oi: usize,
    oj: usize,
    ok: usize,
    bd: Dims3,
    c: &Coefficients,
) -> (f64, f64) {
    let dims = data.dims();
    let flat = data.data();
    let plane = dims.nx * dims.ny;
    let mut reg_err = 0.0;
    let mut lor_err = 0.0;
    for k in 0..bd.nz {
        let bz = c.b[2] * k as f64;
        let ka = ok + k;
        for j in 0..bd.ny {
            let by = c.b[1] * j as f64;
            let ja = oj + j;
            let base = dims.idx(oi, ja, ka);
            let row = &flat[base..base + bd.nx];
            // Neighbour rows read the original data (never the block), so
            // only the domain faces zero-extend.
            let zeros = [0.0f64; 1];
            let (jm, km, jkm): (&[f64], &[f64], &[f64]) = (
                if ja > 0 {
                    &flat[base - dims.nx..base - dims.nx + bd.nx]
                } else {
                    &zeros[..0]
                },
                if ka > 0 {
                    &flat[base - plane..base - plane + bd.nx]
                } else {
                    &zeros[..0]
                },
                if ja > 0 && ka > 0 {
                    &flat[base - plane - dims.nx..base - plane - dims.nx + bd.nx]
                } else {
                    &zeros[..0]
                },
            );
            let (mut l00, mut l10, mut l01, mut l11) = if oi > 0 {
                (
                    flat[base - 1],
                    if ja > 0 {
                        flat[base - dims.nx - 1]
                    } else {
                        0.0
                    },
                    if ka > 0 { flat[base - plane - 1] } else { 0.0 },
                    if ja > 0 && ka > 0 {
                        flat[base - plane - dims.nx - 1]
                    } else {
                        0.0
                    },
                )
            } else {
                (0.0, 0.0, 0.0, 0.0)
            };
            for (i, &v) in row.iter().enumerate() {
                let pred_reg = ((c.b0 + c.b[0] * i as f64) + by) + bz;
                reg_err += (v - pred_reg).abs();
                let (vjm, vkm, vjkm) = (
                    jm.get(i).copied().unwrap_or(0.0),
                    km.get(i).copied().unwrap_or(0.0),
                    jkm.get(i).copied().unwrap_or(0.0),
                );
                let pred_lor = l00 + vjm + vkm - l10 - l01 - vjkm + l11;
                lor_err += (v - pred_lor).abs();
                l00 = v;
                l10 = vjm;
                l01 = vkm;
                l11 = vjkm;
            }
        }
    }
    (reg_err, lor_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lorenzo::{lorenzo3, lorenzo3_block_error};
    use crate::quantizer::OUTLIER_SYMBOL;
    use crate::regression::{fit_block, regression_block_error};

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn noisy_buffer(dims: Dims3, seed: u64) -> Buffer3 {
        let mut b = Buffer3::zeros(dims);
        let mut s = seed;
        b.fill_with(|i, j, k| {
            (i as f64 * 0.3).sin() + j as f64 * 0.11 - k as f64 * 0.07
                + lcg(&mut s) * 0.05
                + if (i + 2 * j + 3 * k) % 53 == 0 {
                    40.0
                } else {
                    0.0
                }
        });
        b
    }

    #[test]
    fn affine_row_matches_reference() {
        let q = Quantizer::new(1e-3);
        let mut s = 7u64;
        let vals: Vec<f64> = (0..64)
            .map(|i| 0.4 + 0.03 * i as f64 + lcg(&mut s) * 0.01 + if i == 17 { 99.0 } else { 0.0 })
            .collect();
        let (mut sy_a, mut sy_b) = (vec![0u32; 64], vec![0u32; 64]);
        let (mut re_a, mut re_b) = (vec![0.0; 64], vec![0.0; 64]);
        quantize_affine_row(&q, &vals, 0.4, 0.03, 0.2, -0.1, &mut sy_a, &mut re_a);
        quantize_affine_row_reference(&q, &vals, 0.4, 0.03, 0.2, -0.1, &mut sy_b, &mut re_b);
        assert_eq!(sy_a, sy_b);
        assert!(sy_a.contains(&OUTLIER_SYMBOL), "spike must be an outlier");
        for (a, b) in re_a.iter().zip(&re_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pred_row_matches_reference() {
        let q = Quantizer::new(1e-4);
        let mut s = 11u64;
        let vals: Vec<f64> = (0..100).map(|_| lcg(&mut s) * 3.0).collect();
        let preds: Vec<f64> = vals.iter().map(|v| v + lcg(&mut s) * 0.01).collect();
        let (mut sy_a, mut sy_b) = (vec![0u32; 100], vec![0u32; 100]);
        let (mut re_a, mut re_b) = (vec![0.0; 100], vec![0.0; 100]);
        quantize_row(&q, &vals, &preds, &mut sy_a, &mut re_a);
        quantize_row_reference(&q, &vals, &preds, &mut sy_b, &mut re_b);
        assert_eq!(sy_a, sy_b);
        for (a, b) in re_a.iter().zip(&re_b) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lorenzo_row_matches_stencil() {
        // Drive the row kernel over a full small domain and compare every
        // prediction-side effect against the closure-based lorenzo3 pass.
        let q = Quantizer::new(1e-3);
        let dims = Dims3::new(9, 4, 3);
        let data = noisy_buffer(dims, 5);
        // Reference pass.
        let mut recon_ref = Buffer3::zeros(dims);
        let mut syms_ref = Vec::new();
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let pred = lorenzo3(&recon_ref, i, j, k);
                    let (sym, rec) = q.quantize(data.get(i, j, k), pred);
                    syms_ref.push(sym);
                    recon_ref.set(i, j, k, rec);
                }
            }
        }
        // Kernel pass, row by row.
        let mut recon = Buffer3::zeros(dims);
        let mut syms = vec![0u32; dims.nx];
        let mut all_syms = Vec::new();
        let zeros = vec![0.0; dims.nx];
        let plane = dims.nx * dims.ny;
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                let base = dims.idx(0, j, k);
                let (head, tail) = recon.data_mut().split_at_mut(base);
                let jm = if j > 0 {
                    &head[base - dims.nx..base - dims.nx + dims.nx]
                } else {
                    &zeros[..]
                };
                let km = if k > 0 {
                    &head[base - plane..base - plane + dims.nx]
                } else {
                    &zeros[..]
                };
                let jkm = if j > 0 && k > 0 {
                    &head[base - plane - dims.nx..base - plane - dims.nx + dims.nx]
                } else {
                    &zeros[..]
                };
                let row_base = dims.idx(0, j, k);
                let vals = &data.data()[row_base..row_base + dims.nx];
                lorenzo_quantize_row(
                    &q,
                    vals,
                    jm,
                    km,
                    jkm,
                    [0.0; 4],
                    &mut syms,
                    &mut tail[..dims.nx],
                );
                all_syms.extend_from_slice(&syms);
            }
        }
        assert_eq!(all_syms, syms_ref);
        for (a, b) in recon.data().iter().zip(recon_ref.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fused_selection_matches_separate_sweeps() {
        for dims in [Dims3::new(13, 7, 9), Dims3::cube(6), Dims3::new(6, 1, 1)] {
            let data = noisy_buffer(dims, 23);
            let bs = 6;
            let mut ok = 0;
            while ok < dims.nz {
                let bz = bs.min(dims.nz - ok);
                let mut oj = 0;
                while oj < dims.ny {
                    let by = bs.min(dims.ny - oj);
                    let mut oi = 0;
                    while oi < dims.nx {
                        let bx = bs.min(dims.nx - oi);
                        let bd = Dims3::new(bx, by, bz);
                        let c = fit_block(&data, oi, oj, ok, bd);
                        let (reg, lor) = selection_errors(&data, oi, oj, ok, bd, &c);
                        let reg_ref = regression_block_error(&data, oi, oj, ok, bd, &c);
                        let lor_ref = lorenzo3_block_error(&data, oi, oj, ok, bd);
                        assert_eq!(reg.to_bits(), reg_ref.to_bits(), "block ({oi},{oj},{ok})");
                        assert_eq!(lor.to_bits(), lor_ref.to_bits(), "block ({oi},{oj},{ok})");
                        oi += bs;
                    }
                    oj += bs;
                }
                ok += bs;
            }
        }
    }

    #[test]
    fn predict_rows_formulas() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let c = [5.0, 6.0];
        let d = [7.0, 8.0];
        let mut out = [0.0; 2];
        predict_cubic_row(&a, &b, &c, &d, &mut out);
        for i in 0..2 {
            let expect = (-a[i] + 9.0 * b[i] + 9.0 * c[i] - d[i]) / 16.0;
            assert_eq!(out[i].to_bits(), expect.to_bits());
        }
        predict_linear_row(&b, &c, &mut out);
        for i in 0..2 {
            assert_eq!(out[i].to_bits(), (0.5 * (b[i] + c[i])).to_bits());
        }
    }
}
