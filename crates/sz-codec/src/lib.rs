//! # sz-codec — error-bounded lossy compression for scientific floats
//!
//! A from-scratch Rust implementation of the SZ compressor family the
//! AMRIC paper (SC '23) builds on, organized around one public
//! abstraction: the [`codec::Codec`] trait.
//!
//! ## The `Codec` API
//!
//! Every compressor family implements [`codec::Codec`]:
//!
//! * `compress_into(&self, units, &mut out)` — compress a set of unit
//!   blocks, **appending** a self-describing stream to the caller's
//!   buffer (reuse the buffer across calls for the zero-alloc hot path);
//! * `decompress(&self, bytes)` — restore the unit blocks from any
//!   stream the codec produced.
//!
//! All streams share one 8-byte **envelope** (magic, codec id, version,
//! flags — see [`codec`]); a [`codec::CodecRegistry`] dispatches any
//! envelope stream to the right family's decoder. This crate implements
//! three families — [`lr::LrCodec`], [`interp::InterpCodec`], and the
//! cross-snapshot [`temporal::TemporalCodec`] — and the `amric` crate
//! layers the pipeline and the offline comparators (TAC, zMesh, AMReX
//! baseline) on the same trait.
//!
//! Decoders are total over `&[u8]`: malformed input returns a structured
//! [`error::CodecError`] (`Truncated`, `BadMagic`, `BadMode`, …) — never
//! a panic, never an unbounded allocation.
//!
//! ## The families
//!
//! * [`lr`] — **SZ_L/R** (SZ2, Liang et al. 2018): blockwise selection
//!   between the 3-D Lorenzo predictor and per-block linear regression,
//!   linear-scale quantization, canonical Huffman, LZ lossless backend.
//!   Multi-domain calls give the paper's **Shared Lossless Encoding**.
//! * [`interp`] — **SZ_Interp** (SZ3 dynamic spline, Zhao et al. 2021):
//!   global multi-level cubic/linear interpolation prediction.
//! * [`adaptive`] — the paper's adaptive SZ-block-size rule (Equation 1).
//! * [`metrics`] — PSNR (paper formula), MSE, max-error, rate helpers.
//!
//! ```
//! use sz_codec::prelude::*;
//!
//! let mut data = Buffer3::zeros(Dims3::cube(16));
//! data.fill_with(|i, j, k| (i as f64 * 0.3).sin() + (j + k) as f64 * 0.01);
//! let eb = absolute_bound(1e-3, data.value_range());
//!
//! // Trait-level: any family behind the same two calls.
//! let codec = LrCodec::new(LrConfig::new(eb));
//! let mut stream = Vec::new();
//! let info = codec.compress_into(std::slice::from_ref(&data), &mut stream).unwrap();
//! assert_eq!(info.cells, 16 * 16 * 16);
//!
//! // Registry-level: decode without knowing who wrote the stream.
//! let restored = CodecRegistry::sz_only().decompress_auto(&stream).unwrap();
//! let stats = ErrorStats::compare(data.data(), restored[0].data());
//! assert!(stats.max_abs_err <= eb);
//! ```

pub mod adaptive;
pub mod bitstream;
pub mod buffer3;
pub mod codec;
pub mod error;
pub mod huffman;
pub mod interp;
pub mod kernels;
pub mod lorenzo;
pub mod lossless;
pub mod lr;
pub mod metrics;
pub mod quantizer;
pub mod regression;
pub mod temporal;
pub mod wire;

pub use buffer3::{Buffer3, Dims3};
pub use codec::{Codec, CodecId, CodecRegistry, StreamInfo};
pub use error::{CodecError, CodecResult};
pub use metrics::ErrorStats;

/// User-facing error-bound specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|orig − recon| ≤ value`.
    Abs(f64),
    /// Value-range-relative bound: `|orig − recon| ≤ value · (max − min)`,
    /// the mode used throughout the paper's evaluation.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound for data with the given value range.
    /// Constant data (range 0) falls back to the raw relative value — see
    /// [`quantizer::absolute_bound`].
    pub fn to_absolute(self, value_range: f64) -> f64 {
        match self {
            ErrorBound::Abs(v) => v,
            ErrorBound::Rel(v) => quantizer::absolute_bound(v, value_range),
        }
    }
}

/// Which SZ algorithm to run — the paper evaluates AMRIC with both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SzAlgorithm {
    /// Blockwise Lorenzo + regression (SZ2).
    LorenzoRegression,
    /// Global spline interpolation (SZ3).
    Interpolation,
}

/// Commonly used items.
pub mod prelude {
    pub use crate::adaptive::adaptive_block_size;
    pub use crate::buffer3::{Buffer3, Dims3};
    pub use crate::codec::{Codec, CodecId, CodecRegistry, StreamInfo};
    pub use crate::error::{CodecError, CodecResult};
    pub use crate::interp::{self, InterpCodec, InterpConfig};
    pub use crate::lr::{self, LrCodec, LrConfig, LrScratch};
    pub use crate::metrics::{bit_rate, compression_ratio, ErrorStats, RatePoint};
    pub use crate::quantizer::absolute_bound;
    pub use crate::temporal::{self, TemporalCodec, TemporalConfig, TemporalReference};
    pub use crate::{ErrorBound, SzAlgorithm};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bound_resolution() {
        assert_eq!(ErrorBound::Abs(0.5).to_absolute(100.0), 0.5);
        assert_eq!(ErrorBound::Rel(1e-2).to_absolute(100.0), 1.0);
        // Constant data: relative falls back to the raw value.
        assert_eq!(ErrorBound::Rel(1e-2).to_absolute(0.0), 1e-2);
    }
}
