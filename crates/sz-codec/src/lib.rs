//! # sz-codec — error-bounded lossy compression for scientific floats
//!
//! A from-scratch Rust implementation of the SZ compressor family the
//! AMRIC paper (SC '23) builds on:
//!
//! * [`lr`] — **SZ_L/R** (SZ2, Liang et al. 2018): blockwise selection
//!   between the 3-D Lorenzo predictor and per-block linear regression,
//!   linear-scale quantization, canonical Huffman, LZ lossless backend.
//!   Multi-domain calls give the paper's **Shared Lossless Encoding**.
//! * [`interp`] — **SZ_Interp** (SZ3 dynamic spline, Zhao et al. 2021):
//!   global multi-level cubic/linear interpolation prediction.
//! * [`adaptive`] — the paper's adaptive SZ-block-size rule (Equation 1).
//! * [`metrics`] — PSNR (paper formula), MSE, max-error, rate helpers.
//!
//! Every compressed stream is self-describing and the decompressors return
//! `Result`s — corrupted input never panics.
//!
//! ```
//! use sz_codec::prelude::*;
//!
//! let mut data = Buffer3::zeros(Dims3::cube(16));
//! data.fill_with(|i, j, k| (i as f64 * 0.3).sin() + (j + k) as f64 * 0.01);
//! let eb = absolute_bound(1e-3, data.value_range());
//! let stream = lr::compress(&data, &LrConfig::new(eb));
//! let restored = lr::decompress(&stream).unwrap();
//! let stats = ErrorStats::compare(data.data(), restored.data());
//! assert!(stats.max_abs_err <= eb);
//! ```

pub mod adaptive;
pub mod bitstream;
pub mod buffer3;
pub mod huffman;
pub mod interp;
pub mod lorenzo;
pub mod lossless;
pub mod lr;
pub mod metrics;
pub mod quantizer;
pub mod regression;
pub mod wire;

pub use buffer3::{Buffer3, Dims3};
pub use metrics::ErrorStats;

/// User-facing error-bound specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|orig − recon| ≤ value`.
    Abs(f64),
    /// Value-range-relative bound: `|orig − recon| ≤ value · (max − min)`,
    /// the mode used throughout the paper's evaluation.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound for data with the given value range.
    pub fn to_absolute(self, value_range: f64) -> f64 {
        match self {
            ErrorBound::Abs(v) => v,
            ErrorBound::Rel(v) => quantizer::absolute_bound(v, value_range),
        }
    }
}

/// Which SZ algorithm to run — the paper evaluates AMRIC with both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SzAlgorithm {
    /// Blockwise Lorenzo + regression (SZ2).
    LorenzoRegression,
    /// Global spline interpolation (SZ3).
    Interpolation,
}

/// Commonly used items.
pub mod prelude {
    pub use crate::adaptive::adaptive_block_size;
    pub use crate::buffer3::{Buffer3, Dims3};
    pub use crate::interp::{self, InterpConfig};
    pub use crate::lr::{self, LrConfig};
    pub use crate::metrics::{bit_rate, compression_ratio, ErrorStats, RatePoint};
    pub use crate::quantizer::absolute_bound;
    pub use crate::{ErrorBound, SzAlgorithm};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bound_resolution() {
        assert_eq!(ErrorBound::Abs(0.5).to_absolute(100.0), 0.5);
        assert_eq!(ErrorBound::Rel(1e-2).to_absolute(100.0), 1.0);
        // Constant data: relative falls back to the raw value.
        assert_eq!(ErrorBound::Rel(1e-2).to_absolute(0.0), 1e-2);
    }
}
