//! SZ_L/R: the blockwise Lorenzo / linear-regression compressor (SZ2
//! algorithm, Liang et al. 2018), with multi-domain (SLE) support.
//!
//! The compressor partitions each *prediction domain* into `block_size`³
//! blocks. Per block it picks the better of the 3-D Lorenzo predictor
//! (crosses block boundaries via reconstructed neighbours, like SZ2) and a
//! per-block linear regression (coefficients delta-quantized into the
//! stream). Residuals are quantized, Huffman-coded, and the whole payload
//! passes through the LZ lossless stage.
//!
//! **Shared Lossless Encoding (SLE), paper §3.2 Solution 1** falls out of
//! the multi-domain API: [`compress_domains`] predicts every domain (unit
//! block) independently — predictions never cross domain boundaries — but
//! all quantization codes land in one stream under a single shared Huffman
//! tree. Calling it with one merged domain is the paper's "linear merging"
//! (LM) baseline; calling it per-unit with separate invocations is the
//! "compress each box individually" strawman the paper rejects.

use crate::buffer3::{Buffer3, Dims3};
use crate::codec::{
    expect_envelope, total_cells, write_envelope, Codec, CodecId, StreamInfo, FLAG_EMPTY,
};
use crate::huffman;
use crate::kernels;
use crate::lorenzo::lorenzo3;
use crate::lossless;
use crate::quantizer::{Quantizer, OUTLIER_SYMBOL, QUANT_RADIUS};
use crate::regression::{fit_block, CoefficientCodec};
use crate::wire::{CodecError, CodecResult, Reader, Writer};

/// SZ_L/R payload format version (rides in the envelope header).
const VERSION: u8 = 2;

/// Regression is never attempted for blocks with fewer cells than this
/// (coefficient overhead would dominate).
const MIN_REGRESSION_CELLS: usize = 8;

/// Configuration for one SZ_L/R compression call.
#[derive(Clone, Copy, Debug)]
pub struct LrConfig {
    /// Absolute error bound (convert relative bounds with
    /// [`crate::quantizer::absolute_bound`]).
    pub abs_eb: f64,
    /// Edge length of the SZ prediction blocks (6 in stock SZ2; 4 under
    /// the paper's adaptive scheme).
    pub block_size: usize,
}

impl LrConfig {
    /// Stock SZ2 configuration (6³ blocks).
    pub fn new(abs_eb: f64) -> Self {
        LrConfig {
            abs_eb,
            block_size: 6,
        }
    }

    /// Override the SZ block size.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        assert!(bs >= 1);
        self.block_size = bs;
        self
    }
}

/// Stack-allocated per-row symbol/reconstruction scratch: block edges
/// serialize as `u8`, so rows never exceed 255 cells.
const MAX_BLOCK_EDGE: usize = 256;

#[derive(Default)]
struct Streams {
    selection: Vec<bool>,
    data_syms: Vec<u32>,
    data_outliers: Vec<f64>,
    coeff_syms: Vec<u32>,
    coeff_outliers: Vec<f64>,
    /// Fused data-symbol histogram, filled while quantizing (dense over
    /// the `2·QUANT_RADIUS` symbol space) so the entropy stage skips its
    /// counting pass. `freq_touched` tracks the nonzero entries so reset
    /// is O(distinct symbols), not O(65536).
    data_freq: Vec<u64>,
    freq_touched: Vec<u32>,
}

impl Streams {
    fn clear(&mut self) {
        self.selection.clear();
        self.data_syms.clear();
        self.data_outliers.clear();
        self.coeff_syms.clear();
        self.coeff_outliers.clear();
        for &t in &self.freq_touched {
            self.data_freq[t as usize] = 0;
        }
        self.freq_touched.clear();
        self.data_freq.resize(2 * QUANT_RADIUS as usize, 0);
    }

    /// Drain one kernel-produced symbol row into the streams: push raw
    /// values for outlier symbols (row order — the order the scalar path
    /// interleaved them), update the fused histogram, and append the
    /// symbols. The unpredictable-outlier branch lives here, outside the
    /// lane loops.
    #[inline]
    fn drain_row(&mut self, vals: &[f64], syms: &[u32]) {
        for (x, &sym) in syms.iter().enumerate() {
            if sym == OUTLIER_SYMBOL {
                self.data_outliers.push(vals[x]);
            }
            let f = &mut self.data_freq[sym as usize];
            if *f == 0 {
                self.freq_touched.push(sym);
            }
            *f += 1;
        }
        self.data_syms.extend_from_slice(syms);
    }

    /// The sparse `(symbol, count)` histogram of `data_syms`, equal to
    /// `huffman::count_frequencies(&self.data_syms)`.
    fn data_freqs(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .freq_touched
            .iter()
            .map(|&s| (s, self.data_freq[s as usize]))
            .collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        v
    }
}

/// Reusable compression scratch: the quantization-symbol streams and the
/// pre-lossless payload buffer. Hot paths (the in-situ writer encoding one
/// chunk per (rank, level, field)) hold one of these per rank and stop
/// paying per-call allocations for the symbol vectors.
#[derive(Default)]
pub struct LrScratch {
    streams: Streams,
    payload: Vec<u8>,
}

/// Compress a set of prediction domains with one shared encoding (SLE).
/// A single-element slice reproduces plain SZ_L/R on that buffer.
pub fn compress_domains(domains: &[&Buffer3], cfg: &LrConfig) -> Vec<u8> {
    let mut out = Vec::new();
    compress_domains_pooled(domains, cfg, &mut out);
    out
}

thread_local! {
    /// Per-thread (= per-rank) scratch pool backing the `&self` entry
    /// points that cannot hold a scratch of their own.
    static LR_POOL: std::cell::RefCell<LrScratch> = std::cell::RefCell::new(LrScratch::default());
}

/// Like [`compress_domains_into`] but reusing a thread-local scratch —
/// the zero-alloc path for `&self` contexts (`Codec` impls, chunk
/// filters) that cannot thread an explicit [`LrScratch`] through.
pub fn compress_domains_pooled(domains: &[&Buffer3], cfg: &LrConfig, out: &mut Vec<u8>) {
    LR_POOL.with(|s| compress_domains_into(domains, cfg, &mut s.borrow_mut(), out));
}

/// Compress a set of prediction domains with one shared encoding (SLE),
/// **appending** the stream to `out` and reusing `scratch` across calls —
/// the zero-alloc variant of [`compress_domains`].
pub fn compress_domains_into(
    domains: &[&Buffer3],
    cfg: &LrConfig,
    scratch: &mut LrScratch,
    out: &mut Vec<u8>,
) {
    assert!(!domains.is_empty(), "no domains to compress");
    assert!(
        cfg.block_size < MAX_BLOCK_EDGE,
        "block size must fit the u8 stream field"
    );
    scratch.streams.clear();
    let mut coeff_codec = CoefficientCodec::new(cfg.abs_eb, cfg.block_size);
    let q = Quantizer::new(cfg.abs_eb);
    for domain in domains {
        compress_one_domain(domain, cfg, &q, &mut coeff_codec, &mut scratch.streams);
    }
    encode_container(domains, cfg, scratch, out)
}

/// Convenience wrapper: single domain.
pub fn compress(data: &Buffer3, cfg: &LrConfig) -> Vec<u8> {
    compress_domains(&[data], cfg)
}

/// Compress a flat 1-D array (AMReX's baseline compresses box payloads this
/// way); internally a `(n,1,1)` domain, so the Lorenzo stencil degenerates
/// to previous-value prediction.
pub fn compress_1d(data: &[f64], abs_eb: f64) -> Vec<u8> {
    let buf = Buffer3::from_vec(Dims3::new(data.len().max(1), 1, 1), {
        let mut v = data.to_vec();
        if v.is_empty() {
            v.push(0.0);
        }
        v
    });
    compress(
        &buf,
        &LrConfig {
            abs_eb,
            block_size: 6,
        },
    )
}

/// Decompress a stream produced by any of the `compress*` functions.
/// Returns one buffer per prediction domain, in input order.
pub fn decompress_domains(bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
    let env = expect_envelope(bytes, CodecId::LrSle, VERSION)?;
    let payload = lossless::decompress(&bytes[env.payload_offset..])?;
    let mut r = Reader::new(&payload);
    let abs_eb = r.get_f64()?;
    if !(abs_eb > 0.0 && abs_eb.is_finite()) {
        return Err(CodecError::BadParameter {
            what: "error bound",
        });
    }
    let block_size = r.get_u8()? as usize;
    if block_size == 0 {
        return Err(CodecError::BadParameter { what: "block size" });
    }
    let ndomains = r.get_u32()? as usize;
    // Each domain header is 3 × u32; reject counts the stream can't hold.
    r.check_count(ndomains, 12)?;
    let mut dims = Vec::with_capacity(ndomains);
    let mut total_cells: u128 = 0;
    for _ in 0..ndomains {
        let nx = r.get_u32()? as usize;
        let ny = r.get_u32()? as usize;
        let nz = r.get_u32()? as usize;
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(CodecError::dims(format!(
                "degenerate domain dims {nx}x{ny}x{nz}"
            )));
        }
        total_cells += nx as u128 * ny as u128 * nz as u128;
        dims.push(Dims3::new(nx, ny, nz));
    }
    // Every cell consumes at least one bit of the remaining payload, so
    // corrupted dims can't demand more cells than the stream could encode
    // (this also keeps buffer allocations bounded by the input size).
    if total_cells > r.remaining() as u128 * 8 + 64 {
        return Err(CodecError::LimitExceeded {
            what: "domain cells",
            claimed: total_cells,
            available: r.remaining() as u128 * 8 + 64,
        });
    }
    // Selection bitmap.
    let nblocks = r.get_u64()? as usize;
    let sel_bytes = r.get_raw(nblocks.div_ceil(8))?;
    let selection: Vec<bool> = (0..nblocks)
        .map(|i| sel_bytes[i / 8] >> (7 - i % 8) & 1 == 1)
        .collect();
    // Coefficient stream.
    let coeff_syms = huffman::decode_with_table(r.get_block()?)?;
    let n_coeff_out = r.get_u64()? as usize;
    r.check_count(n_coeff_out, 8)?;
    let mut coeff_outliers = Vec::with_capacity(n_coeff_out);
    for _ in 0..n_coeff_out {
        coeff_outliers.push(r.get_f64()?);
    }
    // Data stream.
    let data_syms = huffman::decode_with_table(r.get_block()?)?;
    let n_out = r.get_u64()? as usize;
    r.check_count(n_out, 8)?;
    let mut data_outliers = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        data_outliers.push(r.get_f64()?);
    }

    let cfg = LrConfig { abs_eb, block_size };
    let q = Quantizer::new(abs_eb);
    let mut coeff_codec = CoefficientCodec::new(abs_eb, block_size);
    let mut sel_iter = selection.into_iter();
    let mut sym_iter = data_syms.into_iter();
    let mut out_iter = data_outliers.into_iter();
    let mut csym_iter = coeff_syms.into_iter();
    let mut cout_iter = coeff_outliers.into_iter();
    let mut result = Vec::with_capacity(ndomains);
    for d in dims {
        let buf = decompress_one_domain(
            d,
            &cfg,
            &q,
            &mut coeff_codec,
            &mut sel_iter,
            &mut sym_iter,
            &mut out_iter,
            &mut csym_iter,
            &mut cout_iter,
        )?;
        result.push(buf);
    }
    Ok(result)
}

/// Convenience wrapper: single-domain decompress.
pub fn decompress(bytes: &[u8]) -> CodecResult<Buffer3> {
    let mut v = decompress_domains(bytes)?;
    if v.len() != 1 {
        return Err(CodecError::dims(format!(
            "expected 1 domain, found {}",
            v.len()
        )));
    }
    Ok(v.pop().expect("len checked"))
}

/// Iterate the blocks of a domain in x-fastest block order, yielding
/// `(origin, block_dims)`.
fn blocks_of(dims: Dims3, bs: usize) -> Vec<((usize, usize, usize), Dims3)> {
    let mut out = Vec::new();
    let mut ok = 0;
    while ok < dims.nz {
        let bz = bs.min(dims.nz - ok);
        let mut oj = 0;
        while oj < dims.ny {
            let by = bs.min(dims.ny - oj);
            let mut oi = 0;
            while oi < dims.nx {
                let bx = bs.min(dims.nx - oi);
                out.push(((oi, oj, ok), Dims3::new(bx, by, bz)));
                oi += bs;
            }
            oj += bs;
        }
        ok += bs;
    }
    out
}

fn compress_one_domain(
    data: &Buffer3,
    cfg: &LrConfig,
    q: &Quantizer,
    coeff_codec: &mut CoefficientCodec,
    s: &mut Streams,
) {
    let dims = data.dims();
    let plane = dims.nx * dims.ny;
    let mut recon = Buffer3::zeros(dims);
    // Zero row standing in for out-of-domain stencil neighbours.
    let zeros = vec![0.0f64; cfg.block_size];
    let mut syms_row = [0u32; MAX_BLOCK_EDGE];
    for ((oi, oj, ok), bd) in blocks_of(dims, cfg.block_size) {
        // Predictor selection on the original data (SZ2 style): one fit,
        // then both selection statistics in a single fused sweep while
        // the block is cache-resident.
        let regression = if bd.len() >= MIN_REGRESSION_CELLS {
            let coeffs = fit_block(data, oi, oj, ok, bd);
            let (reg_err, lor_err) = kernels::selection_errors(data, oi, oj, ok, bd, &coeffs);
            (reg_err < lor_err).then_some(coeffs)
        } else {
            None
        };
        s.selection.push(regression.is_some());
        if let Some(coeffs) = regression {
            let qc = coeff_codec.encode(&coeffs, &mut s.coeff_syms, &mut s.coeff_outliers);
            for k in 0..bd.nz {
                let bz = qc.b[2] * k as f64;
                for j in 0..bd.ny {
                    let by = qc.b[1] * j as f64;
                    let base = dims.idx(oi, oj + j, ok + k);
                    let vals = &data.data()[base..base + bd.nx];
                    kernels::quantize_affine_row(
                        q,
                        vals,
                        qc.b0,
                        qc.b[0],
                        by,
                        bz,
                        &mut syms_row[..bd.nx],
                        &mut recon.data_mut()[base..base + bd.nx],
                    );
                    s.drain_row(vals, &syms_row[..bd.nx]);
                }
            }
        } else {
            for k in 0..bd.nz {
                let ka = ok + k;
                for j in 0..bd.ny {
                    let ja = oj + j;
                    let base = dims.idx(oi, ja, ka);
                    let vals = &data.data()[base..base + bd.nx];
                    // All stencil neighbours live strictly before this
                    // row in traversal order, so splitting at the row
                    // start gives aliasing-free read slices.
                    let (head, tail) = recon.data_mut().split_at_mut(base);
                    let jm = if ja > 0 {
                        &head[base - dims.nx..base - dims.nx + bd.nx]
                    } else {
                        &zeros[..bd.nx]
                    };
                    let km = if ka > 0 {
                        &head[base - plane..base - plane + bd.nx]
                    } else {
                        &zeros[..bd.nx]
                    };
                    let jkm = if ja > 0 && ka > 0 {
                        &head[base - plane - dims.nx..base - plane - dims.nx + bd.nx]
                    } else {
                        &zeros[..bd.nx]
                    };
                    let left = if oi > 0 {
                        [
                            head[base - 1],
                            if ja > 0 {
                                head[base - dims.nx - 1]
                            } else {
                                0.0
                            },
                            if ka > 0 { head[base - plane - 1] } else { 0.0 },
                            if ja > 0 && ka > 0 {
                                head[base - plane - dims.nx - 1]
                            } else {
                                0.0
                            },
                        ]
                    } else {
                        [0.0; 4]
                    };
                    kernels::lorenzo_quantize_row(
                        q,
                        vals,
                        jm,
                        km,
                        jkm,
                        left,
                        &mut syms_row[..bd.nx],
                        &mut tail[..bd.nx],
                    );
                    s.drain_row(vals, &syms_row[..bd.nx]);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn decompress_one_domain(
    dims: Dims3,
    cfg: &LrConfig,
    q: &Quantizer,
    coeff_codec: &mut CoefficientCodec,
    sel_iter: &mut impl Iterator<Item = bool>,
    sym_iter: &mut impl Iterator<Item = u32>,
    out_iter: &mut impl Iterator<Item = f64>,
    csym_iter: &mut impl Iterator<Item = u32>,
    cout_iter: &mut impl Iterator<Item = f64>,
) -> CodecResult<Buffer3> {
    let mut recon = Buffer3::zeros(dims);
    let truncated = || CodecError::corrupt("SZ_L/R stream truncated");
    for ((oi, oj, ok), bd) in blocks_of(dims, cfg.block_size) {
        let use_regression = sel_iter.next().ok_or_else(truncated)?;
        if use_regression {
            let qc = coeff_codec.decode(csym_iter, cout_iter)?;
            for k in 0..bd.nz {
                for j in 0..bd.ny {
                    for i in 0..bd.nx {
                        let sym = sym_iter.next().ok_or_else(truncated)?;
                        let v = if sym == OUTLIER_SYMBOL {
                            out_iter.next().ok_or_else(truncated)?
                        } else {
                            // try_reconstruct: a corrupt Huffman table can
                            // smuggle any u32 here — typed error, not
                            // silent garbage.
                            q.try_reconstruct(sym, qc.predict(i, j, k))?
                        };
                        recon.set(oi + i, oj + j, ok + k, v);
                    }
                }
            }
        } else {
            for k in 0..bd.nz {
                for j in 0..bd.ny {
                    for i in 0..bd.nx {
                        let sym = sym_iter.next().ok_or_else(truncated)?;
                        let v = if sym == OUTLIER_SYMBOL {
                            out_iter.next().ok_or_else(truncated)?
                        } else {
                            let pred = lorenzo3(&recon, oi + i, oj + j, ok + k);
                            q.try_reconstruct(sym, pred)?
                        };
                        recon.set(oi + i, oj + j, ok + k, v);
                    }
                }
            }
        }
    }
    Ok(recon)
}

fn encode_container(
    domains: &[&Buffer3],
    cfg: &LrConfig,
    scratch: &mut LrScratch,
    out: &mut Vec<u8>,
) {
    let s = &scratch.streams;
    scratch.payload.clear();
    let mut w = Writer::from_vec(std::mem::take(&mut scratch.payload));
    w.put_f64(cfg.abs_eb);
    w.put_u8(cfg.block_size as u8);
    w.put_u32(domains.len() as u32);
    for d in domains {
        let dims = d.dims();
        w.put_u32(dims.nx as u32);
        w.put_u32(dims.ny as u32);
        w.put_u32(dims.nz as u32);
    }
    w.put_u64(s.selection.len() as u64);
    let mut sel_bytes = vec![0u8; s.selection.len().div_ceil(8)];
    for (i, &b) in s.selection.iter().enumerate() {
        if b {
            sel_bytes[i / 8] |= 1 << (7 - i % 8);
        }
    }
    w.put_raw(&sel_bytes);
    huffman::encode_block_into(&s.coeff_syms, &mut w);
    w.put_u64(s.coeff_outliers.len() as u64);
    for &v in &s.coeff_outliers {
        w.put_f64(v);
    }
    // Fused pass: the histogram was accumulated during quantization, so
    // the entropy stage emits straight into the payload writer with no
    // counting pass and no intermediate encoded buffer.
    huffman::encode_block_with_histogram_into(&s.data_syms, &s.data_freqs(), &mut w);
    w.put_u64(s.data_outliers.len() as u64);
    for &v in &s.data_outliers {
        w.put_f64(v);
    }
    scratch.payload = w.into_bytes();
    let mut env = Writer::from_vec(std::mem::take(out));
    write_envelope(&mut env, CodecId::LrSle, VERSION, 0);
    *out = env.into_bytes();
    lossless::compress_into(&scratch.payload, out);
}

/// [`Codec`] adapter for SZ_L/R with Shared Lossless Encoding: every unit
/// block becomes one prediction domain under a single shared Huffman tree.
#[derive(Clone, Copy, Debug)]
pub struct LrCodec {
    /// The SZ_L/R configuration used for compression (ignored on decode —
    /// streams are self-describing).
    pub cfg: LrConfig,
}

impl LrCodec {
    /// Build from a configuration.
    pub fn new(cfg: LrConfig) -> Self {
        LrCodec { cfg }
    }
}

impl Default for LrCodec {
    /// Decode-capable default (compression uses a 1e-3 absolute bound).
    fn default() -> Self {
        LrCodec::new(LrConfig::new(1e-3))
    }
}

impl Codec for LrCodec {
    fn id(&self) -> CodecId {
        CodecId::LrSle
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        let start = out.len();
        if units.is_empty() {
            let mut w = Writer::from_vec(std::mem::take(out));
            write_envelope(&mut w, CodecId::LrSle, VERSION, FLAG_EMPTY);
            *out = w.into_bytes();
        } else {
            let refs: Vec<&Buffer3> = units.iter().collect();
            compress_domains_pooled(&refs, &self.cfg, out);
        }
        Ok(StreamInfo {
            codec: CodecId::LrSle,
            bytes: out.len() - start,
            units: units.len(),
            cells: total_cells(units),
        })
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        let env = expect_envelope(bytes, CodecId::LrSle, VERSION)?;
        if env.flags & FLAG_EMPTY != 0 {
            return Ok(Vec::new());
        }
        decompress_domains(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorStats;

    fn smooth_cube(n: usize) -> Buffer3 {
        let mut b = Buffer3::zeros(Dims3::cube(n));
        b.fill_with(|i, j, k| {
            let (x, y, z) = (
                i as f64 / n as f64,
                j as f64 / n as f64,
                k as f64 / n as f64,
            );
            (6.0 * x).sin() * (5.0 * y).cos() + 0.5 * (4.0 * z).sin()
        });
        b
    }

    fn rough_cube(n: usize) -> Buffer3 {
        let mut x = 99u64;
        let mut b = Buffer3::zeros(Dims3::cube(n));
        b.fill_with(|i, j, k| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i + j + k) as f64 * 0.05 + noise
        });
        b
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        for data in [smooth_cube(20), rough_cube(20)] {
            for eb in [1e-2, 1e-3, 1e-4] {
                let c = compress(&data, &LrConfig::new(eb));
                let back = decompress(&c).expect("decode");
                let stats = ErrorStats::compare(data.data(), back.data());
                assert!(
                    stats.max_abs_err <= eb * (1.0 + 1e-12),
                    "eb={eb}: max err {}",
                    stats.max_abs_err
                );
            }
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_cube(32);
        let c = compress(&data, &LrConfig::new(1e-3));
        let orig = data.dims().len() * 8;
        assert!(
            c.len() * 8 < orig,
            "CR {} too low",
            orig as f64 / c.len() as f64
        );
        assert!(orig as f64 / c.len() as f64 > 8.0);
    }

    #[test]
    fn non_cubic_dims_roundtrip() {
        let mut b = Buffer3::zeros(Dims3::new(17, 9, 5));
        b.fill_with(|i, j, k| (i * 3 + j * 7 + k * 11) as f64 * 0.01);
        let c = compress(&b, &LrConfig::new(1e-4));
        let back = decompress(&c).expect("decode");
        let stats = ErrorStats::compare(b.data(), back.data());
        assert!(stats.max_abs_err <= 1e-4 * (1.0 + 1e-12));
    }

    #[test]
    fn sle_multi_domain_roundtrip() {
        let units: Vec<Buffer3> = (0..5)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(8));
                b.fill_with(|i, j, k| ((i + j + k) as f64 * 0.1 + u as f64).sin());
                b
            })
            .collect();
        let refs: Vec<&Buffer3> = units.iter().collect();
        let c = compress_domains(&refs, &LrConfig::new(1e-3));
        let back = decompress_domains(&c).expect("decode");
        assert_eq!(back.len(), units.len());
        for (orig, rec) in units.iter().zip(&back) {
            assert_eq!(orig.dims(), rec.dims());
            let stats = ErrorStats::compare(orig.data(), rec.data());
            assert!(stats.max_abs_err <= 1e-3 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn shared_tree_beats_separate_encoding() {
        // SLE's reason to exist: many small blocks with one shared Huffman
        // tree outperform per-block compression calls (paper Challenge 1).
        let units: Vec<Buffer3> = (0..64)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(8));
                b.fill_with(|i, j, k| ((i * 31 + j * 17 + k * 7 + u * 131) % 97) as f64 * 0.013);
                b
            })
            .collect();
        let refs: Vec<&Buffer3> = units.iter().collect();
        let cfg = LrConfig::new(1e-3);
        let shared = compress_domains(&refs, &cfg).len();
        let separate: usize = units.iter().map(|u| compress(u, &cfg).len()).sum();
        assert!(
            shared < separate,
            "SLE ({shared}) should beat per-unit calls ({separate})"
        );
    }

    #[test]
    fn one_dimensional_roundtrip() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.01).sin() * 3.0).collect();
        let c = compress_1d(&data, 1e-3);
        let back = decompress(&c).expect("decode");
        let stats = ErrorStats::compare(&data, back.data());
        assert!(stats.max_abs_err <= 1e-3 * (1.0 + 1e-12));
    }

    #[test]
    fn constant_field_tiny_output() {
        let b = Buffer3::from_vec(Dims3::cube(16), vec![4.2; 4096]);
        let c = compress(&b, &LrConfig::new(1e-6));
        assert!(c.len() < 400, "constant field compressed to {} B", c.len());
        let back = decompress(&c).expect("decode");
        assert!(back.data().iter().all(|&v| (v - 4.2).abs() <= 1e-6));
    }

    #[test]
    fn corrupted_stream_is_error_not_panic() {
        let data = smooth_cube(8);
        let c = compress(&data, &LrConfig::new(1e-3));
        assert!(decompress(&c[..8]).is_err());
        let mut bad = c.clone();
        bad[0] ^= 0xFF;
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn block_partition_covers_domain() {
        let dims = Dims3::new(13, 7, 9);
        let blocks = blocks_of(dims, 6);
        let total: usize = blocks.iter().map(|(_, bd)| bd.len()).sum();
        assert_eq!(total, dims.len());
        // 13 → 6+6+1, 7 → 6+1, 9 → 6+3 ⇒ 3×2×2 blocks.
        assert_eq!(blocks.len(), 12);
    }
}
