//! Cross-snapshot temporal delta coding — the time axis the spatial
//! families don't exploit.
//!
//! AMR simulations emit hundreds of time-coherent snapshots; compressing
//! each independently rediscovers the same structure every step. This
//! family codes each unit block as **residuals against the previous
//! snapshot's decoded values**, spatially predicted by the 3-D Lorenzo
//! stencil over the already-reconstructed residual field — time removes
//! the bulk of the signal, Lorenzo removes the spatial smoothness of
//! what's left. The quantizer bounds the residual error, so the absolute
//! error bound holds on the full values, and because the prediction base
//! is *decoded* (not original) data, quantization error never
//! accumulates across steps. Units whose region changed level or layout
//! under regridding have no usable reference and fall back to a
//! **spatial-only** embedded SZ_L/R stream inside the same envelope.
//!
//! # Stream layout (version 1)
//!
//! ```text
//! envelope(Temporal, 1, flags)            FLAG_EMPTY | FLAG_REFERENCED
//! lossless-compressed payload:
//!   abs_eb        f64
//!   reference_id  u64   (0 when no unit is delta-coded)
//!   nunits        u32
//!   per unit: nx ny nz  u32×3
//!             mode      u8    0 = spatial fallback, 1 = temporal delta
//!             ref_unit  u32   (delta only: index into the reference's units)
//!   spatial block (if any spatial unit): length-prefixed, self-contained
//!             SZ_L/R multi-domain stream over the spatial units in order
//!   delta block (if any delta unit): shared Huffman block of quantization
//!             symbols, then u64 outlier count + raw f64 outliers
//! ```
//!
//! # Decode contract
//!
//! A stream **without** [`FLAG_REFERENCED`] is fully self-contained — any
//! registry holding [`TemporalCodec::decoder`] (the `amric` default
//! registry does) decodes it like any other envelope stream; this is what
//! keeps `decompress_auto` working stream-by-stream on temporal files. A
//! stream **with** the flag needs its reference snapshot installed in the
//! decoder ([`TemporalCodec::decoder_with`]); decoding without one fails
//! with a typed [`CodecError::BadParameter`], and a reference whose id
//! does not match the stream's recorded id is rejected as
//! [`CodecError::Corrupt`] — a forged or mis-resolved reference can never
//! silently reconstruct garbage.

use crate::buffer3::{Buffer3, Dims3};
use crate::codec::{
    expect_envelope, total_cells, write_envelope, Codec, CodecId, StreamInfo, FLAG_EMPTY,
    FLAG_REFERENCED,
};
use crate::huffman;
use crate::lorenzo::lorenzo3;
use crate::lossless;
use crate::lr::{self, LrConfig};
use crate::quantizer::{Quantizer, OUTLIER_SYMBOL};
use crate::wire::{CodecError, CodecResult, Reader, Writer};
use std::sync::Arc;

/// Temporal payload format version (rides in the envelope header).
const VERSION: u8 = 1;

/// Unit coding modes stored per unit in the stream header.
const MODE_SPATIAL: u8 = 0;
const MODE_DELTA: u8 = 1;

/// Configuration for one temporal compression call.
#[derive(Clone, Copy, Debug)]
pub struct TemporalConfig {
    /// Absolute error bound (applies to the full reconstructed values,
    /// not the deltas).
    pub abs_eb: f64,
    /// SZ block size of the embedded spatial fallback stream.
    pub block_size: usize,
}

impl TemporalConfig {
    /// Stock configuration (6³ spatial fallback blocks).
    pub fn new(abs_eb: f64) -> Self {
        TemporalConfig {
            abs_eb,
            block_size: 6,
        }
    }

    /// Override the spatial fallback block size.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        assert!(bs >= 1);
        self.block_size = bs;
        self
    }

    fn spatial(&self) -> LrConfig {
        LrConfig {
            abs_eb: self.abs_eb,
            block_size: self.block_size,
        }
    }
}

/// The decoded state one temporal stream predicts from: an id naming the
/// reference snapshot (the writer's monotone snapshot counter) and the
/// reference's decoded unit blocks, in the order that snapshot's stream
/// held them. Shared via `Arc` — one reference typically serves many
/// streams (every field of a level) without copying.
#[derive(Clone, Debug, Default)]
pub struct TemporalReference {
    /// Snapshot id the units belong to.
    pub id: u64,
    /// Decoded unit blocks of the reference snapshot.
    pub units: Vec<Buffer3>,
}

impl TemporalReference {
    /// Reference over decoded units.
    pub fn new(id: u64, units: Vec<Buffer3>) -> Self {
        TemporalReference { id, units }
    }
}

/// [`Codec`] adapter for temporal delta coding.
///
/// Compression needs a per-unit mapping (`unit_refs[i] = Some(j)` means
/// unit `i` delta-codes against `reference.units[j]`; `None` falls back
/// to spatial). Decompression only needs `reference` — and only for
/// streams carrying [`FLAG_REFERENCED`].
#[derive(Clone, Debug)]
pub struct TemporalCodec {
    /// Compression configuration (ignored on decode — streams are
    /// self-describing).
    pub cfg: TemporalConfig,
    /// Previous snapshot's decoded units, if any.
    pub reference: Option<Arc<TemporalReference>>,
    /// Per-unit reference mapping, index-aligned with the units passed to
    /// `compress_into`. Empty for decode-only instances.
    pub unit_refs: Vec<Option<u32>>,
}

impl TemporalCodec {
    /// Decode-only instance for registries. Decodes any self-contained
    /// (spatial-only) temporal stream; referenced streams fail typed.
    pub fn decoder() -> Self {
        TemporalCodec {
            cfg: TemporalConfig::new(1e-3),
            reference: None,
            unit_refs: Vec::new(),
        }
    }

    /// Decode-only instance with a reference snapshot installed —
    /// registering this in a [`crate::codec::CodecRegistry`] (a later
    /// registration for the same id wins) lets `decompress_auto` resolve
    /// referenced streams too.
    pub fn decoder_with(reference: Arc<TemporalReference>) -> Self {
        TemporalCodec {
            cfg: TemporalConfig::new(1e-3),
            reference: Some(reference),
            unit_refs: Vec::new(),
        }
    }

    /// Compressor with no reference: every unit takes the spatial
    /// fallback (the first snapshot of a series, or a fully regridded
    /// level).
    pub fn spatial(cfg: TemporalConfig) -> Self {
        TemporalCodec {
            cfg,
            reference: None,
            unit_refs: Vec::new(),
        }
    }

    /// Compressor delta-coding against `reference` with the given
    /// per-unit mapping.
    pub fn with_reference(
        cfg: TemporalConfig,
        reference: Arc<TemporalReference>,
        unit_refs: Vec<Option<u32>>,
    ) -> Self {
        TemporalCodec {
            cfg,
            reference: Some(reference),
            unit_refs,
        }
    }

    /// Like [`Codec::compress_into`] but also returns the units **as the
    /// decoder will reconstruct them** — the state a write driver must
    /// retain to serve as the next snapshot's reference without re-reading
    /// its own output.
    pub fn compress_with_state(
        &self,
        units: &[Buffer3],
        out: &mut Vec<u8>,
    ) -> CodecResult<(StreamInfo, Vec<Buffer3>)> {
        let mut state = Vec::with_capacity(units.len());
        let info = self.encode(units, out, Some(&mut state))?;
        Ok((info, state))
    }

    fn encode(
        &self,
        units: &[Buffer3],
        out: &mut Vec<u8>,
        state: Option<&mut Vec<Buffer3>>,
    ) -> CodecResult<StreamInfo> {
        let start = out.len();
        if units.is_empty() {
            let mut w = Writer::from_vec(std::mem::take(out));
            write_envelope(&mut w, CodecId::Temporal, VERSION, FLAG_EMPTY);
            *out = w.into_bytes();
            return Ok(StreamInfo {
                codec: CodecId::Temporal,
                bytes: out.len() - start,
                units: 0,
                cells: 0,
            });
        }
        if !(self.cfg.abs_eb > 0.0 && self.cfg.abs_eb.is_finite()) {
            return Err(CodecError::BadParameter {
                what: "error bound",
            });
        }
        // Resolve the per-unit mapping: an empty `unit_refs` means
        // all-spatial; otherwise it must be index-aligned with `units`
        // and every target must exist with matching dims.
        let refs: Vec<Option<u32>> = if self.unit_refs.is_empty() {
            vec![None; units.len()]
        } else if self.unit_refs.len() == units.len() {
            self.unit_refs.clone()
        } else {
            return Err(CodecError::dims(format!(
                "temporal codec holds {} unit refs for {} units",
                self.unit_refs.len(),
                units.len()
            )));
        };
        let n_delta = refs.iter().filter(|r| r.is_some()).count();
        let reference = match (n_delta, &self.reference) {
            (0, _) => None,
            (_, Some(r)) => Some(r.as_ref()),
            (_, None) => {
                return Err(CodecError::BadParameter {
                    what: "temporal reference (delta units mapped but no reference installed)",
                })
            }
        };
        if let Some(r) = reference {
            for (i, m) in refs.iter().enumerate() {
                if let Some(j) = m {
                    let prev = r.units.get(*j as usize).ok_or_else(|| {
                        CodecError::dims(format!(
                            "unit {i} maps to reference unit {j}, reference holds {}",
                            r.units.len()
                        ))
                    })?;
                    if prev.dims() != units[i].dims() {
                        return Err(CodecError::dims(format!(
                            "unit {i} dims {:?} != reference unit {j} dims {:?}",
                            units[i].dims(),
                            prev.dims()
                        )));
                    }
                }
            }
        }

        // Quantize the delta units; collect the spatial fallbacks.
        let q = Quantizer::new(self.cfg.abs_eb);
        let mut delta_syms: Vec<u32> = Vec::new();
        let mut delta_outliers: Vec<f64> = Vec::new();
        let mut spatial_units: Vec<&Buffer3> = Vec::new();
        // Decoded state in unit order (filled lazily for spatial units
        // after the embedded stream exists).
        let mut decoded: Vec<Option<Buffer3>> = Vec::with_capacity(units.len());
        for (u, m) in units.iter().zip(&refs) {
            match m {
                Some(t) => {
                    let prev = &reference.expect("checked above").units[*t as usize];
                    let d = u.dims();
                    // Residual field r = val − prev, predicted by the 3-D
                    // Lorenzo stencil over already-reconstructed residuals.
                    let mut res = Buffer3::zeros(d);
                    let mut recon = Buffer3::zeros(d);
                    for k in 0..d.nz {
                        for j in 0..d.ny {
                            for i in 0..d.nx {
                                let val = u.get(i, j, k);
                                let pv = prev.get(i, j, k);
                                let pred = lorenzo3(&res, i, j, k);
                                let (sym, rec_r) = q.quantize(val - pv, pred);
                                delta_syms.push(sym);
                                let value = if sym == OUTLIER_SYMBOL {
                                    // Outliers carry the full value so
                                    // they restore bit-exactly.
                                    delta_outliers.push(val);
                                    res.set(i, j, k, val - pv);
                                    val
                                } else {
                                    res.set(i, j, k, rec_r);
                                    pv + rec_r
                                };
                                recon.set(i, j, k, value);
                            }
                        }
                    }
                    decoded.push(Some(recon));
                }
                None => {
                    spatial_units.push(u);
                    decoded.push(None);
                }
            }
        }
        let spatial_stream = if spatial_units.is_empty() {
            Vec::new()
        } else {
            lr::compress_domains(&spatial_units, &self.cfg.spatial())
        };
        if let Some(state) = state {
            // Spatial units reconstruct through the embedded stream —
            // decode what was just written so retained state is exactly
            // what any reader will see.
            let mut spatial_decoded = if spatial_stream.is_empty() {
                Vec::new()
            } else {
                lr::decompress_domains(&spatial_stream)?
            }
            .into_iter();
            for d in decoded {
                state.push(match d {
                    Some(b) => b,
                    None => spatial_decoded.next().ok_or_else(|| {
                        CodecError::corrupt("embedded spatial stream lost a unit")
                    })?,
                });
            }
        }

        // Assemble the payload, envelope it, lossless-wrap it.
        let mut w = Writer::new();
        w.put_f64(self.cfg.abs_eb);
        w.put_u64(if n_delta > 0 {
            reference.expect("checked above").id
        } else {
            0
        });
        w.put_u32(units.len() as u32);
        for (u, m) in units.iter().zip(&refs) {
            let d = u.dims();
            w.put_u32(d.nx as u32);
            w.put_u32(d.ny as u32);
            w.put_u32(d.nz as u32);
            match m {
                None => w.put_u8(MODE_SPATIAL),
                Some(j) => {
                    w.put_u8(MODE_DELTA);
                    w.put_u32(*j);
                }
            }
        }
        if !spatial_units.is_empty() {
            w.put_block(&spatial_stream);
        }
        if n_delta > 0 {
            huffman::encode_block_into(&delta_syms, &mut w);
            w.put_u64(delta_outliers.len() as u64);
            for &v in &delta_outliers {
                w.put_f64(v);
            }
        }
        let payload = w.into_bytes();
        let flags = if n_delta > 0 { FLAG_REFERENCED } else { 0 };
        let mut env = Writer::from_vec(std::mem::take(out));
        write_envelope(&mut env, CodecId::Temporal, VERSION, flags);
        *out = env.into_bytes();
        lossless::compress_into(&payload, out);
        Ok(StreamInfo {
            codec: CodecId::Temporal,
            bytes: out.len() - start,
            units: units.len(),
            cells: total_cells(units),
        })
    }
}

impl Codec for TemporalCodec {
    fn id(&self) -> CodecId {
        CodecId::Temporal
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        self.encode(units, out, None)
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        let env = expect_envelope(bytes, CodecId::Temporal, VERSION)?;
        if env.flags & FLAG_EMPTY != 0 {
            return Ok(Vec::new());
        }
        let payload = lossless::decompress(&bytes[env.payload_offset..])?;
        let mut r = Reader::new(&payload);
        let abs_eb = r.get_f64()?;
        if !(abs_eb > 0.0 && abs_eb.is_finite()) {
            return Err(CodecError::BadParameter {
                what: "error bound",
            });
        }
        let reference_id = r.get_u64()?;
        let nunits = r.get_u32()? as usize;
        // Each unit header is at least 13 bytes (3 × u32 dims + mode).
        r.check_count(nunits, 13)?;
        struct UnitHeader {
            dims: (usize, usize, usize),
            cells: u128,
            ref_unit: Option<u32>,
        }
        let mut headers = Vec::with_capacity(nunits);
        let mut delta_cells: u128 = 0;
        let mut n_spatial = 0usize;
        for _ in 0..nunits {
            let nx = r.get_u32()? as usize;
            let ny = r.get_u32()? as usize;
            let nz = r.get_u32()? as usize;
            if nx == 0 || ny == 0 || nz == 0 {
                return Err(CodecError::dims(format!(
                    "degenerate unit dims {nx}x{ny}x{nz}"
                )));
            }
            let cells = nx as u128 * ny as u128 * nz as u128;
            let ref_unit = match r.get_u8()? {
                MODE_SPATIAL => {
                    n_spatial += 1;
                    None
                }
                MODE_DELTA => {
                    delta_cells += cells;
                    Some(r.get_u32()?)
                }
                other => return Err(CodecError::BadMode { found: other }),
            };
            headers.push(UnitHeader {
                dims: (nx, ny, nz),
                cells,
                ref_unit,
            });
        }
        // Every delta cell consumes at least one Huffman bit of the
        // remaining payload; corrupt headers can't demand more cells than
        // the stream could encode (bounding allocations by input size).
        // Spatial cells are bounded by the embedded stream's own guards.
        if delta_cells > r.remaining() as u128 * 8 + 64 {
            return Err(CodecError::LimitExceeded {
                what: "delta unit cells",
                claimed: delta_cells,
                available: r.remaining() as u128 * 8 + 64,
            });
        }
        let n_delta = nunits - n_spatial;
        let reference = if n_delta > 0 {
            let reference = self.reference.as_ref().ok_or(CodecError::BadParameter {
                what: "temporal reference (stream is delta-coded, none installed)",
            })?;
            if reference.id != reference_id {
                return Err(CodecError::corrupt(format!(
                    "stream references snapshot {reference_id}, decoder holds {}",
                    reference.id
                )));
            }
            Some(reference.as_ref())
        } else {
            None
        };
        // Decode the spatial fallbacks (self-contained embedded stream).
        let mut spatial = if n_spatial > 0 {
            let decoded = lr::decompress_domains(r.get_block()?)?;
            if decoded.len() != n_spatial {
                return Err(CodecError::dims(format!(
                    "embedded spatial stream holds {} units, header says {n_spatial}",
                    decoded.len()
                )));
            }
            decoded
        } else {
            Vec::new()
        }
        .into_iter();
        // Decode the shared delta symbol block.
        let (delta_syms, delta_outliers) = if n_delta > 0 {
            let syms = huffman::decode_with_table(r.get_block()?)?;
            if syms.len() as u128 != delta_cells {
                return Err(CodecError::dims(format!(
                    "delta block holds {} symbols, header demands {delta_cells}",
                    syms.len()
                )));
            }
            let n_out = r.get_u64()? as usize;
            r.check_count(n_out, 8)?;
            let mut outliers = Vec::with_capacity(n_out);
            for _ in 0..n_out {
                outliers.push(r.get_f64()?);
            }
            (syms, outliers)
        } else {
            (Vec::new(), Vec::new())
        };

        let q = Quantizer::new(abs_eb);
        let mut syms = delta_syms.into_iter();
        let mut outliers = delta_outliers.into_iter();
        let exhausted = || CodecError::corrupt("temporal delta stream exhausted");
        let mut out = Vec::with_capacity(nunits);
        for (i, h) in headers.iter().enumerate() {
            let dims = Dims3::new(h.dims.0, h.dims.1, h.dims.2);
            match h.ref_unit {
                None => {
                    let buf = spatial.next().expect("count checked");
                    if buf.dims() != dims {
                        return Err(CodecError::dims(format!(
                            "spatial unit {i} decoded as {:?}, header says {dims:?}",
                            buf.dims()
                        )));
                    }
                    out.push(buf);
                }
                Some(t) => {
                    let rf = reference.expect("n_delta > 0");
                    let prev = rf.units.get(t as usize).ok_or_else(|| {
                        CodecError::corrupt(format!(
                            "unit {i} references unit {t} of snapshot {reference_id}, which holds {}",
                            rf.units.len()
                        ))
                    })?;
                    if prev.dims() != dims {
                        return Err(CodecError::corrupt(format!(
                            "unit {i} dims {dims:?} != reference unit {t} dims {:?}",
                            prev.dims()
                        )));
                    }
                    debug_assert_eq!(h.cells, dims.len() as u128);
                    let mut res = Buffer3::zeros(dims);
                    let mut buf = Buffer3::zeros(dims);
                    for k in 0..dims.nz {
                        for j in 0..dims.ny {
                            for x in 0..dims.nx {
                                let sym = syms.next().ok_or_else(exhausted)?;
                                let pv = prev.get(x, j, k);
                                let value = if sym == OUTLIER_SYMBOL {
                                    let val = outliers.next().ok_or_else(exhausted)?;
                                    res.set(x, j, k, val - pv);
                                    val
                                } else {
                                    let pred = lorenzo3(&res, x, j, k);
                                    let rec_r = q.try_reconstruct(sym, pred)?;
                                    res.set(x, j, k, rec_r);
                                    pv + rec_r
                                };
                                buf.set(x, j, k, value);
                            }
                        }
                    }
                    out.push(buf);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecRegistry;
    use crate::metrics::ErrorStats;

    /// Deterministic per-cell roughness, constant in time — the fine
    /// structure real fields carry that spatial codecs must re-code
    /// every snapshot but temporal deltas never see.
    fn grain(i: usize, j: usize, k: usize) -> f64 {
        let h =
            (i.wrapping_mul(73_856_093) ^ j.wrapping_mul(19_349_663) ^ k.wrapping_mul(83_492_791))
                % 1024;
        h as f64 / 1024.0 - 0.5
    }

    fn snapshot(n: usize, t: f64) -> Vec<Buffer3> {
        (0..4)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(n));
                b.fill_with(|i, j, k| {
                    let (x, y, z) = (
                        i as f64 / n as f64,
                        j as f64 / n as f64,
                        k as f64 / n as f64,
                    );
                    (6.0 * (x + t)).sin() * (5.0 * y).cos()
                        + 0.5 * (4.0 * (z - t)).sin()
                        + 0.05 * grain(i, j, k)
                        + u as f64 * 0.1
                });
                b
            })
            .collect()
    }

    fn all_delta(n: usize) -> Vec<Option<u32>> {
        (0..n as u32).map(Some).collect()
    }

    #[test]
    fn delta_roundtrip_respects_error_bound() {
        let eb = 1e-3;
        let prev = snapshot(10, 0.0);
        let next = snapshot(10, 0.01);
        let reference = Arc::new(TemporalReference::new(7, prev));
        let codec =
            TemporalCodec::with_reference(TemporalConfig::new(eb), reference.clone(), all_delta(4));
        let stream = codec.compress(&next).unwrap();
        let back = codec.decompress(&stream).unwrap();
        assert_eq!(back.len(), 4);
        for (o, r) in next.iter().zip(&back) {
            let stats = ErrorStats::compare(o.data(), r.data());
            assert!(
                stats.max_abs_err <= eb * (1.0 + 1e-12),
                "{}",
                stats.max_abs_err
            );
        }
    }

    #[test]
    fn mixed_spatial_and_delta_roundtrip() {
        let eb = 5e-4;
        let prev = snapshot(8, 0.0);
        let next = snapshot(8, 0.02);
        // Units 1 and 3 regridded away: only 0 and 2 have references.
        let reference = Arc::new(TemporalReference::new(
            3,
            vec![prev[0].clone(), prev[2].clone()],
        ));
        let refs = vec![Some(0), None, Some(1), None];
        let codec = TemporalCodec::with_reference(TemporalConfig::new(eb), reference, refs);
        let stream = codec.compress(&next).unwrap();
        let env = expect_envelope(&stream, CodecId::Temporal, 1).unwrap();
        assert!(env.flags & FLAG_REFERENCED != 0);
        let back = codec.decompress(&stream).unwrap();
        for (o, r) in next.iter().zip(&back) {
            assert_eq!(o.dims(), r.dims());
            let stats = ErrorStats::compare(o.data(), r.data());
            assert!(stats.max_abs_err <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn spatial_only_stream_is_self_contained() {
        let units = snapshot(8, 0.5);
        let codec = TemporalCodec::spatial(TemporalConfig::new(1e-3));
        let stream = codec.compress(&units).unwrap();
        let env = expect_envelope(&stream, CodecId::Temporal, 1).unwrap();
        assert_eq!(env.flags & FLAG_REFERENCED, 0);
        // A bare decoder (no reference) handles it.
        let back = TemporalCodec::decoder().decompress(&stream).unwrap();
        for (o, r) in units.iter().zip(&back) {
            let stats = ErrorStats::compare(o.data(), r.data());
            assert!(stats.max_abs_err <= 1e-3 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn stable_series_beats_per_snapshot_lr() {
        // The family's reason to exist: on a slowly evolving series the
        // delta symbols concentrate near zero and compress far better
        // than re-coding the spatial structure every step.
        let eb = 1e-3;
        let cfg = TemporalConfig::new(eb);
        let mut reference: Option<Arc<TemporalReference>> = None;
        let mut temporal_bytes = 0usize;
        let mut lr_bytes = 0usize;
        for step in 0..4 {
            let units = snapshot(12, step as f64 * 0.005);
            let codec = match &reference {
                None => TemporalCodec::spatial(cfg),
                Some(r) => TemporalCodec::with_reference(cfg, r.clone(), all_delta(4)),
            };
            let mut stream = Vec::new();
            let (info, decoded) = codec.compress_with_state(&units, &mut stream).unwrap();
            assert_eq!(info.units, 4);
            temporal_bytes += stream.len();
            let refs: Vec<&Buffer3> = units.iter().collect();
            lr_bytes += lr::compress_domains(&refs, &LrConfig::new(eb)).len();
            reference = Some(Arc::new(TemporalReference::new(step as u64, decoded)));
        }
        assert!(
            temporal_bytes < lr_bytes,
            "temporal {temporal_bytes} B should beat per-snapshot LR {lr_bytes} B"
        );
    }

    #[test]
    fn state_matches_decoder_output_bitwise() {
        let prev = snapshot(9, 0.0);
        let next = snapshot(9, 0.03);
        let reference = Arc::new(TemporalReference::new(1, prev));
        let refs = vec![Some(0), None, Some(2), Some(3)];
        let codec = TemporalCodec::with_reference(TemporalConfig::new(1e-3), reference, refs);
        let mut stream = Vec::new();
        let (_, state) = codec.compress_with_state(&next, &mut stream).unwrap();
        let back = codec.decompress(&stream).unwrap();
        assert_eq!(state.len(), back.len());
        for (s, b) in state.iter().zip(&back) {
            assert_eq!(s.dims(), b.dims());
            for (x, y) in s.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn registry_dispatches_with_installed_reference() {
        let prev = snapshot(8, 0.0);
        let next = snapshot(8, 0.01);
        let reference = Arc::new(TemporalReference::new(42, prev));
        let codec = TemporalCodec::with_reference(
            TemporalConfig::new(1e-3),
            reference.clone(),
            all_delta(4),
        );
        let stream = codec.compress(&next).unwrap();

        // Bare registry: typed failure naming the missing reference.
        let mut reg = CodecRegistry::sz_only();
        reg.register(Box::new(TemporalCodec::decoder()));
        assert!(matches!(
            reg.decompress_auto(&stream),
            Err(CodecError::BadParameter { .. })
        ));
        // Installing the reference (later registration wins) resolves it,
        // bitwise-identical to the codec's own decode.
        reg.register(Box::new(TemporalCodec::decoder_with(reference)));
        let via_registry = reg.decompress_auto(&stream).unwrap();
        let direct = codec.decompress(&stream).unwrap();
        assert_eq!(via_registry.len(), direct.len());
        for (a, b) in via_registry.iter().zip(&direct) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn forged_reference_id_is_corrupt() {
        let prev = snapshot(8, 0.0);
        let next = snapshot(8, 0.01);
        let reference = Arc::new(TemporalReference::new(5, prev.clone()));
        let codec =
            TemporalCodec::with_reference(TemporalConfig::new(1e-3), reference, all_delta(4));
        let stream = codec.compress(&next).unwrap();
        let wrong = Arc::new(TemporalReference::new(6, prev));
        assert!(matches!(
            TemporalCodec::decoder_with(wrong).decompress(&stream),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_stream_roundtrip() {
        let codec = TemporalCodec::spatial(TemporalConfig::new(1e-3));
        let stream = codec.compress(&[]).unwrap();
        assert_eq!(stream.len(), 8); // bare envelope
        assert_eq!(codec.decompress(&stream).unwrap(), Vec::new());
    }

    #[test]
    fn encode_rejects_bad_mapping() {
        let units = snapshot(8, 0.0);
        let reference = Arc::new(TemporalReference::new(1, snapshot(8, 0.0)));
        // Mapping length mismatch.
        let codec = TemporalCodec::with_reference(
            TemporalConfig::new(1e-3),
            reference.clone(),
            vec![Some(0)],
        );
        assert!(codec.compress(&units).is_err());
        // Out-of-range target.
        let codec = TemporalCodec::with_reference(
            TemporalConfig::new(1e-3),
            reference.clone(),
            vec![Some(9), None, None, None],
        );
        assert!(codec.compress(&units).is_err());
        // Dims mismatch against the reference.
        let small = Arc::new(TemporalReference::new(1, snapshot(4, 0.0)));
        let codec = TemporalCodec::with_reference(TemporalConfig::new(1e-3), small, all_delta(4));
        assert!(codec.compress(&units).is_err());
        // Delta mapping but no reference installed.
        let codec = TemporalCodec {
            cfg: TemporalConfig::new(1e-3),
            reference: None,
            unit_refs: all_delta(4),
        };
        assert!(matches!(
            codec.compress(&units),
            Err(CodecError::BadParameter { .. })
        ));
    }

    #[test]
    fn outliers_roundtrip_exactly() {
        // A reference so far from the data that every delta overflows the
        // quantizer radius: all cells become outliers and must restore
        // bit-exactly.
        let mut a = Buffer3::zeros(Dims3::cube(4));
        a.fill_with(|i, j, k| (i + j + k) as f64);
        let mut b = Buffer3::zeros(Dims3::cube(4));
        b.fill_with(|i, j, k| (i * j * k) as f64 * 1e9 + 0.125);
        let reference = Arc::new(TemporalReference::new(2, vec![a]));
        let codec =
            TemporalCodec::with_reference(TemporalConfig::new(1e-6), reference, vec![Some(0)]);
        let stream = codec.compress(std::slice::from_ref(&b)).unwrap();
        let back = codec.decompress(&stream).unwrap();
        for (x, y) in b.data().iter().zip(back[0].data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
