//! Bit-level writer/reader used by the Huffman coder.
//!
//! Bits are packed MSB-first within each byte, which keeps canonical
//! Huffman codes directly comparable as integers while decoding.

/// Append-only bit writer.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0..8). 0 means the last byte is
    /// full (or the stream is empty).
    used: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the lowest `nbits` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        debug_assert!(nbits == 64 || value < (1u64 << nbits));
        let mut remaining = nbits;
        while remaining > 0 {
            // used == 0 ⇔ the last byte is full (or the stream is empty):
            // start a fresh byte.
            if self.used == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= chunk << (free - take);
            self.used = (self.used + take) % 8;
            remaining -= take;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bytes.is_empty() {
            0
        } else {
            (self.bytes.len() - 1) * 8
                + if self.used == 0 {
                    8
                } else {
                    self.used as usize
                }
        }
    }

    /// Finish and return the packed bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader over a byte slice.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Read one bit. Returns `None` past the end.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u64> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u64)
    }

    /// Read `nbits` bits MSB-first. Returns `None` if the stream is
    /// exhausted first.
    pub fn read_bits(&mut self, nbits: u32) -> Option<u64> {
        debug_assert!(nbits <= 64);
        let mut v = 0u64;
        for _ in 0..nbits {
            v = (v << 1) | self.read_bit()?;
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_aligned() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0xCD, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xAB, 0xCD]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xAB));
        assert_eq!(r.read_bits(8), Some(0xCD));
    }

    #[test]
    fn roundtrip_unaligned() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u32)] = &[(0b101, 3), (0b1, 1), (0x3FF, 10), (0, 2), (0x12345, 17)];
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        assert_eq!(w.bit_len(), 33);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read_bits(n), Some(v), "field {v:#x}/{n}");
        }
    }

    #[test]
    fn read_past_end() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b11000000)); // zero padding readable
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn wide_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        w.write_bits(u64::MAX >> 1, 63);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(1), Some(0));
        assert_eq!(r.read_bits(63), Some(u64::MAX >> 1));
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 9);
    }
}
