//! Adaptive SZ block-size selection (paper §3.2 Solution 2, Equation 1)
//! and the residue-partition geometry of Fig. 8.
//!
//! AMR unit blocks are powers of two; truncating them with SZ's default 6³
//! blocks leaves "flat" (6×6×2), "slim" (6×2×2) and "tiny" (2³) residues
//! that collapse to ≤2-D data and hurt prediction. Equation 1 switches the
//! SZ block size to 4³ whenever the residue would be that degenerate.

use crate::buffer3::Dims3;

/// Paper Equation 1: choose the SZ_L/R block size for a given AMR unit
/// block edge length.
///
/// ```text
/// SZ_BlkSize = 4³  if unitBlkSize mod 6 ≤ 2
///              6³  if unitBlkSize mod 6 > 2
///              6³  if unitBlkSize ≥ 64
/// ```
pub fn adaptive_block_size(unit_block_size: usize) -> usize {
    if unit_block_size >= 64 {
        6
    } else if unit_block_size % 6 <= 2 {
        4
    } else {
        6
    }
}

/// Shape census of the sub-blocks produced by truncating a `unit³` block
/// with `sz³` blocks (Fig. 8). "Degenerate" sub-blocks have at least one
/// extent ≤ 2 — flattened to ≤2-D data in the paper's terminology.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionCensus {
    /// Sub-blocks with all extents > 2 (good 3-D blocks).
    pub full: usize,
    /// Sub-blocks with exactly one extent ≤ 2 ("flat", ~2-D).
    pub flat: usize,
    /// Sub-blocks with exactly two extents ≤ 2 ("slim", ~1-D).
    pub slim: usize,
    /// Sub-blocks with all three extents ≤ 2 ("tiny", ~0-D).
    pub tiny: usize,
}

impl PartitionCensus {
    /// Count sub-block shapes for a cubic unit block of edge `unit` cut by
    /// SZ blocks of edge `sz`.
    pub fn of(unit: usize, sz: usize) -> Self {
        Self::of_dims(Dims3::cube(unit), sz)
    }

    /// Same for an arbitrary-shaped region.
    pub fn of_dims(dims: Dims3, sz: usize) -> Self {
        let pieces = |n: usize| -> Vec<usize> {
            let mut v = Vec::new();
            let mut rem = n;
            while rem > 0 {
                let take = sz.min(rem);
                v.push(take);
                rem -= take;
            }
            v
        };
        let (px, py, pz) = (pieces(dims.nx), pieces(dims.ny), pieces(dims.nz));
        let mut census = PartitionCensus::default();
        for &z in &pz {
            for &y in &py {
                for &x in &px {
                    let degen = [x, y, z].iter().filter(|&&e| e <= 2).count();
                    match degen {
                        0 => census.full += 1,
                        1 => census.flat += 1,
                        2 => census.slim += 1,
                        _ => census.tiny += 1,
                    }
                }
            }
        }
        census
    }

    /// Total sub-blocks.
    pub fn total(&self) -> usize {
        self.full + self.flat + self.slim + self.tiny
    }

    /// Number of degenerate (≤2-D) sub-blocks.
    pub fn degenerate(&self) -> usize {
        self.flat + self.slim + self.tiny
    }

    /// Fraction of *cells* living in degenerate sub-blocks for a cubic
    /// unit of edge `unit` cut by `sz`.
    pub fn degenerate_cell_fraction(unit: usize, sz: usize) -> f64 {
        let mut degen_cells = 0usize;
        let pieces = |n: usize| -> Vec<usize> {
            let mut v = Vec::new();
            let mut rem = n;
            while rem > 0 {
                let take = sz.min(rem);
                v.push(take);
                rem -= take;
            }
            v
        };
        let p = pieces(unit);
        for &z in &p {
            for &y in &p {
                for &x in &p {
                    if x <= 2 || y <= 2 || z <= 2 {
                        degen_cells += x * y * z;
                    }
                }
            }
        }
        degen_cells as f64 / (unit * unit * unit) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one_table() {
        // unit mod 6 ≤ 2 → 4.
        assert_eq!(adaptive_block_size(8), 4); // 8 mod 6 = 2
        assert_eq!(adaptive_block_size(32), 4); // 32 mod 6 = 2
        assert_eq!(adaptive_block_size(12), 4); // 12 mod 6 = 0
        assert_eq!(adaptive_block_size(14), 4); // 14 mod 6 = 2
                                                // unit mod 6 > 2 → 6.
        assert_eq!(adaptive_block_size(16), 6); // 16 mod 6 = 4
        assert_eq!(adaptive_block_size(22), 6); // 22 mod 6 = 4
        assert_eq!(adaptive_block_size(9), 6); // 9 mod 6 = 3
                                               // unit ≥ 64 → 6 regardless.
        assert_eq!(adaptive_block_size(64), 6); // 64 mod 6 = 4 anyway
        assert_eq!(adaptive_block_size(128), 6); // 128 mod 6 = 2 but ≥ 64
        assert_eq!(adaptive_block_size(66), 6);
    }

    #[test]
    fn figure8_census_for_8_cube() {
        // Paper Fig. 8a: an 8³ unit cut by 6³ yields one 6³, three 6×6×2,
        // three 6×2×2 and one 2³.
        let c = PartitionCensus::of(8, 6);
        assert_eq!(
            c,
            PartitionCensus {
                full: 1,
                flat: 3,
                slim: 3,
                tiny: 1
            }
        );
        // Fig. 8b: cutting with 4³ leaves no degenerate residue.
        let c4 = PartitionCensus::of(8, 4);
        assert_eq!(c4.degenerate(), 0);
        assert_eq!(c4.full, 8);
    }

    #[test]
    fn sixteen_cube_has_no_residue_issue() {
        // 16 mod 6 = 4 → residues are 6×6×4 / 6×4×4 / 4³, none degenerate,
        // which is why the paper keeps 6³ for unit=16 (Fig. 7a).
        let c = PartitionCensus::of(16, 6);
        assert_eq!(c.degenerate(), 0);
    }

    #[test]
    fn degenerate_fraction_drives_eq1() {
        // Where Eq. 1 picks 4³ on AMReX's power-of-two unit sizes, the 6³
        // partition wastes a sizable cell fraction in degenerate blocks and
        // the 4³ partition wastes none (paper Fig. 8). For non-power-of-two
        // units 4³ is never worse.
        for unit in [8usize, 32] {
            assert_eq!(adaptive_block_size(unit), 4);
            let f6 = PartitionCensus::degenerate_cell_fraction(unit, 6);
            let f4 = PartitionCensus::degenerate_cell_fraction(unit, 4);
            // 8³ → 1−(6/8)³ ≈ 0.58; 32³ → 1−(30/32)³ ≈ 0.18.
            assert!(f6 > 0.15, "unit {unit}: f6 = {f6}");
            assert_eq!(f4, 0.0, "unit {unit}");
        }
        for unit in [14usize, 20, 26] {
            if adaptive_block_size(unit) == 4 {
                let f6 = PartitionCensus::degenerate_cell_fraction(unit, 6);
                let f4 = PartitionCensus::degenerate_cell_fraction(unit, 4);
                assert!(f4 <= f6, "unit {unit}: f4 {f4} > f6 {f6}");
            }
        }
    }

    #[test]
    fn census_totals() {
        let c = PartitionCensus::of(13, 6);
        // 13 → 6+6+1 per axis ⇒ 27 blocks.
        assert_eq!(c.total(), 27);
        // blocks containing the 1-wide slab are degenerate.
        assert_eq!(c.degenerate(), 27 - 8);
    }
}
