//! Lossless back end: LZ77 (hash-chain match finder) + order-0 byte
//! Huffman.
//!
//! SZ runs Zstd over its Huffman-coded quantization stream; this module is
//! the from-scratch stand-in (see README.md). What matters for the paper's
//! experiments is the *scaling behaviour*: long repeated patterns (runs of
//! the centre quantization code in smooth data) collapse to near-zero size,
//! and encoding efficiency grows with buffer size — which is exactly what
//! makes many small HDF5 chunks lose to one large chunk.

use crate::huffman;
use crate::wire::{CodecError, CodecResult, Reader, Writer};

const MIN_MATCH: usize = 4;
const WINDOW: usize = 1 << 16; // u16 distances
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 48;

/// Compress `data`. The output embeds the original length.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    compress_into(data, &mut out);
    out
}

/// Compress `data`, appending to `out` (the buffer-reusing hot path).
pub fn compress_into(data: &[u8], out: &mut Vec<u8>) {
    let tokens = lz_parse(data);
    let entropy = huffman::encode_with_table(&tokens.iter().map(|&b| b as u32).collect::<Vec<_>>());
    let mut w = Writer::from_vec(std::mem::take(out));
    w.put_u64(data.len() as u64);
    // Keep whichever representation is smaller; raw fallback keeps the
    // worst case bounded (header + data).
    if entropy.len() < tokens.len() {
        w.put_u8(2); // LZ + Huffman
        w.put_block(&entropy);
    } else if tokens.len() < data.len() {
        w.put_u8(1); // LZ only
        w.put_block(&tokens);
    } else {
        w.put_u8(0); // stored
        w.put_block(data);
    }
    *out = w.into_bytes();
}

/// Ceiling on a stream's declared decompressed length. LZ matches expand
/// legitimately without any input-proportional bound (long RLE runs), so
/// a corrupt header can't be caught by comparing against the token count;
/// this cap rejects absurd claims deterministically, far above any
/// payload this workspace produces (whole snapshots are megabytes).
const MAX_DECODE_LEN: usize = 1 << 34; // 16 GiB

/// Decompress a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> CodecResult<Vec<u8>> {
    let mut r = Reader::new(bytes);
    let orig_len = r.get_u64()? as usize;
    if orig_len > MAX_DECODE_LEN {
        return Err(CodecError::LimitExceeded {
            what: "declared length",
            claimed: orig_len as u128,
            available: MAX_DECODE_LEN as u128,
        });
    }
    let mode = r.get_u8()?;
    let payload = r.get_block()?;
    match mode {
        0 => {
            if payload.len() != orig_len {
                return Err(CodecError::corrupt("stored block length mismatch"));
            }
            Ok(payload.to_vec())
        }
        1 => lz_expand(payload, orig_len),
        2 => {
            let tokens = huffman::decode_with_table(payload)?;
            let token_bytes: Vec<u8> = tokens
                .into_iter()
                .map(|t| {
                    u8::try_from(t).map_err(|_| CodecError::corrupt("token out of byte range"))
                })
                .collect::<CodecResult<_>>()?;
            lz_expand(&token_bytes, orig_len)
        }
        m => Err(CodecError::BadMode { found: m }),
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Greedy hash-chain LZ77 parse into the token format:
/// * literal run: control byte `0x00..=0x7F` = run length − 1 (0x7F adds a
///   varint extension), then the literal bytes;
/// * match: control byte `0x80 | (len − MIN_MATCH)` (0x7F extension adds a
///   varint), then a little-endian u16 distance (≥ 1).
fn lz_parse(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    // Insert position p into its hash chain.
    fn insert(data: &[u8], head: &mut [usize], prev: &mut [usize], p: usize) {
        let h = hash4(data, p);
        prev[p] = head[h];
        head[h] = p;
    }
    let hash_limit = data.len().saturating_sub(MIN_MATCH - 1);
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i < hash_limit {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand < WINDOW && chain < MAX_CHAIN {
                let dist = i - cand;
                let limit = data.len() - i;
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &data[lit_start..i]);
            emit_match(&mut out, best_len, best_dist);
            // Register the covered positions so later matches can point
            // into them.
            let end = (i + best_len).min(hash_limit);
            for p in i..end {
                insert(data, &mut head, &mut prev, p);
            }
            i += best_len;
            lit_start = i;
        } else {
            if i < hash_limit {
                insert(data, &mut head, &mut prev, i);
            }
            i += 1;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

fn put_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(r: &mut std::slice::Iter<'_, u8>) -> CodecResult<usize> {
    let mut v = 0usize;
    let mut shift = 0u32;
    loop {
        let b = *r
            .next()
            .ok_or_else(|| CodecError::corrupt("varint truncated"))?;
        v |= ((b & 0x7F) as usize) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 56 {
            return Err(CodecError::corrupt("varint overflow"));
        }
    }
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    if lits.is_empty() {
        return;
    }
    let n = lits.len();
    if n - 1 < 0x7F {
        out.push((n - 1) as u8);
    } else {
        out.push(0x7F);
        put_varint(out, n - 1 - 0x7F);
    }
    out.extend_from_slice(lits);
}

fn emit_match(out: &mut Vec<u8>, len: usize, dist: usize) {
    debug_assert!(len >= MIN_MATCH && (1..WINDOW).contains(&dist));
    let code = len - MIN_MATCH;
    if code < 0x7F {
        out.push(0x80 | code as u8);
    } else {
        out.push(0x80 | 0x7F);
        put_varint(out, code - 0x7F);
    }
    out.extend_from_slice(&(dist as u16).to_le_bytes());
}

fn lz_expand(tokens: &[u8], orig_len: usize) -> CodecResult<Vec<u8>> {
    // Capacity is a hint only: a corrupted `orig_len` must not drive a
    // multi-GB upfront allocation, so cap it; the vec grows as needed for
    // legitimately large (highly repetitive) streams.
    let mut out = Vec::with_capacity(orig_len.min(1 << 24));
    let mut it = tokens.iter();
    while out.len() < orig_len {
        let control = *it
            .next()
            .ok_or_else(|| CodecError::corrupt("token stream truncated"))?;
        if control & 0x80 == 0 {
            let mut n = (control & 0x7F) as usize + 1;
            if control & 0x7F == 0x7F {
                n += get_varint(&mut it)?;
            }
            if n > orig_len - out.len() {
                return Err(CodecError::corrupt("literal run overflows declared length"));
            }
            out.try_reserve(n)
                .map_err(|_| CodecError::corrupt("literal run exceeds available memory"))?;
            for _ in 0..n {
                out.push(
                    *it.next()
                        .ok_or_else(|| CodecError::corrupt("literal run truncated"))?,
                );
            }
        } else {
            let mut len = (control & 0x7F) as usize + MIN_MATCH;
            if control & 0x7F == 0x7F {
                len += get_varint(&mut it)?;
            }
            let lo = *it
                .next()
                .ok_or_else(|| CodecError::corrupt("match dist truncated"))?;
            let hi = *it
                .next()
                .ok_or_else(|| CodecError::corrupt("match dist truncated"))?;
            let dist = u16::from_le_bytes([lo, hi]) as usize;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::corrupt(format!(
                    "bad match distance {dist} at output {}",
                    out.len()
                )));
            }
            if len > orig_len - out.len() {
                return Err(CodecError::corrupt("match overflows declared length"));
            }
            out.try_reserve(len)
                .map_err(|_| CodecError::corrupt("match exceeds available memory"))?;
            // Byte-wise forward copy handles overlapping (RLE-style) matches.
            let start = out.len() - dist;
            for p in 0..len {
                let b = out[start + p];
                out.push(b);
            }
        }
    }
    if out.len() != orig_len {
        return Err(CodecError::corrupt("decompressed length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
        c.len()
    }

    /// Mode-1 bomb payload: one literal byte, then a match with dist 1
    /// and an enormous varint-extended length.
    fn bomb_stream(declared_len: u64) -> Vec<u8> {
        let mut w = crate::wire::Writer::new();
        w.put_u64(declared_len);
        w.put_u8(1);
        let mut tokens = vec![0x00, 0x41]; // literal run of 1 × 'A'
        tokens.push(0x80 | 0x7F); // match, varint-extended length
        tokens.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]); // huge varint
        tokens.extend_from_slice(&1u16.to_le_bytes()); // dist = 1
        w.put_block(&tokens);
        w.into_bytes()
    }

    #[test]
    fn absurd_declared_length_rejected_at_header() {
        // A petabyte claim dies at the MAX_DECODE_LEN ceiling before any
        // token is read.
        assert!(decompress(&bomb_stream(1 << 50)).is_err());
    }

    #[test]
    fn decompression_bomb_rejected_in_expansion() {
        // A claim under the ceiling reaches lz_expand; the huge-varint
        // match (len ≫ declared length) must hit the overflow guard, not
        // expand the output toward the varint value.
        assert!(decompress(&bomb_stream(1 << 30)).is_err());
    }

    #[test]
    fn lying_length_header_rejected() {
        // Declared length larger than the tokens can produce: truncation
        // error, not a hang or giant allocation.
        let mut w = crate::wire::Writer::new();
        w.put_u64(10_000_000);
        w.put_u8(1);
        w.put_block(&[0x00, 0x41]); // a single literal byte
        assert!(decompress(&w.into_bytes()).is_err());
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn short_incompressible() {
        roundtrip(b"a");
        roundtrip(b"abcdefg");
    }

    #[test]
    fn long_zero_run_collapses() {
        let data = vec![0u8; 100_000];
        let n = roundtrip(&data);
        assert!(n < 200, "zero run compressed to {n} bytes");
    }

    #[test]
    fn repeated_pattern() {
        let data: Vec<u8> = (0..50_000)
            .map(|i| ((i % 64) as u8).wrapping_mul(3))
            .collect();
        let n = roundtrip(&data);
        assert!(n < 2_000, "periodic data compressed to {n} bytes");
    }

    #[test]
    fn pseudo_random_does_not_explode() {
        let mut x = 1u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        let n = roundtrip(&data);
        assert!(n <= data.len() + 64, "worst case bounded, got {n}");
    }

    #[test]
    fn mixed_structure() {
        let mut data = Vec::new();
        for i in 0..200 {
            data.extend_from_slice(b"headerheaderheader");
            data.push(i as u8);
            data.extend_from_slice(&(i as u64 * 77).to_le_bytes());
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 2);
    }

    #[test]
    fn bigger_is_denser() {
        // Encoding efficiency must improve with buffer size — the property
        // behind the paper's small-chunk pathology (§2.1).
        let unit: Vec<u8> = (0..1024u32).flat_map(|i| (i % 17).to_le_bytes()).collect();
        let small: usize = unit.chunks(256).map(|c| compress(c).len()).sum();
        let large = compress(&unit).len();
        assert!(
            large < small,
            "one large buffer ({large}) should beat many small ({small})"
        );
    }

    #[test]
    fn corrupt_stream_errors() {
        let c = compress(b"hello world hello world hello world");
        assert!(decompress(&c[..4]).is_err());
        let mut bad = c.clone();
        let last = bad.len() - 1;
        bad.truncate(last);
        // Truncation may or may not break depending on padding; flipping the
        // declared length always must.
        let mut bad2 = c;
        bad2[0] ^= 0xFF;
        assert!(decompress(&bad2).is_err());
    }

    #[test]
    fn long_literal_run_extension() {
        // >128 distinct literals force the varint extension path.
        let data: Vec<u8> = (0..=255u8).chain(0..=255).collect();
        roundtrip(&data);
    }
}
