//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ encodes error-quantization codes (≈2¹⁶ possible bins) with a
//! customized Huffman coder; this is the equivalent. Codes are canonical so
//! the table serializes as (symbol, length) pairs and decoding needs only
//! per-length first-code offsets.

use crate::bitstream::{BitReader, BitWriter};
use crate::wire::{CodecError, CodecResult, Reader, Writer};
use std::collections::BinaryHeap;

/// Maximum admitted code length. Frequencies are flattened and the tree is
/// rebuilt if a longer code appears (pathological skew).
const MAX_CODE_LEN: u32 = 32;

/// A built Huffman code book.
#[derive(Clone, Debug)]
pub struct HuffmanCode {
    /// (symbol, code length) for every used symbol, canonical order.
    lens: Vec<(u32, u32)>,
    /// Dense encode table indexed by symbol: (code, len); len = 0 = unused.
    encode: Vec<(u64, u32)>,
}

impl HuffmanCode {
    /// Build a code book from symbol frequencies. `freqs` maps symbol →
    /// count; zero-count symbols are ignored. Panics if no symbol has a
    /// positive count.
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Self {
        let used: Vec<(u32, u64)> = freqs.iter().copied().filter(|&(_, c)| c > 0).collect();
        assert!(!used.is_empty(), "Huffman build with no symbols");
        let mut shift = 0u32;
        loop {
            let lens = build_lengths(&used, shift);
            if lens.iter().all(|&(_, l)| l <= MAX_CODE_LEN) {
                return Self::from_lengths(lens);
            }
            shift += 4; // flatten frequencies and retry
        }
    }

    /// Build from explicit (symbol, length) pairs (e.g. read from a
    /// stream header). Lengths define canonical codes.
    fn from_lengths(mut lens: Vec<(u32, u32)>) -> Self {
        // Canonical order: by (length, symbol).
        lens.sort_by_key(|&(s, l)| (l, s));
        let max_symbol = lens.iter().map(|&(s, _)| s).max().unwrap_or(0);
        let mut encode = vec![(0u64, 0u32); max_symbol as usize + 1];
        let mut code = 0u64;
        let mut prev_len = 0u32;
        for &(sym, len) in &lens {
            code <<= len - prev_len;
            prev_len = len;
            encode[sym as usize] = (code, len);
            code += 1;
        }
        HuffmanCode { lens, encode }
    }

    /// Encode a symbol sequence into a bit-packed byte vector.
    pub fn encode(&self, symbols: &[u32]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &s in symbols {
            let (code, len) = self.encode[s as usize];
            debug_assert!(len > 0, "symbol {s} not in code book");
            w.write_bits(code, len);
        }
        w.into_bytes()
    }

    /// Mean code length in bits, frequency-weighted by `freqs` — used by
    /// size estimators.
    pub fn mean_bits(&self, freqs: &[(u32, u64)]) -> f64 {
        let mut bits = 0u128;
        let mut count = 0u128;
        for &(s, c) in freqs {
            if c == 0 {
                continue;
            }
            let (_, len) = self.encode[s as usize];
            bits += (len as u128) * c as u128;
            count += c as u128;
        }
        if count == 0 {
            0.0
        } else {
            bits as f64 / count as f64
        }
    }

    /// Decode exactly `n` symbols from the bit stream.
    pub fn decode(&self, bytes: &[u8], n: usize) -> CodecResult<Vec<u32>> {
        // Every symbol costs at least one bit, so a count beyond 8 bits
        // per payload byte can only come from a corrupted header.
        if n as u128 > bytes.len() as u128 * 8 {
            return Err(CodecError::LimitExceeded {
                what: "symbol count",
                claimed: n as u128,
                available: bytes.len() as u128 * 8,
            });
        }
        // Per-length canonical decode tables.
        let max_len = self.lens.last().map(|&(_, l)| l).unwrap_or(0);
        // first_code[len], first_index[len] into self.lens.
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0usize; max_len as usize + 2];
        let mut count = vec![0usize; max_len as usize + 2];
        for &(_, l) in &self.lens {
            count[l as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=max_len as usize {
            code <<= 1;
            first_code[len] = code;
            first_index[len] = index;
            code += count[len] as u64;
            index += count[len];
        }
        let mut out = Vec::with_capacity(n);
        let mut r = BitReader::new(bytes);
        // Single-symbol streams use 1-bit codes; the general path handles it.
        for _ in 0..n {
            let mut code = 0u64;
            let mut len = 0usize;
            loop {
                let bit = r
                    .read_bit()
                    .ok_or_else(|| CodecError::corrupt("huffman stream exhausted"))?;
                code = (code << 1) | bit;
                len += 1;
                if len > max_len as usize {
                    return Err(CodecError::corrupt("invalid huffman code"));
                }
                let rel = code.wrapping_sub(first_code[len]);
                if count[len] > 0 && code >= first_code[len] && (rel as usize) < count[len] {
                    out.push(self.lens[first_index[len] + rel as usize].0);
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Serialize the code book (symbol/length pairs).
    pub fn write_table(&self, w: &mut Writer) {
        w.put_u32(self.lens.len() as u32);
        for &(s, l) in &self.lens {
            w.put_u32(s);
            w.put_u8(l as u8);
        }
    }

    /// Deserialize a code book written by [`HuffmanCode::write_table`].
    pub fn read_table(r: &mut Reader<'_>) -> CodecResult<Self> {
        let n = r.get_u32()? as usize;
        if n == 0 {
            return Err(CodecError::corrupt("empty huffman table"));
        }
        // Each table entry occupies 5 bytes (u32 symbol + u8 length).
        r.check_count(n, 5)?;
        let mut lens = Vec::with_capacity(n);
        for _ in 0..n {
            let s = r.get_u32()?;
            let l = r.get_u8()? as u32;
            if l == 0 || l > MAX_CODE_LEN {
                return Err(CodecError::corrupt(format!("bad code length {l}")));
            }
            lens.push((s, l));
        }
        Ok(Self::from_lengths(lens))
    }

    /// Number of distinct symbols.
    pub fn num_symbols(&self) -> usize {
        self.lens.len()
    }
}

/// Compute code lengths by building the Huffman tree over (possibly
/// flattened) frequencies. `shift` right-shifts counts (then +1) to reduce
/// skew when length limiting is needed.
fn build_lengths(used: &[(u32, u64)], shift: u32) -> Vec<(u32, u32)> {
    if used.len() == 1 {
        return vec![(used[0].0, 1)];
    }
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    // children[id] = (left, right); leaves are ids < used.len().
    let mut children: Vec<(usize, usize)> = Vec::with_capacity(used.len());
    let mut heap = BinaryHeap::with_capacity(used.len());
    for (i, &(_, c)) in used.iter().enumerate() {
        let w = if shift == 0 { c } else { (c >> shift) + 1 };
        heap.push(Node { weight: w, id: i });
    }
    let mut next_id = used.len();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        children.push((a.id, b.id));
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }
    let root = heap.pop().expect("non-empty").id;
    // Depth-first traversal to get leaf depths.
    let mut lens = vec![0u32; used.len()];
    let mut stack = vec![(root, 0u32)];
    while let Some((id, depth)) = stack.pop() {
        if id < used.len() {
            lens[id] = depth.max(1);
        } else {
            let (l, r) = children[id - used.len()];
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
    }
    used.iter()
        .enumerate()
        .map(|(i, &(s, _))| (s, lens[i]))
        .collect()
}

/// Count symbol frequencies of a sequence into the sparse `(symbol, count)`
/// form [`HuffmanCode::from_frequencies`] expects.
pub fn count_frequencies(symbols: &[u32]) -> Vec<(u32, u64)> {
    let mut map = std::collections::HashMap::new();
    for &s in symbols {
        *map.entry(s).or_insert(0u64) += 1;
    }
    let mut v: Vec<(u32, u64)> = map.into_iter().collect();
    v.sort_unstable();
    v
}

/// Convenience: encode `symbols` as `table ‖ bit-length ‖ bitstream`.
pub fn encode_with_table(symbols: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    if symbols.is_empty() {
        w.put_u32(0);
        return w.into_bytes();
    }
    let freqs = count_frequencies(symbols);
    let code = HuffmanCode::from_frequencies(&freqs);
    code.write_table(&mut w);
    w.put_u64(symbols.len() as u64);
    w.put_block(&code.encode(symbols));
    w.into_bytes()
}

/// Inverse of [`encode_with_table`].
pub fn decode_with_table(bytes: &[u8]) -> CodecResult<Vec<u32>> {
    let mut r = Reader::new(bytes);
    // Peek the symbol count; 0 means the empty-stream marker.
    let n_table = {
        let mut peek = Reader::new(bytes);
        peek.get_u32()?
    };
    if n_table == 0 {
        return Ok(Vec::new());
    }
    let code = HuffmanCode::read_table(&mut r)?;
    let n = r.get_u64()? as usize;
    let payload = r.get_block()?;
    code.decode(payload, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let bytes = encode_with_table(symbols);
        let back = decode_with_table(&bytes).expect("decode");
        assert_eq!(back, symbols);
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[]);
    }

    #[test]
    fn single_distinct_symbol() {
        roundtrip(&[42; 1000]);
        // 1000 × 1-bit codes ≈ 125 bytes payload.
        let bytes = encode_with_table(&[42; 1000]);
        assert!(bytes.len() < 160, "single-symbol stream too large");
    }

    #[test]
    fn two_symbols() {
        let mut syms = vec![7u32; 100];
        syms.extend(vec![9u32; 50]);
        roundtrip(&syms);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95 % center symbol → ≈1.3 bits/symbol, far below the 17 bits a
        // flat encoding of 2^16-range codes would need.
        let mut syms = Vec::new();
        for i in 0..10_000u32 {
            syms.push(if i % 20 == 0 { 32768 + (i % 7) } else { 32768 });
        }
        let bytes = encode_with_table(&syms);
        assert!(bytes.len() < 10_000 * 3 / 8 + 200);
        roundtrip(&syms);
    }

    #[test]
    fn many_symbols_roundtrip() {
        // Pseudo-random (LCG) spread over a wide alphabet.
        let mut x = 12345u64;
        let syms: Vec<u32> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 4096) as u32
            })
            .collect();
        roundtrip(&syms);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs: Vec<(u32, u64)> = (0..64u32).map(|s| (s, (s as u64 + 1) * 3)).collect();
        let code = HuffmanCode::from_frequencies(&freqs);
        // Kraft sum must be ≤ 1 and codes distinct.
        let mut kraft = 0.0f64;
        let mut seen = std::collections::HashSet::new();
        for &(s, l) in &code.lens {
            kraft += 2f64.powi(-(l as i32));
            let (c, ll) = code.encode[s as usize];
            assert!(seen.insert((c, ll)));
        }
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
    }

    #[test]
    fn mean_bits_reasonable() {
        let freqs = vec![(0u32, 900u64), (1, 50), (2, 50)];
        let code = HuffmanCode::from_frequencies(&freqs);
        let mb = code.mean_bits(&freqs);
        assert!(mb < 1.3, "mean bits {mb}");
    }

    #[test]
    fn truncated_table_errors() {
        let bytes = encode_with_table(&[1, 2, 3, 1, 2, 3]);
        assert!(decode_with_table(&bytes[..3]).is_err());
    }
}
