//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ encodes error-quantization codes (≈2¹⁶ possible bins) with a
//! customized Huffman coder; this is the equivalent. Codes are canonical so
//! the table serializes as (symbol, length) pairs and decoding needs only
//! per-length first-code offsets.

use crate::bitstream::{BitReader, BitWriter};
use crate::wire::{CodecError, CodecResult, Reader, Writer};
use std::collections::BinaryHeap;

/// Maximum admitted code length. Frequencies are flattened and the tree is
/// rebuilt if a longer code appears (pathological skew).
const MAX_CODE_LEN: u32 = 32;

/// Width of the primary decode lookup table. Every code of length
/// ≤ `DECODE_TABLE_BITS` resolves with one table load; longer codes fall
/// back to the canonical per-length walk. 12 bits ⇒ a 4096-entry table
/// (32 KiB) that stays L1/L2-resident while covering the entire hot
/// symbol mass of quantization streams.
const DECODE_TABLE_BITS: u32 = 12;

/// Below this symbol count the lookup-table build costs more than it
/// saves; decode falls through to the bit-by-bit reference walk.
const DECODE_TABLE_MIN_SYMBOLS: usize = 64;

/// A built Huffman code book.
#[derive(Clone, Debug)]
pub struct HuffmanCode {
    /// (symbol, code length) for every used symbol, canonical order.
    lens: Vec<(u32, u32)>,
    /// Dense encode table indexed by symbol: (code, len); len = 0 = unused.
    encode: Vec<(u64, u32)>,
}

impl HuffmanCode {
    /// Build a code book from symbol frequencies. `freqs` maps symbol →
    /// count; zero-count symbols are ignored. Panics if no symbol has a
    /// positive count.
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Self {
        let used: Vec<(u32, u64)> = freqs.iter().copied().filter(|&(_, c)| c > 0).collect();
        assert!(!used.is_empty(), "Huffman build with no symbols");
        let mut shift = 0u32;
        loop {
            let lens = build_lengths(&used, shift);
            if lens.iter().all(|&(_, l)| l <= MAX_CODE_LEN) {
                return Self::from_lengths(lens);
            }
            shift += 4; // flatten frequencies and retry
        }
    }

    /// Build from explicit (symbol, length) pairs (e.g. read from a
    /// stream header). Lengths define canonical codes.
    fn from_lengths(mut lens: Vec<(u32, u32)>) -> Self {
        // Canonical order: by (length, symbol).
        lens.sort_by_key(|&(s, l)| (l, s));
        let max_symbol = lens.iter().map(|&(s, _)| s).max().unwrap_or(0);
        let mut encode = vec![(0u64, 0u32); max_symbol as usize + 1];
        let mut code = 0u64;
        let mut prev_len = 0u32;
        for &(sym, len) in &lens {
            code <<= len - prev_len;
            prev_len = len;
            encode[sym as usize] = (code, len);
            code += 1;
        }
        HuffmanCode { lens, encode }
    }

    /// Encode a symbol sequence into a bit-packed byte vector.
    pub fn encode(&self, symbols: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(symbols, &mut out);
        out
    }

    /// Append the bit-packed encoding of `symbols` to `out` through a
    /// 64-bit accumulator (one shift+or per symbol, one store per byte)
    /// instead of the per-bit [`BitWriter`] loop. Byte-identical to
    /// [`HuffmanCode::encode_reference`].
    pub fn encode_into(&self, symbols: &[u32], out: &mut Vec<u8>) {
        // Valid bits live in acc[0, nbits); after the drain loop nbits ≤ 7,
        // so `acc << len` with len ≤ MAX_CODE_LEN = 32 never overflows.
        // Stale bits above the valid region are cut by the `as u8` casts.
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &s in symbols {
            let (code, len) = self.encode[s as usize];
            debug_assert!(len > 0, "symbol {s} not in code book");
            acc = (acc << len) | code;
            nbits += len;
            while nbits >= 8 {
                nbits -= 8;
                out.push((acc >> nbits) as u8);
            }
        }
        if nbits > 0 {
            out.push((acc << (8 - nbits)) as u8);
        }
    }

    /// The original per-bit encode loop, kept as the equivalence oracle
    /// and the "before" series of the kernel benches.
    pub fn encode_reference(&self, symbols: &[u32]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &s in symbols {
            let (code, len) = self.encode[s as usize];
            debug_assert!(len > 0, "symbol {s} not in code book");
            w.write_bits(code, len);
        }
        w.into_bytes()
    }

    /// Code length in bits for `sym`; 0 when the symbol is not in the book.
    fn code_len(&self, sym: u32) -> u32 {
        self.encode.get(sym as usize).map(|&(_, l)| l).unwrap_or(0)
    }

    /// Mean code length in bits, frequency-weighted by `freqs` — used by
    /// size estimators.
    pub fn mean_bits(&self, freqs: &[(u32, u64)]) -> f64 {
        let mut bits = 0u128;
        let mut count = 0u128;
        for &(s, c) in freqs {
            if c == 0 {
                continue;
            }
            let (_, len) = self.encode[s as usize];
            bits += (len as u128) * c as u128;
            count += c as u128;
        }
        if count == 0 {
            0.0
        } else {
            bits as f64 / count as f64
        }
    }

    /// Decode exactly `n` symbols from the bit stream.
    ///
    /// Table-driven: codes of length ≤ `DECODE_TABLE_BITS` resolve with
    /// a single lookup on the next 12 peeked bits; longer codes continue
    /// the canonical per-length walk from the peeked prefix, and the final
    /// few bytes fall back to the bit-by-bit walk so end-of-stream
    /// handling matches [`HuffmanCode::decode_reference`] exactly. Because
    /// the code is prefix-free, the table lookup selects the same unique
    /// code the reference walk finds, so results (including the typed
    /// errors on truncated or invalid streams) are identical.
    pub fn decode(&self, bytes: &[u8], n: usize) -> CodecResult<Vec<u32>> {
        // Every symbol costs at least one bit, so a count beyond 8 bits
        // per payload byte can only come from a corrupted header.
        if n as u128 > bytes.len() as u128 * 8 {
            return Err(CodecError::LimitExceeded {
                what: "symbol count",
                claimed: n as u128,
                available: bytes.len() as u128 * 8,
            });
        }
        if n < DECODE_TABLE_MIN_SYMBOLS || self.lens.is_empty() {
            return self.decode_reference(bytes, n);
        }
        let canon = Canonical::build(&self.lens);
        let max_len = canon.max_len;
        let tb = DECODE_TABLE_BITS.min(max_len as u32);
        // lut[next tb bits] = (symbol, code length); length 0 = long code.
        // Canonical codes are assigned in (length, symbol) order, so every
        // slot sharing a code's prefix is filled exactly once.
        let mut lut = vec![(0u32, 0u8); 1usize << tb];
        {
            let mut code = 0u64;
            let mut prev_len = 0u32;
            for &(sym, len) in &self.lens {
                code <<= len - prev_len;
                prev_len = len;
                if len <= tb {
                    // A forged table can over-subscribe the code space
                    // (Kraft sum > 1), spilling the canonical assignment
                    // past `len` bits and off the end of the LUT. The
                    // reference walk is total over such tables and is
                    // this decoder's behavioural contract, so defer to
                    // it rather than index out of range.
                    if code >> len != 0 {
                        return self.decode_reference(bytes, n);
                    }
                    let base = (code << (tb - len)) as usize;
                    for e in &mut lut[base..base + (1usize << (tb - len))] {
                        *e = (sym, len as u8);
                    }
                }
                code += 1;
            }
        }
        let total_bits = bytes.len() * 8;
        let mut out = Vec::with_capacity(n);
        // Persistent bit buffer: the next unconsumed bits sit left-aligned
        // in `buf` (`nbits` of them valid), refilled a byte at a time from
        // `byte_pos`. Peeking `tb` bits is then one shift per symbol
        // instead of a fresh unaligned load + byte-swap, and the refill
        // amortizes to one load per ~7 decoded-code bytes.
        let mut buf: u64 = 0;
        let mut nbits: u32 = 0;
        let mut byte_pos = 0usize;
        while out.len() < n {
            while nbits <= 56 && byte_pos < bytes.len() {
                buf |= (bytes[byte_pos] as u64) << (56 - nbits);
                nbits += 8;
                byte_pos += 1;
            }
            if nbits >= tb {
                let idx = (buf >> (64 - tb)) as usize;
                let (sym, hit_len) = lut[idx];
                if hit_len != 0 {
                    out.push(sym);
                    buf <<= hit_len;
                    nbits -= hit_len as u32;
                    continue;
                }
                // No code of length ≤ tb matches the peeked bits: resume
                // the canonical walk on the raw stream with those tb bits
                // already consumed, then re-sync the buffer. Long codes
                // are rare by construction, so the re-sync cost is noise.
                let pos = byte_pos * 8 - nbits as usize;
                let (sym, new_pos) =
                    self.walk_one(bytes, total_bits, pos + tb as usize, idx as u64, tb, &canon)?;
                out.push(sym);
                byte_pos = new_pos.div_ceil(8);
                nbits = (byte_pos * 8 - new_pos) as u32;
                buf = if nbits == 0 {
                    0
                } else {
                    (bytes[byte_pos - 1] as u64) << (56 + (8 - nbits))
                };
            } else {
                // Fewer than `tb` buffered bits and the stream is drained:
                // exact reference bit-by-bit walk for the tail symbols.
                let pos = byte_pos * 8 - nbits as usize;
                let (sym, new_pos) = self.walk_one(bytes, total_bits, pos, 0, 0, &canon)?;
                out.push(sym);
                byte_pos = new_pos.div_ceil(8);
                nbits = (byte_pos * 8 - new_pos) as u32;
                buf = if nbits == 0 {
                    0
                } else {
                    (bytes[byte_pos - 1] as u64) << (56 + (8 - nbits))
                };
            }
        }
        Ok(out)
    }

    /// One symbol of the canonical bit-by-bit walk, starting `len0` bits
    /// into a code whose prefix is `code0`. Bit-for-bit the reference
    /// decode loop, including the order of the exhausted/invalid checks.
    fn walk_one(
        &self,
        bytes: &[u8],
        total_bits: usize,
        mut pos: usize,
        code0: u64,
        len0: u32,
        canon: &Canonical,
    ) -> CodecResult<(u32, usize)> {
        let mut code = code0;
        let mut len = len0 as usize;
        loop {
            if pos >= total_bits {
                return Err(CodecError::corrupt("huffman stream exhausted"));
            }
            let bit = ((bytes[pos >> 3] >> (7 - (pos & 7))) & 1) as u64;
            pos += 1;
            code = (code << 1) | bit;
            len += 1;
            if len > canon.max_len {
                return Err(CodecError::corrupt("invalid huffman code"));
            }
            let rel = code.wrapping_sub(canon.first_code[len]);
            if canon.count[len] > 0
                && code >= canon.first_code[len]
                && (rel as usize) < canon.count[len]
            {
                return Ok((self.lens[canon.first_index[len] + rel as usize].0, pos));
            }
        }
    }

    /// The original bit-by-bit decode loop, kept verbatim as the
    /// equivalence oracle and the "before" series of the kernel benches.
    pub fn decode_reference(&self, bytes: &[u8], n: usize) -> CodecResult<Vec<u32>> {
        if n as u128 > bytes.len() as u128 * 8 {
            return Err(CodecError::LimitExceeded {
                what: "symbol count",
                claimed: n as u128,
                available: bytes.len() as u128 * 8,
            });
        }
        // Per-length canonical decode tables.
        let max_len = self.lens.last().map(|&(_, l)| l).unwrap_or(0);
        // first_code[len], first_index[len] into self.lens.
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0usize; max_len as usize + 2];
        let mut count = vec![0usize; max_len as usize + 2];
        for &(_, l) in &self.lens {
            count[l as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=max_len as usize {
            code <<= 1;
            first_code[len] = code;
            first_index[len] = index;
            code += count[len] as u64;
            index += count[len];
        }
        let mut out = Vec::with_capacity(n);
        let mut r = BitReader::new(bytes);
        // Single-symbol streams use 1-bit codes; the general path handles it.
        for _ in 0..n {
            let mut code = 0u64;
            let mut len = 0usize;
            loop {
                let bit = r
                    .read_bit()
                    .ok_or_else(|| CodecError::corrupt("huffman stream exhausted"))?;
                code = (code << 1) | bit;
                len += 1;
                if len > max_len as usize {
                    return Err(CodecError::corrupt("invalid huffman code"));
                }
                let rel = code.wrapping_sub(first_code[len]);
                if count[len] > 0 && code >= first_code[len] && (rel as usize) < count[len] {
                    out.push(self.lens[first_index[len] + rel as usize].0);
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Serialize the code book (symbol/length pairs).
    pub fn write_table(&self, w: &mut Writer) {
        w.put_u32(self.lens.len() as u32);
        for &(s, l) in &self.lens {
            w.put_u32(s);
            w.put_u8(l as u8);
        }
    }

    /// Deserialize a code book written by [`HuffmanCode::write_table`].
    pub fn read_table(r: &mut Reader<'_>) -> CodecResult<Self> {
        let n = r.get_u32()? as usize;
        if n == 0 {
            return Err(CodecError::corrupt("empty huffman table"));
        }
        // Each table entry occupies 5 bytes (u32 symbol + u8 length).
        r.check_count(n, 5)?;
        let mut lens = Vec::with_capacity(n);
        for _ in 0..n {
            let s = r.get_u32()?;
            let l = r.get_u8()? as u32;
            if l == 0 || l > MAX_CODE_LEN {
                return Err(CodecError::corrupt(format!("bad code length {l}")));
            }
            lens.push((s, l));
        }
        Ok(Self::from_lengths(lens))
    }

    /// Number of distinct symbols.
    pub fn num_symbols(&self) -> usize {
        self.lens.len()
    }
}

/// Per-length canonical decode arrays shared by the table decoder's slow
/// paths: `first_code[len]` / `first_index[len]` into the canonical
/// (length, symbol)-ordered code list, `count[len]` codes per length.
struct Canonical {
    max_len: usize,
    first_code: Vec<u64>,
    first_index: Vec<usize>,
    count: Vec<usize>,
}

impl Canonical {
    fn build(lens: &[(u32, u32)]) -> Self {
        let max_len = lens.last().map(|&(_, l)| l).unwrap_or(0) as usize;
        let mut first_code = vec![0u64; max_len + 2];
        let mut first_index = vec![0usize; max_len + 2];
        let mut count = vec![0usize; max_len + 2];
        for &(_, l) in lens {
            count[l as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=max_len {
            code <<= 1;
            first_code[len] = code;
            first_index[len] = index;
            code += count[len] as u64;
            index += count[len];
        }
        Canonical {
            max_len,
            first_code,
            first_index,
            count,
        }
    }
}

/// Compute code lengths by building the Huffman tree over (possibly
/// flattened) frequencies. `shift` right-shifts counts (then +1) to reduce
/// skew when length limiting is needed.
fn build_lengths(used: &[(u32, u64)], shift: u32) -> Vec<(u32, u32)> {
    if used.len() == 1 {
        return vec![(used[0].0, 1)];
    }
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    // children[id] = (left, right); leaves are ids < used.len().
    let mut children: Vec<(usize, usize)> = Vec::with_capacity(used.len());
    let mut heap = BinaryHeap::with_capacity(used.len());
    for (i, &(_, c)) in used.iter().enumerate() {
        let w = if shift == 0 { c } else { (c >> shift) + 1 };
        heap.push(Node { weight: w, id: i });
    }
    let mut next_id = used.len();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        children.push((a.id, b.id));
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }
    let root = heap.pop().expect("non-empty").id;
    // Depth-first traversal to get leaf depths.
    let mut lens = vec![0u32; used.len()];
    let mut stack = vec![(root, 0u32)];
    while let Some((id, depth)) = stack.pop() {
        if id < used.len() {
            lens[id] = depth.max(1);
        } else {
            let (l, r) = children[id - used.len()];
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
    }
    used.iter()
        .enumerate()
        .map(|(i, &(s, _))| (s, lens[i]))
        .collect()
}

/// Alphabets up to this bound are counted with a dense histogram; larger
/// symbols fall back to the HashMap path. Quantization symbols are
/// `< 2·QUANT_RADIUS = 2¹⁶`, well inside the bound.
const DENSE_HISTOGRAM_MAX: usize = 1 << 17;

/// Count symbol frequencies of a sequence into the sparse `(symbol, count)`
/// form [`HuffmanCode::from_frequencies`] expects.
///
/// Dense-histogram fast path: one pass bounds the alphabet, one pass
/// counts into a flat array, and the symbol-ascending sweep yields the
/// same sorted output the HashMap reference produces.
pub fn count_frequencies(symbols: &[u32]) -> Vec<(u32, u64)> {
    let max = match symbols.iter().copied().max() {
        Some(m) => m,
        None => return Vec::new(),
    };
    if (max as usize) >= DENSE_HISTOGRAM_MAX {
        return count_frequencies_reference(symbols);
    }
    let mut hist = vec![0u64; max as usize + 1];
    for &s in symbols {
        hist[s as usize] += 1;
    }
    hist.iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(s, &c)| (s as u32, c))
        .collect()
}

/// HashMap-based frequency count: the general-alphabet fallback, the
/// equivalence oracle, and the "before" series of the kernel benches.
pub fn count_frequencies_reference(symbols: &[u32]) -> Vec<(u32, u64)> {
    let mut map = std::collections::HashMap::new();
    for &s in symbols {
        *map.entry(s).or_insert(0u64) += 1;
    }
    let mut v: Vec<(u32, u64)> = map.into_iter().collect();
    v.sort_unstable();
    v
}

/// Convenience: encode `symbols` as `table ‖ count ‖ bit-length ‖
/// bitstream`.
pub fn encode_with_table(symbols: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    encode_with_table_into(symbols, &mut w);
    w.into_bytes()
}

/// Streaming form of [`encode_with_table`]: appends the encoded block
/// directly to `w`, skipping the intermediate encoded buffer.
/// Byte-identical output.
pub fn encode_with_table_into(symbols: &[u32], w: &mut Writer) {
    if symbols.is_empty() {
        w.put_u32(0);
        return;
    }
    let freqs = count_frequencies(symbols);
    encode_with_histogram_into(symbols, &freqs, w);
}

/// Fused-pass entry point: the caller already histogrammed `symbols`
/// (e.g. while quantizing), so the counting pass is skipped and the
/// payload length prefix is computed from the histogram up front —
/// `Σ len(s)·freq(s)` — letting the bit packer emit straight into `w`.
///
/// `freqs` must be the exact sorted histogram [`count_frequencies`] would
/// produce for `symbols`.
pub fn encode_with_histogram_into(symbols: &[u32], freqs: &[(u32, u64)], w: &mut Writer) {
    if symbols.is_empty() {
        w.put_u32(0);
        return;
    }
    let code = HuffmanCode::from_frequencies(freqs);
    code.write_table(w);
    w.put_u64(symbols.len() as u64);
    let total_bits: u64 = freqs
        .iter()
        .map(|&(s, c)| code.code_len(s) as u64 * c)
        .sum();
    w.put_u64(total_bits.div_ceil(8));
    let before = w.buf_mut().len();
    code.encode_into(symbols, w.buf_mut());
    debug_assert_eq!(
        (w.buf_mut().len() - before) as u64,
        total_bits.div_ceil(8),
        "histogram does not match symbol stream"
    );
}

/// Append `w.put_block(&encode_with_table(symbols))`-equivalent bytes
/// without materializing the inner block: the outer length prefix is
/// computed from the histogram up front (table bytes + count + length
/// prefix + `⌈Σ len(s)·freq(s) / 8⌉` payload bytes), then the table and
/// bit stream are emitted straight into `w`. Byte-identical output.
pub fn encode_block_with_histogram_into(symbols: &[u32], freqs: &[(u32, u64)], w: &mut Writer) {
    if symbols.is_empty() {
        // Empty marker block: u64 length 4 + the zero table count.
        w.put_u64(4);
        w.put_u32(0);
        return;
    }
    let code = HuffmanCode::from_frequencies(freqs);
    let total_bits: u64 = freqs
        .iter()
        .map(|&(s, c)| code.code_len(s) as u64 * c)
        .sum();
    let payload_bytes = total_bits.div_ceil(8);
    let table_bytes = 4 + 5 * code.lens.len() as u64;
    w.put_u64(table_bytes + 8 + 8 + payload_bytes);
    code.write_table(w);
    w.put_u64(symbols.len() as u64);
    w.put_u64(payload_bytes);
    let before = w.buf_mut().len();
    code.encode_into(symbols, w.buf_mut());
    debug_assert_eq!(
        (w.buf_mut().len() - before) as u64,
        payload_bytes,
        "histogram does not match symbol stream"
    );
}

/// [`encode_block_with_histogram_into`] with the histogram computed here.
pub fn encode_block_into(symbols: &[u32], w: &mut Writer) {
    let freqs = count_frequencies(symbols);
    encode_block_with_histogram_into(symbols, &freqs, w);
}

/// The original buffer-building encode path (HashMap count, per-bit
/// writer, intermediate payload vector), kept as the "before" series of
/// the kernel benches.
pub fn encode_with_table_reference(symbols: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    if symbols.is_empty() {
        w.put_u32(0);
        return w.into_bytes();
    }
    let freqs = count_frequencies_reference(symbols);
    let code = HuffmanCode::from_frequencies(&freqs);
    code.write_table(&mut w);
    w.put_u64(symbols.len() as u64);
    w.put_block(&code.encode_reference(symbols));
    w.into_bytes()
}

/// Inverse of [`encode_with_table`].
pub fn decode_with_table(bytes: &[u8]) -> CodecResult<Vec<u32>> {
    let mut r = Reader::new(bytes);
    // Peek the symbol count; 0 means the empty-stream marker.
    let n_table = {
        let mut peek = Reader::new(bytes);
        peek.get_u32()?
    };
    if n_table == 0 {
        return Ok(Vec::new());
    }
    let code = HuffmanCode::read_table(&mut r)?;
    let n = r.get_u64()? as usize;
    let payload = r.get_block()?;
    code.decode(payload, n)
}

/// [`decode_with_table`] through the bit-by-bit reference decoder — the
/// "before" series of the kernel benches.
pub fn decode_with_table_reference(bytes: &[u8]) -> CodecResult<Vec<u32>> {
    let mut r = Reader::new(bytes);
    let n_table = {
        let mut peek = Reader::new(bytes);
        peek.get_u32()?
    };
    if n_table == 0 {
        return Ok(Vec::new());
    }
    let code = HuffmanCode::read_table(&mut r)?;
    let n = r.get_u64()? as usize;
    let payload = r.get_block()?;
    code.decode_reference(payload, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let bytes = encode_with_table(symbols);
        let back = decode_with_table(&bytes).expect("decode");
        assert_eq!(back, symbols);
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[]);
    }

    #[test]
    fn single_distinct_symbol() {
        roundtrip(&[42; 1000]);
        // 1000 × 1-bit codes ≈ 125 bytes payload.
        let bytes = encode_with_table(&[42; 1000]);
        assert!(bytes.len() < 160, "single-symbol stream too large");
    }

    #[test]
    fn two_symbols() {
        let mut syms = vec![7u32; 100];
        syms.extend(vec![9u32; 50]);
        roundtrip(&syms);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95 % center symbol → ≈1.3 bits/symbol, far below the 17 bits a
        // flat encoding of 2^16-range codes would need.
        let mut syms = Vec::new();
        for i in 0..10_000u32 {
            syms.push(if i % 20 == 0 { 32768 + (i % 7) } else { 32768 });
        }
        let bytes = encode_with_table(&syms);
        assert!(bytes.len() < 10_000 * 3 / 8 + 200);
        roundtrip(&syms);
    }

    #[test]
    fn many_symbols_roundtrip() {
        // Pseudo-random (LCG) spread over a wide alphabet.
        let mut x = 12345u64;
        let syms: Vec<u32> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 4096) as u32
            })
            .collect();
        roundtrip(&syms);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs: Vec<(u32, u64)> = (0..64u32).map(|s| (s, (s as u64 + 1) * 3)).collect();
        let code = HuffmanCode::from_frequencies(&freqs);
        // Kraft sum must be ≤ 1 and codes distinct.
        let mut kraft = 0.0f64;
        let mut seen = std::collections::HashSet::new();
        for &(s, l) in &code.lens {
            kraft += 2f64.powi(-(l as i32));
            let (c, ll) = code.encode[s as usize];
            assert!(seen.insert((c, ll)));
        }
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
    }

    #[test]
    fn mean_bits_reasonable() {
        let freqs = vec![(0u32, 900u64), (1, 50), (2, 50)];
        let code = HuffmanCode::from_frequencies(&freqs);
        let mb = code.mean_bits(&freqs);
        assert!(mb < 1.3, "mean bits {mb}");
    }

    #[test]
    fn truncated_table_errors() {
        let bytes = encode_with_table(&[1, 2, 3, 1, 2, 3]);
        assert!(decode_with_table(&bytes[..3]).is_err());
    }

    /// Deterministic pseudo-random symbol stream over `alphabet` symbols.
    fn lcg_symbols(n: usize, alphabet: u32, seed: u64) -> Vec<u32> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % alphabet as u64) as u32
            })
            .collect()
    }

    /// Skewed stream: mostly one symbol, occasional spread — the shape of
    /// real quantization streams (short hot codes + a long-code tail).
    fn skewed_symbols(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = x >> 33;
                if r % 100 < 90 {
                    32768
                } else {
                    32768 + (r % 4096) as u32
                }
            })
            .collect()
    }

    #[test]
    fn encode_into_matches_reference() {
        for syms in [
            lcg_symbols(5000, 4096, 1),
            skewed_symbols(5000, 2),
            vec![7u32; 300],
            vec![3u32],
        ] {
            let freqs = count_frequencies(&syms);
            let code = HuffmanCode::from_frequencies(&freqs);
            let mut fast = Vec::new();
            code.encode_into(&syms, &mut fast);
            assert_eq!(fast, code.encode_reference(&syms));
        }
    }

    #[test]
    fn count_frequencies_matches_reference() {
        for syms in [
            lcg_symbols(5000, 4096, 3),
            skewed_symbols(2000, 4),
            Vec::new(),
            vec![0u32; 10],
            // Huge symbols force the HashMap fallback.
            vec![u32::MAX, 5, u32::MAX, 0],
        ] {
            assert_eq!(count_frequencies(&syms), count_frequencies_reference(&syms));
        }
    }

    #[test]
    fn table_decode_matches_reference() {
        for syms in [
            lcg_symbols(10_000, 4096, 5),
            lcg_symbols(10_000, 65536, 6), // wide alphabet → long codes
            skewed_symbols(10_000, 7),
            lcg_symbols(100, 17, 8), // near the table-build threshold
            vec![42u32; 1000],
        ] {
            let bytes = encode_with_table(&syms);
            assert_eq!(decode_with_table(&bytes).expect("decode"), syms);
            assert_eq!(decode_with_table_reference(&bytes).expect("ref"), syms);
        }
    }

    #[test]
    fn table_decode_error_parity_on_damage() {
        // Truncations and bit flips must produce the same Ok/Err outcome
        // as the reference decoder (zero padding can legitimately decode,
        // so "is error" alone is not enough — compare both ways).
        let syms = skewed_symbols(3000, 9);
        let freqs = count_frequencies(&syms);
        let code = HuffmanCode::from_frequencies(&freqs);
        let payload = code.encode(&syms);
        for cut in (0..payload.len()).step_by(7) {
            let fast = code.decode(&payload[..cut], syms.len());
            let slow = code.decode_reference(&payload[..cut], syms.len());
            match (&fast, &slow) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "cut={cut}"),
                (Err(_), Err(_)) => {}
                _ => panic!("cut={cut}: fast={fast:?} slow={slow:?}"),
            }
        }
        let mut flipped = payload.clone();
        for i in (0..flipped.len()).step_by(11) {
            flipped[i] ^= 0x40;
            let fast = code.decode(&flipped, syms.len());
            let slow = code.decode_reference(&flipped, syms.len());
            match (&fast, &slow) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "flip={i}"),
                (Err(_), Err(_)) => {}
                _ => panic!("flip={i}: fast={fast:?} slow={slow:?}"),
            }
            flipped[i] ^= 0x40;
        }
    }

    #[test]
    fn block_emit_matches_put_block() {
        for syms in [
            skewed_symbols(3000, 12),
            lcg_symbols(500, 9, 13),
            Vec::new(),
        ] {
            let mut a = Writer::new();
            encode_block_into(&syms, &mut a);
            let mut b = Writer::new();
            b.put_block(&encode_with_table_reference(&syms));
            assert_eq!(a.into_bytes(), b.into_bytes());
        }
    }

    #[test]
    fn fused_histogram_encode_matches() {
        let syms = skewed_symbols(4000, 10);
        let freqs = count_frequencies(&syms);
        let mut w = Writer::new();
        encode_with_histogram_into(&syms, &freqs, &mut w);
        assert_eq!(w.into_bytes(), encode_with_table_reference(&syms));
        assert_eq!(encode_with_table(&syms), encode_with_table_reference(&syms));
        assert_eq!(
            encode_with_table(&[]),
            encode_with_table_reference(&[]),
            "empty marker"
        );
    }
}
