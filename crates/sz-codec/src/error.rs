//! Structured error hierarchy for every compressed-stream decoder in the
//! workspace.
//!
//! All decode paths — the wire primitives, the SZ containers, the AMRIC
//! pipeline, and the offline comparators — fail through [`CodecError`], a
//! typed enum instead of a stringly error. Callers can match on the
//! variant (e.g. distinguish a truncated stream from a wrong-family magic)
//! and `h5lite` converts it losslessly into its own error type.

/// Error type for malformed or unsupported compressed streams.
///
/// The enum is `#[non_exhaustive]`: new failure classes may be added
/// without a breaking change, so downstream matches need a `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The stream ended before a read completed.
    Truncated {
        /// Byte offset the failed read started at.
        offset: usize,
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were actually left.
        have: usize,
    },
    /// The leading magic word does not match the expected stream family.
    BadMagic {
        /// The magic word found in the stream.
        found: u32,
    },
    /// The stream's format version is not supported by this build.
    BadVersion {
        /// The version byte found in the stream.
        found: u8,
    },
    /// An unknown mode / tag byte inside an otherwise valid stream.
    BadMode {
        /// The mode byte found in the stream.
        found: u8,
    },
    /// The envelope names a codec id no registry entry handles.
    UnknownCodec {
        /// The codec id found in the envelope.
        id: u16,
    },
    /// The stream belongs to a different (known) codec family than the
    /// decoder it was handed to.
    WrongCodec {
        /// The codec id the decoder expected.
        expected: u16,
        /// The codec id found in the envelope.
        found: u16,
    },
    /// A header parameter is structurally invalid (non-positive error
    /// bound, zero block size, …).
    BadParameter {
        /// Which parameter was rejected.
        what: &'static str,
    },
    /// Decoded dimensions, extents, or counts are mutually inconsistent.
    DimsMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A decoded count or length implies more data than the stream holds —
    /// rejected before it can drive an absurd allocation.
    LimitExceeded {
        /// What was being counted.
        what: &'static str,
        /// The (implausible) value the stream claimed.
        claimed: u128,
        /// What the stream could actually back.
        available: u128,
    },
    /// Any other structural corruption (invalid entropy code, LZ token
    /// stream inconsistency, exhausted symbol stream, …).
    Corrupt {
        /// Human-readable description of the corruption.
        detail: String,
    },
}

impl CodecError {
    /// Catch-all constructor for structural corruption.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        CodecError::Corrupt {
            detail: detail.into(),
        }
    }

    /// Constructor for dimension / extent / count inconsistencies.
    pub fn dims(detail: impl Into<String>) -> Self {
        CodecError::DimsMismatch {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { offset, need, have } => write!(
                f,
                "truncated stream: need {need} bytes at offset {offset}, have {have}"
            ),
            CodecError::BadMagic { found } => write!(f, "bad stream magic {found:#010x}"),
            CodecError::BadVersion { found } => write!(f, "unsupported format version {found}"),
            CodecError::BadMode { found } => write!(f, "unknown stream mode {found}"),
            CodecError::UnknownCodec { id } => write!(f, "no registered codec for id {id}"),
            CodecError::WrongCodec { expected, found } => write!(
                f,
                "stream belongs to codec id {found}, decoder expected {expected}"
            ),
            CodecError::BadParameter { what } => write!(f, "invalid stream parameter: {what}"),
            CodecError::DimsMismatch { detail } => write!(f, "dimension mismatch: {detail}"),
            CodecError::LimitExceeded {
                what,
                claimed,
                available,
            } => write!(
                f,
                "implausible {what}: stream claims {claimed}, can back {available}"
            ),
            CodecError::Corrupt { detail } => write!(f, "corrupt stream: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decode paths.
pub type CodecResult<T> = Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::Truncated {
            offset: 4,
            need: 8,
            have: 2,
        };
        assert!(e.to_string().contains("offset 4"));
        assert!(CodecError::BadMagic { found: 0xdead_beef }
            .to_string()
            .contains("0xdeadbeef"));
        assert!(CodecError::corrupt("x").to_string().contains('x'));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CodecError::BadMode { found: 7 });
    }
}
