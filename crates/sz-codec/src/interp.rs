//! SZ_Interp: multi-level spline-interpolation compressor (the SZ3
//! dynamic-spline algorithm of Zhao et al., ICDE 2021).
//!
//! The 3-D grid is reconstructed coarse-to-fine: at level `ℓ` (stride
//! `s = 2^{ℓ-1}`) every point whose coordinates are multiples of `s` gets
//! predicted by 1-D interpolation — cubic spline when four aligned
//! neighbours exist, linear with two, previous-value at borders — from
//! points already known at stride `2s`. Residuals are quantized and the
//! symbol stream is Huffman + LZ coded like SZ_L/R.
//!
//! Interpolation is a *global* operation over the whole buffer, which is
//! why the paper's cluster (cube-like) arrangement of unit blocks helps it
//! (§3.1, Fig. 5) and why block-structured AMR data ultimately suits the
//! block-based SZ_L/R better (§4.3 insight).

use crate::buffer3::{Buffer3, Dims3};
use crate::codec::{
    expect_envelope, total_cells, write_envelope, Codec, CodecId, StreamInfo, FLAG_EMPTY,
    FLAG_MULTI,
};
use crate::huffman;
use crate::kernels;
use crate::lossless;
use crate::quantizer::{Quantizer, OUTLIER_SYMBOL};
use crate::wire::{CodecError, CodecResult, Reader, Writer};

/// SZ_Interp payload format version (rides in the envelope header).
const VERSION: u8 = 2;

/// Configuration for SZ_Interp.
#[derive(Clone, Copy, Debug)]
pub struct InterpConfig {
    /// Absolute error bound.
    pub abs_eb: f64,
}

impl InterpConfig {
    /// Construct with an absolute error bound.
    pub fn new(abs_eb: f64) -> Self {
        InterpConfig { abs_eb }
    }
}

/// Compress one 3-D buffer.
pub fn compress(data: &Buffer3, cfg: &InterpConfig) -> Vec<u8> {
    let mut out = Vec::new();
    compress_into(data, cfg, &mut out);
    out
}

/// Compress one 3-D buffer, **appending** the stream to `out` (the
/// buffer-reusing variant of [`compress`]).
///
/// Passes run as explicit nested loops in `PassTargets` emission order
/// (x fastest), so the symbol/outlier streams are byte-identical to the
/// collect-then-visit formulation. The Y and Z passes at stride 1 — the
/// bulk of all points — are contiguous x-rows whose predictor kind is
/// constant per row, so they go through the lane kernels in
/// [`crate::kernels`]; everything else stays scalar.
pub fn compress_into(data: &Buffer3, cfg: &InterpConfig, out: &mut Vec<u8>) {
    let dims = data.dims();
    let q = Quantizer::new(cfg.abs_eb);
    let mut recon = Buffer3::zeros(dims);
    let mut syms = Vec::with_capacity(dims.len());
    let mut outliers = Vec::new();
    let flat = data.data();
    let plane = dims.nx * dims.ny;
    let mut preds = vec![0.0f64; dims.nx];
    let mut syms_row = vec![0u32; dims.nx];

    // Anchor point.
    {
        let (sym, rec) = q.quantize(flat[0], 0.0);
        if sym == OUTLIER_SYMBOL {
            outliers.push(flat[0]);
        }
        syms.push(sym);
        recon.data_mut()[0] = rec;
    }

    for s in strides(dims) {
        // X pass: targets (odd·s, 2s·b, 2s·c). Prediction reads the row
        // itself at even multiples of s while writes land on odd
        // multiples, so a single mutable row slice suffices.
        let mut z = 0;
        while z < dims.nz {
            let mut y = 0;
            while y < dims.ny {
                let base = dims.idx(0, y, z);
                let vals = &flat[base..base + dims.nx];
                let row = &mut recon.data_mut()[base..base + dims.nx];
                let mut x = s;
                while x < dims.nx {
                    let has_right = x + s < dims.nx;
                    let pred = if has_right && x >= 3 * s && x + 3 * s < dims.nx {
                        (-row[x - 3 * s] + 9.0 * row[x - s] + 9.0 * row[x + s] - row[x + 3 * s])
                            / 16.0
                    } else if has_right {
                        0.5 * (row[x - s] + row[x + s])
                    } else {
                        row[x - s]
                    };
                    let (sym, rec) = q.quantize_select(vals[x], pred);
                    if sym == OUTLIER_SYMBOL {
                        outliers.push(vals[x]);
                    }
                    syms.push(sym);
                    row[x] = rec;
                    x += 2 * s;
                }
                y += 2 * s;
            }
            z += 2 * s;
        }

        // Y pass: targets (s·a, odd·s, 2s·c); the predictor kind depends
        // only on y, so it is constant per x-row.
        let mut z = 0;
        while z < dims.nz {
            let mut y = s;
            while y < dims.ny {
                if s == 1 {
                    let base = dims.idx(0, y, z);
                    let vals = &flat[base..base + dims.nx];
                    let (head, tail) = recon.data_mut().split_at_mut(base);
                    let (wrow, rest) = tail.split_at_mut(dims.nx);
                    let rm1 = &head[base - dims.nx..];
                    match row_kind(y, 1, dims.ny) {
                        RowKind::Cubic => {
                            let rm3 = &head[base - 3 * dims.nx..base - 2 * dims.nx];
                            let rp1 = &rest[..dims.nx];
                            let rp3 = &rest[2 * dims.nx..3 * dims.nx];
                            kernels::predict_cubic_row(rm3, rm1, rp1, rp3, &mut preds);
                            kernels::quantize_row(&q, vals, &preds, &mut syms_row, wrow);
                        }
                        RowKind::Linear => {
                            let rp1 = &rest[..dims.nx];
                            kernels::predict_linear_row(rm1, rp1, &mut preds);
                            kernels::quantize_row(&q, vals, &preds, &mut syms_row, wrow);
                        }
                        RowKind::Prev => kernels::quantize_row(&q, vals, rm1, &mut syms_row, wrow),
                    }
                    drain_row(vals, &syms_row, &mut syms, &mut outliers);
                } else {
                    let mut x = 0;
                    while x < dims.nx {
                        let pred = predict(&recon, dims, s, Axis::Y, x, y, z);
                        let val = data.get(x, y, z);
                        let (sym, rec) = q.quantize_select(val, pred);
                        if sym == OUTLIER_SYMBOL {
                            outliers.push(val);
                        }
                        syms.push(sym);
                        recon.set(x, y, z, rec);
                        x += s;
                    }
                }
                y += 2 * s;
            }
            z += 2 * s;
        }

        // Z pass: targets (s·a, s·b, odd·s); the predictor kind depends
        // only on z, so it is constant per plane.
        let mut z = s;
        while z < dims.nz {
            let kind = row_kind(z, s, dims.nz);
            let mut y = 0;
            while y < dims.ny {
                if s == 1 {
                    let base = dims.idx(0, y, z);
                    let vals = &flat[base..base + dims.nx];
                    let (head, tail) = recon.data_mut().split_at_mut(base);
                    let (wrow, rest) = tail.split_at_mut(dims.nx);
                    let rm1 = &head[base - plane..base - plane + dims.nx];
                    match kind {
                        RowKind::Cubic => {
                            let rm3 = &head[base - 3 * plane..base - 3 * plane + dims.nx];
                            let rp1 = &rest[plane - dims.nx..plane];
                            let rp3 = &rest[3 * plane - dims.nx..3 * plane];
                            kernels::predict_cubic_row(rm3, rm1, rp1, rp3, &mut preds);
                            kernels::quantize_row(&q, vals, &preds, &mut syms_row, wrow);
                        }
                        RowKind::Linear => {
                            let rp1 = &rest[plane - dims.nx..plane];
                            kernels::predict_linear_row(rm1, rp1, &mut preds);
                            kernels::quantize_row(&q, vals, &preds, &mut syms_row, wrow);
                        }
                        RowKind::Prev => kernels::quantize_row(&q, vals, rm1, &mut syms_row, wrow),
                    }
                    drain_row(vals, &syms_row, &mut syms, &mut outliers);
                } else {
                    let mut x = 0;
                    while x < dims.nx {
                        let pred = predict(&recon, dims, s, Axis::Z, x, y, z);
                        let val = data.get(x, y, z);
                        let (sym, rec) = q.quantize_select(val, pred);
                        if sym == OUTLIER_SYMBOL {
                            outliers.push(val);
                        }
                        syms.push(sym);
                        recon.set(x, y, z, rec);
                        x += s;
                    }
                }
                y += s;
            }
            z += 2 * s;
        }
    }
    debug_assert_eq!(syms.len(), dims.len());

    let mut w = Writer::new();
    w.put_f64(cfg.abs_eb);
    w.put_u32(dims.nx as u32);
    w.put_u32(dims.ny as u32);
    w.put_u32(dims.nz as u32);
    huffman::encode_block_into(&syms, &mut w);
    w.put_u64(outliers.len() as u64);
    for &v in &outliers {
        w.put_f64(v);
    }
    let mut env = Writer::from_vec(std::mem::take(out));
    write_envelope(&mut env, CodecId::Interp, VERSION, 0);
    *out = env.into_bytes();
    lossless::compress_into(&w.into_bytes(), out);
}

/// Which 1-D predictor a whole row of an interpolation pass uses — the
/// branch in [`predict`] hoisted to row granularity: for Y/Z passes the
/// neighbour-availability conditions depend only on the coordinate along
/// the pass axis, never on x.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RowKind {
    /// Four aligned neighbours at ±s, ±3s: cubic spline.
    Cubic,
    /// Only ±s neighbours: linear midpoint.
    Linear,
    /// Right neighbour out of range: previous value.
    Prev,
}

/// Predictor kind for a target at coordinate `pos` along a pass axis of
/// extent `n` at stride `s` — the exact condition ladder of [`predict`].
#[inline]
fn row_kind(pos: usize, s: usize, n: usize) -> RowKind {
    let has_right = pos + s < n;
    if has_right && pos >= 3 * s && pos + 3 * s < n {
        RowKind::Cubic
    } else if has_right {
        RowKind::Linear
    } else {
        RowKind::Prev
    }
}

/// Append one quantized row to the symbol stream, routing outlier raw
/// values in the same per-point order the scalar loop produced.
#[inline]
fn drain_row(vals: &[f64], syms_row: &[u32], syms: &mut Vec<u32>, outliers: &mut Vec<f64>) {
    for (x, &sym) in syms_row.iter().enumerate() {
        if sym == OUTLIER_SYMBOL {
            outliers.push(vals[x]);
        }
    }
    syms.extend_from_slice(syms_row);
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> CodecResult<Buffer3> {
    let env = expect_envelope(bytes, CodecId::Interp, VERSION)?;
    if env.flags & FLAG_MULTI != 0 {
        return Err(CodecError::BadParameter {
            what: "multi-unit container passed to single-buffer decompress",
        });
    }
    let payload = lossless::decompress(&bytes[env.payload_offset..])?;
    let mut r = Reader::new(&payload);
    let abs_eb = r.get_f64()?;
    if !(abs_eb > 0.0 && abs_eb.is_finite()) {
        return Err(CodecError::BadParameter {
            what: "error bound",
        });
    }
    let nx = r.get_u32()? as usize;
    let ny = r.get_u32()? as usize;
    let nz = r.get_u32()? as usize;
    if nx == 0 || ny == 0 || nz == 0 {
        return Err(CodecError::dims(format!("degenerate dims {nx}x{ny}x{nz}")));
    }
    // Each point consumes at least one symbol bit; corrupted dims can't
    // claim more cells than the remaining payload could encode.
    let cells = nx as u128 * ny as u128 * nz as u128;
    if cells > r.remaining() as u128 * 8 + 64 {
        return Err(CodecError::LimitExceeded {
            what: "cells",
            claimed: cells,
            available: r.remaining() as u128 * 8 + 64,
        });
    }
    let dims = Dims3::new(nx, ny, nz);
    let syms = huffman::decode_with_table(r.get_block()?)?;
    if syms.len() != dims.len() {
        return Err(CodecError::dims(format!(
            "symbol count {} != {} points",
            syms.len(),
            dims.len()
        )));
    }
    let n_out = r.get_u64()? as usize;
    r.check_count(n_out, 8)?;
    let mut outliers = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        outliers.push(r.get_f64()?);
    }

    let q = Quantizer::new(abs_eb);
    let mut recon = Buffer3::zeros(dims);
    let mut sym_iter = syms.into_iter();
    let mut out_iter = outliers.into_iter();
    let truncated = || CodecError::corrupt("SZ_Interp stream truncated");
    let place = |recon: &mut Buffer3,
                 i: usize,
                 j: usize,
                 k: usize,
                 pred: f64,
                 sym_iter: &mut std::vec::IntoIter<u32>,
                 out_iter: &mut std::vec::IntoIter<f64>|
     -> CodecResult<()> {
        let sym = sym_iter.next().ok_or_else(truncated)?;
        let v = if sym == OUTLIER_SYMBOL {
            out_iter.next().ok_or_else(truncated)?
        } else {
            q.try_reconstruct(sym, pred)?
        };
        recon.set(i, j, k, v);
        Ok(())
    };

    place(&mut recon, 0, 0, 0, 0.0, &mut sym_iter, &mut out_iter)?;
    for s in strides(dims) {
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            // Collect targets first: prediction must read the buffer state
            // from *before* each point is written, and PassIter borrows it.
            let targets: Vec<(usize, usize, usize)> = PassTargets::new(dims, s, axis).collect();
            for (i, j, k) in targets {
                let pred = predict(&recon, dims, s, axis, i, j, k);
                place(&mut recon, i, j, k, pred, &mut sym_iter, &mut out_iter)?;
            }
        }
    }
    Ok(recon)
}

/// Strides `2^(L-1), …, 2, 1` with `2^L ≥ max_dim` (so the known set
/// bootstraps from the single anchor point).
fn strides(dims: Dims3) -> Vec<usize> {
    let mut s = 1usize;
    while s < dims.max_dim() {
        s <<= 1;
    }
    // s = 2^L ≥ max_dim; first prediction stride is s/2. Empty for a
    // single-point domain (nothing to predict beyond the anchor).
    let mut v = Vec::new();
    let mut cur = s >> 1;
    while cur >= 1 {
        v.push(cur);
        cur >>= 1;
    }
    v
}

/// The axis a pass interpolates along.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Axis {
    X,
    Y,
    Z,
}

/// Enumerate the target points of one pass: along `axis`, coordinates are
/// odd multiples of `s`; on axes already processed this level the
/// coordinate runs over multiples of `s`, on axes not yet processed over
/// multiples of `2s`.
struct PassTargets {
    s: usize,
    axis: Axis,
    idx: usize,
    counts: (usize, usize, usize),
}

impl PassTargets {
    fn new(dims: Dims3, s: usize, axis: Axis) -> Self {
        // #odd multiples of s below n: positions s, 3s, 5s, … < n.
        let odd = |n: usize| {
            if s >= n {
                0
            } else {
                (n - s - 1) / (2 * s) + 1
            }
        };
        // #multiples of step below n: 0, step, 2·step, … < n.
        let mult = |n: usize, step: usize| (n - 1) / step + 1;
        let counts = match axis {
            Axis::X => (odd(dims.nx), mult(dims.ny, 2 * s), mult(dims.nz, 2 * s)),
            Axis::Y => (mult(dims.nx, s), odd(dims.ny), mult(dims.nz, 2 * s)),
            Axis::Z => (mult(dims.nx, s), mult(dims.ny, s), odd(dims.nz)),
        };
        PassTargets {
            s,
            axis,
            idx: 0,
            counts,
        }
    }

    fn total(&self) -> usize {
        self.counts.0 * self.counts.1 * self.counts.2
    }
}

impl Iterator for PassTargets {
    type Item = (usize, usize, usize);
    fn next(&mut self) -> Option<Self::Item> {
        if self.idx >= self.total() {
            return None;
        }
        let (ci, cj, _ck) = self.counts;
        let a = self.idx % ci;
        let b = (self.idx / ci) % cj;
        let c = self.idx / (ci * cj);
        self.idx += 1;
        let s = self.s;
        Some(match self.axis {
            Axis::X => (s + 2 * s * a, 2 * s * b, 2 * s * c),
            Axis::Y => (s * a, s + 2 * s * b, 2 * s * c),
            Axis::Z => (s * a, s * b, s + 2 * s * c),
        })
    }
}

/// 1-D spline prediction along `axis` at stride `s` from the reconstructed
/// buffer: cubic when both ±3s neighbours are in range, linear when the +s
/// neighbour exists, previous value otherwise.
#[inline]
fn predict(
    recon: &Buffer3,
    dims: Dims3,
    s: usize,
    axis: Axis,
    i: usize,
    j: usize,
    k: usize,
) -> f64 {
    let (pos, n) = match axis {
        Axis::X => (i, dims.nx),
        Axis::Y => (j, dims.ny),
        Axis::Z => (k, dims.nz),
    };
    let at = |p: usize| match axis {
        Axis::X => recon.get(p, j, k),
        Axis::Y => recon.get(i, p, k),
        Axis::Z => recon.get(i, j, p),
    };
    debug_assert!(pos >= s);
    let has_right = pos + s < n;
    let has_far_left = pos >= 3 * s;
    let has_far_right = pos + 3 * s < n;
    if has_right && has_far_left && has_far_right {
        // Cubic spline weights (−1/16, 9/16, 9/16, −1/16).
        (-at(pos - 3 * s) + 9.0 * at(pos - s) + 9.0 * at(pos + s) - at(pos + 3 * s)) / 16.0
    } else if has_right {
        0.5 * (at(pos - s) + at(pos + s))
    } else {
        at(pos - s)
    }
}

/// [`Codec`] adapter for SZ_Interp.
///
/// The native SZ_Interp stream holds exactly one 3-D buffer, so the
/// adapter distinguishes three shapes via envelope flags: a bare
/// single-buffer stream (no flags), an empty stream ([`FLAG_EMPTY`]), and
/// a multi-unit container ([`FLAG_MULTI`]: a `u32` unit count followed by
/// length-prefixed bare streams). `decompress` accepts all three, so any
/// stream [`compress`] ever produced dispatches through the registry.
#[derive(Clone, Copy, Debug)]
pub struct InterpCodec {
    /// The SZ_Interp configuration used for compression (ignored on
    /// decode — streams are self-describing).
    pub cfg: InterpConfig,
}

impl InterpCodec {
    /// Build from a configuration.
    pub fn new(cfg: InterpConfig) -> Self {
        InterpCodec { cfg }
    }
}

impl Default for InterpCodec {
    /// Decode-capable default (compression uses a 1e-3 absolute bound).
    fn default() -> Self {
        InterpCodec::new(InterpConfig::new(1e-3))
    }
}

impl Codec for InterpCodec {
    fn id(&self) -> CodecId {
        CodecId::Interp
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        let start = out.len();
        match units {
            [] => {
                let mut w = Writer::from_vec(std::mem::take(out));
                write_envelope(&mut w, CodecId::Interp, VERSION, FLAG_EMPTY);
                *out = w.into_bytes();
            }
            [one] => compress_into(one, &self.cfg, out),
            many => {
                let mut w = Writer::from_vec(std::mem::take(out));
                write_envelope(&mut w, CodecId::Interp, VERSION, FLAG_MULTI);
                w.put_u32(many.len() as u32);
                let mut scratch = Vec::new();
                for u in many {
                    scratch.clear();
                    compress_into(u, &self.cfg, &mut scratch);
                    w.put_block(&scratch);
                }
                *out = w.into_bytes();
            }
        }
        Ok(StreamInfo {
            codec: CodecId::Interp,
            bytes: out.len() - start,
            units: units.len(),
            cells: total_cells(units),
        })
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        let env = expect_envelope(bytes, CodecId::Interp, VERSION)?;
        if env.flags & FLAG_EMPTY != 0 {
            return Ok(Vec::new());
        }
        if env.flags & FLAG_MULTI == 0 {
            return Ok(vec![decompress(bytes)?]);
        }
        let mut r = Reader::new(&bytes[env.payload_offset..]);
        let n = r.get_u32()? as usize;
        // Every unit stream is at least an envelope + lossless header.
        r.check_count(n, 8)?;
        let mut units = Vec::with_capacity(n);
        for _ in 0..n {
            units.push(decompress(r.get_block()?)?);
        }
        Ok(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorStats;

    #[test]
    fn pass_targets_cover_every_point_once() {
        for dims in [
            Dims3::cube(8),
            Dims3::cube(9),
            Dims3::new(16, 4, 7),
            Dims3::new(1, 1, 1),
            Dims3::new(5, 1, 3),
        ] {
            let mut seen = vec![false; dims.len()];
            seen[dims.idx(0, 0, 0)] = true; // anchor
            for s in strides(dims) {
                for axis in [Axis::X, Axis::Y, Axis::Z] {
                    for (i, j, k) in PassTargets::new(dims, s, axis) {
                        assert!(i < dims.nx && j < dims.ny && k < dims.nz);
                        let idx = dims.idx(i, j, k);
                        assert!(
                            !seen[idx],
                            "point ({i},{j},{k}) visited twice, dims {dims:?}"
                        );
                        seen[idx] = true;
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "dims {dims:?}: {} points unvisited",
                seen.iter().filter(|&&s| !s).count()
            );
        }
    }

    fn smooth(n: usize) -> Buffer3 {
        let mut b = Buffer3::zeros(Dims3::cube(n));
        b.fill_with(|i, j, k| {
            let (x, y, z) = (
                i as f64 / n as f64,
                j as f64 / n as f64,
                k as f64 / n as f64,
            );
            (3.0 * x + 1.0).sin() * (2.0 * y).cos() * (z + 0.3).sqrt()
        });
        b
    }

    #[test]
    fn roundtrip_respects_bound() {
        for n in [8usize, 15, 32] {
            let data = smooth(n);
            for eb in [1e-2, 1e-4] {
                let c = compress(&data, &InterpConfig::new(eb));
                let back = decompress(&c).expect("decode");
                let stats = ErrorStats::compare(data.data(), back.data());
                assert!(
                    stats.max_abs_err <= eb * (1.0 + 1e-12),
                    "n={n} eb={eb}: {}",
                    stats.max_abs_err
                );
            }
        }
    }

    #[test]
    fn smooth_data_high_ratio() {
        let data = smooth(32);
        let c = compress(&data, &InterpConfig::new(1e-3));
        let cr = (data.dims().len() * 8) as f64 / c.len() as f64;
        assert!(cr > 20.0, "interp CR {cr} too low on smooth data");
    }

    #[test]
    fn single_point_domain() {
        let b = Buffer3::from_vec(Dims3::new(1, 1, 1), vec![13.0]);
        let c = compress(&b, &InterpConfig::new(1e-3));
        let back = decompress(&c).expect("decode");
        assert!((back.get(0, 0, 0) - 13.0).abs() <= 1e-3);
    }

    #[test]
    fn anisotropic_dims_roundtrip() {
        let dims = Dims3::new(64, 8, 3);
        let mut b = Buffer3::zeros(dims);
        b.fill_with(|i, j, k| (i as f64 * 0.1).cos() + j as f64 * 0.01 - k as f64);
        let c = compress(&b, &InterpConfig::new(1e-3));
        let back = decompress(&c).expect("decode");
        let stats = ErrorStats::compare(b.data(), back.data());
        assert!(stats.max_abs_err <= 1e-3 * (1.0 + 1e-12));
    }

    #[test]
    fn corrupted_stream_is_error() {
        let c = compress(&smooth(8), &InterpConfig::new(1e-3));
        assert!(decompress(&c[..6]).is_err());
        let mut bad = c.clone();
        bad[2] ^= 0x40;
        assert!(decompress(&bad).is_err());
    }
}
