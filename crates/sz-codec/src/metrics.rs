//! Reconstruction-quality metrics: PSNR (the paper's formula), MSE,
//! maximum absolute error, and compression-ratio helpers.

/// Aggregate error statistics between an original and a reconstruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorStats {
    /// Number of points compared.
    pub n: usize,
    /// Mean squared error.
    pub mse: f64,
    /// Largest absolute pointwise error.
    pub max_abs_err: f64,
    /// Value range (max − min) of the *original* data.
    pub value_range: f64,
}

impl ErrorStats {
    /// Compare two equal-length slices.
    pub fn compare(original: &[f64], reconstructed: &[f64]) -> Self {
        assert_eq!(
            original.len(),
            reconstructed.len(),
            "length mismatch in metric computation"
        );
        assert!(!original.is_empty(), "empty metric input");
        let mut sq = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (&o, &r) in original.iter().zip(reconstructed) {
            let e = o - r;
            sq += e * e;
            max_abs = max_abs.max(e.abs());
            lo = lo.min(o);
            hi = hi.max(o);
        }
        ErrorStats {
            n: original.len(),
            mse: sq / original.len() as f64,
            max_abs_err: max_abs,
            value_range: hi - lo,
        }
    }

    /// PSNR in dB using the paper's definition (footnote 2):
    /// `20·log10(R) − 10·log10(MSE)` with `R` the value range.
    /// `f64::INFINITY` for a perfect reconstruction.
    pub fn psnr(&self) -> f64 {
        if self.mse == 0.0 {
            return f64::INFINITY;
        }
        20.0 * self.value_range.log10() - 10.0 * self.mse.log10()
    }
}

/// Compression ratio `original_bytes / compressed_bytes`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0);
    original_bytes as f64 / compressed_bytes as f64
}

/// Bit rate in bits per value for `n` values compressed to
/// `compressed_bytes`.
pub fn bit_rate(n: usize, compressed_bytes: usize) -> f64 {
    compressed_bytes as f64 * 8.0 / n as f64
}

/// One point on a rate-distortion curve (the paper's Figs. 5, 7, 16).
#[derive(Clone, Copy, Debug)]
pub struct RatePoint {
    /// Relative error bound used.
    pub rel_eb: f64,
    /// Achieved compression ratio.
    pub compression_ratio: f64,
    /// Achieved PSNR (dB).
    pub psnr: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction() {
        let a = vec![1.0, 2.0, 3.0];
        let s = ErrorStats::compare(&a, &a);
        assert_eq!(s.mse, 0.0);
        assert_eq!(s.max_abs_err, 0.0);
        assert_eq!(s.psnr(), f64::INFINITY);
    }

    #[test]
    fn known_psnr() {
        // Range 10, constant error 0.1 → PSNR = 20·log10(10) − 10·log10(0.01)
        // = 20 + 20 = 40 dB.
        let orig: Vec<f64> = (0..101).map(|i| i as f64 * 0.1).collect();
        let recon: Vec<f64> = orig.iter().map(|v| v + 0.1).collect();
        let s = ErrorStats::compare(&orig, &recon);
        assert!((s.psnr() - 40.0).abs() < 1e-9, "psnr={}", s.psnr());
        assert!((s.max_abs_err - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ratio_and_rate() {
        assert_eq!(compression_ratio(800, 100), 8.0);
        assert_eq!(bit_rate(100, 100), 8.0); // 100 f64 → 100 B = 8 bits/value
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ErrorStats::compare(&[1.0], &[1.0, 2.0]);
    }
}
