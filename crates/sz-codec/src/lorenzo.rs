//! Lorenzo predictors (1-D, 2-D and 3-D).
//!
//! The Lorenzo predictor estimates a point from its already-processed
//! neighbours; in 3-D it is the inclusion–exclusion corner sum over the
//! unit cube. Out-of-domain neighbours read as 0, matching SZ.

use crate::buffer3::{Buffer3, Dims3};

/// 3-D Lorenzo prediction for point `(i, j, k)` of `recon`, treating
/// indices below `0` as value 0. `recon` must hold reconstructed values for
/// every already-visited point of the traversal (x → y → z order).
#[inline]
pub fn lorenzo3(recon: &Buffer3, i: usize, j: usize, k: usize) -> f64 {
    let g = |ii: isize, jj: isize, kk: isize| -> f64 {
        if ii < 0 || jj < 0 || kk < 0 {
            0.0
        } else {
            recon.get(ii as usize, jj as usize, kk as usize)
        }
    };
    let (i, j, k) = (i as isize, j as isize, k as isize);
    g(i - 1, j, k) + g(i, j - 1, k) + g(i, j, k - 1)
        - g(i - 1, j - 1, k)
        - g(i - 1, j, k - 1)
        - g(i, j - 1, k - 1)
        + g(i - 1, j - 1, k - 1)
}

/// Same stencil evaluated on the *original* data — used only to estimate
/// Lorenzo's accuracy during predictor selection (SZ2 does the same; the
/// true pass uses reconstructed values).
#[inline]
pub fn lorenzo3_estimate(data: &Buffer3, i: usize, j: usize, k: usize) -> f64 {
    lorenzo3(data, i, j, k)
}

/// 1-D Lorenzo (previous value; 0 for the first point).
#[inline]
pub fn lorenzo1(recon: &[f64], i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        recon[i - 1]
    }
}

/// Sum of absolute Lorenzo-prediction errors over a sub-block of the
/// original data, the selection statistic of SZ2. The sub-block has origin
/// `(oi, oj, ok)` and shape `bd`; the stencil may reach outside the block
/// into the rest of the domain (crossing block boundaries, like the real
/// pass does).
///
/// At the *domain* boundary the stencil zero-extends — out-of-range
/// neighbours read as literal `0.0`, **not** clamped to the nearest edge
/// value. This is deliberate and SZ2-faithful: the real encode pass
/// predicts boundary points against the same zeros, so the selection
/// statistic must charge Lorenzo for that bias or it would pick Lorenzo
/// on boundary blocks where regression actually quantizes better. For a
/// field of typical magnitude `m` the charge is `≈ m` at the domain
/// origin and one slope-magnitude per domain-edge point (see the
/// boundary-block test below); changing this to edge-clamping would
/// silently shift predictor selection and break stream compatibility.
pub fn lorenzo3_block_error(data: &Buffer3, oi: usize, oj: usize, ok: usize, bd: Dims3) -> f64 {
    let mut err = 0.0;
    for k in ok..ok + bd.nz {
        for j in oj..oj + bd.ny {
            for i in oi..oi + bd.nx {
                err += (data.get(i, j, k) - lorenzo3_estimate(data, i, j, k)).abs();
            }
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo3_exact_for_affine() {
        // The 3-D Lorenzo stencil reproduces any trilinear-free affine
        // field exactly (away from the domain faces where neighbours
        // read 0).
        let mut b = Buffer3::zeros(Dims3::cube(6));
        b.fill_with(|i, j, k| 2.0 * i as f64 - 3.0 * j as f64 + 0.5 * k as f64 + 7.0);
        for k in 1..6 {
            for j in 1..6 {
                for i in 1..6 {
                    let pred = lorenzo3(&b, i, j, k);
                    assert!(
                        (pred - b.get(i, j, k)).abs() < 1e-9,
                        "at ({i},{j},{k}): pred={pred}, val={}",
                        b.get(i, j, k)
                    );
                }
            }
        }
    }

    #[test]
    fn lorenzo3_faces_use_zero() {
        let mut b = Buffer3::zeros(Dims3::cube(3));
        b.fill_with(|_, _, _| 5.0);
        // Origin has no neighbours → prediction 0.
        assert_eq!(lorenzo3(&b, 0, 0, 0), 0.0);
        // Along an edge the 2-D stencil degenerates to the previous value.
        assert_eq!(lorenzo3(&b, 1, 0, 0), 5.0);
    }

    #[test]
    fn lorenzo1_basics() {
        let r = [4.0, 6.0];
        assert_eq!(lorenzo1(&r, 0), 0.0);
        assert_eq!(lorenzo1(&r, 1), 4.0);
    }

    #[test]
    fn boundary_block_error_uses_zero_extension() {
        // Pin the SZ2-faithful zero-extension semantics with an analytic
        // case. For the affine field f = 10 + i + 2j + 3k the
        // zero-extended stencil is exact everywhere except on domain
        // *edges*: each face point still sees an exact 2-D sub-stencil,
        // while an edge point degenerates to previous-value (residual =
        // the slope along that edge) and the origin predicts 0 (residual
        // = f(0,0,0)). For the 2×2×2 block at the origin that sums to
        // 10 + 1 + 2 + 3 = 16 exactly; any clamped variant would differ.
        let mut b = Buffer3::zeros(Dims3::cube(4));
        b.fill_with(|i, j, k| 10.0 + i as f64 + 2.0 * j as f64 + 3.0 * k as f64);
        let bd = Dims3::cube(2);
        assert_eq!(lorenzo3_block_error(&b, 0, 0, 0, bd), 16.0);
        // Interior blocks of the same field are exact — the bias is
        // confined to the domain faces.
        assert_eq!(lorenzo3_block_error(&b, 1, 1, 1, bd), 0.0);
        assert_eq!(lorenzo3_block_error(&b, 2, 2, 2, bd), 0.0);
    }

    #[test]
    fn block_error_zero_on_affine_interior() {
        let mut b = Buffer3::zeros(Dims3::cube(8));
        b.fill_with(|i, j, k| i as f64 + j as f64 + k as f64);
        let e = lorenzo3_block_error(&b, 1, 1, 1, Dims3::cube(4));
        assert!(e < 1e-9, "affine interior error {e}");
        // A block touching the origin face picks up the zero-padding error.
        let e0 = lorenzo3_block_error(&b, 0, 0, 0, Dims3::cube(4));
        assert!(e0 > 0.0);
    }
}
