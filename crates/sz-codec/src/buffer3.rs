//! [`Buffer3`]: an owned 3-D array of `f64` in Fortran order (x fastest),
//! the in-memory unit the compressor pipeline works on.

/// Dimensions of a 3-D buffer, `(nx, ny, nz)` with x fastest in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    /// Construct dimensions; every extent must be ≥ 1.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "degenerate dims {nx}x{ny}x{nz}");
        Dims3 { nx, ny, nz }
    }

    /// A cube with edge `n`.
    pub fn cube(n: usize) -> Self {
        Dims3::new(n, n, n)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Always false (extents are ≥ 1) but required for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of `(i, j, k)`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Largest extent.
    pub fn max_dim(&self) -> usize {
        self.nx.max(self.ny).max(self.nz)
    }
}

/// Owned 3-D data buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Buffer3 {
    dims: Dims3,
    data: Vec<f64>,
}

impl Buffer3 {
    /// Zero-filled buffer.
    pub fn zeros(dims: Dims3) -> Self {
        Buffer3 {
            data: vec![0.0; dims.len()],
            dims,
        }
    }

    /// Wrap existing Fortran-ordered data.
    pub fn from_vec(dims: Dims3, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), dims.len(), "data length mismatch");
        Buffer3 { dims, data }
    }

    /// Dimensions.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Flat data (Fortran order).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.dims.idx(i, j, k)]
    }

    /// Element setter.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.dims.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Fill by evaluating `f(i, j, k)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize, usize) -> f64) {
        for k in 0..self.dims.nz {
            for j in 0..self.dims.ny {
                for i in 0..self.dims.nx {
                    let idx = self.dims.idx(i, j, k);
                    self.data[idx] = f(i, j, k);
                }
            }
        }
    }

    /// Copy a `sub.dims()`-shaped block into this buffer with its origin at
    /// `(oi, oj, ok)`.
    pub fn paste(&mut self, sub: &Buffer3, oi: usize, oj: usize, ok: usize) {
        let sd = sub.dims;
        assert!(
            oi + sd.nx <= self.dims.nx && oj + sd.ny <= self.dims.ny && ok + sd.nz <= self.dims.nz,
            "paste out of bounds"
        );
        for k in 0..sd.nz {
            for j in 0..sd.ny {
                let src = sd.idx(0, j, k);
                let dst = self.dims.idx(oi, oj + j, ok + k);
                self.data[dst..dst + sd.nx].copy_from_slice(&sub.data[src..src + sd.nx]);
            }
        }
    }

    /// Extract an `(nx, ny, nz)`-shaped block with origin `(oi, oj, ok)`.
    pub fn extract(&self, oi: usize, oj: usize, ok: usize, dims: Dims3) -> Buffer3 {
        assert!(
            oi + dims.nx <= self.dims.nx
                && oj + dims.ny <= self.dims.ny
                && ok + dims.nz <= self.dims.nz,
            "extract out of bounds"
        );
        let mut out = Buffer3::zeros(dims);
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                let src = self.dims.idx(oi, oj + j, ok + k);
                let dst = dims.idx(0, j, k);
                out.data[dst..dst + dims.nx].copy_from_slice(&self.data[src..src + dims.nx]);
            }
        }
        out
    }

    /// Min and max over the data.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Value range (max − min); 0 for constant data.
    pub fn value_range(&self) -> f64 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// An axis-aligned 2-D slice at `k = plane` (row-major `[j][i]`),
    /// handy for the paper's error-visualization figures.
    pub fn slice_z(&self, plane: usize) -> Vec<Vec<f64>> {
        assert!(plane < self.dims.nz);
        (0..self.dims.ny)
            .map(|j| (0..self.dims.nx).map(|i| self.get(i, j, plane)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_order_x_fastest() {
        let d = Dims3::new(3, 2, 2);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 3);
        assert_eq!(d.idx(0, 0, 1), 6);
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn paste_extract_roundtrip() {
        let mut big = Buffer3::zeros(Dims3::cube(8));
        let mut small = Buffer3::zeros(Dims3::new(3, 2, 4));
        small.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f64 + 0.25);
        big.paste(&small, 2, 3, 1);
        let back = big.extract(2, 3, 1, small.dims());
        assert_eq!(back, small);
        assert_eq!(big.get(0, 0, 0), 0.0);
        assert_eq!(big.get(2, 3, 1), 0.25);
    }

    #[test]
    fn min_max_range() {
        let mut b = Buffer3::zeros(Dims3::cube(4));
        b.fill_with(|i, j, k| i as f64 - j as f64 + k as f64);
        let (lo, hi) = b.min_max();
        assert_eq!(lo, -3.0);
        assert_eq!(hi, 6.0);
        assert_eq!(b.value_range(), 9.0);
    }

    #[test]
    fn slice_extraction() {
        let mut b = Buffer3::zeros(Dims3::new(2, 2, 2));
        b.set(1, 0, 1, 5.0);
        let s = b.slice_z(1);
        assert_eq!(s[0][1], 5.0);
        assert_eq!(s[1][1], 0.0);
    }

    #[test]
    #[should_panic(expected = "paste out of bounds")]
    fn paste_bounds_checked() {
        let mut big = Buffer3::zeros(Dims3::cube(4));
        let small = Buffer3::zeros(Dims3::cube(3));
        big.paste(&small, 2, 0, 0);
    }
}
