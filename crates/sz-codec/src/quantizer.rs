//! Error-bounded linear-scale quantization (SZ2 semantics).
//!
//! Every residual `val − pred` is mapped to an integer code
//! `round(residual / (2·eb))`; reconstruction adds `code · 2·eb` back to the
//! prediction, so `|val − recon| ≤ eb` always holds for predictable points.
//! Codes outside the quantization radius are "unpredictable": the symbol 0
//! is emitted and the raw IEEE-754 value is stored verbatim (lossless for
//! that point).

/// Quantization radius; codes live in `(-radius, radius)`. SZ uses 2¹⁵ by
/// default, giving 2¹⁶ Huffman symbols.
pub const QUANT_RADIUS: i64 = 32768;

/// Symbol used for unpredictable (outlier) points.
pub const OUTLIER_SYMBOL: u32 = 0;

use crate::error::{CodecError, CodecResult};

/// Stateless quantizer for a fixed absolute error bound.
#[derive(Clone, Copy, Debug)]
pub struct Quantizer {
    eb: f64,
    radius: i64,
}

impl Quantizer {
    /// Build for an absolute error bound `eb > 0`.
    pub fn new(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        Quantizer {
            eb,
            radius: QUANT_RADIUS,
        }
    }

    /// The absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// Quantize `val` against `pred`.
    ///
    /// Returns `(symbol, reconstructed)`. If the point is unpredictable the
    /// symbol is [`OUTLIER_SYMBOL`], the reconstruction equals `val`
    /// exactly, and the caller must store the raw value.
    #[inline]
    pub fn quantize(&self, val: f64, pred: f64) -> (u32, f64) {
        let diff = val - pred;
        let scaled = diff / (2.0 * self.eb);
        let code = scaled.round();
        if code.abs() < self.radius as f64 && code.is_finite() {
            let recon = pred + code * 2.0 * self.eb;
            // Guard against floating-point cancellation pushing the error
            // past the bound (can happen when |pred| ≫ |diff|).
            if (recon - val).abs() <= self.eb {
                return ((code as i64 + self.radius) as u32, recon);
            }
        }
        (OUTLIER_SYMBOL, val)
    }

    /// Branch-light variant of [`Quantizer::quantize`] producing identical
    /// results, expressed as data-dependent selects instead of early
    /// returns so the row kernels in [`crate::kernels`] autovectorize.
    ///
    /// The floating-point expression tree is exactly the one `quantize`
    /// evaluates (`diff / (2·eb)`, `pred + code · 2 · eb`, same comparison
    /// order), so the returned `(symbol, reconstruction)` pair is
    /// bit-identical for every input, including NaN/∞ and the
    /// cancellation guard path.
    #[inline(always)]
    pub fn quantize_select(&self, val: f64, pred: f64) -> (u32, f64) {
        let diff = val - pred;
        let scaled = diff / (2.0 * self.eb);
        let code = scaled.round();
        // Computed unconditionally: when `code` is NaN/∞ the result is
        // NaN, which the `ok` mask below rejects exactly like the guarded
        // scalar path. `code as i64` is a saturating cast on overflow, so
        // the discarded lane value is well-defined.
        let recon = pred + code * 2.0 * self.eb;
        let ok =
            (code.abs() < self.radius as f64) & code.is_finite() & ((recon - val).abs() <= self.eb);
        // On `ok` lanes `code` is integral with |code| < radius, so
        // `code + radius` is exactly representable in f64 and the f64→i32
        // cast equals the scalar path's `code as i64 + radius`. Kept in
        // the float domain because there is no packed f64→i64 conversion
        // below AVX-512 — an i64 cast here scalarizes the entire row
        // kernel, while f64→i32 is a single packed instruction. Rejected
        // lanes (NaN/∞ saturate to well-defined values) are discarded by
        // the select.
        let sym = if ok {
            (code + self.radius as f64) as i32 as u32
        } else {
            OUTLIER_SYMBOL
        };
        let rec = if ok { recon } else { val };
        (sym, rec)
    }

    /// Reconstruct from a non-outlier symbol.
    #[inline]
    pub fn reconstruct(&self, symbol: u32, pred: f64) -> f64 {
        debug_assert_ne!(symbol, OUTLIER_SYMBOL);
        let code = symbol as i64 - self.radius;
        pred + code as f64 * 2.0 * self.eb
    }

    /// Validated reconstruction for decode loops.
    ///
    /// A corrupt Huffman table can smuggle arbitrary `u32` symbols into a
    /// decode loop: symbol 0 without a stored raw value, or a symbol
    /// `≥ 2·radius` that no encoder ever emits. `reconstruct` only
    /// `debug_assert!`s, so release builds would silently produce
    /// `pred − radius·2eb`-style garbage; this variant turns both cases
    /// into a typed [`CodecError::Corrupt`].
    #[inline]
    pub fn try_reconstruct(&self, symbol: u32, pred: f64) -> CodecResult<f64> {
        if symbol == OUTLIER_SYMBOL || symbol as i64 >= 2 * self.radius {
            return Err(CodecError::corrupt(format!(
                "quantization symbol {symbol} out of range (radius {})",
                self.radius
            )));
        }
        Ok(self.reconstruct(symbol, pred))
    }
}

/// Convert a relative error bound into an absolute one for data with the
/// given value range, the mode the paper's evaluation uses (per-field,
/// per-rank range). Constant data (range 0) falls back to `rel` itself so
/// the quantizer stays valid.
pub fn absolute_bound(rel: f64, value_range: f64) -> f64 {
    assert!(rel > 0.0, "relative bound must be positive");
    if value_range > 0.0 {
        rel * value_range
    } else {
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_within_bound() {
        let q = Quantizer::new(0.01);
        for &(val, pred) in &[(1.0, 0.98), (5.0, -3.0), (0.0, 0.0), (-2.5, -2.499)] {
            let (sym, recon) = q.quantize(val, pred);
            if sym != OUTLIER_SYMBOL {
                assert!((recon - val).abs() <= 0.01, "val={val} pred={pred}");
                assert_eq!(q.reconstruct(sym, pred), recon);
            } else {
                assert_eq!(recon, val);
            }
        }
    }

    #[test]
    fn perfect_prediction_is_center_symbol() {
        let q = Quantizer::new(1e-3);
        let (sym, recon) = q.quantize(7.5, 7.5);
        assert_eq!(sym, QUANT_RADIUS as u32);
        assert_eq!(recon, 7.5);
    }

    #[test]
    fn far_prediction_is_outlier() {
        let q = Quantizer::new(1e-6);
        let (sym, recon) = q.quantize(1.0e6, 0.0);
        assert_eq!(sym, OUTLIER_SYMBOL);
        assert_eq!(recon, 1.0e6);
    }

    #[test]
    fn nan_and_inf_are_outliers() {
        let q = Quantizer::new(0.1);
        assert_eq!(q.quantize(f64::NAN, 0.0).0, OUTLIER_SYMBOL);
        assert_eq!(q.quantize(f64::INFINITY, 0.0).0, OUTLIER_SYMBOL);
        assert_eq!(q.quantize(1.0, f64::NAN).0, OUTLIER_SYMBOL);
    }

    #[test]
    fn relative_bound_conversion() {
        assert_eq!(absolute_bound(1e-2, 50.0), 0.5);
        assert_eq!(absolute_bound(1e-2, 0.0), 1e-2);
    }

    #[test]
    fn quantize_select_matches_quantize() {
        let q = Quantizer::new(1e-3);
        let mut state = 0x5EED_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..10_000 {
            let val = next() * 200.0;
            let pred = val + next() * 0.5;
            let a = q.quantize(val, pred);
            let b = q.quantize_select(val, pred);
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "val={val} pred={pred}");
        }
        // Special values take the outlier select path identically.
        for &(val, pred) in &[
            (f64::NAN, 0.0),
            (f64::INFINITY, 0.0),
            (1.0, f64::NAN),
            (1e300, -1e300),
            (0.0, -0.0),
        ] {
            let a = q.quantize(val, pred);
            let b = q.quantize_select(val, pred);
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn try_reconstruct_rejects_bad_symbols() {
        let q = Quantizer::new(0.01);
        assert!(q.try_reconstruct(OUTLIER_SYMBOL, 1.0).is_err());
        assert!(q.try_reconstruct(2 * QUANT_RADIUS as u32, 1.0).is_err());
        assert!(q.try_reconstruct(u32::MAX, 1.0).is_err());
        let (sym, recon) = q.quantize(1.0, 0.875);
        assert_ne!(sym, OUTLIER_SYMBOL);
        assert_eq!(q.try_reconstruct(sym, 0.875).unwrap(), recon);
    }

    #[test]
    fn symbols_roundtrip_dense_range() {
        let q = Quantizer::new(0.5);
        // Residuals spanning many bins reconstruct within bound.
        for step in -1000i64..1000 {
            let val = step as f64 * 0.77;
            let (sym, recon) = q.quantize(val, 0.0);
            assert_ne!(sym, OUTLIER_SYMBOL);
            assert!((recon - val).abs() <= 0.5);
            assert_eq!(q.reconstruct(sym, 0.0), recon);
        }
    }
}
