//! Per-block linear-regression predictor (the "R" of SZ_L/R).
//!
//! Each block fits `f(x,y,z) ≈ β₀ + β₁·x + β₂·y + β₃·z` (local block
//! coordinates) by closed-form least squares — separable on a full
//! rectangular grid. Coefficients are themselves quantized (delta-coded
//! against the previous regression block, as SZ2 does) so they ride in the
//! compressed stream at a few bits each instead of 32 raw bytes per block.

use crate::buffer3::{Buffer3, Dims3};
use crate::quantizer::{Quantizer, OUTLIER_SYMBOL};
use crate::wire::{CodecError, CodecResult};

/// Fitted (or reconstructed) regression coefficients for one block.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Coefficients {
    /// Intercept at block-local (0,0,0).
    pub b0: f64,
    /// Slopes along x, y, z in cells.
    pub b: [f64; 3],
}

impl Coefficients {
    /// Predicted value at block-local coordinates.
    #[inline]
    pub fn predict(&self, x: usize, y: usize, z: usize) -> f64 {
        self.b0 + self.b[0] * x as f64 + self.b[1] * y as f64 + self.b[2] * z as f64
    }
}

/// Least-squares fit over the block with origin `(oi, oj, ok)` and shape
/// `bd` inside `data`. Degenerate axes (extent 1) get slope 0.
pub fn fit_block(data: &Buffer3, oi: usize, oj: usize, ok: usize, bd: Dims3) -> Coefficients {
    let n = bd.len() as f64;
    let mean_axis = |len: usize| (len as f64 - 1.0) / 2.0;
    let (mx, my, mz) = (mean_axis(bd.nx), mean_axis(bd.ny), mean_axis(bd.nz));
    // Σ (x−x̄)² over the grid factorizes to N/len · Σ_axis (x−x̄)².
    let sq = |len: usize| -> f64 {
        (0..len)
            .map(|x| {
                let d = x as f64 - mean_axis(len);
                d * d
            })
            .sum()
    };
    let mut sum = 0.0;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sz = 0.0;
    // Row-sliced traversal (no per-point index math or bounds checks);
    // the accumulation order — and therefore every sum — is unchanged.
    let dims = data.dims();
    for k in 0..bd.nz {
        let dz = k as f64 - mz;
        for j in 0..bd.ny {
            let dy = j as f64 - my;
            let base = dims.idx(oi, oj + j, ok + k);
            for (i, &v) in data.data()[base..base + bd.nx].iter().enumerate() {
                sum += v;
                sx += v * (i as f64 - mx);
                sy += v * dy;
                sz += v * dz;
            }
        }
    }
    let mean = sum / n;
    let denom_x = sq(bd.nx) * (bd.ny * bd.nz) as f64;
    let denom_y = sq(bd.ny) * (bd.nx * bd.nz) as f64;
    let denom_z = sq(bd.nz) * (bd.nx * bd.ny) as f64;
    let b1 = if denom_x > 0.0 { sx / denom_x } else { 0.0 };
    let b2 = if denom_y > 0.0 { sy / denom_y } else { 0.0 };
    let b3 = if denom_z > 0.0 { sz / denom_z } else { 0.0 };
    Coefficients {
        b0: mean - b1 * mx - b2 * my - b3 * mz,
        b: [b1, b2, b3],
    }
}

/// Sum of absolute errors of the regression prediction over the block —
/// the selection statistic compared against Lorenzo's.
pub fn regression_block_error(
    data: &Buffer3,
    oi: usize,
    oj: usize,
    ok: usize,
    bd: Dims3,
    c: &Coefficients,
) -> f64 {
    let mut err = 0.0;
    for k in 0..bd.nz {
        for j in 0..bd.ny {
            for i in 0..bd.nx {
                err += (data.get(oi + i, oj + j, ok + k) - c.predict(i, j, k)).abs();
            }
        }
    }
    err
}

/// Delta-quantizing codec for coefficient streams. The encoder and decoder
/// run the identical state machine so predictions stay in lockstep.
pub struct CoefficientCodec {
    q0: Quantizer,
    qs: Quantizer,
    prev: Coefficients,
}

impl CoefficientCodec {
    /// `abs_eb` is the data error bound; coefficient precisions derive from
    /// it as in SZ2 (intercept at eb/10, slopes at eb/(10·block_size)).
    pub fn new(abs_eb: f64, block_size: usize) -> Self {
        CoefficientCodec {
            q0: Quantizer::new(abs_eb * 0.1),
            qs: Quantizer::new(abs_eb * 0.1 / block_size as f64),
            prev: Coefficients::default(),
        }
    }

    /// Encode `c`, pushing 4 symbols (and any outlier raw values) and
    /// returning the *quantized* coefficients that the prediction pass must
    /// use (the decoder only ever sees these).
    pub fn encode(
        &mut self,
        c: &Coefficients,
        symbols: &mut Vec<u32>,
        outliers: &mut Vec<f64>,
    ) -> Coefficients {
        let mut out = Coefficients::default();
        let (s, rec) = self.q0.quantize(c.b0, self.prev.b0);
        if s == OUTLIER_SYMBOL {
            outliers.push(c.b0);
        }
        symbols.push(s);
        out.b0 = rec;
        for d in 0..3 {
            let (s, rec) = self.qs.quantize(c.b[d], self.prev.b[d]);
            if s == OUTLIER_SYMBOL {
                outliers.push(c.b[d]);
            }
            symbols.push(s);
            out.b[d] = rec;
        }
        self.prev = out;
        out
    }

    /// Decode the next coefficient set from the symbol/outlier streams.
    /// `sym_iter` and `outlier_iter` advance exactly as `encode` pushed.
    /// Exhausted streams and out-of-range symbols (a corrupt Huffman
    /// table can carry any `u32`) are typed [`CodecError::Corrupt`].
    pub fn decode(
        &mut self,
        symbols: &mut impl Iterator<Item = u32>,
        outliers: &mut impl Iterator<Item = f64>,
    ) -> CodecResult<Coefficients> {
        let truncated = || CodecError::corrupt("coefficient stream truncated");
        let mut out = Coefficients::default();
        let s = symbols.next().ok_or_else(truncated)?;
        out.b0 = if s == OUTLIER_SYMBOL {
            outliers.next().ok_or_else(truncated)?
        } else {
            self.q0.try_reconstruct(s, self.prev.b0)?
        };
        for d in 0..3 {
            let s = symbols.next().ok_or_else(truncated)?;
            out.b[d] = if s == OUTLIER_SYMBOL {
                outliers.next().ok_or_else(truncated)?
            } else {
                self.qs.try_reconstruct(s, self.prev.b[d])?
            };
        }
        self.prev = out;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_for_affine_block() {
        let mut b = Buffer3::zeros(Dims3::cube(8));
        b.fill_with(|i, j, k| 1.5 + 2.0 * i as f64 - 0.25 * j as f64 + 3.0 * k as f64);
        let c = fit_block(&b, 1, 2, 0, Dims3::new(6, 6, 6));
        // Intercept is at block-local origin (1,2,0) → 1.5 + 2 − 0.5 = 3.0.
        assert!((c.b0 - 3.0).abs() < 1e-9, "{c:?}");
        assert!((c.b[0] - 2.0).abs() < 1e-9);
        assert!((c.b[1] + 0.25).abs() < 1e-9);
        assert!((c.b[2] - 3.0).abs() < 1e-9);
        assert!(regression_block_error(&b, 1, 2, 0, Dims3::new(6, 6, 6), &c) < 1e-8);
    }

    #[test]
    fn degenerate_axis_slope_zero() {
        let mut b = Buffer3::zeros(Dims3::new(4, 1, 4));
        b.fill_with(|i, _, k| i as f64 + k as f64);
        let c = fit_block(&b, 0, 0, 0, Dims3::new(4, 1, 4));
        assert_eq!(c.b[1], 0.0);
        assert!((c.b[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coefficient_codec_lockstep() {
        let blocks = [
            Coefficients {
                b0: 10.0,
                b: [0.5, -0.25, 1.0],
            },
            Coefficients {
                b0: 10.2,
                b: [0.55, -0.2, 0.9],
            },
            Coefficients {
                b0: 1e9, // forces the outlier path
                b: [0.0, 0.0, 0.0],
            },
        ];
        let mut enc = CoefficientCodec::new(1e-2, 6);
        let mut syms = Vec::new();
        let mut outs = Vec::new();
        let quantized: Vec<Coefficients> = blocks
            .iter()
            .map(|c| enc.encode(c, &mut syms, &mut outs))
            .collect();
        let mut dec = CoefficientCodec::new(1e-2, 6);
        let mut si = syms.into_iter();
        let mut oi = outs.into_iter();
        for qc in &quantized {
            let d = dec.decode(&mut si, &mut oi).expect("decode");
            assert_eq!(&d, qc, "decoder must reproduce encoder-side values");
        }
    }

    #[test]
    fn quantized_coeffs_stay_close() {
        let mut enc = CoefficientCodec::new(1e-3, 6);
        let mut syms = Vec::new();
        let mut outs = Vec::new();
        let c = Coefficients {
            b0: 2.625,
            b: [0.123, -0.456, 0.789],
        };
        let qc = enc.encode(&c, &mut syms, &mut outs);
        assert!((qc.b0 - c.b0).abs() <= 1e-4 + 1e-12);
        for d in 0..3 {
            assert!((qc.b[d] - c.b[d]).abs() <= 1e-4 / 6.0 + 1e-12);
        }
    }
}
