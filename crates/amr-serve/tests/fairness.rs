//! The fairness acceptance check: point-sample tail latency while a
//! full-file ROI scan hammers the same server must stay within a small
//! factor of its solo tail latency — the whole reason admission control
//! slices scans into gate-bounded slabs.

use amr_apps::prelude::*;
use amr_serve::prelude::*;
use amric::config::AmricConfig;
use amric::writer::write_amric;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amr-serve-fair-{}-{name}.h5l", std::process::id()));
    p
}

fn p95(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[(samples.len() * 95) / 100]
}

fn measure_points(client: &mut Client, handle: u32, n: usize) -> Vec<Duration> {
    (0..n)
        .map(|i| {
            let p = [
                (7 * i as i64) % 32,
                (3 * i as i64) % 32,
                (11 * i as i64) % 32,
            ];
            let t = Instant::now();
            client.point(handle, 0, p).unwrap();
            t.elapsed()
        })
        .collect()
}

#[test]
fn point_latency_survives_concurrent_full_file_scan() {
    let path = tmp("scan-vs-point");
    let s = NyxScenario::new(97);
    let cfg = AmrRunConfig {
        coarse_dims: (32, 32, 32),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 4,
        num_levels: 2,
        fine_fraction: 0.08,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&s, &cfg, 0.0);
    write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();

    // Starved cache: scans must actually decode every pass (a fully
    // cache-resident scan would make fairness trivial), and fine slabs
    // keep the gate hold times short.
    let mut server = Server::new(ServeConfig {
        cache_bytes: 256 << 10,
        max_open_files: 4,
        workers: 2,
        admission: AdmissionConfig {
            max_request_bytes: 1 << 30,
            scan_threshold_bytes: 64 << 10,
            scan_slots: 1,
            scan_slab_bytes: 64 << 10,
        },
    });
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let path_str = path.to_str().unwrap().to_string();

    // Solo baseline.
    let mut point_client = Client::connect_tcp(addr).unwrap();
    let handle = point_client.open(&path_str).unwrap().handle;
    measure_points(&mut point_client, handle, 30); // warm up connection + file
    let solo = p95(measure_points(&mut point_client, handle, 200));

    // Two clients scanning the entire file in a loop.
    let stop = Arc::new(AtomicBool::new(false));
    let scanners: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let path_str = path_str.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_tcp(addr).unwrap();
                let h = c.open(&path_str).unwrap().handle;
                let mut scans = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.roi(h, 0, [0, 0, 0], [31, 31, 31], WireSelect::All)
                        .unwrap();
                    scans += 1;
                }
                scans
            })
        })
        .collect();
    // Let the scans get going before measuring.
    std::thread::sleep(Duration::from_millis(100));
    let contended = p95(measure_points(&mut point_client, handle, 200));
    stop.store(true, Ordering::Relaxed);
    let total_scans: u64 = scanners.into_iter().map(|s| s.join().unwrap()).sum();
    assert!(total_scans >= 2, "scanners must have completed full passes");

    // ISSUE acceptance: contended p95 < ~5x solo. Floor the bound at
    // 50ms so scheduler noise on tiny solo latencies can't flake CI.
    let bound = (solo * 5).max(Duration::from_millis(50));
    assert!(
        contended < bound,
        "point p95 under scan load {contended:?} exceeded bound {bound:?} (solo {solo:?}, {total_scans} scans)"
    );

    let stats = point_client.stats().unwrap();
    assert!(
        stats.scan_queries >= total_scans,
        "scans must classify as scans"
    );
    assert!(
        stats.scan_slabs > stats.scan_queries,
        "full-file scans must slice into multiple slabs"
    );
    point_client.shutdown_server().unwrap();
    server.shutdown_and_join();
    std::fs::remove_file(&path).ok();
}
