//! Hostile-input robustness at the server's socket boundary (the
//! service-layer mirror of `h5lite`'s `index_corruption` suite):
//! truncated frames, lying length prefixes, garbage opcodes, absurd
//! element counts, and mid-request disconnects must produce typed
//! errors or clean connection drops — never a panic, never a
//! length-prefix-sized allocation, and never a wedged server.

use amr_serve::prelude::*;
use amr_serve::protocol::{read_frame, write_frame, Request, Response};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn start_server() -> (Server, SocketAddr) {
    let mut server = Server::new(ServeConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    (server, addr)
}

/// The server is healthy iff a fresh client can complete a stats call.
fn assert_server_alive(addr: SocketAddr) {
    let mut c = Client::connect_tcp(addr).expect("server must accept new connections");
    c.stats().expect("server must answer stats");
}

fn read_error_frame(stream: &mut TcpStream) -> (ErrorCode, String) {
    let payload = read_frame(stream, 1 << 20).expect("a response frame");
    match Response::decode(&payload).expect("decodable response") {
        Response::Error { code, message } => (code, message),
        other => panic!("expected error response, got {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let (server, addr) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Claim a 4 GiB frame. The server must answer with a typed BadFrame
    // error and close — long before any such buffer could be allocated.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.write_all(&[0u8; 16]).unwrap();
    let (code, message) = read_error_frame(&mut stream);
    assert_eq!(code, ErrorCode::BadFrame);
    assert!(
        message.contains("exceeds"),
        "message should name the cap: {message}"
    );
    // Framing is unrecoverable: the connection must be closed.
    let mut byte = [0u8; 1];
    assert_eq!(stream.read(&mut byte).unwrap_or(0), 0, "server must close");
    assert_server_alive(addr);
    server.shutdown_and_join();
}

#[test]
fn truncated_frame_then_disconnect_drops_cleanly() {
    let (server, addr) = start_server();
    for cut in [1usize, 3, 4, 5, 12] {
        let mut stream = TcpStream::connect(addr).unwrap();
        // A frame that promises 100 bytes, delivers `cut`, then hangs up
        // (including cuts inside the length prefix itself).
        let mut frame = Vec::new();
        frame.extend_from_slice(&100u32.to_le_bytes());
        frame.extend_from_slice(&[0x05; 100]);
        stream.write_all(&frame[..cut]).unwrap();
        drop(stream);
    }
    assert_server_alive(addr);
    server.shutdown_and_join();
}

#[test]
fn garbage_opcode_gets_typed_error_and_connection_survives() {
    let (server, addr) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Well-framed, nonsense opcode 0x7E.
    write_frame(&mut stream, &[0x7E, 1, 2, 3]).unwrap();
    let (code, message) = read_error_frame(&mut stream);
    assert_eq!(code, ErrorCode::BadFrame);
    assert!(message.contains("opcode"), "{message}");
    // The frame boundary was respected, so the same connection keeps
    // working with a valid request.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Stats(_)
    ));
    assert_server_alive(addr);
    server.shutdown_and_join();
}

#[test]
fn absurd_embedded_counts_do_not_allocate() {
    let (server, addr) = start_server();
    // An Open whose path-length field claims ~4 GiB inside a tiny body:
    // opcode 0x01 + u32 length + 4 bytes of "path".
    let mut payload = vec![0x01u8];
    payload.extend_from_slice(&0xFFFF_FF00u32.to_le_bytes());
    payload.extend_from_slice(b"oops");
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &payload).unwrap();
    let (code, _) = read_error_frame(&mut stream);
    assert_eq!(code, ErrorCode::BadFrame);
    assert_server_alive(addr);
    server.shutdown_and_join();
}

#[test]
fn truncated_bodies_of_every_request_get_typed_errors() {
    let (server, addr) = start_server();
    let requests = [
        Request::Open {
            path: "/tmp/x".into(),
        },
        Request::Close { handle: 7 },
        Request::Point {
            handle: 1,
            field: 0,
            p: [1, 2, 3],
        },
        Request::Plane {
            handle: 1,
            field: 0,
            level: 0,
            axis: 2,
            coord: 5,
        },
        Request::Roi {
            handle: 1,
            field: 0,
            lo: [0; 3],
            hi: [7; 3],
            select: WireSelect::All,
        },
        Request::Region {
            handle: 1,
            field: 0,
            level: 1,
            lo: [0; 3],
            hi: [3; 3],
        },
    ];
    let mut stream = TcpStream::connect(addr).unwrap();
    for req in &requests {
        let full = req.encode();
        // Cut the body (keep the opcode) — a well-framed but truncated
        // payload must come back as a typed error on a live connection.
        let cut = &full[..full.len() - 3];
        write_frame(&mut stream, cut).unwrap();
        let (code, _) = read_error_frame(&mut stream);
        assert_eq!(code, ErrorCode::BadFrame, "request {req:?}");
    }
    // Still alive after six malformed bodies on one connection.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Stats(_)
    ));
    server.shutdown_and_join();
}

#[test]
fn queries_on_handles_never_opened_are_typed_errors() {
    let (server, addr) = start_server();
    let mut client = Client::connect_tcp(addr).unwrap();
    for result in [
        client.point(42, 0, [0, 0, 0]).map(|_| ()),
        client
            .roi(42, 0, [0; 3], [7; 3], WireSelect::All)
            .map(|_| ()),
        client.close_handle(42),
    ] {
        match result.unwrap_err() {
            ServeError::Remote { code, .. } => assert_eq!(code, ErrorCode::BadHandle),
            other => panic!("expected BadHandle, got {other}"),
        }
    }
    // Opening a non-plotfile is a typed OpenFailed, not a dropped
    // connection.
    match client.open("/definitely/not/a/plotfile.h5l").unwrap_err() {
        ServeError::Remote { code, .. } => assert_eq!(code, ErrorCode::OpenFailed),
        other => panic!("expected OpenFailed, got {other}"),
    }
    assert!(client.stats().is_ok());
    server.shutdown_and_join();
}

#[test]
fn client_rejects_oversized_response_frames() {
    let (server, addr) = start_server();
    // A client with an 8-byte response cap: the stats response is larger,
    // so the client must refuse it *before* allocating.
    let mut client = Client::connect_tcp(addr)
        .unwrap()
        .with_max_response_frame(8);
    match client.stats().unwrap_err() {
        ServeError::FrameTooLarge { cap, .. } => assert_eq!(cap, 8),
        other => panic!("expected FrameTooLarge, got {other}"),
    }
    assert_server_alive(addr);
    server.shutdown_and_join();
}

#[test]
fn mid_request_disconnect_storm_leaves_server_healthy() {
    let (server, addr) = start_server();
    let handles: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                // Half-written Stats requests, dropped at random points.
                let frame = {
                    let mut f = Vec::new();
                    f.extend_from_slice(&1u32.to_le_bytes());
                    f.push(0x07);
                    f
                };
                stream.write_all(&frame[..1 + (i % frame.len())]).ok();
                // Connection dropped here, mid-frame for most i.
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_server_alive(addr);
    server.shutdown_and_join();
}
