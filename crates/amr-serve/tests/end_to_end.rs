//! Loopback end-to-end: real server, real sockets, concurrent clients,
//! and every wire answer compared **bitwise** against a direct
//! `QueryEngine` on the same plotfile. Also covers catalog
//! stale-generation invalidation, the Unix-socket transport, typed
//! `TooLarge` rejection, and the stats endpoint.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amr_query::prelude::*;
use amr_serve::prelude::*;
use amric::config::AmricConfig;
use amric::writer::{write_amric, write_amric_sharded};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amr-serve-e2e-{}-{name}.h5l", std::process::id()));
    p
}

fn write_plotfile(seed: u64, path: &std::path::Path) {
    let s = NyxScenario::new(seed);
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&s, &cfg, 0.0);
    write_amric(path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
}

/// Wire region data as bit patterns, keyed by level and box, for exact
/// comparison with a direct engine answer.
fn wire_bits(r: &WireRegion) -> (u32, [i64; 3], [i64; 3], Vec<u64>) {
    (
        r.level,
        r.lo,
        r.hi,
        r.data.iter().map(|v| v.to_bits()).collect(),
    )
}

fn direct_bits(lr: &amr_query::LevelRegion) -> (u32, [i64; 3], [i64; 3], Vec<u64>) {
    let v = |p: &IntVect| [p.get(0), p.get(1), p.get(2)];
    (
        lr.level as u32,
        v(&lr.region.lo),
        v(&lr.region.hi),
        lr.data.data().iter().map(|x| x.to_bits()).collect(),
    )
}

/// Small-threshold config so the 16^3 test files still exercise the
/// scan path (slab slicing + fair gate) rather than running everything
/// interactive.
fn test_config() -> ServeConfig {
    ServeConfig {
        cache_bytes: 4 << 20,
        max_open_files: 8,
        workers: 2,
        admission: AdmissionConfig {
            max_request_bytes: 64 << 20,
            scan_threshold_bytes: 64 << 10,
            scan_slots: 1,
            scan_slab_bytes: 32 << 10,
        },
    }
}

#[test]
fn concurrent_clients_match_direct_engine_bitwise() {
    let path_a = tmp("multi-a");
    let path_b = tmp("multi-b");
    write_plotfile(91, &path_a);
    write_plotfile(92, &path_b);
    let mut server = Server::new(test_config());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    // Direct baselines, one engine per file, independent of the server.
    let direct_a = QueryEngine::open(&path_a).unwrap();
    let direct_b = QueryEngine::open(&path_b).unwrap();
    let rois = [
        IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)),
        IntBox::from_extents(16, 16, 16),
    ];
    let expect_roi: Vec<Vec<_>> = [&direct_a, &direct_b]
        .iter()
        .flat_map(|e| {
            rois.iter().map(|roi| {
                e.roi(0, *roi, LevelSelect::All)
                    .unwrap()
                    .levels
                    .iter()
                    .map(direct_bits)
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let points: Vec<IntVect> = (0..12)
        .map(|i| IntVect::new((5 * i) % 16, i % 16, (3 * i) % 16))
        .collect();
    let expect_point: Vec<Vec<_>> = [&direct_a, &direct_b]
        .iter()
        .map(|e| {
            points
                .iter()
                .map(|p| {
                    e.point_sample(1, *p)
                        .unwrap()
                        .map(|s| (s.level as u32, s.value.to_bits()))
                })
                .collect()
        })
        .collect();
    let expect_plane: Vec<_> = [&direct_a, &direct_b]
        .iter()
        .map(|e| direct_bits(&e.plane_slice(0, 1, 2, 16).unwrap()))
        .collect();

    let paths = [path_a.clone(), path_b.clone()];
    let expect_roi = Arc::new(expect_roi);
    let expect_point = Arc::new(expect_point);
    let expect_plane = Arc::new(expect_plane);
    let mut handles = Vec::new();
    for t in 0..6usize {
        let paths = paths.clone();
        let points = points.to_vec();
        let rois = rois.to_vec();
        let (expect_roi, expect_point, expect_plane) = (
            Arc::clone(&expect_roi),
            Arc::clone(&expect_point),
            Arc::clone(&expect_plane),
        );
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr).unwrap();
            // Each client opens both files (catalog shares one engine per
            // file under the hood).
            let h: Vec<u32> = paths
                .iter()
                .map(|p| client.open(p.to_str().unwrap()).unwrap().handle)
                .collect();
            for round in 0..4 {
                let fi = (t + round) % 2;
                for (ri, roi) in rois.iter().enumerate() {
                    let view = client
                        .roi(
                            h[fi],
                            0,
                            [roi.lo.get(0), roi.lo.get(1), roi.lo.get(2)],
                            [roi.hi.get(0), roi.hi.get(1), roi.hi.get(2)],
                            WireSelect::All,
                        )
                        .unwrap();
                    let got: Vec<_> = view.levels.iter().map(wire_bits).collect();
                    assert_eq!(
                        got,
                        expect_roi[fi * 2 + ri],
                        "client {t} file {fi} roi {ri}"
                    );
                }
                for (pi, p) in points.iter().enumerate() {
                    let got = client
                        .point(h[fi], 1, [p.get(0), p.get(1), p.get(2)])
                        .unwrap()
                        .map(|(lvl, _, v)| (lvl, v.to_bits()));
                    assert_eq!(got, expect_point[fi][pi], "client {t} file {fi} point {pi}");
                }
                let plane = client.plane(h[fi], 0, 1, 2, 16).unwrap();
                assert_eq!(wire_bits(&plane), expect_plane[fi], "client {t} file {fi}");
            }
            for handle in h {
                client.close_handle(handle).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Stats reflect the multi-tenant reality: one engine per file, both
    // interactive and scan traffic, and a shared cache doing real work.
    let mut client = Client::connect_tcp(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.open_files, 2, "one pooled engine per file");
    assert_eq!(stats.catalog_opens, 2);
    assert_eq!(
        stats.catalog_open_hits, 10,
        "6 clients x 2 files minus 2 builds"
    );
    assert!(stats.interactive_queries > 0, "points must be interactive");
    assert!(stats.scan_queries > 0, "full-domain ROI must be a scan");
    assert!(stats.scan_slabs >= stats.scan_queries, "scans are sliced");
    assert!(stats.cache_hits > 0, "repeat traffic must hit the cache");
    assert_eq!(stats.files.len(), 2);
    assert!(stats.files.iter().all(|f| f.chunks_decoded > 0));
    assert_eq!(stats.rejected_too_large, 0);

    client.shutdown_server().unwrap();
    server.shutdown_and_join();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

#[test]
fn uds_transport_answers_identically_to_tcp() {
    let path = tmp("uds");
    write_plotfile(93, &path);
    let mut sock = std::env::temp_dir();
    sock.push(format!("amr-serve-e2e-{}.sock", std::process::id()));
    let mut server = Server::new(test_config());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    server.listen_uds(&sock).unwrap();

    let mut tcp = Client::connect_tcp(addr).unwrap();
    let mut uds = Client::connect_uds(&sock).unwrap();
    let ht = tcp.open(path.to_str().unwrap()).unwrap();
    let hu = uds.open(path.to_str().unwrap()).unwrap();
    // Same pooled engine: same file id, same generation, fresh handle.
    assert_eq!(ht.file_id, hu.file_id);
    assert_eq!(ht.generation, hu.generation);
    let a = tcp
        .roi(ht.handle, 0, [0, 0, 0], [15, 15, 15], WireSelect::All)
        .unwrap();
    let b = uds
        .roi(hu.handle, 0, [0, 0, 0], [15, 15, 15], WireSelect::All)
        .unwrap();
    assert_eq!(a.field_name, b.field_name);
    let bits = |v: &amr_serve::RoiView| v.levels.iter().map(wire_bits).collect::<Vec<_>>();
    assert_eq!(bits(&a), bits(&b), "transports must not change answers");

    uds.shutdown_server().unwrap();
    server.shutdown_and_join();
    std::fs::remove_file(&sock).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn rewritten_plotfile_invalidates_stale_engine() {
    let path = tmp("stale");
    write_plotfile(94, &path);
    let mut server = Server::new(test_config());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();

    let first = client.open(path.to_str().unwrap()).unwrap();
    let before = client.point(first.handle, 0, [8, 8, 8]).unwrap().unwrap();

    // In-situ pipelines rewrite snapshots in place: replace the file's
    // bytes with a different run.
    write_plotfile(95, &path);
    let direct = QueryEngine::open(&path).unwrap();
    let expect = direct
        .point_sample(0, IntVect::new(8, 8, 8))
        .unwrap()
        .unwrap();

    let second = client.open(path.to_str().unwrap()).unwrap();
    assert_ne!(
        second.file_id, first.file_id,
        "stale engine must not be reused"
    );
    assert_ne!(second.generation, first.generation);
    let after = client.point(second.handle, 0, [8, 8, 8]).unwrap().unwrap();
    assert_eq!(
        after.2.to_bits(),
        expect.value.to_bits(),
        "new bytes served"
    );
    assert_ne!(
        after.2.to_bits(),
        before.2.to_bits(),
        "seeds differ by design"
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.catalog_reopens_stale, 1);
    assert_eq!(stats.open_files, 1, "stale entry replaced, not accumulated");

    // The *old* handle now points at a dropped catalog entry — still
    // answers (the engine lives while the handle holds it), from the old
    // bytes' in-memory state or fails the read; either way no panic and
    // the connection survives.
    let _ = client.point(first.handle, 0, [8, 8, 8]);
    assert!(
        client.stats().is_ok(),
        "connection must survive stale-handle use"
    );

    client.shutdown_server().unwrap();
    server.shutdown_and_join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn oversized_requests_get_typed_rejection() {
    let path = tmp("toolarge");
    write_plotfile(96, &path);
    let mut cfg = test_config();
    cfg.admission.max_request_bytes = 16 << 10; // reject almost everything
    let mut server = Server::new(cfg);
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    let info = client.open(path.to_str().unwrap()).unwrap();
    let err = client
        .roi(info.handle, 0, [0, 0, 0], [15, 15, 15], WireSelect::All)
        .unwrap_err();
    match err {
        ServeError::Remote { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
        other => panic!("expected typed TooLarge, got {other}"),
    }
    // Connection is intact and small queries still pass.
    assert!(client.point(info.handle, 0, [1, 1, 1]).is_ok());
    assert_eq!(client.stats().unwrap().rejected_too_large, 1);
    client.shutdown_server().unwrap();
    server.shutdown_and_join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn same_stat_rewrite_is_detected_by_fingerprint() {
    // Back-to-back in-situ rewrite: same length, mtime restored to the
    // original value (coarse-granularity filesystems produce identical
    // stamps on their own), different bytes. `(len, mtime_ns)` alone
    // cannot distinguish the generations — the sampled content
    // fingerprint must.
    let path = tmp("fingerprint");
    write_plotfile(96, &path);
    let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
    let gen_before = Generation::of(&path).unwrap();

    let catalog = Catalog::new(4 << 20, 4, 1);
    let first = catalog.open(&path).unwrap();

    // Rewrite: flip bytes inside an interior fingerprint probe window
    // (offset formula mirrors the sampler), keep the length, restore the
    // mtime so the stat-visible identity is byte-for-byte unchanged.
    let mut bytes = std::fs::read(&path).unwrap();
    let off = (bytes.len() / 9) * 4 + 7;
    for b in &mut bytes[off..off + 16] {
        *b ^= 0xA5;
    }
    std::fs::write(&path, &bytes).unwrap();
    std::fs::File::options()
        .write(true)
        .open(&path)
        .unwrap()
        .set_modified(mtime)
        .unwrap();

    let gen_after = Generation::of(&path).unwrap();
    assert_eq!(gen_after.len, gen_before.len, "rewrite preserved length");
    assert_eq!(
        gen_after.mtime_ns, gen_before.mtime_ns,
        "rewrite preserved mtime"
    );
    assert_ne!(
        gen_after.fingerprint, gen_before.fingerprint,
        "content fingerprint must see the rewrite"
    );

    // Catalog path: the pooled engine must be invalidated, not reused.
    // (The patched file may or may not still parse as a plotfile; either
    // way the stale engine is gone and the counter says why.)
    if let Ok(second) = catalog.open(&path) {
        assert_ne!(second.file_id, first.file_id);
    }
    assert_eq!(catalog.stats().reopens_stale, 1);
    assert_eq!(catalog.stats().open_hits, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_container_served_through_catalog_with_generation_tracking() {
    // A sharded plotfile opens through the same catalog path as a single
    // file, answers bitwise like a direct engine, and a rewrite of the
    // container (new finalize → new manifest) is seen as a new
    // generation, not served stale.
    let dir = h5lite::testutil::TempDir::new("amr-serve-sharded");
    let path = dir.file("pf.h5ls");
    let s = NyxScenario::new(37);
    let run = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&s, &run, 0.0);
    write_amric_sharded(&path, 3, &h, &AmricConfig::lr(1e-3), 8).unwrap();

    let catalog = Catalog::new(4 << 20, 4, 1);
    let first = catalog.open(&path).unwrap();
    let direct = QueryEngine::open(&path).unwrap();
    let roi = IntBox::new(IntVect::new(2, 2, 2), IntVect::new(12, 12, 12));
    let a = first.engine.roi(0, roi, LevelSelect::All).unwrap();
    let b = direct.roi(0, roi, LevelSelect::All).unwrap();
    for (la, lb) in a.levels.iter().zip(&b.levels) {
        assert_eq!(direct_bits(la), direct_bits(lb), "catalog vs direct");
    }
    // Same generation → pooled engine is reused.
    let again = catalog.open(&path).unwrap();
    assert_eq!(again.file_id, first.file_id);
    assert_eq!(catalog.stats().open_hits, 1);

    // Rewrite the container with different content: generation moves.
    let gen_before = Generation::of(&path).unwrap();
    let h2 = build_hierarchy(&NyxScenario::new(38), &run, 0.0);
    write_amric_sharded(&path, 3, &h2, &AmricConfig::lr(1e-3), 8).unwrap();
    let gen_after = Generation::of(&path).unwrap();
    assert_ne!(gen_before, gen_after, "rewrite must change the generation");
    let fresh = catalog.open(&path).unwrap();
    assert_ne!(fresh.file_id, first.file_id);
    assert_eq!(catalog.stats().reopens_stale, 1);
}
