//! Multi-tenant query service over AMRIC plotfiles.
//!
//! `amr-serve` turns the [`amr_query`] engine into a long-running
//! service: many clients, many open plotfiles, one process-wide decode
//! cache budget, and scheduling that keeps latency-sensitive point
//! queries responsive while bulk scans proceed.
//!
//! The pieces:
//!
//! * [`catalog`] — the open-engine pool keyed by `(path, generation)`,
//!   with stat-based invalidation of rewritten snapshots and LRU
//!   eviction of idle engines; all engines share one
//!   [`amr_query::ChunkStore`] byte budget.
//! * [`admission`] — cost-before-I/O classification of requests into
//!   interactive vs scan, the per-connection decode-byte bound, and the
//!   FIFO [`admission::FairGate`] that round-robins scan slabs.
//! * [`protocol`] — the length-prefixed binary wire format (open /
//!   query / stats / close over TCP or Unix sockets) with typed errors
//!   and hard frame caps; decoding never trusts a length it has not
//!   bounds-checked.
//! * [`server`] — the accept loops and per-connection request loop.
//! * [`client`] — a small blocking client used by the tests, the load
//!   generator, and anything else that wants typed calls instead of raw
//!   frames.
//!
//! Start-to-finish, in process:
//!
//! ```no_run
//! use amr_serve::prelude::*;
//!
//! let mut server = Server::new(ServeConfig::default());
//! let addr = server.listen_tcp("127.0.0.1:0").unwrap();
//! let mut client = Client::connect_tcp(addr).unwrap();
//! let info = client.open("/data/plt00100.amrc").unwrap();
//! let sample = client.point(info.handle, 0, [10, 20, 30]).unwrap();
//! println!("{sample:?}");
//! client.shutdown_server().unwrap();
//! server.shutdown_and_join();
//! ```

pub mod admission;
pub mod catalog;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{AdmissionConfig, FairGate, RequestClass};
pub use catalog::{Catalog, CatalogEntry, CatalogStats, Generation};
pub use client::{Client, RoiView};
pub use protocol::{
    ErrorCode, FileStats, OpenInfo, Request, Response, ServeError, ServeResult, StatsReport,
    WireRegion, WireSelect,
};
pub use server::{ServeConfig, ServeState, Server};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::admission::{AdmissionConfig, FairGate, RequestClass};
    pub use crate::catalog::{Catalog, CatalogEntry, CatalogStats, Generation};
    pub use crate::client::{Client, RoiView};
    pub use crate::protocol::{
        ErrorCode, OpenInfo, ServeError, ServeResult, StatsReport, WireRegion, WireSelect,
    };
    pub use crate::server::{ServeConfig, ServeState, Server};
}
