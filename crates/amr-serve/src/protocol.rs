//! The `amr-serve` wire protocol: length-prefixed binary frames over any
//! byte stream (TCP or Unix-domain sockets — the protocol never cares).
//!
//! # Framing
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes. The payload's first byte is the
//! opcode; the rest is the opcode-specific body encoded with the same
//! tiny little-endian helpers the compressed-stream headers use
//! ([`sz_codec::wire`]) — no serde, no heavyweight framework.
//!
//! Robustness rules (enforced here, tested in
//! `tests/protocol_robustness.rs`):
//!
//! * A declared length beyond the reader's cap is rejected **before any
//!   allocation** ([`ServeError::FrameTooLarge`]).
//! * Payload bytes are read incrementally in bounded steps, so a lying
//!   length never produces an absurd up-front allocation; a peer that
//!   disconnects mid-frame surfaces as [`ServeError::Disconnected`].
//! * Every body decode is bounds-checked through [`sz_codec::wire::Reader`];
//!   malformed bodies surface as [`ServeError::Frame`], never a panic.
//! * Array counts are validated against the bytes actually present
//!   (`check_count`) before any `Vec` reservation.
//!
//! Requests are deliberately small (paths and a few coordinates): the
//! request cap is [`MAX_REQUEST_FRAME`]. Responses carry decoded field
//! data and use the client's configurable cap
//! ([`DEFAULT_MAX_RESPONSE_FRAME`]).

use std::io::{Read, Write};
use sz_codec::wire::{Reader, Writer};

/// Hard cap on request frames (requests are tiny; anything bigger is a
/// confused or malicious peer).
pub const MAX_REQUEST_FRAME: u32 = 1 << 20;

/// Default cap a client accepts for one response frame (decoded region
/// payloads ride in responses, so this is generous).
pub const DEFAULT_MAX_RESPONSE_FRAME: u32 = 1 << 30;

/// Incremental read step while draining a frame body: bounds transient
/// allocation growth under lying length prefixes.
const READ_STEP: usize = 64 << 10;

/// Typed error code carried by [`Response::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad opcode, truncated body).
    BadFrame = 1,
    /// The request was well-formed but semantically invalid.
    BadRequest = 2,
    /// Unknown open-file handle.
    BadHandle = 3,
    /// The plotfile could not be opened.
    OpenFailed = 4,
    /// The query was rejected by the engine (bad field/level/region).
    BadQuery = 5,
    /// The plotfile contradicts its own metadata.
    Inconsistent = 6,
    /// A chunk failed to decode.
    Codec = 7,
    /// Filesystem/network error while answering.
    Io = 8,
    /// Admission control: the request's estimated decode bytes exceed
    /// the per-connection in-flight bound.
    TooLarge = 9,
    /// The server is shutting down.
    Shutdown = 10,
    /// Anything else.
    Internal = 11,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::BadHandle,
            4 => ErrorCode::OpenFailed,
            5 => ErrorCode::BadQuery,
            6 => ErrorCode::Inconsistent,
            7 => ErrorCode::Codec,
            8 => ErrorCode::Io,
            9 => ErrorCode::TooLarge,
            10 => ErrorCode::Shutdown,
            11 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Anything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// The peer closed the stream (at a frame boundary or mid-frame).
    Disconnected,
    /// Malformed frame or body.
    Frame(String),
    /// A declared frame length beyond the configured cap.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The reader's cap.
        cap: u32,
    },
    /// The server answered with a typed error frame (client side).
    Remote {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Disconnected => write!(f, "peer disconnected"),
            ServeError::Frame(m) => write!(f, "malformed frame: {m}"),
            ServeError::FrameTooLarge { len, cap } => {
                write!(f, "frame of {len} bytes exceeds cap of {cap}")
            }
            ServeError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Disconnected
        } else {
            ServeError::Io(e)
        }
    }
}

impl From<sz_codec::CodecError> for ServeError {
    fn from(e: sz_codec::CodecError) -> Self {
        ServeError::Frame(e.to_string())
    }
}

/// Result alias.
pub type ServeResult<T> = Result<T, ServeError>;

/// Which AMR levels a wire query covers (mirror of
/// [`amr_query::LevelSelect`], kept separate so the wire format never
/// drifts silently with the library enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireSelect {
    /// Every level.
    All,
    /// One level.
    Level(u32),
    /// Inclusive range.
    Range(u32, u32),
    /// Finest level only.
    Finest,
}

impl WireSelect {
    fn encode(&self, w: &mut Writer) {
        match self {
            WireSelect::All => w.put_u8(0),
            WireSelect::Level(l) => {
                w.put_u8(1);
                w.put_u32(*l);
            }
            WireSelect::Range(lo, hi) => {
                w.put_u8(2);
                w.put_u32(*lo);
                w.put_u32(*hi);
            }
            WireSelect::Finest => w.put_u8(3),
        }
    }

    fn decode(r: &mut Reader) -> ServeResult<WireSelect> {
        Ok(match r.get_u8()? {
            0 => WireSelect::All,
            1 => WireSelect::Level(r.get_u32()?),
            2 => WireSelect::Range(r.get_u32()?, r.get_u32()?),
            3 => WireSelect::Finest,
            t => return Err(ServeError::Frame(format!("unknown level-select tag {t}"))),
        })
    }
}

impl From<WireSelect> for amr_query::LevelSelect {
    fn from(s: WireSelect) -> Self {
        match s {
            WireSelect::All => amr_query::LevelSelect::All,
            WireSelect::Level(l) => amr_query::LevelSelect::Level(l as usize),
            WireSelect::Range(lo, hi) => amr_query::LevelSelect::Range(lo as usize, hi as usize),
            WireSelect::Finest => amr_query::LevelSelect::Finest,
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open (or re-validate) a plotfile through the server's catalog.
    Open {
        /// Path as the server resolves it.
        path: String,
    },
    /// Release one open-file handle.
    Close {
        /// Handle from [`Response::Opened`].
        handle: u32,
    },
    /// Sample one cell (finest covering level wins).
    Point {
        /// Open-file handle.
        handle: u32,
        /// Field component.
        field: u32,
        /// Cell in finest-level index space.
        p: [i64; 3],
    },
    /// Full-domain plane slice at one level.
    Plane {
        /// Open-file handle.
        handle: u32,
        /// Field component.
        field: u32,
        /// Level the plane cuts.
        level: u32,
        /// Axis pinned (0 = x, 1 = y, 2 = z).
        axis: u8,
        /// Pinned coordinate in the level's index space.
        coord: i64,
    },
    /// Region-of-interest query over selected levels (ROI in level-0
    /// coordinates, refined per level).
    Roi {
        /// Open-file handle.
        handle: u32,
        /// Field component.
        field: u32,
        /// Inclusive ROI lower corner.
        lo: [i64; 3],
        /// Inclusive ROI upper corner.
        hi: [i64; 3],
        /// Level selection.
        select: WireSelect,
    },
    /// One rectangular region at one level (region in that level's own
    /// index space).
    Region {
        /// Open-file handle.
        handle: u32,
        /// Field component.
        field: u32,
        /// Level queried.
        level: u32,
        /// Inclusive lower corner.
        lo: [i64; 3],
        /// Inclusive upper corner.
        hi: [i64; 3],
    },
    /// Server/cache/catalog statistics snapshot.
    Stats,
    /// Ask the server to stop accepting connections.
    Shutdown,
}

const OP_OPEN: u8 = 0x01;
const OP_CLOSE: u8 = 0x02;
const OP_POINT: u8 = 0x03;
const OP_PLANE: u8 = 0x04;
const OP_ROI: u8 = 0x05;
const OP_REGION: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_SHUTDOWN: u8 = 0x08;

const OP_OPENED: u8 = 0x81;
const OP_CLOSED: u8 = 0x82;
const OP_POINT_RESULT: u8 = 0x83;
const OP_REGION_RESULT: u8 = 0x84;
const OP_VIEW_RESULT: u8 = 0x85;
const OP_STATS_RESULT: u8 = 0x86;
const OP_SHUTDOWN_ACK: u8 = 0x87;
const OP_ERROR: u8 = 0xFF;

fn put_vect(w: &mut Writer, v: &[i64; 3]) {
    for c in v {
        w.put_u64(*c as u64);
    }
}

fn get_vect(r: &mut Reader) -> ServeResult<[i64; 3]> {
    Ok([
        r.get_u64()? as i64,
        r.get_u64()? as i64,
        r.get_u64()? as i64,
    ])
}

fn put_string(w: &mut Writer, s: &str) {
    w.put_block(s.as_bytes());
}

fn get_string(r: &mut Reader) -> ServeResult<String> {
    let b = r.get_block()?;
    String::from_utf8(b.to_vec()).map_err(|_| ServeError::Frame("non-UTF-8 string".into()))
}

impl Request {
    /// Encode into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Open { path } => {
                w.put_u8(OP_OPEN);
                put_string(&mut w, path);
            }
            Request::Close { handle } => {
                w.put_u8(OP_CLOSE);
                w.put_u32(*handle);
            }
            Request::Point { handle, field, p } => {
                w.put_u8(OP_POINT);
                w.put_u32(*handle);
                w.put_u32(*field);
                put_vect(&mut w, p);
            }
            Request::Plane {
                handle,
                field,
                level,
                axis,
                coord,
            } => {
                w.put_u8(OP_PLANE);
                w.put_u32(*handle);
                w.put_u32(*field);
                w.put_u32(*level);
                w.put_u8(*axis);
                w.put_u64(*coord as u64);
            }
            Request::Roi {
                handle,
                field,
                lo,
                hi,
                select,
            } => {
                w.put_u8(OP_ROI);
                w.put_u32(*handle);
                w.put_u32(*field);
                put_vect(&mut w, lo);
                put_vect(&mut w, hi);
                select.encode(&mut w);
            }
            Request::Region {
                handle,
                field,
                level,
                lo,
                hi,
            } => {
                w.put_u8(OP_REGION);
                w.put_u32(*handle);
                w.put_u32(*field);
                w.put_u32(*level);
                put_vect(&mut w, lo);
                put_vect(&mut w, hi);
            }
            Request::Stats => w.put_u8(OP_STATS),
            Request::Shutdown => w.put_u8(OP_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> ServeResult<Request> {
        let mut r = Reader::new(payload);
        let op = r.get_u8()?;
        let req = match op {
            OP_OPEN => Request::Open {
                path: get_string(&mut r)?,
            },
            OP_CLOSE => Request::Close {
                handle: r.get_u32()?,
            },
            OP_POINT => Request::Point {
                handle: r.get_u32()?,
                field: r.get_u32()?,
                p: get_vect(&mut r)?,
            },
            OP_PLANE => Request::Plane {
                handle: r.get_u32()?,
                field: r.get_u32()?,
                level: r.get_u32()?,
                axis: r.get_u8()?,
                coord: r.get_u64()? as i64,
            },
            OP_ROI => Request::Roi {
                handle: r.get_u32()?,
                field: r.get_u32()?,
                lo: get_vect(&mut r)?,
                hi: get_vect(&mut r)?,
                select: WireSelect::decode(&mut r)?,
            },
            OP_REGION => Request::Region {
                handle: r.get_u32()?,
                field: r.get_u32()?,
                level: r.get_u32()?,
                lo: get_vect(&mut r)?,
                hi: get_vect(&mut r)?,
            },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            other => {
                return Err(ServeError::Frame(format!(
                    "unknown request opcode {other:#x}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(ServeError::Frame(format!(
                "{} trailing bytes after request body",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

/// One level's slice of a region/ROI response.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRegion {
    /// Level the data came from.
    pub level: u32,
    /// Inclusive lower corner in the level's index space.
    pub lo: [i64; 3],
    /// Inclusive upper corner.
    pub hi: [i64; 3],
    /// Values in Fortran order over `lo..=hi`.
    pub data: Vec<f64>,
}

impl WireRegion {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.level);
        put_vect(w, &self.lo);
        put_vect(w, &self.hi);
        w.put_u64(self.data.len() as u64);
        for v in &self.data {
            w.put_f64(*v);
        }
    }

    fn decode(r: &mut Reader) -> ServeResult<WireRegion> {
        let level = r.get_u32()?;
        let lo = get_vect(r)?;
        let hi = get_vect(r)?;
        let n = r.get_u64()? as usize;
        // Validate the count against bytes actually present before any
        // reservation (a lying count must not allocate).
        let n = r.check_count(n, 8)?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.get_f64()?);
        }
        Ok(WireRegion {
            level,
            lo,
            hi,
            data,
        })
    }
}

/// Summary returned by a successful open.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenInfo {
    /// Connection-local handle for subsequent queries.
    pub handle: u32,
    /// Process-wide id of this `(path, generation)` in the shared cache.
    pub file_id: u64,
    /// Generation stamp `(len_bytes, mtime_ns)` the catalog validated.
    pub generation: (u64, u64),
    /// Number of AMR levels.
    pub levels: u32,
    /// Field names in component order.
    pub fields: Vec<String>,
    /// Whether the file carries a persistent chunk index.
    pub indexed: bool,
}

/// One file's row in a stats report: identity, the per-tenant cache
/// counters of its handle into the shared store, and its engine
/// counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FileStats {
    /// Path the catalog opened.
    pub path: String,
    /// Shared-cache file id.
    pub file_id: u64,
    /// Generation stamp `(len_bytes, mtime_ns)`.
    pub generation: (u64, u64),
    /// This file's cache hits.
    pub cache_hits: u64,
    /// This file's cache misses.
    pub cache_misses: u64,
    /// This file's cache insertions.
    pub cache_insertions: u64,
    /// Evictions charged to this file's inserts.
    pub cache_evictions: u64,
    /// ROI queries answered.
    pub roi_queries: u64,
    /// Level-region queries answered.
    pub region_queries: u64,
    /// Plane queries answered.
    pub plane_queries: u64,
    /// Point queries answered.
    pub point_queries: u64,
    /// Chunks decoded.
    pub chunks_decoded: u64,
    /// Decoded bytes produced.
    pub decoded_bytes: u64,
    /// Stored bytes read.
    pub read_bytes: u64,
}

/// Whole-server statistics snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReport {
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Requests answered (including error answers).
    pub requests: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Interactive-class queries admitted.
    pub interactive_queries: u64,
    /// Scan-class queries admitted.
    pub scan_queries: u64,
    /// Slabs large scans were sliced into (each slab holds the scan gate
    /// once; more slabs = finer interleaving).
    pub scan_slabs: u64,
    /// Requests rejected because their decode estimate exceeded the
    /// per-connection bound.
    pub rejected_too_large: u64,
    /// Payload bytes written in responses.
    pub response_bytes: u64,
    /// Global shared-store hits.
    pub cache_hits: u64,
    /// Global shared-store misses.
    pub cache_misses: u64,
    /// Global shared-store insertions.
    pub cache_insertions: u64,
    /// Global shared-store evictions.
    pub cache_evictions: u64,
    /// Decoded bytes resident in the shared store.
    pub cache_resident_bytes: u64,
    /// The shared store's byte budget.
    pub cache_capacity_bytes: u64,
    /// Plotfiles currently open in the catalog.
    pub open_files: u64,
    /// Catalog opens that built a new engine.
    pub catalog_opens: u64,
    /// Catalog opens answered by an existing engine.
    pub catalog_open_hits: u64,
    /// Reopens that found a stale generation and invalidated it.
    pub catalog_reopens_stale: u64,
    /// Idle engines evicted to respect the open-file bound.
    pub catalog_evicted_idle: u64,
    /// Per-file rows.
    pub files: Vec<FileStats>,
}

impl StatsReport {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.connections_total,
            self.connections_active,
            self.requests,
            self.errors,
            self.interactive_queries,
            self.scan_queries,
            self.scan_slabs,
            self.rejected_too_large,
            self.response_bytes,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.cache_resident_bytes,
            self.cache_capacity_bytes,
            self.open_files,
            self.catalog_opens,
            self.catalog_open_hits,
            self.catalog_reopens_stale,
            self.catalog_evicted_idle,
        ] {
            w.put_u64(v);
        }
        w.put_u32(self.files.len() as u32);
        for f in &self.files {
            put_string(w, &f.path);
            w.put_u64(f.file_id);
            w.put_u64(f.generation.0);
            w.put_u64(f.generation.1);
            for v in [
                f.cache_hits,
                f.cache_misses,
                f.cache_insertions,
                f.cache_evictions,
                f.roi_queries,
                f.region_queries,
                f.plane_queries,
                f.point_queries,
                f.chunks_decoded,
                f.decoded_bytes,
                f.read_bytes,
            ] {
                w.put_u64(v);
            }
        }
    }

    fn decode(r: &mut Reader) -> ServeResult<StatsReport> {
        let mut s = StatsReport::default();
        let fields: [&mut u64; 20] = [
            &mut s.connections_total,
            &mut s.connections_active,
            &mut s.requests,
            &mut s.errors,
            &mut s.interactive_queries,
            &mut s.scan_queries,
            &mut s.scan_slabs,
            &mut s.rejected_too_large,
            &mut s.response_bytes,
            &mut s.cache_hits,
            &mut s.cache_misses,
            &mut s.cache_insertions,
            &mut s.cache_evictions,
            &mut s.cache_resident_bytes,
            &mut s.cache_capacity_bytes,
            &mut s.open_files,
            &mut s.catalog_opens,
            &mut s.catalog_open_hits,
            &mut s.catalog_reopens_stale,
            &mut s.catalog_evicted_idle,
        ];
        for slot in fields {
            *slot = r.get_u64()?;
        }
        let n = r.get_u32()? as usize;
        let n = r.check_count(n, 8 * 15)?;
        let mut files = Vec::with_capacity(n);
        for _ in 0..n {
            let path = get_string(r)?;
            let file_id = r.get_u64()?;
            let generation = (r.get_u64()?, r.get_u64()?);
            let mut f = FileStats {
                path,
                file_id,
                generation,
                ..FileStats::default()
            };
            let counters: [&mut u64; 11] = [
                &mut f.cache_hits,
                &mut f.cache_misses,
                &mut f.cache_insertions,
                &mut f.cache_evictions,
                &mut f.roi_queries,
                &mut f.region_queries,
                &mut f.plane_queries,
                &mut f.point_queries,
                &mut f.chunks_decoded,
                &mut f.decoded_bytes,
                &mut f.read_bytes,
            ];
            for slot in counters {
                *slot = r.get_u64()?;
            }
            files.push(f);
        }
        s.files = files;
        Ok(s)
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Successful open.
    Opened(OpenInfo),
    /// Successful close.
    Closed,
    /// Point sample: `None` when no level holds the cell.
    Point(Option<(u32, [i64; 3], f64)>),
    /// One level region (plane and region queries).
    Region(WireRegion),
    /// An ROI view: per-level slices, coarsest first.
    View {
        /// Queried field component.
        field: u32,
        /// Queried field name.
        field_name: String,
        /// Per-level slices.
        levels: Vec<WireRegion>,
    },
    /// Statistics snapshot.
    Stats(StatsReport),
    /// Shutdown acknowledged.
    ShutdownAck,
    /// Typed failure.
    Error {
        /// What class of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encode into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Opened(info) => {
                w.put_u8(OP_OPENED);
                w.put_u32(info.handle);
                w.put_u64(info.file_id);
                w.put_u64(info.generation.0);
                w.put_u64(info.generation.1);
                w.put_u32(info.levels);
                w.put_u32(info.fields.len() as u32);
                for f in &info.fields {
                    put_string(&mut w, f);
                }
                w.put_u8(info.indexed as u8);
            }
            Response::Closed => w.put_u8(OP_CLOSED),
            Response::Point(p) => {
                w.put_u8(OP_POINT_RESULT);
                match p {
                    None => w.put_u8(0),
                    Some((level, cell, value)) => {
                        w.put_u8(1);
                        w.put_u32(*level);
                        put_vect(&mut w, cell);
                        w.put_f64(*value);
                    }
                }
            }
            Response::Region(region) => {
                w.put_u8(OP_REGION_RESULT);
                region.encode(&mut w);
            }
            Response::View {
                field,
                field_name,
                levels,
            } => {
                w.put_u8(OP_VIEW_RESULT);
                w.put_u32(*field);
                put_string(&mut w, field_name);
                w.put_u32(levels.len() as u32);
                for l in levels {
                    l.encode(&mut w);
                }
            }
            Response::Stats(report) => {
                w.put_u8(OP_STATS_RESULT);
                report.encode(&mut w);
            }
            Response::ShutdownAck => w.put_u8(OP_SHUTDOWN_ACK),
            Response::Error { code, message } => {
                w.put_u8(OP_ERROR);
                w.put_u16(*code as u16);
                put_string(&mut w, message);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> ServeResult<Response> {
        let mut r = Reader::new(payload);
        let op = r.get_u8()?;
        let resp = match op {
            OP_OPENED => {
                let handle = r.get_u32()?;
                let file_id = r.get_u64()?;
                let generation = (r.get_u64()?, r.get_u64()?);
                let levels = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let n = r.check_count(n, 8)?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(get_string(&mut r)?);
                }
                let indexed = r.get_u8()? != 0;
                Response::Opened(OpenInfo {
                    handle,
                    file_id,
                    generation,
                    levels,
                    fields,
                    indexed,
                })
            }
            OP_CLOSED => Response::Closed,
            OP_POINT_RESULT => match r.get_u8()? {
                0 => Response::Point(None),
                1 => {
                    let level = r.get_u32()?;
                    let cell = get_vect(&mut r)?;
                    let value = r.get_f64()?;
                    Response::Point(Some((level, cell, value)))
                }
                t => return Err(ServeError::Frame(format!("bad point-option tag {t}"))),
            },
            OP_REGION_RESULT => Response::Region(WireRegion::decode(&mut r)?),
            OP_VIEW_RESULT => {
                let field = r.get_u32()?;
                let field_name = get_string(&mut r)?;
                let n = r.get_u32()? as usize;
                let n = r.check_count(n, 4 + 48 + 8)?;
                let mut levels = Vec::with_capacity(n);
                for _ in 0..n {
                    levels.push(WireRegion::decode(&mut r)?);
                }
                Response::View {
                    field,
                    field_name,
                    levels,
                }
            }
            OP_STATS_RESULT => Response::Stats(StatsReport::decode(&mut r)?),
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            OP_ERROR => {
                let raw = r.get_u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| ServeError::Frame(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: get_string(&mut r)?,
                }
            }
            other => {
                return Err(ServeError::Frame(format!(
                    "unknown response opcode {other:#x}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(ServeError::Frame(format!(
                "{} trailing bytes after response body",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

/// Write one frame: length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> ServeResult<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| ServeError::Frame("payload exceeds u32 framing".into()))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload, enforcing `cap` on the declared length
/// before allocating and growing the buffer incrementally while bytes
/// actually arrive (a lying length prefix can therefore never force an
/// absurd allocation — EOF mid-body is [`ServeError::Disconnected`]).
pub fn read_frame(r: &mut impl Read, cap: u32) -> ServeResult<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(ServeError::Frame("empty frame (no opcode)".into()));
    }
    if len > cap {
        return Err(ServeError::FrameTooLarge { len, cap });
    }
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_STEP));
    let mut step = vec![0u8; READ_STEP.min(len)];
    while payload.len() < len {
        let want = (len - payload.len()).min(step.len());
        r.read_exact(&mut step[..want])?;
        payload.extend_from_slice(&step[..want]);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).expect("decode"), req);
    }

    fn roundtrip_response(resp: Response) {
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).expect("decode"), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Open {
            path: "/data/plt0001.h5l".into(),
        });
        roundtrip_request(Request::Close { handle: 7 });
        roundtrip_request(Request::Point {
            handle: 1,
            field: 2,
            p: [5, -3, 11],
        });
        roundtrip_request(Request::Plane {
            handle: 1,
            field: 0,
            level: 1,
            axis: 2,
            coord: -4,
        });
        for select in [
            WireSelect::All,
            WireSelect::Level(2),
            WireSelect::Range(0, 1),
            WireSelect::Finest,
        ] {
            roundtrip_request(Request::Roi {
                handle: 3,
                field: 1,
                lo: [0, 0, 0],
                hi: [15, 15, 15],
                select,
            });
        }
        roundtrip_request(Request::Region {
            handle: 3,
            field: 1,
            level: 1,
            lo: [-2, 0, 4],
            hi: [9, 9, 9],
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Opened(OpenInfo {
            handle: 4,
            file_id: 19,
            generation: (12345, 999),
            levels: 2,
            fields: vec!["density".into(), "vx".into()],
            indexed: true,
        }));
        roundtrip_response(Response::Closed);
        roundtrip_response(Response::Point(None));
        roundtrip_response(Response::Point(Some((1, [8, 9, 10], 3.25))));
        roundtrip_response(Response::Region(WireRegion {
            level: 0,
            lo: [0, 0, 0],
            hi: [1, 1, 0],
            data: vec![1.0, 2.0, 3.0, 4.0],
        }));
        roundtrip_response(Response::View {
            field: 0,
            field_name: "density".into(),
            levels: vec![
                WireRegion {
                    level: 0,
                    lo: [0, 0, 0],
                    hi: [0, 0, 0],
                    data: vec![42.0],
                },
                WireRegion {
                    level: 1,
                    lo: [0, 0, 0],
                    hi: [1, 0, 0],
                    data: vec![1.5, 2.5],
                },
            ],
        });
        let mut stats = StatsReport {
            requests: 10,
            cache_hits: 3,
            ..StatsReport::default()
        };
        stats.files.push(FileStats {
            path: "/a.h5l".into(),
            file_id: 2,
            generation: (100, 200),
            cache_hits: 1,
            roi_queries: 4,
            ..FileStats::default()
        });
        roundtrip_response(Response::Stats(stats));
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Error {
            code: ErrorCode::BadQuery,
            message: "field 9 out of range".into(),
        });
    }

    #[test]
    fn frame_roundtrip_over_a_stream() {
        let payload = Request::Stats.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor, MAX_REQUEST_FRAME).expect("read");
        assert_eq!(back, payload);
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, MAX_REQUEST_FRAME) {
            Err(ServeError::FrameTooLarge { len, cap }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(cap, MAX_REQUEST_FRAME);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn lying_length_with_missing_bytes_is_disconnect() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1000u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]); // only 3 of 1000 bytes arrive
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, MAX_REQUEST_FRAME),
            Err(ServeError::Disconnected)
        ));
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        for req in [
            Request::Open {
                path: "/some/path".into(),
            },
            Request::Roi {
                handle: 1,
                field: 0,
                lo: [0, 0, 0],
                hi: [7, 7, 7],
                select: WireSelect::All,
            },
        ] {
            let enc = req.encode();
            for cut in 1..enc.len() {
                let err = Request::decode(&enc[..cut]);
                assert!(err.is_err(), "truncation at {cut} must fail");
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = Request::Stats.encode();
        enc.push(0xAB);
        assert!(matches!(Request::decode(&enc), Err(ServeError::Frame(_))));
    }

    #[test]
    fn absurd_region_count_does_not_allocate() {
        // A WireRegion whose count field claims 2^60 values but carries
        // none: decode must fail without reserving.
        let mut w = Writer::new();
        w.put_u8(OP_REGION_RESULT);
        w.put_u32(0);
        for _ in 0..6 {
            w.put_u64(0);
        }
        w.put_u64(1 << 60); // data count
        let enc = w.into_bytes();
        assert!(Response::decode(&enc).is_err());
    }
}
