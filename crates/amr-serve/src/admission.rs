//! Admission control and fair scheduling for the query service.
//!
//! The problem: one client panning a huge region of interest can decode
//! hundreds of megabytes per request, and a naive server would let that
//! scan monopolize the decode workers while point-sample traffic — the
//! latency-sensitive workload visualization front-ends generate — waits
//! behind it. Three mechanisms keep the service fair:
//!
//! 1. **Classification** — every query is costed *before any byte is
//!    read* ([`amr_query::QueryEngine::roi_cost`] /
//!    [`amr_query::QueryEngine::region_cost`]: planning only). Requests
//!    whose cold-cache decode estimate stays under
//!    [`AdmissionConfig::scan_threshold_bytes`] are **interactive** and
//!    run immediately; the rest are **scans**.
//! 2. **Per-connection in-flight bound** — a connection's requests are
//!    served sequentially, so its in-flight decode volume is exactly the
//!    current request's estimate; an estimate beyond
//!    [`AdmissionConfig::max_request_bytes`] is rejected with the typed
//!    `TooLarge` error instead of being allowed to balloon memory.
//! 3. **Fair scan gate** — scans execute slab by slab (the server
//!    slices them so each slab decodes roughly
//!    [`AdmissionConfig::scan_slab_bytes`]), and every slab must hold
//!    one of [`AdmissionConfig::scan_slots`] gate permits acquired in
//!    strict FIFO order ([`FairGate`]). Releasing between slabs sends a
//!    scan to the back of the queue, so N concurrent scans interleave
//!    round-robin and the decode workers are returned to the pool at
//!    slab granularity — a point sample never waits behind more than
//!    `scan_slots` slabs' worth of decoding, which is what bounds its
//!    tail latency.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Admission-control policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Reject a request whose cold-cache decode estimate exceeds this
    /// (the per-connection in-flight decode-byte bound; connections are
    /// served one request at a time).
    pub max_request_bytes: u64,
    /// Estimates at or above this are scan-class and go through the
    /// fair gate; below it they run immediately.
    pub scan_threshold_bytes: u64,
    /// Concurrent scan slabs allowed to decode at once.
    pub scan_slots: usize,
    /// Target decoded bytes per scan slab (the fairness granularity:
    /// smaller slabs interleave finer at slightly more overhead).
    pub scan_slab_bytes: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_request_bytes: 256 << 20,
            scan_threshold_bytes: 4 << 20,
            scan_slots: 1,
            scan_slab_bytes: 2 << 20,
        }
    }
}

/// How a request is scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// Small: runs immediately, never queued.
    Interactive,
    /// Large: sliced into slabs, each slab holding the fair gate.
    Scan,
}

impl AdmissionConfig {
    /// Classify a request by its cold-cache decode estimate.
    pub fn classify(&self, decode_bytes: u64) -> RequestClass {
        if decode_bytes >= self.scan_threshold_bytes {
            RequestClass::Scan
        } else {
            RequestClass::Interactive
        }
    }

    /// Number of slabs a scan of `decode_bytes` is sliced into (≥ 1).
    pub fn slab_count(&self, decode_bytes: u64) -> u64 {
        decode_bytes.div_ceil(self.scan_slab_bytes.max(1)).max(1)
    }
}

struct GateState {
    available: usize,
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// A FIFO-fair counting semaphore: permits are granted in strict
/// arrival order, so a scan that releases its permit between slabs goes
/// to the back of the line and concurrent scans round-robin.
pub struct FairGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl FairGate {
    /// Gate with `slots` permits (≥ 1).
    pub fn new(slots: usize) -> Self {
        FairGate {
            state: Mutex::new(GateState {
                available: slots.max(1),
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Take the state guard, recovering from poisoning. A decode worker
    /// that panics must not wedge admission for every other connection:
    /// the gate's critical sections are short and internally panic-free
    /// (counter updates and queue push/pop), so the state is structurally
    /// sound and safe to adopt after a poisoning panic. Note the guard's
    /// `Drop` also releases permits during unwinding, so a panicking
    /// holder returns its permit on the way out.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire one permit, waiting in FIFO order. The permit is released
    /// when the returned guard drops.
    pub fn acquire(&self) -> FairGateGuard<'_> {
        let mut st = self.lock_state();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        while !(st.queue.front() == Some(&ticket) && st.available > 0) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.queue.pop_front();
        st.available -= 1;
        // Wake the next ticket holder if permits remain.
        if st.available > 0 {
            self.cv.notify_all();
        }
        FairGateGuard { gate: self }
    }

    /// Waiters currently queued (stats surface).
    pub fn queued(&self) -> usize {
        self.lock_state().queue.len()
    }

    fn release(&self) {
        let mut st = self.lock_state();
        st.available += 1;
        self.cv.notify_all();
    }
}

/// RAII permit from [`FairGate::acquire`].
pub struct FairGateGuard<'a> {
    gate: &'a FairGate,
}

impl Drop for FairGateGuard<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn classification_threshold() {
        let cfg = AdmissionConfig {
            scan_threshold_bytes: 100,
            ..AdmissionConfig::default()
        };
        assert_eq!(cfg.classify(0), RequestClass::Interactive);
        assert_eq!(cfg.classify(99), RequestClass::Interactive);
        assert_eq!(cfg.classify(100), RequestClass::Scan);
        assert_eq!(cfg.classify(1 << 40), RequestClass::Scan);
    }

    #[test]
    fn slab_count_rounds_up() {
        let cfg = AdmissionConfig {
            scan_slab_bytes: 10,
            ..AdmissionConfig::default()
        };
        assert_eq!(cfg.slab_count(0), 1);
        assert_eq!(cfg.slab_count(10), 1);
        assert_eq!(cfg.slab_count(11), 2);
        assert_eq!(cfg.slab_count(95), 10);
    }

    #[test]
    fn gate_excludes_concurrent_holders() {
        let gate = Arc::new(FairGate::new(1));
        let inside = Arc::new(AtomicUsize::new(0));
        let max_inside = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            let inside = Arc::clone(&inside);
            let max_inside = Arc::clone(&max_inside);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let _g = gate.acquire();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    max_inside.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    inside.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_inside.load(Ordering::SeqCst), 1, "one permit only");
    }

    #[test]
    fn gate_is_fifo_fair() {
        // Thread A holds the gate; B then C queue up. When A releases,
        // B must run before C (strict arrival order).
        let gate = Arc::new(FairGate::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let first = gate.acquire();
        let spawn_waiter = |name: &'static str| {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let _g = gate.acquire();
                order.lock().unwrap().push(name);
            })
        };
        let b = spawn_waiter("b");
        while gate.queued() < 1 {
            std::thread::yield_now();
        }
        let c = spawn_waiter("c");
        while gate.queued() < 2 {
            std::thread::yield_now();
        }
        drop(first);
        b.join().unwrap();
        c.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["b", "c"]);
    }

    #[test]
    fn panicked_holder_poisons_nothing_and_frees_its_permit() {
        // A worker that panics while holding a permit unwinds through the
        // guard's Drop: the permit comes back and later acquires succeed.
        let gate = Arc::new(FairGate::new(1));
        let g2 = Arc::clone(&gate);
        let worker = std::thread::spawn(move || {
            let _g = g2.acquire();
            panic!("decode worker dies mid-slab");
        });
        assert!(worker.join().is_err());
        let _g = gate.acquire(); // must not deadlock
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn poisoned_gate_lock_recovers() {
        // Panic while holding the *state mutex itself* — the worst case,
        // which poisons it. Every gate entry point must keep working.
        let gate = Arc::new(FairGate::new(2));
        let g2 = Arc::clone(&gate);
        let poisoner = std::thread::spawn(move || {
            let _st = g2.state.lock().unwrap();
            panic!("worker dies holding the gate lock");
        });
        assert!(poisoner.join().is_err());
        assert!(gate.state.lock().is_err(), "mutex should be poisoned");
        assert_eq!(gate.queued(), 0);
        let a = gate.acquire();
        let b = gate.acquire();
        drop(a);
        drop(b);
        let _c = gate.acquire();
    }

    #[test]
    fn multi_slot_gate_admits_up_to_slots() {
        let gate = FairGate::new(3);
        let g1 = gate.acquire();
        let g2 = gate.acquire();
        let g3 = gate.acquire();
        // A fourth acquire would block; verify indirectly via queued()
        // after releasing one and re-acquiring.
        drop(g2);
        let g4 = gate.acquire();
        drop(g1);
        drop(g3);
        drop(g4);
        assert_eq!(gate.queued(), 0);
    }
}
