//! The service loop: accept connections on TCP and/or Unix-domain
//! listeners, serve each on its own thread, and answer the wire
//! protocol against the shared catalog under admission control.
//!
//! # Request lifecycle
//!
//! 1. A frame is read (bounded by [`MAX_REQUEST_FRAME`]) and decoded;
//!    malformed bodies get a typed error frame back (the connection
//!    survives — the frame boundary is intact), while framing-level
//!    corruption (oversized or short frames) errors and closes the
//!    connection, since resynchronization is impossible.
//! 2. Query requests are **costed before any byte is read** via the
//!    engine's planner, bounded per connection
//!    ([`AdmissionConfig::max_request_bytes`] → typed `TooLarge`), and
//!    classified interactive vs scan.
//! 3. Interactive queries execute immediately. Scans are sliced into
//!    slabs; each slab decodes under the FIFO [`FairGate`], releasing
//!    it between slabs so concurrent scans round-robin and point
//!    samples only ever wait for a slab, not a whole scan. The final
//!    answer is then assembled from the warm cache.
//!
//! Connections are served sequentially (pipelined requests queue in the
//! socket), so per-connection in-flight decode volume is exactly the
//! admitted request's estimate.

use crate::admission::{AdmissionConfig, FairGate, RequestClass};
use crate::catalog::{Catalog, CatalogEntry};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FileStats, OpenInfo, Request, Response, ServeError,
    ServeResult, StatsReport, WireRegion, MAX_REQUEST_FRAME,
};
use amr_query::{Box3, LevelRegion, LevelSelect, QueryEngine, QueryError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Byte budget of the process-wide shared chunk cache.
    pub cache_bytes: u64,
    /// Open-engine pool bound (idle engines beyond it are evicted LRU).
    pub max_open_files: usize,
    /// Prefetch workers per engine.
    pub workers: usize,
    /// Admission-control policy.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_bytes: 256 << 20,
            max_open_files: 64,
            workers: 1,
            admission: AdmissionConfig::default(),
        }
    }
}

#[derive(Default)]
struct Counters {
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    interactive_queries: AtomicU64,
    scan_queries: AtomicU64,
    scan_slabs: AtomicU64,
    rejected_too_large: AtomicU64,
    response_bytes: AtomicU64,
}

/// Shared server state: catalog, fair gate, counters, stop flag.
pub struct ServeState {
    cfg: ServeConfig,
    catalog: Catalog,
    gate: FairGate,
    stopping: AtomicBool,
    counters: Counters,
}

impl ServeState {
    /// Build state from a config.
    pub fn new(cfg: ServeConfig) -> Arc<ServeState> {
        Arc::new(ServeState {
            catalog: Catalog::new(cfg.cache_bytes, cfg.max_open_files, cfg.workers),
            gate: FairGate::new(cfg.admission.scan_slots),
            stopping: AtomicBool::new(false),
            counters: Counters::default(),
            cfg,
        })
    }

    /// The engine catalog (tests reach through this for direct-engine
    /// comparisons).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Has shutdown been requested?
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Stop accepting new connections (existing connections drain on
    /// their own disconnect).
    pub fn request_shutdown(&self) {
        self.stopping.store(true, Ordering::Release);
    }

    /// Whole-server statistics snapshot.
    pub fn stats_report(&self) -> StatsReport {
        let c = &self.counters;
        let store = self.catalog.store().stats();
        let cat = self.catalog.stats();
        let files = self
            .catalog
            .entries()
            .iter()
            .map(|e| {
                let es = e.engine.stats();
                FileStats {
                    path: e.path.display().to_string(),
                    file_id: e.file_id,
                    generation: (e.generation.len, e.generation.mtime_ns),
                    cache_hits: es.cache.hits,
                    cache_misses: es.cache.misses,
                    cache_insertions: es.cache.insertions,
                    cache_evictions: es.cache.evictions,
                    roi_queries: es.roi_queries,
                    region_queries: es.region_queries,
                    plane_queries: es.plane_queries,
                    point_queries: es.point_queries,
                    chunks_decoded: es.chunks_decoded,
                    decoded_bytes: es.decoded_bytes,
                    read_bytes: es.read_bytes,
                }
            })
            .collect();
        StatsReport {
            connections_total: c.connections_total.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            interactive_queries: c.interactive_queries.load(Ordering::Relaxed),
            scan_queries: c.scan_queries.load(Ordering::Relaxed),
            scan_slabs: c.scan_slabs.load(Ordering::Relaxed),
            rejected_too_large: c.rejected_too_large.load(Ordering::Relaxed),
            response_bytes: c.response_bytes.load(Ordering::Relaxed),
            cache_hits: store.hits,
            cache_misses: store.misses,
            cache_insertions: store.insertions,
            cache_evictions: store.evictions,
            cache_resident_bytes: store.resident_bytes,
            cache_capacity_bytes: store.capacity_bytes,
            open_files: cat.open_files,
            catalog_opens: cat.opens,
            catalog_open_hits: cat.open_hits,
            catalog_reopens_stale: cat.reopens_stale,
            catalog_evicted_idle: cat.evicted_idle,
            files,
        }
    }
}

/// A running server: accept threads over one shared [`ServeState`].
pub struct Server {
    state: Arc<ServeState>,
    accept_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Server with no listeners yet.
    pub fn new(cfg: ServeConfig) -> Server {
        Server {
            state: ServeState::new(cfg),
            accept_threads: Vec::new(),
        }
    }

    /// The shared state (stats, shutdown, catalog access).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Bind and serve a TCP listener; returns the bound address (use
    /// port 0 for an ephemeral port in tests).
    pub fn listen_tcp(&mut self, addr: &str) -> ServeResult<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::clone(&self.state);
        self.accept_threads.push(std::thread::spawn(move || {
            accept_loop(state, || match listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets are blocking regardless of the
                    // listener's nonblocking flag.
                    stream.set_nodelay(true).ok();
                    Some(Box::new(stream) as Box<dyn Conn>)
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            })
        }));
        Ok(local)
    }

    /// Bind and serve a Unix-domain listener at `path` (an existing
    /// socket file there is removed first).
    pub fn listen_uds(&mut self, path: &Path) -> ServeResult<()> {
        std::fs::remove_file(path).ok();
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let state = Arc::clone(&self.state);
        self.accept_threads.push(std::thread::spawn(move || {
            accept_loop(state, || match listener.accept() {
                Ok((stream, _)) => Some(Box::new(stream) as Box<dyn Conn>),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(_) => None,
            })
        }));
        Ok(())
    }

    /// Request shutdown and wait for the accept loops to exit (open
    /// connections drain on their own disconnect).
    pub fn shutdown_and_join(self) {
        self.state.request_shutdown();
        for t in self.accept_threads {
            t.join().ok();
        }
    }
}

/// Anything a connection runs over.
trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Poll-accept until shutdown; each connection gets a detached thread.
fn accept_loop(state: Arc<ServeState>, mut accept: impl FnMut() -> Option<Box<dyn Conn>>) {
    while !state.stopping() {
        match accept() {
            Some(stream) => {
                let state = Arc::clone(&state);
                std::thread::spawn(move || handle_connection(state, stream));
            }
            None => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
}

/// Serve one connection until it disconnects or framing breaks.
fn handle_connection(state: Arc<ServeState>, mut stream: Box<dyn Conn>) {
    let c = &state.counters;
    c.connections_total.fetch_add(1, Ordering::Relaxed);
    c.connections_active.fetch_add(1, Ordering::Relaxed);
    let mut handles: HashMap<u32, Arc<CatalogEntry>> = HashMap::new();
    let mut next_handle: u32 = 1;
    loop {
        let payload = match read_frame(&mut stream, MAX_REQUEST_FRAME) {
            Ok(p) => p,
            Err(ServeError::FrameTooLarge { len, cap }) => {
                // The unread payload is still in the stream; framing is
                // lost. Answer once, then close.
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!("request frame of {len} bytes exceeds cap of {cap}"),
                };
                send(&state, &mut stream, &resp).ok();
                break;
            }
            Err(ServeError::Frame(m)) => {
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: m,
                };
                send(&state, &mut stream, &resp).ok();
                break;
            }
            // Clean or mid-frame disconnect, transport error: drop the
            // connection quietly — the catalog and cache are untouched.
            Err(_) => break,
        };
        c.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match Request::decode(&payload) {
            // A malformed body inside a well-framed payload is
            // recoverable: answer the typed error, keep the connection.
            Err(e) => Response::Error {
                code: ErrorCode::BadFrame,
                message: e.to_string(),
            },
            Ok(req) => handle_request(&state, &mut handles, &mut next_handle, req),
        };
        if matches!(resp, Response::Error { .. }) {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        if send(&state, &mut stream, &resp).is_err() {
            break;
        }
    }
    c.connections_active.fetch_sub(1, Ordering::Relaxed);
}

fn send(state: &ServeState, stream: &mut Box<dyn Conn>, resp: &Response) -> ServeResult<()> {
    let payload = resp.encode();
    state
        .counters
        .response_bytes
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    write_frame(stream, &payload)
}

fn query_error_response(e: QueryError) -> Response {
    let code = match &e {
        QueryError::BadQuery(_) => ErrorCode::BadQuery,
        QueryError::Inconsistent(_) => ErrorCode::Inconsistent,
        QueryError::Codec(_) => ErrorCode::Codec,
        QueryError::H5(_) => ErrorCode::Io,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn vect(v: &amr_mesh::IntVect) -> [i64; 3] {
    [v.get(0), v.get(1), v.get(2)]
}

fn intbox(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
    Box3::new(
        amr_mesh::IntVect::new(lo[0], lo[1], lo[2]),
        amr_mesh::IntVect::new(hi[0], hi[1], hi[2]),
    )
}

fn wire_region(lr: &LevelRegion) -> WireRegion {
    WireRegion {
        level: lr.level as u32,
        lo: vect(&lr.region.lo),
        hi: vect(&lr.region.hi),
        data: lr.data.data().to_vec(),
    }
}

/// Split `b` into `n` contiguous slabs along its longest axis (fewer
/// when the axis has fewer cells than `n`). Ties break toward the lowest
/// axis index — `max_by_key` keeps the *last* maximum, which made cubic
/// regions slab along z on some call sites and x on others depending on
/// iteration direction; slab boundaries must be deterministic because
/// clients resume scans by slab position.
fn slabs(b: &Box3, n: u64) -> Vec<Box3> {
    let sz = b.size();
    let axis = (0..3).fold(
        0usize,
        |best, a| if sz.get(a) > sz.get(best) { a } else { best },
    );
    let extent = sz.get(axis).max(1) as u64;
    let n = n.clamp(1, extent);
    let per = extent.div_ceil(n) as i64;
    let mut out = Vec::with_capacity(n as usize);
    let mut z = b.lo.get(axis);
    while z <= b.hi.get(axis) {
        let zh = (z + per - 1).min(b.hi.get(axis));
        let mut lo = b.lo;
        let mut hi = b.hi;
        lo.0[axis] = z;
        hi.0[axis] = zh;
        out.push(Box3::new(lo, hi));
        z = zh + 1;
    }
    out
}

fn handle_request(
    state: &ServeState,
    handles: &mut HashMap<u32, Arc<CatalogEntry>>,
    next_handle: &mut u32,
    req: Request,
) -> Response {
    match req {
        Request::Open { path } => match state.catalog.open(Path::new(&path)) {
            Ok(entry) => {
                let handle = *next_handle;
                *next_handle += 1;
                let meta = entry.engine.meta();
                let info = OpenInfo {
                    handle,
                    file_id: entry.file_id,
                    generation: (entry.generation.len, entry.generation.mtime_ns),
                    levels: meta.num_levels() as u32,
                    fields: meta.field_names.clone(),
                    indexed: entry.engine.has_persistent_index(),
                };
                handles.insert(handle, entry);
                Response::Opened(info)
            }
            Err(e) => Response::Error {
                code: ErrorCode::OpenFailed,
                message: format!("cannot open {path}: {e}"),
            },
        },
        Request::Close { handle } => {
            if handles.remove(&handle).is_some() {
                Response::Closed
            } else {
                Response::Error {
                    code: ErrorCode::BadHandle,
                    message: format!("unknown handle {handle}"),
                }
            }
        }
        Request::Stats => Response::Stats(state.stats_report()),
        Request::Shutdown => {
            state.request_shutdown();
            Response::ShutdownAck
        }
        Request::Point { handle, field, p } => {
            let Some(entry) = handles.get(&handle) else {
                return bad_handle(handle);
            };
            // Point samples decode at most one chunk: always interactive.
            state
                .counters
                .interactive_queries
                .fetch_add(1, Ordering::Relaxed);
            match entry
                .engine
                .point_sample(field as usize, amr_mesh::IntVect::new(p[0], p[1], p[2]))
            {
                Ok(None) => Response::Point(None),
                Ok(Some(s)) => Response::Point(Some((s.level as u32, vect(&s.cell), s.value))),
                Err(e) => query_error_response(e),
            }
        }
        Request::Plane {
            handle,
            field,
            level,
            axis,
            coord,
        } => {
            let Some(entry) = handles.get(&handle) else {
                return bad_handle(handle);
            };
            let engine = Arc::clone(&entry.engine);
            // Cost the plane as the thin region it resolves to; invalid
            // parameters cost zero and surface their typed error from
            // the query itself.
            let cost = plane_cost(&engine, field as usize, level as usize, axis, coord);
            run_admitted(state, cost, |warm| {
                if let Some(region) = warm {
                    engine.prefetch_region(field as usize, level as usize, region)?;
                    Ok(None)
                } else {
                    engine
                        .plane_slice(field as usize, level as usize, axis as usize, coord)
                        .map(|lr| Some(Response::Region(wire_region(&lr))))
                }
            })
        }
        Request::Region {
            handle,
            field,
            level,
            lo,
            hi,
        } => {
            let Some(entry) = handles.get(&handle) else {
                return bad_handle(handle);
            };
            let engine = Arc::clone(&entry.engine);
            let region = intbox(lo, hi);
            let cost = engine
                .region_cost(field as usize, level as usize, region)
                .map(|c| (c.decode_bytes, region));
            run_admitted(state, cost, |warm| {
                if let Some(slab) = warm {
                    engine.prefetch_region(field as usize, level as usize, slab)?;
                    Ok(None)
                } else {
                    engine
                        .level_region(field as usize, level as usize, region)
                        .map(|lr| Some(Response::Region(wire_region(&lr))))
                }
            })
        }
        Request::Roi {
            handle,
            field,
            lo,
            hi,
            select,
        } => {
            let Some(entry) = handles.get(&handle) else {
                return bad_handle(handle);
            };
            let engine = Arc::clone(&entry.engine);
            let roi = intbox(lo, hi);
            let sel: LevelSelect = select.into();
            let cost = engine
                .roi_cost(field as usize, roi, sel)
                .map(|c| (c.decode_bytes, roi));
            run_admitted(state, cost, |warm| {
                if let Some(slab) = warm {
                    engine.prefetch_roi(field as usize, slab, sel)?;
                    Ok(None)
                } else {
                    engine.roi(field as usize, roi, sel).map(|view| {
                        Some(Response::View {
                            field: view.field as u32,
                            field_name: view.field_name.clone(),
                            levels: view.levels.iter().map(wire_region).collect(),
                        })
                    })
                }
            })
        }
    }
}

fn bad_handle(handle: u32) -> Response {
    Response::Error {
        code: ErrorCode::BadHandle,
        message: format!("unknown handle {handle} (open the file first)"),
    }
}

/// Cost a plane request as the thin region it resolves to; anything
/// invalid costs zero (the query itself reports the typed error).
fn plane_cost(
    engine: &QueryEngine,
    field: usize,
    level: usize,
    axis: u8,
    coord: i64,
) -> Result<(u64, Box3), QueryError> {
    let meta = engine.meta();
    if (axis as usize) < 3 && level < meta.num_levels() {
        let domain = meta.levels[level].domain;
        let mut lo = domain.lo;
        let mut hi = domain.hi;
        lo.0[axis as usize] = coord;
        hi.0[axis as usize] = coord;
        let plane = Box3::new(lo, hi);
        engine
            .region_cost(field, level, plane)
            .map(|c| (c.decode_bytes, plane))
    } else {
        // Let the query surface its own BadQuery.
        Ok((0, Box3::from_extents(1, 1, 1)))
    }
}

/// Admission-control wrapper around a query execution:
///
/// * `cost` — the request's cold-cache decode estimate and the box to
///   slice if it turns out to be a scan (planning errors pass through
///   as typed responses).
/// * `exec(Some(slab))` — warm the cache for one slab (scan path).
/// * `exec(None)` — produce the final response.
///
/// Interactive requests skip straight to `exec(None)`. Scans hold the
/// FIFO gate once per slab and release it between slabs so concurrent
/// scans round-robin and interactive traffic never waits behind more
/// than a slab.
fn run_admitted(
    state: &ServeState,
    cost: Result<(u64, Box3), QueryError>,
    mut exec: impl FnMut(Option<Box3>) -> Result<Option<Response>, QueryError>,
) -> Response {
    let adm = &state.cfg.admission;
    let (decode_bytes, sliced) = match cost {
        Ok(c) => c,
        Err(e) => return query_error_response(e),
    };
    if decode_bytes > adm.max_request_bytes {
        state
            .counters
            .rejected_too_large
            .fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            code: ErrorCode::TooLarge,
            message: format!(
                "request would decode {decode_bytes} bytes; per-connection bound is {} \
                 (split the query into smaller regions)",
                adm.max_request_bytes
            ),
        };
    }
    match adm.classify(decode_bytes) {
        RequestClass::Interactive => {
            state
                .counters
                .interactive_queries
                .fetch_add(1, Ordering::Relaxed);
            match exec(None) {
                Ok(resp) => resp.expect("final pass returns a response"),
                Err(e) => query_error_response(e),
            }
        }
        RequestClass::Scan => {
            state.counters.scan_queries.fetch_add(1, Ordering::Relaxed);
            let slab_boxes = slabs(&sliced, adm.slab_count(decode_bytes));
            state
                .counters
                .scan_slabs
                .fetch_add(slab_boxes.len() as u64, Ordering::Relaxed);
            for slab in slab_boxes {
                let _permit = state.gate.acquire();
                if let Err(e) = exec(Some(slab)) {
                    return query_error_response(e);
                }
                // Permit drops here: waiting scans (and nothing else —
                // interactive traffic never queues on the gate) proceed
                // before our next slab.
            }
            // Assemble from the warm cache; chunks evicted meanwhile
            // are simply re-decoded (correctness never depends on
            // residency).
            match exec(None) {
                Ok(resp) => resp.expect("final pass returns a response"),
                Err(e) => query_error_response(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: i64) -> Box3 {
        intbox([0, 0, 0], [n - 1, n - 1, n - 1])
    }

    #[test]
    fn slab_axis_tie_breaks_to_lowest_index() {
        // A cubic region must always slab along x; resumable scans rely
        // on the slab layout being a pure function of the box.
        let s = slabs(&cube(8), 4);
        assert_eq!(s.len(), 4);
        for (i, b) in s.iter().enumerate() {
            assert_eq!(vect(&b.lo), [2 * i as i64, 0, 0]);
            assert_eq!(vect(&b.hi), [2 * i as i64 + 1, 7, 7]);
        }
        // Two-way tie (y == z > x) picks y, the lower tied index.
        let tall = intbox([0, 0, 0], [3, 7, 7]);
        let s = slabs(&tall, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(vect(&s[0].hi), [3, 3, 7]);
        assert_eq!(vect(&s[1].lo), [0, 4, 0]);
    }

    #[test]
    fn slabs_cover_exactly_and_respect_short_axes() {
        let b = intbox([2, -1, 5], [9, 0, 6]);
        let s = slabs(&b, 100); // x is longest (8 cells) -> 8 slabs max
        assert_eq!(s.len(), 8);
        for (x, slab) in (2..).zip(&s) {
            assert_eq!(vect(&slab.lo), [x, -1, 5]);
            assert_eq!(vect(&slab.hi), [x, 0, 6]);
        }
    }
}
