//! Blocking client for the amr-serve wire protocol, over TCP or a
//! Unix-domain socket. One request in flight per connection; open more
//! clients for concurrency (the server is thread-per-connection).

use crate::protocol::{
    read_frame, write_frame, OpenInfo, Request, Response, ServeError, ServeResult, StatsReport,
    WireRegion, WireSelect, DEFAULT_MAX_RESPONSE_FRAME,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

enum ClientStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Uds(s) => s.flush(),
        }
    }
}

/// A decoded multi-level ROI answer (client-side view of
/// [`Response::View`]).
#[derive(Clone, Debug)]
pub struct RoiView {
    /// Field index the query resolved to.
    pub field: u32,
    /// Field name from the plotfile header.
    pub field_name: String,
    /// One region per level that intersected the ROI, coarse to fine.
    pub levels: Vec<WireRegion>,
}

/// Blocking protocol client.
pub struct Client {
    stream: ClientStream,
    max_response_frame: u32,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: ClientStream::Tcp(stream),
            max_response_frame: DEFAULT_MAX_RESPONSE_FRAME,
        })
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_uds(path: &Path) -> ServeResult<Client> {
        Ok(Client {
            stream: ClientStream::Uds(UnixStream::connect(path)?),
            max_response_frame: DEFAULT_MAX_RESPONSE_FRAME,
        })
    }

    /// Lower (or raise) the largest response frame this client will
    /// accept before treating the stream as corrupt.
    pub fn with_max_response_frame(mut self, cap: u32) -> Self {
        self.max_response_frame = cap;
        self
    }

    fn call(&mut self, req: &Request) -> ServeResult<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream, self.max_response_frame)?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected(resp: &Response) -> ServeError {
        ServeError::Frame(format!("unexpected response variant: {resp:?}"))
    }

    /// Open a plotfile on the server; the returned handle scopes every
    /// subsequent query on this connection.
    pub fn open(&mut self, path: &str) -> ServeResult<OpenInfo> {
        match self.call(&Request::Open {
            path: path.to_string(),
        })? {
            Response::Opened(info) => Ok(info),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Release a handle.
    pub fn close_handle(&mut self, handle: u32) -> ServeResult<()> {
        match self.call(&Request::Close { handle })? {
            Response::Closed => Ok(()),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Finest-available sample at a level-0 cell; `None` outside the
    /// domain.
    pub fn point(
        &mut self,
        handle: u32,
        field: u32,
        p: [i64; 3],
    ) -> ServeResult<Option<(u32, [i64; 3], f64)>> {
        match self.call(&Request::Point { handle, field, p })? {
            Response::Point(s) => Ok(s),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Axis-aligned plane at `coord` on `level`.
    pub fn plane(
        &mut self,
        handle: u32,
        field: u32,
        level: u32,
        axis: u8,
        coord: i64,
    ) -> ServeResult<WireRegion> {
        match self.call(&Request::Plane {
            handle,
            field,
            level,
            axis,
            coord,
        })? {
            Response::Region(r) => Ok(r),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Dense box of one level.
    pub fn region(
        &mut self,
        handle: u32,
        field: u32,
        level: u32,
        lo: [i64; 3],
        hi: [i64; 3],
    ) -> ServeResult<WireRegion> {
        match self.call(&Request::Region {
            handle,
            field,
            level,
            lo,
            hi,
        })? {
            Response::Region(r) => Ok(r),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Multi-level region of interest (`lo`/`hi` in level-0 cells).
    pub fn roi(
        &mut self,
        handle: u32,
        field: u32,
        lo: [i64; 3],
        hi: [i64; 3],
        select: WireSelect,
    ) -> ServeResult<RoiView> {
        match self.call(&Request::Roi {
            handle,
            field,
            lo,
            hi,
            select,
        })? {
            Response::View {
                field,
                field_name,
                levels,
            } => Ok(RoiView {
                field,
                field_name,
                levels,
            }),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Whole-server statistics snapshot.
    pub fn stats(&mut self) -> ServeResult<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(r) => Ok(r),
            resp => Err(Self::unexpected(&resp)),
        }
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown_server(&mut self) -> ServeResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            resp => Err(Self::unexpected(&resp)),
        }
    }
}
