//! The plotfile catalog: a pool of open [`QueryEngine`]s keyed by
//! `(path, generation)`, all sharing one byte-budgeted chunk store.
//!
//! * **Generation validation** — every open stats the file; the engine
//!   is reused only while `(len, mtime)` match what it was opened
//!   against. A rewritten plotfile (in-situ pipelines overwrite
//!   snapshots in place) is detected on the next open: the stale
//!   engine is dropped, its cached chunks are purged from the shared
//!   store, and a fresh engine under a fresh file id takes its place.
//! * **Shared budget** — each engine gets a [`amr_query::ChunkCache`]
//!   handle into the catalog's one [`ChunkStore`], so a single byte
//!   budget governs every open file while hit/miss accounting stays
//!   per file (the per-tenant stats the server reports).
//! * **Idle LRU eviction** — when the open-file bound is exceeded, the
//!   least-recently-opened engines *not referenced by any connection*
//!   (`Arc` strong count of 1) are dropped, chunks included. Engines a
//!   connection still holds are never evicted under it — the bound is
//!   soft under pathological concurrency and the eviction counter says
//!   when that happened.

use amr_query::{ChunkStore, QueryEngine, ShardedLru};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity stamp of a file's content as the catalog validates it:
/// byte length and mtime in nanoseconds since the epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Generation {
    /// File length in bytes.
    pub len: u64,
    /// Modification time, nanoseconds since `UNIX_EPOCH` (0 when the
    /// filesystem reports none).
    pub mtime_ns: u64,
}

impl Generation {
    /// Stat `path` into a generation stamp.
    pub fn of(path: &Path) -> std::io::Result<Generation> {
        let md = std::fs::metadata(path)?;
        let mtime_ns = md
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Ok(Generation {
            len: md.len(),
            mtime_ns,
        })
    }
}

/// One open plotfile: the engine plus the identity it was opened under.
pub struct CatalogEntry {
    /// Path as opened.
    pub path: PathBuf,
    /// Shared-store key prefix allocated for this open.
    pub file_id: u64,
    /// Generation the engine was validated against.
    pub generation: Generation,
    /// The shared engine (queries take `&self`; clone the `Arc` freely).
    pub engine: Arc<QueryEngine>,
    /// LRU stamp (catalog-internal).
    last_used: AtomicU64,
}

/// Catalog counters snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Files currently open.
    pub open_files: u64,
    /// Opens that built a new engine.
    pub opens: u64,
    /// Opens served by an existing engine.
    pub open_hits: u64,
    /// Opens that found a stale generation and invalidated it.
    pub reopens_stale: u64,
    /// Idle engines evicted to respect the open-file bound.
    pub evicted_idle: u64,
}

/// The engine pool. All methods take `&self`.
pub struct Catalog {
    store: Arc<ChunkStore>,
    entries: Mutex<HashMap<PathBuf, Arc<CatalogEntry>>>,
    clock: AtomicU64,
    next_file_id: AtomicU64,
    max_open: usize,
    workers: usize,
    opens: AtomicU64,
    open_hits: AtomicU64,
    reopens_stale: AtomicU64,
    evicted_idle: AtomicU64,
}

impl Catalog {
    /// Catalog whose engines share one `cache_bytes` store, keeping at
    /// most `max_open` idle engines and fetching with `workers` prefetch
    /// workers per engine.
    pub fn new(cache_bytes: u64, max_open: usize, workers: usize) -> Self {
        Catalog {
            store: Arc::new(ShardedLru::new(cache_bytes)),
            entries: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            next_file_id: AtomicU64::new(1),
            max_open: max_open.max(1),
            workers: workers.max(1),
            opens: AtomicU64::new(0),
            open_hits: AtomicU64::new(0),
            reopens_stale: AtomicU64::new(0),
            evicted_idle: AtomicU64::new(0),
        }
    }

    /// The shared chunk store every engine in the pool uses.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// Open `path`, reusing the pooled engine while the file's
    /// generation matches; a stale generation is invalidated (engine
    /// dropped, cached chunks purged) and reopened fresh.
    pub fn open(&self, path: &Path) -> Result<Arc<CatalogEntry>, amr_query::QueryError> {
        let generation = Generation::of(path).map_err(h5lite::H5Error::Io)?;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("catalog lock");
        if let Some(entry) = entries.get(path) {
            if entry.generation == generation {
                entry.last_used.store(stamp, Ordering::Relaxed);
                self.open_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(entry));
            }
            // Same path, different bytes: the snapshot was rewritten.
            // Purge the stale generation's chunks so the shared budget
            // never serves bytes from a file that no longer exists.
            let stale = entries.remove(path).expect("entry just observed");
            self.store.remove_matching(|(fid, _)| *fid == stale.file_id);
            self.reopens_stale.fetch_add(1, Ordering::Relaxed);
        }
        // Respect the open-file bound before adding a new engine: drop
        // idle entries (no connection holds them) oldest-first.
        while entries.len() >= self.max_open {
            let victim = entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(e) == 1)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(p, _)| p.clone());
            match victim {
                Some(p) => {
                    let evicted = entries.remove(&p).expect("victim present");
                    self.store
                        .remove_matching(|(fid, _)| *fid == evicted.file_id);
                    self.evicted_idle.fetch_add(1, Ordering::Relaxed);
                }
                // Every entry is in use: exceed the bound rather than
                // fail the open (soft bound; the stats surface shows it).
                None => break,
            }
        }
        let file_id = self.next_file_id.fetch_add(1, Ordering::Relaxed);
        let engine = QueryEngine::open(path)?
            .with_shared_cache(Arc::clone(&self.store), file_id)
            .with_workers(self.workers);
        let entry = Arc::new(CatalogEntry {
            path: path.to_path_buf(),
            file_id,
            generation,
            engine: Arc::new(engine),
            last_used: AtomicU64::new(stamp),
        });
        entries.insert(path.to_path_buf(), Arc::clone(&entry));
        self.opens.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// Snapshot of every open entry (stats reporting).
    pub fn entries(&self) -> Vec<Arc<CatalogEntry>> {
        let entries = self.entries.lock().expect("catalog lock");
        let mut v: Vec<_> = entries.values().cloned().collect();
        v.sort_by_key(|e| e.file_id);
        v
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            open_files: self.entries.lock().expect("catalog lock").len() as u64,
            opens: self.opens.load(Ordering::Relaxed),
            open_hits: self.open_hits.load(Ordering::Relaxed),
            reopens_stale: self.reopens_stale.load(Ordering::Relaxed),
            evicted_idle: self.evicted_idle.load(Ordering::Relaxed),
        }
    }
}
