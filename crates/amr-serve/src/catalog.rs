//! The plotfile catalog: a pool of open [`QueryEngine`]s keyed by
//! `(path, generation)`, all sharing one byte-budgeted chunk store.
//!
//! * **Generation validation** — every open stats the file; the engine
//!   is reused only while `(len, mtime, content fingerprint)` match
//!   what it was opened
//!   against. A rewritten plotfile (in-situ pipelines overwrite
//!   snapshots in place) is detected on the next open: the stale
//!   engine is dropped, its cached chunks are purged from the shared
//!   store, and a fresh engine under a fresh file id takes its place.
//! * **Shared budget** — each engine gets a [`amr_query::ChunkCache`]
//!   handle into the catalog's one [`ChunkStore`], so a single byte
//!   budget governs every open file while hit/miss accounting stays
//!   per file (the per-tenant stats the server reports).
//! * **Idle LRU eviction** — when the open-file bound is exceeded, the
//!   least-recently-opened engines *not referenced by any connection*
//!   (`Arc` strong count of 1) are dropped, chunks included. Engines a
//!   connection still holds are never evicted under it — the bound is
//!   soft under pathological concurrency and the eviction counter says
//!   when that happened.

use amr_query::{ChunkStore, QueryEngine, ShardedLru};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity stamp of a file's content as the catalog validates it: byte
/// length, mtime in nanoseconds since the epoch, and a sampled content
/// fingerprint.
///
/// `(len, mtime_ns)` alone misses back-to-back rewrites: an in-situ
/// pipeline that rewrites a same-length snapshot within the filesystem's
/// mtime granularity (whole seconds on some filesystems) produces an
/// identical stamp over different bytes. The fingerprint hashes the head,
/// tail, and strided interior probes of the file so such rewrites change
/// the stamp without the catalog reading the whole file on every open.
/// Changes confined entirely to unsampled interior byte ranges with the
/// stat stamp also unchanged can still slip through — the probes bound
/// the open cost, not a cryptographic guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Generation {
    /// File length in bytes.
    pub len: u64,
    /// Modification time, nanoseconds since `UNIX_EPOCH` (0 when the
    /// filesystem reports none).
    pub mtime_ns: u64,
    /// FNV-1a hash over the length and sampled content regions.
    pub fingerprint: u64,
}

/// Bytes hashed at each end of the file.
const FINGERPRINT_EDGE_PROBE: usize = 4096;
/// Number and size of evenly spaced interior probes.
const FINGERPRINT_INTERIOR_PROBES: u64 = 8;
const FINGERPRINT_INTERIOR_PROBE_LEN: usize = 512;

impl Generation {
    /// Stat `path` (and sample its content) into a generation stamp.
    ///
    /// A sharded container (a directory holding a shard manifest) is
    /// stamped through its manifest: the manifest is rewritten on every
    /// finalize, so its `(len, mtime, fingerprint)` moves whenever the
    /// container's logical content does; shard file lengths are folded
    /// into the fingerprint as a cross-check against a manifest-less
    /// rewrite of shard bytes.
    pub fn of(path: &Path) -> std::io::Result<Generation> {
        if h5lite::is_sharded(path) {
            return Generation::of_sharded(path);
        }
        let md = std::fs::metadata(path)?;
        Ok(Generation {
            len: md.len(),
            mtime_ns: mtime_ns(&md),
            fingerprint: content_fingerprint(path, md.len())?,
        })
    }

    fn of_sharded(dir: &Path) -> std::io::Result<Generation> {
        let manifest = dir.join(h5lite::sharded::MANIFEST_NAME);
        let md = std::fs::metadata(&manifest)?;
        let mut fingerprint = content_fingerprint(&manifest, md.len())?;
        // Logical length (sum of shard bytes) stands in for the single
        // file's byte length; shard lengths also perturb the fingerprint.
        let mut logical = 0u64;
        let mut shard = 0u64;
        loop {
            let p = dir.join(h5lite::sharded::shard_name(shard as usize));
            let Ok(smd) = std::fs::metadata(&p) else {
                break;
            };
            logical += smd.len();
            fnv1a(&mut fingerprint, &smd.len().to_le_bytes());
            shard += 1;
        }
        Ok(Generation {
            len: logical,
            mtime_ns: mtime_ns(&md),
            fingerprint,
        })
    }
}

/// Modification time of `md` in nanoseconds since the epoch (0 when the
/// filesystem reports none).
fn mtime_ns(md: &std::fs::Metadata) -> u64 {
    md.modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Hash the file's length plus head/tail/interior samples. Small files
/// (up to both edge probes) are hashed in full. Concurrent rewrites may
/// shrink the file between stat and read; short reads hash what arrived.
fn content_fingerprint(path: &Path, len: u64) -> std::io::Result<u64> {
    use std::io::{Read, Seek, SeekFrom};
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, &len.to_le_bytes());
    let mut f = std::fs::File::open(path)?;
    let mut buf = vec![0u8; 2 * FINGERPRINT_EDGE_PROBE];
    let mut probe = |f: &mut std::fs::File, offset: u64, want: usize, h: &mut u64| {
        if f.seek(SeekFrom::Start(offset)).is_ok() {
            let mut read = 0;
            while read < want {
                match f.read(&mut buf[read..want]) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => read += n,
                }
            }
            fnv1a(h, &buf[..read]);
        }
    };
    if len <= 2 * FINGERPRINT_EDGE_PROBE as u64 {
        probe(&mut f, 0, len as usize, &mut h);
        return Ok(h);
    }
    probe(&mut f, 0, FINGERPRINT_EDGE_PROBE, &mut h);
    for i in 0..FINGERPRINT_INTERIOR_PROBES {
        let offset = (len / (FINGERPRINT_INTERIOR_PROBES + 1)) * (i + 1);
        probe(&mut f, offset, FINGERPRINT_INTERIOR_PROBE_LEN, &mut h);
    }
    probe(
        &mut f,
        len - FINGERPRINT_EDGE_PROBE as u64,
        FINGERPRINT_EDGE_PROBE,
        &mut h,
    );
    Ok(h)
}

/// One open plotfile: the engine plus the identity it was opened under.
pub struct CatalogEntry {
    /// Path as opened.
    pub path: PathBuf,
    /// Shared-store key prefix allocated for this open.
    pub file_id: u64,
    /// Generation the engine was validated against.
    pub generation: Generation,
    /// The shared engine (queries take `&self`; clone the `Arc` freely).
    pub engine: Arc<QueryEngine>,
    /// LRU stamp (catalog-internal).
    last_used: AtomicU64,
}

/// Catalog counters snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Files currently open.
    pub open_files: u64,
    /// Opens that built a new engine.
    pub opens: u64,
    /// Opens served by an existing engine.
    pub open_hits: u64,
    /// Opens that found a stale generation and invalidated it.
    pub reopens_stale: u64,
    /// Idle engines evicted to respect the open-file bound.
    pub evicted_idle: u64,
}

/// The engine pool. All methods take `&self`.
pub struct Catalog {
    store: Arc<ChunkStore>,
    entries: Mutex<HashMap<PathBuf, Arc<CatalogEntry>>>,
    clock: AtomicU64,
    next_file_id: AtomicU64,
    max_open: usize,
    workers: usize,
    opens: AtomicU64,
    open_hits: AtomicU64,
    reopens_stale: AtomicU64,
    evicted_idle: AtomicU64,
}

impl Catalog {
    /// Take the entries guard, recovering from poisoning: a worker that
    /// panicked while holding the lock must not wedge every subsequent
    /// request. The map is only ever mutated through insert/remove, both
    /// of which leave it structurally sound even if the panicking thread
    /// died mid-`open`, so the inner value is safe to adopt.
    fn lock_entries(&self) -> std::sync::MutexGuard<'_, HashMap<PathBuf, Arc<CatalogEntry>>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Catalog whose engines share one `cache_bytes` store, keeping at
    /// most `max_open` idle engines and fetching with `workers` prefetch
    /// workers per engine.
    pub fn new(cache_bytes: u64, max_open: usize, workers: usize) -> Self {
        Catalog {
            store: Arc::new(ShardedLru::new(cache_bytes)),
            entries: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            next_file_id: AtomicU64::new(1),
            max_open: max_open.max(1),
            workers: workers.max(1),
            opens: AtomicU64::new(0),
            open_hits: AtomicU64::new(0),
            reopens_stale: AtomicU64::new(0),
            evicted_idle: AtomicU64::new(0),
        }
    }

    /// The shared chunk store every engine in the pool uses.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// Open `path`, reusing the pooled engine while the file's
    /// generation matches; a stale generation is invalidated (engine
    /// dropped, cached chunks purged) and reopened fresh.
    pub fn open(&self, path: &Path) -> Result<Arc<CatalogEntry>, amr_query::QueryError> {
        let generation = Generation::of(path).map_err(h5lite::H5Error::Io)?;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock_entries();
        if let Some(entry) = entries.get(path) {
            if entry.generation == generation {
                entry.last_used.store(stamp, Ordering::Relaxed);
                self.open_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(entry));
            }
            // Same path, different bytes: the snapshot was rewritten.
            // Purge the stale generation's chunks so the shared budget
            // never serves bytes from a file that no longer exists.
            let stale = entries.remove(path).expect("entry just observed");
            self.store.remove_matching(|(fid, _)| *fid == stale.file_id);
            self.reopens_stale.fetch_add(1, Ordering::Relaxed);
        }
        // Respect the open-file bound before adding a new engine: drop
        // idle entries (no connection holds them) oldest-first.
        while entries.len() >= self.max_open {
            let victim = entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(e) == 1)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(p, _)| p.clone());
            match victim {
                Some(p) => {
                    let evicted = entries.remove(&p).expect("victim present");
                    self.store
                        .remove_matching(|(fid, _)| *fid == evicted.file_id);
                    self.evicted_idle.fetch_add(1, Ordering::Relaxed);
                }
                // Every entry is in use: exceed the bound rather than
                // fail the open (soft bound; the stats surface shows it).
                None => break,
            }
        }
        let file_id = self.next_file_id.fetch_add(1, Ordering::Relaxed);
        let engine = QueryEngine::open(path)?
            .with_shared_cache(Arc::clone(&self.store), file_id)
            .with_workers(self.workers);
        let entry = Arc::new(CatalogEntry {
            path: path.to_path_buf(),
            file_id,
            generation,
            engine: Arc::new(engine),
            last_used: AtomicU64::new(stamp),
        });
        entries.insert(path.to_path_buf(), Arc::clone(&entry));
        self.opens.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// Snapshot of every open entry (stats reporting).
    pub fn entries(&self) -> Vec<Arc<CatalogEntry>> {
        let entries = self.lock_entries();
        let mut v: Vec<_> = entries.values().cloned().collect();
        v.sort_by_key(|e| e.file_id);
        v
    }

    /// Counter snapshot. Every counter is read while the entries guard
    /// is held: `open` bumps the counters under that same guard, so the
    /// snapshot is a consistent point-in-time view — `open_files` can
    /// never disagree with the opens/evictions that produced it.
    pub fn stats(&self) -> CatalogStats {
        let entries = self.lock_entries();
        CatalogStats {
            open_files: entries.len() as u64,
            opens: self.opens.load(Ordering::Relaxed),
            open_hits: self.open_hits.load(Ordering::Relaxed),
            reopens_stale: self.reopens_stale.load(Ordering::Relaxed),
            evicted_idle: self.evicted_idle.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_apps::prelude::*;

    fn write_plotfile(path: &Path) {
        let s = NyxScenario::new(7);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        let h = build_hierarchy(&s, &cfg, 0.0);
        amric::writer::write_amric(path, &h, &amric::AmricConfig::lr(1e-3), 8).unwrap();
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "amr-serve-catalog-{}-{name}.h5l",
            std::process::id()
        ));
        p
    }

    /// Panic a thread while it holds the catalog's entries mutex,
    /// poisoning it.
    fn poison(cat: &Arc<Catalog>) {
        let c = Arc::clone(cat);
        let t = std::thread::spawn(move || {
            let _guard = c.entries.lock().unwrap();
            panic!("worker dies holding the catalog lock");
        });
        assert!(t.join().is_err());
        assert!(cat.entries.lock().is_err(), "mutex should be poisoned");
    }

    #[test]
    fn poisoned_catalog_lock_does_not_wedge_the_server() {
        let path = tmp("poison");
        write_plotfile(&path);
        let cat = Arc::new(Catalog::new(8 << 20, 4, 1));
        let first = cat.open(&path).unwrap();
        poison(&cat);
        // Every entry point recovers instead of propagating the panic:
        // stats, the entries snapshot, and a fresh open (cache hit).
        assert_eq!(cat.stats().open_files, 1);
        assert_eq!(cat.entries().len(), 1);
        let again = cat.open(&path).unwrap();
        assert_eq!(again.file_id, first.file_id);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_open_files_matches_entries_snapshot() {
        let a = tmp("stats-a");
        let b = tmp("stats-b");
        write_plotfile(&a);
        write_plotfile(&b);
        let cat = Catalog::new(8 << 20, 4, 1);
        cat.open(&a).unwrap();
        cat.open(&b).unwrap();
        cat.open(&a).unwrap();
        let st = cat.stats();
        assert_eq!(st.open_files, cat.entries().len() as u64);
        assert_eq!(st.open_files, 2);
        assert_eq!(st.opens, 2);
        assert_eq!(st.open_hits, 1);
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }
}
