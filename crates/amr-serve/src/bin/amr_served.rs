//! `amr_served` — the multi-tenant AMRIC query daemon.
//!
//! ```text
//! amr_served --tcp 127.0.0.1:7171            # TCP endpoint
//! amr_served --uds /tmp/amric.sock           # Unix-socket endpoint
//! amr_served --tcp 0.0.0.0:7171 --uds /tmp/amric.sock \
//!            --cache-mb 512 --max-open 64 --workers 4 \
//!            --scan-threshold-kb 4096 --slab-kb 2048 \
//!            --scan-slots 1 --max-request-mb 256
//! ```
//!
//! Runs until a client sends the Shutdown request. Clients open
//! plotfiles by server-side path; all open files share one decode-cache
//! budget and scans are fair-scheduled against interactive traffic (see
//! the `amr-serve` crate docs).

use amr_serve::prelude::*;
use std::process::ExitCode;

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}: cannot parse {:?}", args[i + 1])),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tcp: Option<String> = parse_flag(&args, "--tcp")?;
    let uds: Option<String> = parse_flag(&args, "--uds")?;
    if tcp.is_none() && uds.is_none() {
        return Err("need at least one of --tcp ADDR / --uds PATH".into());
    }
    let mut cfg = ServeConfig::default();
    if let Some(mb) = parse_flag::<u64>(&args, "--cache-mb")? {
        cfg.cache_bytes = mb << 20;
    }
    if let Some(n) = parse_flag::<usize>(&args, "--max-open")? {
        cfg.max_open_files = n;
    }
    if let Some(n) = parse_flag::<usize>(&args, "--workers")? {
        cfg.workers = n;
    }
    if let Some(kb) = parse_flag::<u64>(&args, "--scan-threshold-kb")? {
        cfg.admission.scan_threshold_bytes = kb << 10;
    }
    if let Some(kb) = parse_flag::<u64>(&args, "--slab-kb")? {
        cfg.admission.scan_slab_bytes = kb << 10;
    }
    if let Some(n) = parse_flag::<usize>(&args, "--scan-slots")? {
        cfg.admission.scan_slots = n;
    }
    if let Some(mb) = parse_flag::<u64>(&args, "--max-request-mb")? {
        cfg.admission.max_request_bytes = mb << 20;
    }

    let mut server = Server::new(cfg);
    if let Some(addr) = tcp {
        let bound = server.listen_tcp(&addr).map_err(|e| e.to_string())?;
        println!("amr_served: tcp {bound}");
    }
    if let Some(path) = uds {
        server
            .listen_uds(std::path::Path::new(&path))
            .map_err(|e| e.to_string())?;
        println!("amr_served: uds {path}");
    }
    println!(
        "amr_served: cache {} MiB, {} open files max, {} workers; serving until Shutdown",
        cfg.cache_bytes >> 20,
        cfg.max_open_files,
        cfg.workers
    );
    let state = std::sync::Arc::clone(server.state());
    while !state.stopping() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    server.shutdown_and_join();
    let stats = state.stats_report();
    println!(
        "amr_served: done — {} connections, {} requests ({} interactive, {} scans / {} slabs), {} errors",
        stats.connections_total,
        stats.requests,
        stats.interactive_queries,
        stats.scan_queries,
        stats.scan_slabs,
        stats.errors
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("amr_served: {e}");
            eprintln!(
                "usage: amr_served [--tcp ADDR] [--uds PATH] [--cache-mb N] [--max-open N] \
                 [--workers N] [--scan-threshold-kb N] [--slab-kb N] [--scan-slots N] \
                 [--max-request-mb N]"
            );
            ExitCode::FAILURE
        }
    }
}
