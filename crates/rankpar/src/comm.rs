//! Thread-backed MPI-style communicator.
//!
//! The AMRIC paper runs on MPI ranks; here every "rank" is a thread and
//! [`Communicator`] provides the collective operations the I/O pipeline
//! needs (barrier, allgather, allreduce, gather, broadcast). Semantics
//! follow MPI: every rank of the world must call each collective in the
//! same order.

use parking_lot::Mutex;
use std::sync::{Arc, Barrier};

/// Type-erased exchange slots shared by all ranks.
struct Shared {
    barrier: Barrier,
    slots: Mutex<Vec<Option<Box<dyn std::any::Any + Send>>>>,
}

/// Per-rank handle to the communicator world.
pub struct Communicator {
    rank: usize,
    nranks: usize,
    shared: Arc<Shared>,
}

impl Communicator {
    /// Create the handles for an `nranks`-wide world. Hand one to each
    /// rank thread (usually via [`crate::runner::run_ranks`]).
    pub fn world(nranks: usize) -> Vec<Communicator> {
        assert!(nranks > 0);
        let shared = Arc::new(Shared {
            barrier: Barrier::new(nranks),
            slots: Mutex::new((0..nranks).map(|_| None).collect()),
        });
        (0..nranks)
            .map(|rank| Communicator {
                rank,
                nranks,
                shared: Arc::clone(&shared),
            })
            .collect()
    }

    /// This rank's id (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Block until every rank arrives.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Gather one value from every rank onto all ranks, ordered by rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        // Deposit.
        {
            let mut slots = self.shared.slots.lock();
            slots[self.rank] = Some(Box::new(value));
        }
        self.barrier();
        // Collect (clone out, leave deposits intact until everyone read).
        let out: Vec<T> = {
            let slots = self.shared.slots.lock();
            slots
                .iter()
                .map(|s| {
                    s.as_ref()
                        .expect("slot filled by barrier")
                        .downcast_ref::<T>()
                        .expect("uniform collective type")
                        .clone()
                })
                .collect()
        };
        self.barrier();
        // One rank clears for the next collective.
        if self.rank == 0 {
            let mut slots = self.shared.slots.lock();
            for s in slots.iter_mut() {
                *s = None;
            }
        }
        self.barrier();
        out
    }

    /// Element-wise sum reduction of a `u64` across ranks.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        self.allgather(value).into_iter().sum()
    }

    /// Max reduction across ranks.
    pub fn allreduce_max(&self, value: u64) -> u64 {
        self.allgather(value).into_iter().max().unwrap_or(0)
    }

    /// Max reduction for f64 (used for timing reductions).
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        self.allgather(value)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Gather to `root`: root receives all values (rank order), others get
    /// `None`.
    pub fn gather<T: Clone + Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        let all = self.allgather(value);
        (self.rank == root).then_some(all)
    }

    /// Broadcast `value` from `root` to every rank.
    pub fn bcast<T: Clone + Send + 'static>(&self, value: Option<T>, root: usize) -> T {
        // Every rank contributes an Option; only root's is Some.
        debug_assert_eq!(value.is_some(), self.rank == root);
        let all = self.allgather(value);
        all[root].clone().expect("root provided a value")
    }

    /// Exclusive prefix sum across ranks (rank r receives the sum over
    /// ranks < r) — the offset computation pattern of collective I/O.
    pub fn exscan_sum(&self, value: u64) -> u64 {
        self.allgather(value)[..self.rank].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::run_ranks;

    #[test]
    fn allgather_orders_by_rank() {
        let results = run_ranks(4, |comm| comm.allgather(comm.rank() * 10));
        for r in results {
            assert_eq!(r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn reductions() {
        let results = run_ranks(4, |comm| {
            (
                comm.allreduce_sum(comm.rank() as u64 + 1),
                comm.allreduce_max(comm.rank() as u64),
                comm.exscan_sum(10),
            )
        });
        for (rank, (sum, max, scan)) in results.into_iter().enumerate() {
            assert_eq!(sum, 10);
            assert_eq!(max, 3);
            assert_eq!(scan, 10 * rank as u64);
        }
    }

    #[test]
    fn gather_only_root() {
        let results = run_ranks(3, |comm| comm.gather(comm.rank() as u64, 1));
        assert_eq!(results[0], None);
        assert_eq!(results[1], Some(vec![0, 1, 2]));
        assert_eq!(results[2], None);
    }

    #[test]
    fn bcast_from_root() {
        let results = run_ranks(3, |comm| {
            let v = (comm.rank() == 2).then(|| "payload".to_string());
            comm.bcast(v, 2)
        });
        assert!(results.iter().all(|r| r == "payload"));
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let results = run_ranks(4, |comm| {
            let a = comm.allgather(comm.rank());
            let b = comm.allgather(comm.rank() * 2);
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a, vec![0, 1, 2, 3]);
            assert_eq!(b, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn heterogeneous_payload_types() {
        let results = run_ranks(2, |comm| {
            let strings = comm.allgather(format!("r{}", comm.rank()));
            let vecs = comm.allgather(vec![comm.rank(); 2]);
            (strings, vecs)
        });
        for (s, v) in results {
            assert_eq!(s, vec!["r0".to_string(), "r1".to_string()]);
            assert_eq!(v, vec![vec![0, 0], vec![1, 1]]);
        }
    }
}
