//! Parametric parallel-filesystem cost model (the Summit/GPFS stand-in).
//!
//! The paper's I/O experiments (Figs. 17–18) decompose write time into
//! pre-processing, compression and storage costs. Compression and
//! pre-processing are *real compute* here and are measured; what a laptop
//! cannot reproduce is the shared parallel filesystem, so storage costs are
//! modeled with the effects the paper analyses explicitly:
//!
//! * a constant launch cost per compressor/filter invocation — the paper
//!   estimates ≈0.03 s per call on Summit and attributes AMReX's slowdown
//!   to thousands of calls (§4.4);
//! * a shared aggregate bandwidth: all ranks writing concurrently split it
//!   (weak scaling grows total bytes, not bandwidth);
//! * a per-write-call latency (HDF5 metadata + request overhead);
//! * a per-dataset collective-create cost — with filters enabled HDF5
//!   writes collectively, so every rank participates in every dataset
//!   create (the "one dataset per rank is 5× slower" pathology of §3.3).

/// Cost-model parameters. Defaults approximate the Summit-era behaviour
/// the paper reports; harnesses may override for sensitivity studies.
#[derive(Clone, Copy, Debug)]
pub struct PfsParams {
    /// Constant cost of launching the compressor/filter once (s).
    pub compressor_launch_s: f64,
    /// Aggregate filesystem bandwidth shared by all ranks (bytes/s).
    pub aggregate_bandwidth: f64,
    /// Per write-call latency (s).
    pub write_latency_s: f64,
    /// Per-dataset collective create/close cost (s); paid once per dataset
    /// by every rank (collective semantics).
    pub collective_create_s: f64,
}

impl Default for PfsParams {
    fn default() -> Self {
        PfsParams {
            compressor_launch_s: 0.03,
            aggregate_bandwidth: 2.5e9,
            write_latency_s: 0.002,
            collective_create_s: 0.05,
        }
    }
}

/// Per-rank ledger of storage-path events, convertible into modeled
/// seconds. Real compute (compression, buffer packing) is added as
/// measured seconds via [`IoLedger::add_measured_compute`].
#[derive(Clone, Copy, Debug, Default)]
pub struct IoLedger {
    /// Bytes this rank wrote to storage.
    pub bytes_written: u64,
    /// Number of write calls issued by this rank.
    pub write_calls: u64,
    /// Number of filter/compressor invocations on this rank.
    pub filter_calls: u64,
    /// Number of collective dataset creates this rank participated in.
    pub dataset_creates: u64,
    /// Measured wall-clock compute folded into the total (s).
    pub measured_compute_s: f64,
}

impl IoLedger {
    /// Record one write call of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
        self.write_calls += 1;
    }

    /// Record one compressor/filter invocation.
    pub fn record_filter_call(&mut self) {
        self.filter_calls += 1;
    }

    /// Record participation in a collective dataset create.
    pub fn record_dataset_create(&mut self) {
        self.dataset_creates += 1;
    }

    /// Fold in measured compute seconds (compression CPU time etc.).
    pub fn add_measured_compute(&mut self, seconds: f64) {
        self.measured_compute_s += seconds;
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &IoLedger) {
        self.bytes_written += other.bytes_written;
        self.write_calls += other.write_calls;
        self.filter_calls += other.filter_calls;
        self.dataset_creates += other.dataset_creates;
        self.measured_compute_s += other.measured_compute_s;
    }

    /// Modeled I/O seconds for this rank in an `nranks`-wide job:
    /// bandwidth share + latencies + filter launches + collective creates
    /// + measured compute.
    pub fn modeled_seconds(&self, params: &PfsParams, nranks: usize) -> f64 {
        assert!(nranks > 0);
        let share = params.aggregate_bandwidth / nranks as f64;
        self.bytes_written as f64 / share
            + self.write_calls as f64 * params.write_latency_s
            + self.filter_calls as f64 * params.compressor_launch_s
            + self.dataset_creates as f64 * params.collective_create_s
            + self.measured_compute_s
    }
}

/// Max modeled time across ranks — the number the paper plots (slowest
/// rank gates the write).
pub fn job_seconds(ledgers: &[IoLedger], params: &PfsParams, nranks: usize) -> f64 {
    ledgers
        .iter()
        .map(|l| l.modeled_seconds(params, nranks))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut l = IoLedger::default();
        l.record_write(1000);
        l.record_write(500);
        l.record_filter_call();
        l.record_dataset_create();
        l.add_measured_compute(0.25);
        assert_eq!(l.bytes_written, 1500);
        assert_eq!(l.write_calls, 2);
        assert_eq!(l.filter_calls, 1);
        assert_eq!(l.dataset_creates, 1);
        assert_eq!(l.measured_compute_s, 0.25);
    }

    #[test]
    fn many_filter_calls_dominate() {
        // The paper's §4.4 analysis: 2048 calls × 0.03 s ≈ 61 s of pure
        // launch overhead.
        let params = PfsParams::default();
        let mut few = IoLedger::default();
        few.record_filter_call();
        few.record_write(100 << 20);
        let mut many = IoLedger::default();
        for _ in 0..2048 {
            many.record_filter_call();
            many.record_write((100 << 20) / 2048);
        }
        let t_few = few.modeled_seconds(&params, 64);
        let t_many = many.modeled_seconds(&params, 64);
        assert!(t_many > t_few + 50.0, "few={t_few}, many={t_many}");
    }

    #[test]
    fn weak_scaling_grows_bandwidth_term() {
        // Same per-rank bytes, more ranks → smaller share → longer write.
        let params = PfsParams::default();
        let mut l = IoLedger::default();
        l.record_write(1 << 30);
        let t64 = l.modeled_seconds(&params, 64);
        let t512 = l.modeled_seconds(&params, 512);
        assert!(t512 > t64 * 7.0 && t512 < t64 * 9.0);
    }

    #[test]
    fn job_time_is_slowest_rank() {
        let params = PfsParams::default();
        let mut a = IoLedger::default();
        a.record_write(10);
        let mut b = IoLedger::default();
        b.record_write(1 << 30);
        let t = job_seconds(&[a, b], &params, 2);
        assert!((t - b.modeled_seconds(&params, 2)).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = IoLedger::default();
        a.record_write(10);
        let mut b = IoLedger::default();
        b.record_filter_call();
        b.add_measured_compute(1.0);
        a.merge(&b);
        assert_eq!(a.bytes_written, 10);
        assert_eq!(a.filter_calls, 1);
        assert_eq!(a.measured_compute_s, 1.0);
    }
}
