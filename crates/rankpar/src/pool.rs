//! Work-stealing parallel compression pool with ordered reassembly.
//!
//! The AMRIC write path (paper §3.3) hides compression cost inside the
//! I/O phase: while one chunk's bytes are on their way to storage, the
//! next chunks are already being compressed. This module provides the
//! rank-local engine that makes that overlap possible:
//!
//! * [`Reassembly`] — a bounded, ordered reassembly queue. Workers
//!   deposit finished frames under their submission index (in any
//!   completion order); the consumer takes frames strictly in submission
//!   order. The bounded window is the pipeline's backpressure: no more
//!   than `window` frames can be in flight past the consumer, so memory
//!   stays proportional to the window, not the job count.
//! * [`for_each_ordered`] — the pool driver: N workers pull job indices
//!   from a shared counter (idle workers steal whatever job is next, so
//!   imbalanced jobs never stall the pool), run the job with per-worker
//!   scratch state, and deposit results; the calling thread consumes the
//!   results in submission order while workers keep compressing ahead.
//!
//! # Determinism
//!
//! The pool imposes no ordering on job *execution*, only on job
//! *consumption*. As long as each job is a pure function of its input and
//! a cleared scratch (true for every codec in this workspace — scratch
//! buffers are reset at entry), the consumed sequence is byte-identical
//! to running the jobs serially, for any worker count. The
//! `parallel_determinism` suite in the `amric` crate enforces exactly
//! that invariant over every codec family.
//!
//! # Error drain
//!
//! A failing job (or a failing consumer) never deadlocks the pool: the
//! first error (in submission order) aborts scheduling of new jobs,
//! poisons the queue so blocked depositors drop their frames, and is
//! returned to the caller once in-flight jobs have drained.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Ordered reassembly queue: out-of-order deposits, in-order takes, with
/// a bounded in-flight window for backpressure.
///
/// Indices must each be deposited at most once and the consumer takes
/// index 0, 1, 2, … in order. A deposit for index `i` blocks while
/// `i >= next_taken + window` (the backpressure bound); [`Reassembly::poison`]
/// releases all waiters and turns further deposits into no-ops so an
/// aborted pipeline drains instead of deadlocking.
pub struct Reassembly<T> {
    state: Mutex<ReassemblyState<T>>,
    /// Producers wait here for window space.
    space: Condvar,
    /// The consumer waits here for the next in-order slot.
    ready: Condvar,
}

struct ReassemblyState<T> {
    /// Next index the consumer will take.
    next_out: usize,
    /// Ring of in-flight slots; slot for index `i` is `i % window`.
    slots: Vec<Option<T>>,
    poisoned: bool,
}

impl<T> Reassembly<T> {
    /// Queue with an in-flight window of `window` frames (≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "reassembly window must be at least 1");
        Reassembly {
            state: Mutex::new(ReassemblyState {
                next_out: 0,
                slots: (0..window).map(|_| None).collect(),
                poisoned: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Deposit the result for submission index `index`, blocking while the
    /// index is beyond the in-flight window. Returns `false` if the queue
    /// was poisoned (the value is dropped).
    pub fn deposit(&self, index: usize, value: T) -> bool {
        let mut st = self.state.lock().expect("reassembly lock");
        loop {
            if st.poisoned {
                return false;
            }
            if index < st.next_out + st.slots.len() {
                break;
            }
            st = self.space.wait(st).expect("reassembly wait");
        }
        debug_assert!(index >= st.next_out, "index {index} deposited twice");
        let w = st.slots.len();
        let slot = &mut st.slots[index % w];
        debug_assert!(slot.is_none(), "slot for index {index} already filled");
        *slot = Some(value);
        self.ready.notify_all();
        true
    }

    /// Take the next in-order result, blocking until it is deposited.
    /// Returns `None` once the queue is poisoned and the next slot will
    /// never arrive.
    pub fn take_next(&self) -> Option<T> {
        let mut st = self.state.lock().expect("reassembly lock");
        loop {
            let w = st.slots.len();
            let idx = st.next_out;
            if let Some(v) = st.slots[idx % w].take() {
                st.next_out += 1;
                self.space.notify_all();
                return Some(v);
            }
            if st.poisoned {
                return None;
            }
            st = self.ready.wait(st).expect("reassembly wait");
        }
    }

    /// Abort: drop all queued values, release every waiter, and make
    /// further deposits no-ops.
    pub fn poison(&self) {
        let mut st = self.state.lock().expect("reassembly lock");
        st.poisoned = true;
        for s in st.slots.iter_mut() {
            *s = None;
        }
        self.space.notify_all();
        self.ready.notify_all();
    }
}

/// Run `job` over every item with `workers` threads, consuming results in
/// submission order on the calling thread.
///
/// * `make_state` builds one scratch state per worker (compression
///   scratch pools, padding buffers, …) so jobs never share hot buffers.
/// * `job(state, index, item)` produces the item's frame; the first
///   `Err` (in submission order) aborts the pool and is returned after
///   the in-flight jobs drain.
/// * `consume(index, frame)` runs on the calling thread strictly in
///   index order, overlapped with the workers compressing later items —
///   this is where the write side of the AMRIC pipeline lives. A consume
///   error also aborts the pool.
/// * `window` bounds the frames in flight past the consumer
///   (backpressure); it is clamped to at least 1.
///
/// With `workers <= 1` the jobs run inline on the calling thread with
/// identical semantics (one state, same call order) — the serial
/// reference path the determinism suite compares against.
pub fn for_each_ordered<I, S, T, E, MS, J, C>(
    items: &[I],
    workers: usize,
    window: usize,
    make_state: MS,
    job: J,
    consume: C,
) -> Result<(), E>
where
    I: Sync,
    T: Send,
    E: Send,
    MS: Fn() -> S + Sync,
    J: Fn(&mut S, usize, &I) -> Result<T, E> + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    for_each_ordered_hooked(items, workers, window, make_state, job, consume, &|_| {})
}

/// [`for_each_ordered`] with a completion hook called after each job
/// finishes, before its frame is deposited. Test instrumentation: the
/// property suite uses the hook to impose adversarial completion
/// schedules without timing dependence. The hook runs on worker threads.
#[allow(clippy::too_many_arguments)]
pub fn for_each_ordered_hooked<I, S, T, E, MS, J, C>(
    items: &[I],
    workers: usize,
    window: usize,
    make_state: MS,
    job: J,
    mut consume: C,
    completion_hook: &(dyn Fn(usize) + Sync),
) -> Result<(), E>
where
    I: Sync,
    T: Send,
    E: Send,
    MS: Fn() -> S + Sync,
    J: Fn(&mut S, usize, &I) -> Result<T, E> + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    if workers <= 1 || items.len() <= 1 {
        // Serial reference path: same state reuse, same call order.
        let mut state = make_state();
        for (i, item) in items.iter().enumerate() {
            let frame = job(&mut state, i, item)?;
            completion_hook(i);
            consume(i, frame)?;
        }
        return Ok(());
    }

    let queue = Reassembly::new(window.max(1));
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    /// Unwind safety: a panic in a job, hook, or the consumer must not
    /// leave peers blocked on the queue (the scope would then never
    /// reach its join point and the panic would never propagate). The
    /// guard poisons the queue and raises the abort flag unless it is
    /// disarmed by normal completion; the panic then propagates through
    /// `std::thread::scope`'s join as usual.
    struct PoisonOnUnwind<'a, T> {
        queue: &'a Reassembly<T>,
        abort: &'a AtomicBool,
        armed: bool,
    }
    impl<T> Drop for PoisonOnUnwind<'_, T> {
        fn drop(&mut self) {
            if self.armed {
                self.abort.store(true, Ordering::Release);
                self.queue.poison();
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    // Shared-counter steal: whoever is idle takes the next
                    // submitted job, so imbalanced jobs self-balance.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let mut guard = PoisonOnUnwind {
                        queue: &queue,
                        abort: &abort,
                        armed: true,
                    };
                    let frame = job(&mut state, i, &items[i]);
                    let failed = frame.is_err();
                    completion_hook(i);
                    queue.deposit(i, frame);
                    guard.armed = false;
                    if failed {
                        // Stop scheduling new jobs; every index below `i`
                        // was already fetched and will be deposited, so
                        // the consumer reaches this error without gaps.
                        abort.store(true, Ordering::Release);
                        break;
                    }
                }
            });
        }

        // Consumer runs on the calling thread, overlapped with workers.
        let mut guard = PoisonOnUnwind {
            queue: &queue,
            abort: &abort,
            armed: true,
        };
        let mut outcome = Ok(());
        for k in 0..items.len() {
            match queue.take_next() {
                Some(Ok(frame)) => {
                    if let Err(e) = consume(k, frame) {
                        outcome = Err(e);
                        abort.store(true, Ordering::Release);
                        queue.poison();
                        break;
                    }
                }
                Some(Err(e)) => {
                    outcome = Err(e);
                    abort.store(true, Ordering::Release);
                    queue.poison();
                    break;
                }
                // A poisoned queue (a peer panicked mid-job) yields None;
                // stop consuming — the scope join re-raises the panic.
                None => break,
            }
        }
        guard.armed = false;
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ordered_results_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [1, 2, 4, 7] {
            let mut seen = Vec::new();
            let states = AtomicUsize::new(0);
            let res: Result<(), ()> = for_each_ordered(
                &items,
                workers,
                2,
                || states.fetch_add(1, Ordering::Relaxed),
                |_s, i, v| Ok(v * 3 + i as u64),
                |i, v| {
                    seen.push((i, v));
                    Ok(())
                },
            );
            res.unwrap();
            let expect: Vec<(usize, u64)> = items
                .iter()
                .enumerate()
                .map(|(i, v)| (i, v * 3 + i as u64))
                .collect();
            assert_eq!(seen, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_items_is_a_no_op() {
        let res: Result<(), ()> =
            for_each_ordered(&[] as &[u8], 4, 2, || (), |_, _, _| Ok(0), |_, _| Ok(()));
        res.unwrap();
    }

    #[test]
    fn first_job_error_in_order_wins_and_drains() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [2, 4, 7] {
            let consumed = AtomicUsize::new(0);
            let res: Result<(), String> = for_each_ordered(
                &items,
                workers,
                3,
                || (),
                |_, i, _| {
                    if i == 20 || i == 33 {
                        Err(format!("job {i} failed"))
                    } else {
                        Ok(i)
                    }
                },
                |_, _| {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                },
            );
            // The error surfaced is the first in submission order, and
            // every frame before it was consumed in order.
            assert_eq!(res.unwrap_err(), "job 20 failed", "workers={workers}");
            assert_eq!(consumed.load(Ordering::Relaxed), 20, "workers={workers}");
        }
    }

    #[test]
    fn consumer_error_aborts_cleanly() {
        let items: Vec<usize> = (0..100).collect();
        let res: Result<(), &'static str> = for_each_ordered(
            &items,
            4,
            2,
            || (),
            |_, i, _| Ok(i),
            |i, _| if i == 5 { Err("consumer stop") } else { Ok(()) },
        );
        assert_eq!(res.unwrap_err(), "consumer stop");
    }

    #[test]
    fn backpressure_window_bounds_in_flight() {
        // With window w, no deposit may run further than w ahead of the
        // consumer; track the worst observed lead.
        let items: Vec<usize> = (0..200).collect();
        let window = 3;
        let taken = AtomicUsize::new(0);
        let max_lead = AtomicUsize::new(0);
        let res: Result<(), ()> = for_each_ordered_hooked(
            &items,
            4,
            window,
            || (),
            |_, i, _| Ok(i),
            |_, _| {
                taken.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
            &|i| {
                let lead = i.saturating_sub(taken.load(Ordering::SeqCst));
                max_lead.fetch_max(lead, Ordering::SeqCst);
            },
        );
        res.unwrap();
        // A frame may complete at most `window + workers - 1` past the
        // consumer (window in queue + one in each worker's hands).
        assert!(
            max_lead.load(Ordering::SeqCst) <= window + 4,
            "lead {} exceeds backpressure bound",
            max_lead.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn reassembly_poison_releases_waiters() {
        let q = std::sync::Arc::new(Reassembly::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || {
            assert!(q2.deposit(0, 0u8));
            // Window of 1: this deposit blocks until poison.
            assert!(!q2.deposit(1, 1u8));
        });
        assert_eq!(q.take_next(), Some(0));
        q.poison();
        h.join().unwrap();
        assert_eq!(q.take_next(), None);
    }

    #[test]
    fn worker_panic_propagates_without_hanging() {
        // A panicking job must poison the queue so the consumer unblocks
        // and the scope join re-raises the panic — never a deadlock.
        let items: Vec<usize> = (0..40).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), ()> = for_each_ordered(
                &items,
                4,
                2,
                || (),
                |_, i, _| {
                    if i == 17 {
                        panic!("job panic");
                    }
                    Ok(i)
                },
                |_, _| Ok(()),
            );
        }));
        assert!(outcome.is_err(), "panic must propagate");
    }

    #[test]
    fn consumer_panic_propagates_without_hanging() {
        let items: Vec<usize> = (0..60).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), ()> = for_each_ordered(
                &items,
                4,
                2,
                || (),
                |_, i, _| Ok(i),
                |k, _| {
                    if k == 9 {
                        panic!("consumer panic");
                    }
                    Ok(())
                },
            );
        }));
        assert!(outcome.is_err(), "panic must propagate");
    }

    #[test]
    fn per_worker_state_is_private() {
        // Each worker's state counts its own jobs; totals must add up and
        // no state is shared (sum of per-state counts == job count).
        let items: Vec<usize> = (0..50).collect();
        let total = AtomicUsize::new(0);
        struct Counter<'a> {
            local: usize,
            total: &'a AtomicUsize,
        }
        impl Drop for Counter<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.local, Ordering::Relaxed);
            }
        }
        let res: Result<(), ()> = for_each_ordered(
            &items,
            4,
            4,
            || Counter {
                local: 0,
                total: &total,
            },
            |s, i, _| {
                s.local += 1;
                Ok(i)
            },
            |_, _| Ok(()),
        );
        res.unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 50);
    }
}
