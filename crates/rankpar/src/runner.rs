//! Spawn N rank-threads and collect their results (the `mpirun` of the
//! thread-backed world).

use crate::comm::Communicator;

/// Run `f` once per rank on its own thread; returns the per-rank results in
/// rank order. Panics in any rank propagate.
pub fn run_ranks<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Sync,
{
    let world = Communicator::world(nranks);
    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (rank, comm) in world.into_iter().enumerate() {
            let fref = &f;
            handles.push((rank, scope.spawn(move || fref(comm))));
        }
        for (rank, h) in handles {
            results[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every rank filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = run_ranks(8, |comm| comm.rank() * comm.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn single_rank_world() {
        let out = run_ranks(1, |comm| {
            comm.barrier();
            comm.allgather(5u32)
        });
        assert_eq!(out, vec![vec![5]]);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates() {
        run_ranks(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 must not block forever on a dead partner; it returns
            // without further collectives.
            0u8
        });
    }
}
