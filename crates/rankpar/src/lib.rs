//! # rankpar — thread-rank parallel runtime + storage cost models
//!
//! The MPI / parallel-filesystem substrate of the AMRIC reproduction:
//! * [`comm`] — an MPI-flavoured [`comm::Communicator`] (barrier,
//!   allgather, reductions, exscan) where ranks are threads;
//! * [`runner`] — `mpirun` equivalent: spawn N rank threads, collect
//!   results in rank order;
//! * [`pool`] — rank-local work-stealing compression pool with an
//!   ordered reassembly queue, the engine behind the overlapped
//!   (compress-while-writing) write path;
//! * [`pfs`] — parametric parallel-filesystem cost model reproducing the
//!   storage-side effects the paper analyses (compressor launch cost,
//!   shared aggregate bandwidth, collective-create overhead).
//!
//! ```
//! use rankpar::prelude::*;
//!
//! let sums = run_ranks(4, |comm| comm.allreduce_sum(comm.rank() as u64));
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod comm;
pub mod pfs;
pub mod pool;
pub mod runner;

pub use comm::Communicator;
pub use pfs::{IoLedger, PfsParams};
pub use pool::{for_each_ordered, Reassembly};
pub use runner::run_ranks;

/// Commonly used items.
pub mod prelude {
    pub use crate::comm::Communicator;
    pub use crate::pfs::{job_seconds, IoLedger, PfsParams};
    pub use crate::pool::{for_each_ordered, Reassembly};
    pub use crate::runner::run_ranks;
}
