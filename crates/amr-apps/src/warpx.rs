//! Synthetic WarpX: a laser-driven PIC-like six-field scenario.
//!
//! WarpX simulates laser–plasma interaction on an elongated domain; its
//! field data (E and B components) is dominated by a smooth propagating
//! laser pulse — which is why the paper measures compression ratios in the
//! hundreds to thousands (Table 2) and why refinement hugs the pulse
//! (densities ~1–2 %). This scenario reproduces that regime: a Gaussian
//! pulse envelope travelling along z with sinusoidal carrier, weak smooth
//! background fields elsewhere.

use crate::noise::fbm;
use crate::scenario::Scenario;

/// Field order matches a WarpX field dump.
pub const WARPX_FIELDS: [&str; 6] = ["Ex", "Ey", "Ez", "Bx", "By", "Bz"];

/// A travelling laser pulse on the unit cube (use an elongated
/// `coarse_dims` like (32, 32, 256) to mimic WarpX's 1:8 aspect domains).
pub struct WarpXScenario {
    seed: u64,
    /// Peak field amplitude.
    pub e0: f64,
    /// Carrier wavenumber along z (radians per unit length).
    pub k: f64,
    /// Longitudinal / transverse envelope widths.
    pub sigma_z: f64,
    pub sigma_r: f64,
    /// Pulse group velocity in domain units per unit time.
    pub v: f64,
}

impl WarpXScenario {
    /// Defaults produce a well-resolved pulse occupying a few percent of
    /// the domain. The carrier wavelength (2π/k = 1/8 of the domain) stays
    /// well-resolved even on the scaled-down coarse grids (≥16 cells per
    /// wavelength at 128 z-cells), matching the paper's observation that
    /// WarpX fields are smooth at grid scale.
    pub fn new(seed: u64) -> Self {
        WarpXScenario {
            seed,
            e0: 5.0e11,
            k: 16.0 * std::f64::consts::PI,
            sigma_z: 0.03,
            sigma_r: 0.12,
            v: 0.25,
        }
    }

    /// Pulse centre at time `t` (wraps around the domain).
    fn z_center(&self, t: f64) -> f64 {
        (0.3 + self.v * t).fract()
    }

    /// Envelope at a point (the refinement driver).
    fn envelope(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        let zc = self.z_center(t);
        // Periodic distance along z.
        let dz = {
            let d = (z - zc).abs();
            d.min(1.0 - d)
        };
        let r2 = (x - 0.5).powi(2) + (y - 0.5).powi(2);
        (-dz * dz / (2.0 * self.sigma_z * self.sigma_z)).exp()
            * (-r2 / (2.0 * self.sigma_r * self.sigma_r)).exp()
    }

    /// Weak, very smooth background (residual wakefield ripple at
    /// numerical-noise amplitude) so fields are not identically zero away
    /// from the pulse. Real WarpX fields ahead of the pulse are ≈0, which
    /// is what makes the paper's WarpX compression ratios so large.
    fn background(&self, x: f64, y: f64, z: f64, which: u64) -> f64 {
        1e-7 * self.e0 * fbm(x, y, z, 1.5, 1, 2.0, 0.5, self.seed ^ (which * 0x9E37))
    }
}

impl Scenario for WarpXScenario {
    fn name(&self) -> &str {
        "warpx"
    }

    fn field_names(&self) -> Vec<String> {
        WARPX_FIELDS.iter().map(|s| s.to_string()).collect()
    }

    fn eval(&self, field: usize, x: f64, y: f64, z: f64, t: f64) -> f64 {
        let env = self.envelope(x, y, z, t);
        let phase = self.k * (z - self.z_center(t));
        match field {
            // Linearly-polarized carrier with a weak orthogonal component.
            0 => self.e0 * env * phase.sin() + self.background(x, y, z, 1),
            1 => 0.3 * self.e0 * env * phase.cos() + self.background(x, y, z, 2),
            2 => 0.05 * self.e0 * env * (phase * 0.5).sin() + self.background(x, y, z, 3),
            // B ∝ ẑ × E for a plane-ish wave (scaled to B units).
            3 => -0.3 * self.e0 * env * phase.cos() / 3.0e8 + self.background(x, y, z, 4) / 3.0e8,
            4 => self.e0 * env * phase.sin() / 3.0e8 + self.background(x, y, z, 5) / 3.0e8,
            5 => 0.01 * self.e0 * env * phase.cos() / 3.0e8 + self.background(x, y, z, 6) / 3.0e8,
            _ => panic!("WarpX has 6 fields, asked for {field}"),
        }
    }

    /// Refine on the pulse envelope (field magnitude), not the oscillating
    /// carrier.
    fn refine_value(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        self.envelope(x, y, z, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_hierarchy, level_stats, AmrRunConfig};

    #[test]
    fn pulse_localized() {
        let s = WarpXScenario::new(1);
        let zc = s.z_center(0.0);
        let on_pulse = s.eval(0, 0.5, 0.5, zc + 0.25 / s.k, 0.0).abs();
        let off_pulse = s.eval(0, 0.5, 0.5, (zc + 0.5).fract(), 0.0).abs();
        assert!(
            on_pulse > 100.0 * off_pulse,
            "pulse {on_pulse:.3e} vs background {off_pulse:.3e}"
        );
    }

    #[test]
    fn pulse_moves_with_time() {
        let s = WarpXScenario::new(1);
        let z0 = s.z_center(0.0);
        let z1 = s.z_center(1.0);
        assert!((z1 - z0 - s.v).abs() < 1e-12);
        // Envelope peak follows.
        assert!(s.envelope(0.5, 0.5, z1, 1.0) > 0.99);
        assert!(s.envelope(0.5, 0.5, z0, 1.0) < 0.9);
    }

    #[test]
    fn elongated_hierarchy_refines_near_pulse() {
        let s = WarpXScenario::new(9);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 64),
            max_grid_size: 16,
            blocking_factor: 8,
            nranks: 4,
            num_levels: 2,
            fine_fraction: 0.02,
            grid_eff: 0.7,
        };
        let h = build_hierarchy(&s, &cfg, 0.0);
        assert_eq!(h.num_levels(), 2);
        let stats = level_stats(&h);
        assert_eq!(stats[1].grid_size, (32, 32, 128));
        assert!(stats[1].density < 0.3, "fine density {}", stats[1].density);
        // Fine boxes cluster near the pulse: all fine boxes' z-centres lie
        // within a few sigma of the pulse.
        let zc = s.z_center(0.0);
        for b in h.level(1).data.box_array().iter() {
            let mid = (b.lo.get(2) + b.hi.get(2)) as f64 / 2.0 / 128.0;
            let dz = {
                let d = (mid - zc).abs();
                d.min(1.0 - d)
            };
            assert!(dz < 8.0 * s.sigma_z, "fine box far from pulse: dz={dz}");
        }
    }

    #[test]
    fn fields_are_smooth_relative_to_nyx() {
        // Mean |cell-to-cell delta| relative to range must be far smaller
        // than Nyx's — the property behind WarpX's huge CRs.
        let s = WarpXScenario::new(2);
        let n = 64;
        let vals: Vec<f64> = (0..n)
            .map(|i| s.eval(0, 0.5, 0.5, i as f64 / n as f64, 0.0))
            .collect();
        let range = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(range > 0.0);
        let mean_delta: f64 =
            vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (n - 1) as f64;
        assert!(mean_delta / range < 0.5);
    }
}
