//! Deterministic multi-octave value noise (fBm) — the texture engine
//! behind the synthetic Nyx / WarpX field generators.
//!
//! Hash-based lattice noise: no tables, fully reproducible from the seed,
//! smooth (C¹) through quintic fade interpolation, and cheap enough to
//! evaluate per cell on every level.

/// 64-bit mix hash (splitmix64 finalizer) of a lattice point + seed.
#[inline]
fn hash(ix: i64, iy: i64, iz: i64, seed: u64) -> u64 {
    let mut h = seed
        ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (iz as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Lattice value in [-1, 1].
#[inline]
fn lattice(ix: i64, iy: i64, iz: i64, seed: u64) -> f64 {
    (hash(ix, iy, iz, seed) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// Quintic fade (Perlin's 6t⁵−15t⁴+10t³) — C² continuous interpolation.
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Single octave of 3-D value noise at `(x, y, z)` in lattice units.
/// Smooth, deterministic, output in [-1, 1].
pub fn value_noise(x: f64, y: f64, z: f64, seed: u64) -> f64 {
    let (ix, iy, iz) = (x.floor(), y.floor(), z.floor());
    let (fx, fy, fz) = (x - ix, y - iy, z - iz);
    let (ix, iy, iz) = (ix as i64, iy as i64, iz as i64);
    let (ux, uy, uz) = (fade(fx), fade(fy), fade(fz));
    let mut acc = 0.0;
    for (dz, wz) in [(0i64, 1.0 - uz), (1, uz)] {
        for (dy, wy) in [(0i64, 1.0 - uy), (1, uy)] {
            for (dx, wx) in [(0i64, 1.0 - ux), (1, ux)] {
                acc += wx * wy * wz * lattice(ix + dx, iy + dy, iz + dz, seed);
            }
        }
    }
    acc
}

/// Fractal Brownian motion: `octaves` octaves of value noise with
/// `lacunarity` frequency steps and `gain` amplitude decay. Output roughly
/// in [-1, 1] (normalized by the amplitude sum).
#[allow(clippy::too_many_arguments)]
pub fn fbm(
    x: f64,
    y: f64,
    z: f64,
    base_freq: f64,
    octaves: u32,
    lacunarity: f64,
    gain: f64,
    seed: u64,
) -> f64 {
    let mut amp = 1.0;
    let mut freq = base_freq;
    let mut sum = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        sum += amp
            * value_noise(
                x * freq,
                y * freq,
                z * freq,
                seed.wrapping_add(o as u64 * 7919),
            );
        norm += amp;
        amp *= gain;
        freq *= lacunarity;
    }
    sum / norm
}

/// A Gaussian bump (synthetic "halo") at `center` with radius `r` in the
/// same coordinates as `(x, y, z)`.
pub fn gaussian_bump(x: f64, y: f64, z: f64, center: (f64, f64, f64), r: f64) -> f64 {
    let d2 = (x - center.0).powi(2) + (y - center.1).powi(2) + (z - center.2).powi(2);
    (-d2 / (2.0 * r * r)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = value_noise(1.37, 2.4, -0.9, 42);
        let b = value_noise(1.37, 2.4, -0.9, 42);
        assert_eq!(a, b);
        let c = value_noise(1.37, 2.4, -0.9, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn bounded() {
        for i in 0..1000 {
            let t = i as f64 * 0.173;
            let v = value_noise(t, t * 0.7, t * 1.3, 7);
            assert!((-1.0..=1.0).contains(&v), "out of range: {v}");
            let f = fbm(t, t * 0.7, t * 1.3, 2.0, 5, 2.0, 0.5, 7);
            assert!((-1.0..=1.0).contains(&f), "fbm out of range: {f}");
        }
    }

    #[test]
    fn continuity_across_lattice_points() {
        // Values just left/right of an integer lattice plane must be close.
        let eps = 1e-6;
        for i in 0..20 {
            let y = i as f64 * 0.37;
            let a = value_noise(3.0 - eps, y, 1.5, 11);
            let b = value_noise(3.0 + eps, y, 1.5, 11);
            assert!((a - b).abs() < 1e-4, "discontinuity: {a} vs {b}");
        }
    }

    #[test]
    fn fbm_octaves_add_detail() {
        // Higher octave counts change values (more high-frequency energy)
        // but stay bounded.
        let base = fbm(0.4, 0.5, 0.6, 4.0, 1, 2.0, 0.5, 3);
        let detailed = fbm(0.4, 0.5, 0.6, 4.0, 6, 2.0, 0.5, 3);
        assert_ne!(base, detailed);
    }

    #[test]
    fn bump_peaks_at_center() {
        let c = (0.5, 0.5, 0.5);
        assert!((gaussian_bump(0.5, 0.5, 0.5, c, 0.1) - 1.0).abs() < 1e-12);
        assert!(gaussian_bump(0.9, 0.5, 0.5, c, 0.1) < 0.01);
    }

    #[test]
    fn mean_near_zero() {
        // Value noise should be roughly balanced around zero.
        let mut sum = 0.0;
        let n = 4000;
        for i in 0..n {
            let t = i as f64;
            sum += value_noise(t * 0.731, t * 0.417, t * 0.913, 19);
        }
        assert!((sum / n as f64).abs() < 0.05);
    }
}
