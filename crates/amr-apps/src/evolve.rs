//! Multi-timestep driver: the in-situ loop that produces a hierarchy per
//! snapshot, re-gridding as the solution evolves (paper Fig. 1).

use crate::scenario::{build_hierarchy, AmrRunConfig, Scenario};
use amr_mesh::prelude::*;

/// Iterator of `(step, time, hierarchy)` snapshots.
pub struct TimeSeries<'a> {
    scenario: &'a dyn Scenario,
    cfg: AmrRunConfig,
    dt: f64,
    step: usize,
    nsteps: usize,
}

impl<'a> TimeSeries<'a> {
    /// Drive `scenario` for `nsteps` snapshots spaced `dt` apart.
    pub fn new(scenario: &'a dyn Scenario, cfg: AmrRunConfig, dt: f64, nsteps: usize) -> Self {
        TimeSeries {
            scenario,
            cfg,
            dt,
            step: 0,
            nsteps,
        }
    }
}

impl Iterator for TimeSeries<'_> {
    type Item = (usize, f64, AmrHierarchy);

    fn next(&mut self) -> Option<Self::Item> {
        if self.step >= self.nsteps {
            return None;
        }
        let t = self.step as f64 * self.dt;
        let h = build_hierarchy(self.scenario, &self.cfg, t);
        let step = self.step;
        self.step += 1;
        Some((step, t, h))
    }
}

/// How much the fine grids changed between two snapshots: fraction of
/// fine-level cells covered in exactly one of the two (symmetric
/// difference / union). 0 = identical grids, 1 = disjoint.
pub fn regrid_change(prev: &AmrHierarchy, next: &AmrHierarchy) -> f64 {
    if prev.num_levels() < 2 || next.num_levels() < 2 {
        return if prev.num_levels() == next.num_levels() {
            0.0
        } else {
            1.0
        };
    }
    let a = prev.level(1).data.box_array();
    let b = next.level(1).data.box_array();
    let cells_a = a.num_cells();
    let cells_b = b.num_cells();
    // Overlap cells.
    let mut overlap = 0u64;
    for bb in b.iter() {
        for (_, isect) in a.intersections(bb) {
            overlap += isect.num_cells();
        }
    }
    let union = cells_a + cells_b - overlap;
    if union == 0 {
        return 0.0;
    }
    (union - overlap) as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warpx::WarpXScenario;

    fn cfg() -> AmrRunConfig {
        AmrRunConfig {
            coarse_dims: (8, 8, 64),
            max_grid_size: 16,
            blocking_factor: 4,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.03,
            grid_eff: 0.7,
        }
    }

    #[test]
    fn yields_requested_steps() {
        let s = WarpXScenario::new(4);
        let snaps: Vec<_> = TimeSeries::new(&s, cfg(), 0.1, 3).collect();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].0, 0);
        assert!((snaps[2].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn moving_pulse_forces_regridding() {
        let s = WarpXScenario::new(4);
        let snaps: Vec<_> = TimeSeries::new(&s, cfg(), 0.4, 2).collect();
        // Pulse moved 0.4·0.25 = 0.1 of the domain → grids must shift.
        let change = regrid_change(&snaps[0].2, &snaps[1].2);
        assert!(change > 0.2, "regrid change {change}");
        // Identical snapshots → no change.
        assert_eq!(regrid_change(&snaps[0].2, &snaps[0].2), 0.0);
    }
}
