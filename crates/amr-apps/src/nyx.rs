//! Synthetic Nyx: a cosmology-like six-field scenario.
//!
//! Nyx (Almgren et al.) couples compressible hydro to dark-matter
//! particles; its plotfiles carry baryon density, dark-matter density,
//! temperature and three velocity components. What AMRIC needs from it is
//! the *statistical character* of those fields: log-normal, clumpy,
//! high-dynamic-range densities that compress poorly (paper Table 2: CR
//! ≈ 9–17 at 10⁻³ relative error), smoother temperature/velocities, and
//! refinement concentrated on over-densities (~1–3 % of the domain).

use crate::noise::{fbm, gaussian_bump};
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Field order matches Nyx plotfiles.
pub const NYX_FIELDS: [&str; 6] = [
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
];

/// A synthetic cosmology box: log-normal fBm density field with Gaussian
/// "halos" sprinkled by a seeded RNG, plus derived thermodynamic and
/// kinematic fields.
pub struct NyxScenario {
    seed: u64,
    halos: Vec<((f64, f64, f64), f64, f64)>, // center, radius, amplitude
    /// Log-density contrast multiplier (higher = clumpier, harder to
    /// compress).
    contrast: f64,
}

impl NyxScenario {
    /// Build with the default clumpiness (tuned so relative-eb 10⁻³
    /// compression lands in the paper's CR regime).
    pub fn new(seed: u64) -> Self {
        Self::with_contrast(seed, 3.2)
    }

    /// Build with explicit log-density contrast.
    pub fn with_contrast(seed: u64, contrast: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let halos = (0..24)
            .map(|_| {
                let center = (rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
                let radius = 0.015 + 0.035 * rng.gen::<f64>();
                let amplitude = 2.0 + 3.0 * rng.gen::<f64>();
                (center, radius, amplitude)
            })
            .collect();
        NyxScenario {
            seed,
            halos,
            contrast,
        }
    }

    /// Halo contribution to the log-density at a (drifted) point.
    fn halo_field(&self, x: f64, y: f64, z: f64) -> f64 {
        self.halos
            .iter()
            .map(|&(c, r, a)| a * gaussian_bump(x, y, z, c, r))
            .sum()
    }

    /// Log of baryon over-density (the shared structure field).
    fn log_delta(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        // Structure growth: contrast increases slowly with time, and the
        // large-scale modes drift — grids must adapt across steps (Fig. 1).
        let growth = 1.0 + 0.15 * t;
        let (xs, ys, zs) = (x + 0.02 * t, y - 0.013 * t, z + 0.008 * t);
        let base = fbm(xs, ys, zs, 3.0, 6, 2.0, 0.55, self.seed);
        growth * (self.contrast * base + self.halo_field(x, y, z))
    }
}

impl Scenario for NyxScenario {
    fn name(&self) -> &str {
        "nyx"
    }

    fn field_names(&self) -> Vec<String> {
        NYX_FIELDS.iter().map(|s| s.to_string()).collect()
    }

    fn eval(&self, field: usize, x: f64, y: f64, z: f64, t: f64) -> f64 {
        match field {
            // Baryon density: log-normal around the cosmic mean.
            0 => 1.0e8 * self.log_delta(x, y, z, t).exp(),
            // Dark matter: tracks baryons with its own small-scale noise.
            1 => {
                let extra = fbm(x, y, z, 5.0, 4, 2.0, 0.5, self.seed ^ 0xDEAD);
                1.2e8 * (self.log_delta(x, y, z, t) * 0.9 + 0.8 * extra).exp()
            }
            // Temperature: adiabatic T ∝ ρ^{2/3} with shock-ish noise.
            2 => {
                let rho_term = (self.log_delta(x, y, z, t) * (2.0 / 3.0)).exp();
                let turb = fbm(x, y, z, 4.0, 4, 2.0, 0.5, self.seed ^ 0xBEEF);
                1.0e4 * rho_term * (0.8 * turb).exp()
            }
            // Velocities: large-scale flows, much smoother than density.
            3..=5 => {
                let d = field - 3;
                let seed = self.seed ^ (0x1111 * (d as u64 + 1));
                3.0e7 * fbm(x + 0.05 * t, y, z, 2.0, 3, 2.0, 0.5, seed)
            }
            _ => panic!("Nyx has 6 fields, asked for {field}"),
        }
    }

    /// Refinement follows baryon over-density, the standard Nyx criterion.
    fn refine_value(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        self.log_delta(x, y, z, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_hierarchy, level_stats, AmrRunConfig};

    #[test]
    fn six_fields() {
        let s = NyxScenario::new(1);
        assert_eq!(s.field_names().len(), 6);
        assert_eq!(s.field_names()[0], "baryon_density");
    }

    #[test]
    fn densities_positive_with_high_dynamic_range() {
        let s = NyxScenario::new(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..4000 {
            let t = i as f64;
            let v = s.eval(
                0,
                (t * 0.731).fract(),
                (t * 0.417).fract(),
                (t * 0.913).fract(),
                0.0,
            );
            assert!(v > 0.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(hi / lo > 1e2, "dynamic range {:.1e} too small", hi / lo);
    }

    #[test]
    fn refinement_tracks_overdensity() {
        let s = NyxScenario::new(3);
        // The refine value at a halo centre beats a random point.
        let (c, _, _) = s.halos[0];
        let at_halo = s.refine_value(c.0, c.1, c.2, 0.0);
        let away = s.refine_value(
            (c.0 + 0.43).fract(),
            (c.1 + 0.29).fract(),
            (c.2 + 0.37).fract(),
            0.0,
        );
        assert!(at_halo > away);
    }

    #[test]
    fn builds_paper_like_hierarchy() {
        let s = NyxScenario::new(42);
        let cfg = AmrRunConfig {
            coarse_dims: (32, 32, 32),
            max_grid_size: 16,
            blocking_factor: 8,
            nranks: 4,
            num_levels: 2,
            fine_fraction: 0.014, // Nyx_1's 1.4 %
            grid_eff: 0.7,
        };
        let h = build_hierarchy(&s, &cfg, 0.0);
        assert_eq!(h.num_levels(), 2);
        let stats = level_stats(&h);
        assert!(
            stats[1].density > 0.004 && stats[1].density < 0.2,
            "fine density {}",
            stats[1].density
        );
        // All six fields filled with finite values.
        for (_, fab) in h.level(1).data.iter() {
            for c in 0..6 {
                assert!(fab.comp(c).iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = NyxScenario::new(5);
        let b = NyxScenario::new(5);
        assert_eq!(a.eval(0, 0.3, 0.4, 0.5, 1.0), b.eval(0, 0.3, 0.4, 0.5, 1.0));
        assert_eq!(a.eval(2, 0.3, 0.4, 0.5, 1.0), b.eval(2, 0.3, 0.4, 0.5, 1.0));
    }
}
