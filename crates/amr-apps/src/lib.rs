//! # amr-apps — synthetic AMR applications (Nyx / WarpX equivalents)
//!
//! The AMRIC paper evaluates on two AMReX applications; this crate
//! provides their synthetic stand-ins as time-parametrized analytic field
//! sets (see README.md for the substitution argument):
//!
//! * [`nyx::NyxScenario`] — clumpy log-normal cosmology fields (baryon /
//!   dark-matter density, temperature, velocities), hard to compress;
//! * [`warpx::WarpXScenario`] — a smooth travelling laser pulse (E/B
//!   fields) on an elongated domain, extremely compressible;
//! * [`scenario::build_hierarchy`] — tagging + Berger–Rigoutsos
//!   re-gridding that turns a scenario into a two-level (or deeper)
//!   [`amr_mesh::AmrHierarchy`] with paper-like fine-level densities;
//! * [`evolve::TimeSeries`] — the multi-snapshot in-situ loop.

pub mod evolve;
pub mod noise;
pub mod nyx;
pub mod scenario;
pub mod warpx;

pub use nyx::NyxScenario;
pub use scenario::{build_hierarchy, level_stats, AmrRunConfig, Scenario};
pub use warpx::WarpXScenario;

/// Commonly used items.
pub mod prelude {
    pub use crate::evolve::{regrid_change, TimeSeries};
    pub use crate::nyx::{NyxScenario, NYX_FIELDS};
    pub use crate::scenario::{build_hierarchy, level_stats, AmrRunConfig, LevelStats, Scenario};
    pub use crate::warpx::{WarpXScenario, WARPX_FIELDS};
}
