//! The [`Scenario`] abstraction: a time-parametrized analytic field set
//! that stands in for a running simulation, plus the machinery that turns
//! it into a refined [`AmrHierarchy`].
//!
//! The paper treats Nyx and WarpX purely as *data sources*: per timestep
//! they hand AMRIC a patch-based hierarchy with several float fields and
//! characteristic smoothness/density statistics. A scenario reproduces
//! exactly that interface; "running the simulation" is sampling the fields
//! at a given time and re-gridding where the refinement criterion fires
//! (the adapting grids of the paper's Fig. 1).

use amr_mesh::prelude::*;

/// A synthetic application: named fields over the unit cube, evolving with
/// time.
pub trait Scenario: Sync {
    /// Application name ("nyx", "warpx").
    fn name(&self) -> &str;
    /// Field names in component order.
    fn field_names(&self) -> Vec<String>;
    /// Field value at physical point `(x, y, z) ∈ [0,1)³` and time `t`.
    fn eval(&self, field: usize, x: f64, y: f64, z: f64, t: f64) -> f64;
    /// Scalar driving refinement (default: field 0). Cells whose value
    /// exceeds the run's adaptive threshold get tagged.
    fn refine_value(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        self.eval(0, x, y, z, t)
    }
}

/// Mesh/refinement parameters of a run (AMReX `amr.*` inputs).
#[derive(Clone, Copy, Debug)]
pub struct AmrRunConfig {
    /// Coarse (level-0) domain size in cells.
    pub coarse_dims: (i64, i64, i64),
    /// `amr.max_grid_size` (per level, in that level's cells).
    pub max_grid_size: i64,
    /// `amr.blocking_factor` for *fine* levels — AMRIC's unit block size.
    pub blocking_factor: i64,
    /// Ranks to distribute boxes over.
    pub nranks: usize,
    /// Total levels (the paper's runs all use 2).
    pub num_levels: usize,
    /// Target fraction of cells tagged on each level (the paper's fine
    /// "data density": 1–3 %). The refinement threshold is set at this
    /// quantile of the refine field.
    pub fine_fraction: f64,
    /// Berger–Rigoutsos efficiency target.
    pub grid_eff: f64,
}

impl Default for AmrRunConfig {
    fn default() -> Self {
        AmrRunConfig {
            coarse_dims: (32, 32, 32),
            max_grid_size: 16,
            blocking_factor: 8,
            nranks: 4,
            num_levels: 2,
            fine_fraction: 0.02,
            grid_eff: 0.7,
        }
    }
}

/// Fill every field of one level by sampling the scenario at cell centers
/// (level-normalised coordinates, so all levels sample the same continuum).
fn fill_level(scenario: &dyn Scenario, level: &mut Level, t: f64) {
    let n = level.domain.size();
    let (nx, ny, nz) = (n.get(0) as f64, n.get(1) as f64, n.get(2) as f64);
    let lo = level.domain.lo;
    let nfields = level.data.ncomp();
    for bi in 0..level.data.box_array().len() {
        for f in 0..nfields {
            level.data.fab_mut(bi).fill_with(f, |p: &IntVect| {
                let x = (p.get(0) - lo.get(0)) as f64 / nx + 0.5 / nx;
                let y = (p.get(1) - lo.get(1)) as f64 / ny + 0.5 / ny;
                let z = (p.get(2) - lo.get(2)) as f64 / nz + 0.5 / nz;
                scenario.eval(f, x, y, z, t)
            });
        }
    }
}

/// The value at the `1 − frac` quantile of `values` (used as the adaptive
/// refinement threshold).
fn quantile_threshold(mut values: Vec<f64>, frac: f64) -> f64 {
    assert!(!values.is_empty());
    let k = ((values.len() as f64) * (1.0 - frac))
        .floor()
        .clamp(0.0, (values.len() - 1) as f64) as usize;
    let (_, v, _) = values.select_nth_unstable_by(k, |a, b| {
        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
    });
    *v
}

/// Build the hierarchy at time `t`: fill level 0, then repeatedly tag the
/// top quantile of the refine field, cluster with Berger–Rigoutsos, refine
/// ×2 and fill the new level.
pub fn build_hierarchy(scenario: &dyn Scenario, cfg: &AmrRunConfig, t: f64) -> AmrHierarchy {
    let (nx, ny, nz) = cfg.coarse_dims;
    let domain = IntBox::from_extents(nx, ny, nz);
    let mut h = AmrHierarchy::new(
        domain,
        cfg.max_grid_size,
        cfg.nranks,
        scenario.field_names(),
    );
    fill_level(scenario, h.level_mut(0), t);
    for level in 1..cfg.num_levels {
        let cur = h.level(level - 1);
        let cur_domain = cur.domain;
        // Refinement threshold from the refine-field quantile.
        let n = cur_domain.size();
        let (fx, fy, fz) = (n.get(0) as f64, n.get(1) as f64, n.get(2) as f64);
        let sample = |p: &IntVect| {
            scenario.refine_value(
                p.get(0) as f64 / fx + 0.5 / fx,
                p.get(1) as f64 / fy + 0.5 / fy,
                p.get(2) as f64 / fz + 0.5 / fz,
                t,
            )
        };
        let values: Vec<f64> = cur_domain.iter_points().map(|p| sample(&p)).collect();
        let threshold = quantile_threshold(values, cfg.fine_fraction);
        let mut tags = TagField::new(cur_domain);
        for p in cur_domain.iter_points() {
            if sample(&p) > threshold {
                tags.set(&p, true);
            }
        }
        // Cluster in the coarse index space; snapping to blocking_factor/2
        // there yields blocking_factor alignment after ×2 refinement.
        let params = ClusterParams {
            grid_eff: cfg.grid_eff,
            blocking_factor: (cfg.blocking_factor / 2).max(1),
            max_grid_size: cfg.max_grid_size.max(cfg.blocking_factor / 2),
        };
        let boxes = berger_rigoutsos(&tags, &params);
        if boxes.is_empty() {
            break;
        }
        let fine = BoxArray::new(boxes).refined(2);
        debug_assert!(fine.check_blocking_factor(cfg.blocking_factor));
        h.push_level(fine, 2, cfg.nranks);
        fill_level(scenario, h.level_mut(level), t);
    }
    h
}

/// Per-level statistics of a built hierarchy (the rows of the paper's
/// Table 1).
#[derive(Clone, Debug)]
pub struct LevelStats {
    /// Level index (0 = coarsest).
    pub level: usize,
    /// Level domain size in cells.
    pub grid_size: (i64, i64, i64),
    /// Number of boxes.
    pub num_boxes: usize,
    /// Data density: covered cells / domain cells.
    pub density: f64,
}

/// Compute per-level stats.
pub fn level_stats(h: &AmrHierarchy) -> Vec<LevelStats> {
    (0..h.num_levels())
        .map(|l| {
            let level = h.level(l);
            let n = level.domain.size();
            LevelStats {
                level: l,
                grid_size: (n.get(0), n.get(1), n.get(2)),
                num_boxes: level.data.box_array().len(),
                density: level.data.box_array().density_in(&level.domain),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ramp;
    impl Scenario for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }
        fn field_names(&self) -> Vec<String> {
            vec!["f".into(), "g".into()]
        }
        fn eval(&self, field: usize, x: f64, y: f64, z: f64, t: f64) -> f64 {
            match field {
                0 => x + y + z + t,
                _ => x * y * z,
            }
        }
    }

    #[test]
    fn quantile_threshold_selects_top_fraction() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = quantile_threshold(v.clone(), 0.1);
        let above = v.iter().filter(|&&x| x > t).count();
        assert!((8..=11).contains(&above), "top fraction = {above}");
    }

    #[test]
    fn two_level_build() {
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        let h = build_hierarchy(&Ramp, &cfg, 0.0);
        assert_eq!(h.num_levels(), 2);
        // Fine grids live where x+y+z is largest (the far corner).
        let fine = h.level(1);
        assert!(fine.data.box_array().check_blocking_factor(8));
        let stats = level_stats(&h);
        assert_eq!(stats[0].grid_size, (16, 16, 16));
        assert_eq!(stats[1].grid_size, (32, 32, 32));
        assert!(stats[1].density > 0.0 && stats[1].density < 0.5);
        // Fine data samples the same continuum: value at a fine cell ≈
        // eval at its centre.
        let (_, fab) = fine.data.iter().next().unwrap();
        let p = fab.domain().lo;
        let expect = Ramp.eval(
            0,
            p.get(0) as f64 / 32.0 + 0.5 / 32.0,
            p.get(1) as f64 / 32.0 + 0.5 / 32.0,
            p.get(2) as f64 / 32.0 + 0.5 / 32.0,
            0.0,
        );
        assert!((fab.get(&p, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn fine_fraction_is_respected_roughly() {
        let cfg = AmrRunConfig {
            coarse_dims: (24, 24, 24),
            fine_fraction: 0.02,
            max_grid_size: 12,
            blocking_factor: 4,
            ..Default::default()
        };
        let h = build_hierarchy(&Ramp, &cfg, 0.0);
        let stats = level_stats(&h);
        // Snapping inflates the target; it must stay the right order of
        // magnitude (paper densities are 1–3 %).
        assert!(
            stats[1].density >= 0.005 && stats[1].density <= 0.15,
            "density {}",
            stats[1].density
        );
    }

    #[test]
    fn time_changes_grids() {
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 4,
            ..Default::default()
        };
        let h0 = build_hierarchy(&Ramp, &cfg, 0.0);
        let h1 = build_hierarchy(&Ramp, &cfg, 10.0);
        // The ramp threshold adapts, so values differ even if grids agree.
        let a = h0.level(0).data.fab(0).get(&IntVect::new(0, 0, 0), 0);
        let b = h1.level(0).data.fab(0).get(&IntVect::new(0, 0, 0), 0);
        assert!((b - a - 10.0).abs() < 1e-12);
    }
}
