//! [`MultiFab`]: all field data on one AMR level (AMReX `MultiFab`
//! equivalent) — a [`BoxArray`], a [`DistributionMapping`] and one
//! [`FArrayBox`] per box.
//!
//! In a real distributed run each rank only allocates its local fabs; the
//! thread-rank runtime in `rankpar` follows the same discipline via
//! [`MultiFab::local_view`].

use crate::boxarray::{BoxArray, DistributionMapping};
use crate::fab::FArrayBox;
use crate::geom::{IntBox, IntVect};

/// Field data over every box of one level.
#[derive(Clone, Debug)]
pub struct MultiFab {
    ba: BoxArray,
    dm: DistributionMapping,
    ncomp: usize,
    fabs: Vec<FArrayBox>,
    field_names: Vec<String>,
}

impl MultiFab {
    /// Allocate zero-filled fabs for every box.
    pub fn new(ba: BoxArray, dm: DistributionMapping, field_names: Vec<String>) -> Self {
        let ncomp = field_names.len();
        assert!(ncomp > 0, "MultiFab needs at least one field");
        let fabs = ba.iter().map(|b| FArrayBox::new(*b, ncomp)).collect();
        MultiFab {
            ba,
            dm,
            ncomp,
            fabs,
            field_names,
        }
    }

    /// The level's grids.
    pub fn box_array(&self) -> &BoxArray {
        &self.ba
    }

    /// The grid → rank assignment.
    pub fn distribution(&self) -> &DistributionMapping {
        &self.dm
    }

    /// Number of components (fields).
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Field names, in component order.
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// Component index of a named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.field_names.iter().position(|n| n == name)
    }

    /// Fab for box `i`.
    pub fn fab(&self, i: usize) -> &FArrayBox {
        &self.fabs[i]
    }

    /// Mutable fab for box `i`.
    pub fn fab_mut(&mut self, i: usize) -> &mut FArrayBox {
        &mut self.fabs[i]
    }

    /// Iterate over (box index, fab).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &FArrayBox)> {
        self.fabs.iter().enumerate()
    }

    /// The fabs owned by `rank` under the distribution mapping.
    pub fn local_view(&self, rank: usize) -> Vec<(usize, &FArrayBox)> {
        self.dm
            .local_boxes(rank)
            .into_iter()
            .map(|i| (i, &self.fabs[i]))
            .collect()
    }

    /// Fill one field everywhere by evaluating `f(cell)`.
    pub fn fill_field(&mut self, c: usize, f: impl Fn(&IntVect) -> f64 + Sync) {
        for fab in &mut self.fabs {
            fab.fill_with(c, |p| f(p));
        }
    }

    /// Global min/max of one field across all boxes.
    pub fn min_max(&self, c: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for fab in &self.fabs {
            let (l, h) = fab.min_max(c);
            lo = lo.min(l);
            hi = hi.max(h);
        }
        (lo, hi)
    }

    /// Total cells on the level.
    pub fn num_cells(&self) -> u64 {
        self.ba.num_cells()
    }

    /// Value of field `c` at `p`, searching the owning box. `None` when no
    /// box covers `p`.
    pub fn value_at(&self, p: &IntVect, c: usize) -> Option<f64> {
        for (i, b) in self.ba.iter().enumerate() {
            if b.contains(p) {
                return Some(self.fabs[i].get(p, c));
            }
        }
        None
    }

    /// Copy all components of every intersecting region of `src` into this
    /// MultiFab (both on the same index space). Used to move data between
    /// box layouts, e.g. after regridding.
    pub fn copy_from(&mut self, src: &MultiFab) {
        assert_eq!(self.ncomp, src.ncomp);
        for (di, dbox) in self.ba.boxes().iter().enumerate() {
            for (si, isect) in src.ba.intersections(dbox) {
                for c in 0..self.ncomp {
                    self.fabs[di].copy_region(&src.fabs[si], &isect, c, c);
                }
            }
        }
    }
}

/// A box of data extracted for I/O: the flattened field payloads of one box
/// in AMReX plotfile order (all of field 0's cells, then field 1, ...).
#[derive(Clone, Debug)]
pub struct BoxPayload {
    /// Which box of the level this is.
    pub box_index: usize,
    /// Index-space region.
    pub domain: IntBox,
    /// `ncomp * cells` values, component slowest.
    pub data: Vec<f64>,
}

impl MultiFab {
    /// Extract the payload of box `i` (all fields) exactly as AMReX stages
    /// it into the HDF5 write buffer: per box, fields concatenated.
    pub fn payload(&self, i: usize) -> BoxPayload {
        let fab = &self.fabs[i];
        BoxPayload {
            box_index: i,
            domain: *fab.domain(),
            data: fab.data().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mf2() -> MultiFab {
        let ba = BoxArray::decompose(IntBox::from_extents(8, 8, 8), 4);
        let dm = DistributionMapping::round_robin(ba.len(), 2);
        MultiFab::new(ba, dm, vec!["a".into(), "b".into()])
    }

    #[test]
    fn field_lookup() {
        let mf = mf2();
        assert_eq!(mf.field_index("b"), Some(1));
        assert_eq!(mf.field_index("nope"), None);
        assert_eq!(mf.ncomp(), 2);
    }

    #[test]
    fn fill_and_query() {
        let mut mf = mf2();
        mf.fill_field(0, |p| p.get(0) as f64);
        mf.fill_field(1, |p| 100.0 + p.get(2) as f64);
        assert_eq!(mf.value_at(&IntVect::new(5, 1, 1), 0), Some(5.0));
        assert_eq!(mf.value_at(&IntVect::new(1, 1, 6), 1), Some(106.0));
        assert_eq!(mf.value_at(&IntVect::new(9, 0, 0), 0), None);
        let (lo, hi) = mf.min_max(0);
        assert_eq!((lo, hi), (0.0, 7.0));
    }

    #[test]
    fn local_view_partitions_boxes() {
        let mf = mf2();
        let n0 = mf.local_view(0).len();
        let n1 = mf.local_view(1).len();
        assert_eq!(n0 + n1, mf.box_array().len());
        assert_eq!(n0, 4); // 8 boxes round-robin across 2 ranks
    }

    #[test]
    fn copy_from_relayout() {
        let mut src = mf2();
        src.fill_field(0, |p| (p.get(0) + p.get(1) * 10 + p.get(2) * 100) as f64);
        src.fill_field(1, |p| -(p.get(0) as f64));
        // Different layout: single box covering the same domain.
        let ba = BoxArray::single(IntBox::from_extents(8, 8, 8));
        let dm = DistributionMapping::round_robin(1, 1);
        let mut dst = MultiFab::new(ba, dm, vec!["a".into(), "b".into()]);
        dst.copy_from(&src);
        for p in IntBox::from_extents(8, 8, 8).iter_points() {
            assert_eq!(dst.value_at(&p, 0), src.value_at(&p, 0));
            assert_eq!(dst.value_at(&p, 1), src.value_at(&p, 1));
        }
    }

    #[test]
    fn payload_is_component_slowest() {
        let mut mf = mf2();
        mf.fill_field(1, |_| 7.0);
        let pay = mf.payload(0);
        let cells = pay.domain.num_cells() as usize;
        assert_eq!(pay.data.len(), cells * 2);
        assert!(pay.data[..cells].iter().all(|&v| v == 0.0));
        assert!(pay.data[cells..].iter().all(|&v| v == 7.0));
    }
}
