//! Redundancy computation for patch-based AMR: which parts of a coarse
//! level are *covered* by the next finer level (paper §3.1).
//!
//! Patch-based AMR keeps valid data in coarse cells underneath fine grids;
//! that data is never used by post-analysis (Fig. 3: coarse point "0D") and
//! AMRIC removes it before compression. This module computes, per coarse
//! box, the covered region as a list of rectangles, and the complementary
//! *valid* (kept) rectangles, using the box-intersection machinery that
//! AMReX exposes (`BoxArray::intersections`).

use crate::boxarray::BoxArray;
use crate::geom::IntBox;

/// Per-box coverage report for one level against its finer level.
#[derive(Clone, Debug)]
pub struct BoxCoverage {
    /// Index of the coarse box within its level's BoxArray.
    pub box_index: usize,
    /// Pieces of the coarse box covered by (coarsened) fine grids.
    pub covered: Vec<IntBox>,
    /// Pieces of the coarse box NOT covered — the data AMRIC keeps.
    pub valid: Vec<IntBox>,
}

impl BoxCoverage {
    /// Cells covered by fine grids.
    pub fn covered_cells(&self) -> u64 {
        self.covered.iter().map(|b| b.num_cells()).sum()
    }

    /// Cells kept after redundancy removal.
    pub fn valid_cells(&self) -> u64 {
        self.valid.iter().map(|b| b.num_cells()).sum()
    }
}

/// Compute coverage of every box in `coarse` by `fine` (fine grids given in
/// the fine index space; `ratio` relates the two). The returned coverage
/// list is parallel to `coarse.boxes()`.
pub fn coverage(coarse: &BoxArray, fine: &BoxArray, ratio: i64) -> Vec<BoxCoverage> {
    let fine_coarsened = fine.coarsened(ratio);
    coarse
        .iter()
        .enumerate()
        .map(|(i, cb)| {
            let covered: Vec<IntBox> = fine_coarsened
                .intersections(cb)
                .into_iter()
                .map(|(_, ib)| ib)
                .collect();
            // valid = cb \ union(covered), computed by iterated subtraction.
            let mut valid = vec![*cb];
            for cov in &covered {
                let mut next = Vec::with_capacity(valid.len() + 4);
                for v in valid {
                    next.extend(v.subtract(cov));
                }
                valid = next;
            }
            BoxCoverage {
                box_index: i,
                covered,
                valid,
            }
        })
        .collect()
}

/// Summary of how much of a level is redundant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedundancySummary {
    /// Total cells on the level.
    pub total_cells: u64,
    /// Cells covered by the finer level (removable).
    pub covered_cells: u64,
}

impl RedundancySummary {
    /// Fraction of the level that survives redundancy removal — the
    /// paper's "data density" for a mid level (e.g. 82.3 % for the Nyx
    /// coarse level in §3.1).
    pub fn kept_fraction(&self) -> f64 {
        1.0 - self.covered_cells as f64 / self.total_cells as f64
    }
}

/// Aggregate coverage over a whole level.
pub fn summarize(cov: &[BoxCoverage], coarse: &BoxArray) -> RedundancySummary {
    RedundancySummary {
        total_cells: coarse.num_cells(),
        covered_cells: cov.iter().map(|c| c.covered_cells()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::IntVect;

    #[test]
    fn full_cover() {
        let coarse = BoxArray::single(IntBox::from_extents(8, 8, 8));
        let fine = BoxArray::single(IntBox::from_extents(16, 16, 16));
        let cov = coverage(&coarse, &fine, 2);
        assert_eq!(cov.len(), 1);
        assert_eq!(cov[0].covered_cells(), 512);
        assert!(cov[0].valid.is_empty());
        let s = summarize(&cov, &coarse);
        assert_eq!(s.kept_fraction(), 0.0);
    }

    #[test]
    fn no_cover() {
        let coarse = BoxArray::single(IntBox::from_extents(8, 8, 8));
        let fine = BoxArray::new(vec![]);
        let cov = coverage(&coarse, &fine, 2);
        assert_eq!(cov[0].covered_cells(), 0);
        assert_eq!(cov[0].valid_cells(), 512);
        assert_eq!(summarize(&cov, &coarse).kept_fraction(), 1.0);
    }

    #[test]
    fn partial_cover_partition() {
        // Fine level refines coarse cells [2..6)³ of an 8³ coarse box.
        let coarse = BoxArray::single(IntBox::from_extents(8, 8, 8));
        let fine = BoxArray::single(IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)));
        let cov = coverage(&coarse, &fine, 2);
        assert_eq!(cov[0].covered_cells(), 64);
        assert_eq!(cov[0].valid_cells(), 512 - 64);
        // valid pieces are disjoint and disjoint from covered pieces.
        let all: Vec<IntBox> = cov[0]
            .valid
            .iter()
            .chain(cov[0].covered.iter())
            .copied()
            .collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(!a.intersects(b), "{a:?} vs {b:?}");
            }
        }
        let s = summarize(&cov, &coarse);
        assert!((s.kept_fraction() - (1.0 - 64.0 / 512.0)).abs() < 1e-12);
    }

    #[test]
    fn multi_box_levels() {
        let coarse = BoxArray::decompose(IntBox::from_extents(16, 16, 16), 8);
        // One fine grid straddling several coarse boxes.
        let fine = BoxArray::single(IntBox::new(IntVect::new(8, 8, 8), IntVect::new(23, 23, 23)));
        let cov = coverage(&coarse, &fine, 2);
        let total_covered: u64 = cov.iter().map(|c| c.covered_cells()).sum();
        assert_eq!(total_covered, 8 * 8 * 8); // 16³ fine = 8³ coarse cells
        let s = summarize(&cov, &coarse);
        assert!((s.kept_fraction() - (1.0 - 512.0 / 4096.0)).abs() < 1e-12);
    }

    #[test]
    fn blocking_factor_alignment_of_pieces() {
        // When fine grids are aligned to bf*ratio, coverage pieces on the
        // coarse level align to bf — the invariant AMRIC's unit-block
        // truncation relies on.
        let coarse = BoxArray::decompose(IntBox::from_extents(32, 32, 32), 16);
        let fine = BoxArray::new(vec![IntBox::new(
            IntVect::new(16, 16, 16),
            IntVect::new(47, 47, 47),
        )]);
        assert!(fine.check_blocking_factor(16));
        let cov = coverage(&coarse, &fine, 2);
        for c in &cov {
            for piece in c.covered.iter().chain(c.valid.iter()) {
                assert!(piece.is_aligned(8), "{piece:?} not 8-aligned");
            }
        }
    }
}
