//! [`FArrayBox`]: field data on a single box (AMReX `FArrayBox` equivalent).
//!
//! A fab stores `ncomp` floating-point components over the cells of one
//! [`IntBox`], in Fortran order with the component index slowest
//! (`data[comp][k][j][i]`, x fastest) — exactly AMReX's layout. All of the
//! AMRIC data-layout work (§3.3 of the paper) is about how this
//! component-slowest-per-box layout interacts with HDF5 chunking, so the
//! layout here must match AMReX's.

use crate::geom::{IntBox, IntVect};

/// Field data over one box. Components are stored contiguously one after
/// another ("struct of arrays" per box), matching AMReX.
#[derive(Clone, Debug, PartialEq)]
pub struct FArrayBox {
    domain: IntBox,
    ncomp: usize,
    data: Vec<f64>,
}

impl FArrayBox {
    /// Allocate a zero-filled fab.
    pub fn new(domain: IntBox, ncomp: usize) -> Self {
        assert!(ncomp > 0, "fab needs at least one component");
        let n = domain.num_cells() as usize * ncomp;
        FArrayBox {
            domain,
            ncomp,
            data: vec![0.0; n],
        }
    }

    /// Construct from existing component-slowest data.
    pub fn from_data(domain: IntBox, ncomp: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            domain.num_cells() as usize * ncomp,
            "data length does not match box volume × ncomp"
        );
        FArrayBox {
            domain,
            ncomp,
            data,
        }
    }

    /// The index-space region this fab covers.
    pub fn domain(&self) -> &IntBox {
        &self.domain
    }

    /// Number of components.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Cells per component.
    pub fn cells(&self) -> usize {
        self.domain.num_cells() as usize
    }

    /// Raw storage (all components, component-slowest).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One component as a slice (Fortran-ordered over the box).
    pub fn comp(&self, c: usize) -> &[f64] {
        assert!(c < self.ncomp);
        let n = self.cells();
        &self.data[c * n..(c + 1) * n]
    }

    /// One component, mutable.
    pub fn comp_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.ncomp);
        let n = self.cells();
        &mut self.data[c * n..(c + 1) * n]
    }

    /// Value at a point.
    #[inline]
    pub fn get(&self, p: &IntVect, c: usize) -> f64 {
        self.comp(c)[self.domain.linear_index(p)]
    }

    /// Set the value at a point.
    #[inline]
    pub fn set(&mut self, p: &IntVect, c: usize, v: f64) {
        let idx = self.domain.linear_index(p);
        self.comp_mut(c)[idx] = v;
    }

    /// Fill every cell of component `c` by evaluating `f` at the cell index.
    pub fn fill_with(&mut self, c: usize, mut f: impl FnMut(&IntVect) -> f64) {
        let domain = self.domain;
        let comp = self.comp_mut(c);
        for (i, p) in domain.iter_points().enumerate() {
            comp[i] = f(&p);
        }
    }

    /// Copy the sub-region `region` (must lie inside both fabs' domains) of
    /// component `src_c` from `src` into component `dst_c` of `self`.
    pub fn copy_region(&mut self, src: &FArrayBox, region: &IntBox, src_c: usize, dst_c: usize) {
        assert!(self.domain.contains_box(region));
        assert!(src.domain.contains_box(region));
        let dst_domain = self.domain;
        let src_domain = src.domain;
        // Copy x-runs at a time: the region is contiguous along x in both.
        let sz = region.size();
        let run = sz.get(0) as usize;
        for z in region.lo.get(2)..=region.hi.get(2) {
            for y in region.lo.get(1)..=region.hi.get(1) {
                let start = IntVect::new(region.lo.get(0), y, z);
                let si = src_domain.linear_index(&start);
                let di = dst_domain.linear_index(&start);
                let (s_off, d_off) = (src_c * src.cells(), dst_c * self.cells());
                let src_slice = &src.data[s_off + si..s_off + si + run];
                self.data[d_off + di..d_off + di + run].copy_from_slice(src_slice);
            }
        }
    }

    /// Extract the sub-region `region` of component `c` into a new Fortran-
    /// ordered buffer of `region.num_cells()` values.
    pub fn extract_region(&self, region: &IntBox, c: usize) -> Vec<f64> {
        assert!(self.domain.contains_box(region), "{region:?} outside fab");
        let mut out = Vec::with_capacity(region.num_cells() as usize);
        let comp = self.comp(c);
        let run = region.size().get(0) as usize;
        for z in region.lo.get(2)..=region.hi.get(2) {
            for y in region.lo.get(1)..=region.hi.get(1) {
                let start = IntVect::new(region.lo.get(0), y, z);
                let si = self.domain.linear_index(&start);
                out.extend_from_slice(&comp[si..si + run]);
            }
        }
        out
    }

    /// Min and max of one component. Returns `(f64::INFINITY, -INFINITY)`
    /// for empty data (cannot happen for a valid box).
    pub fn min_max(&self, c: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in self.comp(c) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_component_slowest() {
        let b = IntBox::from_extents(2, 2, 1);
        let mut fab = FArrayBox::new(b, 2);
        fab.set(&IntVect::new(0, 0, 0), 0, 1.0);
        fab.set(&IntVect::new(1, 0, 0), 0, 2.0);
        fab.set(&IntVect::new(0, 0, 0), 1, 10.0);
        assert_eq!(fab.data()[0], 1.0);
        assert_eq!(fab.data()[1], 2.0);
        assert_eq!(fab.data()[4], 10.0); // second component starts at cells()
    }

    #[test]
    fn fill_and_extract_region() {
        let b = IntBox::from_extents(4, 4, 4);
        let mut fab = FArrayBox::new(b, 1);
        fab.fill_with(0, |p| (p.get(0) + 10 * p.get(1) + 100 * p.get(2)) as f64);
        let region = IntBox::new(IntVect::new(1, 1, 1), IntVect::new(2, 2, 2));
        let sub = fab.extract_region(&region, 0);
        assert_eq!(sub.len(), 8);
        assert_eq!(sub[0], 111.0);
        assert_eq!(sub[1], 112.0); // x fastest
        assert_eq!(sub[2], 121.0);
        assert_eq!(sub[4], 211.0);
    }

    #[test]
    fn copy_region_roundtrip() {
        let b = IntBox::from_extents(6, 6, 6);
        let mut src = FArrayBox::new(b, 2);
        src.fill_with(1, |p| (p.get(0) * p.get(1) * p.get(2)) as f64 + 0.5);
        let mut dst = FArrayBox::new(b, 2);
        let region = IntBox::new(IntVect::new(2, 0, 3), IntVect::new(5, 4, 5));
        dst.copy_region(&src, &region, 1, 0);
        for p in region.iter_points() {
            assert_eq!(dst.get(&p, 0), src.get(&p, 1));
        }
        // Outside the region stays zero.
        assert_eq!(dst.get(&IntVect::new(0, 0, 0), 0), 0.0);
    }

    #[test]
    fn min_max() {
        let b = IntBox::from_extents(3, 3, 3);
        let mut fab = FArrayBox::new(b, 1);
        fab.fill_with(0, |p| p.get(0) as f64 - p.get(2) as f64);
        let (lo, hi) = fab.min_max(0);
        assert_eq!(lo, -2.0);
        assert_eq!(hi, 2.0);
    }
}
