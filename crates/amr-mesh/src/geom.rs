//! Integer index-space geometry: [`IntVect`] and [`IntBox`].
//!
//! Patch-based AMR frameworks (AMReX, BoxLib, Chombo) describe every grid as
//! a rectangular region of a structured integer index space. All geometry in
//! this crate follows the AMReX conventions:
//!
//! * boxes are **inclusive** on both ends (`lo..=hi` in each dimension),
//! * level 0 is the *coarsest* level,
//! * refining a box by ratio `r` maps cell `i` to cells `r*i ..= r*i + r-1`,
//! * coarsening maps cell `i` to `floor(i / r)`.

use std::fmt;

/// Number of spatial dimensions. The whole stack is 3-D, matching the paper.
pub const DIM: usize = 3;

/// A point (or extent) in the 3-D integer index space.
///
/// Deliberately does not implement `Ord`: ordering of index-space points is
/// ambiguous (lexicographic vs component-wise); use [`IntVect::min`] /
/// [`IntVect::max`] for the component-wise lattice operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntVect(pub [i64; DIM]);

impl IntVect {
    /// All-zero vector.
    pub const ZERO: IntVect = IntVect([0; DIM]);
    /// All-one vector.
    pub const ONE: IntVect = IntVect([1; DIM]);

    /// Construct from components.
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        IntVect([x, y, z])
    }

    /// Vector with the same value in every component.
    pub const fn splat(v: i64) -> Self {
        IntVect([v; DIM])
    }

    /// Component accessor.
    #[inline]
    pub fn get(&self, d: usize) -> i64 {
        self.0[d]
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &IntVect) -> IntVect {
        IntVect([
            self.0[0].min(other.0[0]),
            self.0[1].min(other.0[1]),
            self.0[2].min(other.0[2]),
        ])
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &IntVect) -> IntVect {
        IntVect([
            self.0[0].max(other.0[0]),
            self.0[1].max(other.0[1]),
            self.0[2].max(other.0[2]),
        ])
    }

    /// Product of the components, as `u64`. Panics if any component is
    /// negative (extents must be non-negative).
    pub fn volume(&self) -> u64 {
        assert!(
            self.0.iter().all(|&c| c >= 0),
            "volume of negative extent {self:?}"
        );
        self.0.iter().map(|&c| c as u64).product()
    }

    /// Component-wise multiplication by a refinement ratio.
    pub fn scaled(&self, r: i64) -> IntVect {
        IntVect([self.0[0] * r, self.0[1] * r, self.0[2] * r])
    }

    /// Component-wise floor-division (used for coarsening).
    pub fn coarsened(&self, r: i64) -> IntVect {
        IntVect([
            self.0[0].div_euclid(r),
            self.0[1].div_euclid(r),
            self.0[2].div_euclid(r),
        ])
    }
}

impl fmt::Debug for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.0[0], self.0[1], self.0[2])
    }
}

impl std::ops::Add for IntVect {
    type Output = IntVect;
    fn add(self, rhs: IntVect) -> IntVect {
        IntVect([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
        ])
    }
}

impl std::ops::Sub for IntVect {
    type Output = IntVect;
    fn sub(self, rhs: IntVect) -> IntVect {
        IntVect([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
        ])
    }
}

/// A rectangular region of index space, inclusive on both ends
/// (AMReX `Box` semantics).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntBox {
    /// Smallest contained index in each dimension.
    pub lo: IntVect,
    /// Largest contained index in each dimension.
    pub hi: IntVect,
}

impl fmt::Debug for IntBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", self.lo, self.hi)
    }
}

impl IntBox {
    /// Construct from corner points. `lo` must be `<= hi` component-wise.
    pub fn new(lo: IntVect, hi: IntVect) -> Self {
        debug_assert!(
            (0..DIM).all(|d| lo.get(d) <= hi.get(d)),
            "invalid box lo={lo:?} hi={hi:?}"
        );
        IntBox { lo, hi }
    }

    /// A box anchored at the origin with the given extents.
    pub fn from_extents(nx: i64, ny: i64, nz: i64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "extents must be positive");
        IntBox::new(IntVect::ZERO, IntVect::new(nx - 1, ny - 1, nz - 1))
    }

    /// Extent (number of cells) in each dimension.
    pub fn size(&self) -> IntVect {
        self.hi - self.lo + IntVect::ONE
    }

    /// Number of cells contained in the box.
    pub fn num_cells(&self) -> u64 {
        self.size().volume()
    }

    /// Does the box contain the point?
    pub fn contains(&self, p: &IntVect) -> bool {
        (0..DIM).all(|d| self.lo.get(d) <= p.get(d) && p.get(d) <= self.hi.get(d))
    }

    /// Does the box fully contain `other`?
    pub fn contains_box(&self, other: &IntBox) -> bool {
        self.contains(&other.lo) && self.contains(&other.hi)
    }

    /// Do the two boxes share at least one cell?
    pub fn intersects(&self, other: &IntBox) -> bool {
        (0..DIM).all(|d| self.lo.get(d) <= other.hi.get(d) && other.lo.get(d) <= self.hi.get(d))
    }

    /// The shared region, if any.
    pub fn intersection(&self, other: &IntBox) -> Option<IntBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(IntBox::new(self.lo.max(&other.lo), self.hi.min(&other.hi)))
    }

    /// Refine by ratio `r`: every cell becomes an `r³` block of fine cells.
    pub fn refined(&self, r: i64) -> IntBox {
        assert!(r >= 1);
        IntBox::new(
            self.lo.scaled(r),
            IntVect::new(
                self.hi.get(0) * r + r - 1,
                self.hi.get(1) * r + r - 1,
                self.hi.get(2) * r + r - 1,
            ),
        )
    }

    /// Coarsen by ratio `r` (floor semantics; the result covers the box).
    pub fn coarsened(&self, r: i64) -> IntBox {
        assert!(r >= 1);
        IntBox::new(self.lo.coarsened(r), self.hi.coarsened(r))
    }

    /// Translate by `shift`.
    pub fn shifted(&self, shift: IntVect) -> IntBox {
        IntBox::new(self.lo + shift, self.hi + shift)
    }

    /// Subtract `other` from `self`, returning the (up to six) disjoint
    /// rectangular pieces of `self` not covered by `other`.
    ///
    /// This is the classic axis-sweep box subtraction used throughout
    /// block-structured AMR codes.
    pub fn subtract(&self, other: &IntBox) -> Vec<IntBox> {
        let Some(mid) = self.intersection(other) else {
            return vec![*self];
        };
        if mid == *self {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut rem = *self;
        for d in 0..DIM {
            // Piece below the intersection along dimension d.
            if rem.lo.get(d) < mid.lo.get(d) {
                let mut hi = rem.hi;
                hi.0[d] = mid.lo.get(d) - 1;
                out.push(IntBox::new(rem.lo, hi));
                rem.lo.0[d] = mid.lo.get(d);
            }
            // Piece above the intersection along dimension d.
            if rem.hi.get(d) > mid.hi.get(d) {
                let mut lo = rem.lo;
                lo.0[d] = mid.hi.get(d) + 1;
                out.push(IntBox::new(lo, rem.hi));
                rem.hi.0[d] = mid.hi.get(d);
            }
        }
        debug_assert_eq!(rem, mid);
        out
    }

    /// Iterate over all contained points in Fortran order (x fastest),
    /// matching AMReX's fab storage order.
    pub fn iter_points(&self) -> impl Iterator<Item = IntVect> + '_ {
        let lo = self.lo;
        let sz = self.size();
        (0..sz.volume() as i64).map(move |lin| {
            let x = lin % sz.get(0);
            let y = (lin / sz.get(0)) % sz.get(1);
            let z = lin / (sz.get(0) * sz.get(1));
            IntVect::new(lo.get(0) + x, lo.get(1) + y, lo.get(2) + z)
        })
    }

    /// Linear (Fortran-order) offset of `p` within the box.
    #[inline]
    pub fn linear_index(&self, p: &IntVect) -> usize {
        debug_assert!(self.contains(p), "{p:?} not in {self:?}");
        let sz = self.size();
        let dx = p.get(0) - self.lo.get(0);
        let dy = p.get(1) - self.lo.get(1);
        let dz = p.get(2) - self.lo.get(2);
        (dx + sz.get(0) * (dy + sz.get(1) * dz)) as usize
    }

    /// Split the box into uniform tiles of `tile` cells, anchored at tile
    /// boundaries of the index space (i.e. at multiples of `tile`). Edge
    /// tiles are clipped to the box.
    pub fn tiles(&self, tile: i64) -> Vec<IntBox> {
        assert!(tile >= 1);
        let tlo = self.lo.coarsened(tile);
        let thi = self.hi.coarsened(tile);
        let mut out = Vec::new();
        for tz in tlo.get(2)..=thi.get(2) {
            for ty in tlo.get(1)..=thi.get(1) {
                for tx in tlo.get(0)..=thi.get(0) {
                    let full = IntBox::new(
                        IntVect::new(tx * tile, ty * tile, tz * tile),
                        IntVect::new(
                            tx * tile + tile - 1,
                            ty * tile + tile - 1,
                            tz * tile + tile - 1,
                        ),
                    );
                    if let Some(clip) = full.intersection(self) {
                        out.push(clip);
                    }
                }
            }
        }
        out
    }

    /// Is every face of the box aligned to multiples of `bf` (AMReX
    /// "blocking factor" invariant: `lo` divisible by `bf`, `hi+1` divisible
    /// by `bf`)?
    pub fn is_aligned(&self, bf: i64) -> bool {
        (0..DIM)
            .all(|d| self.lo.get(d).rem_euclid(bf) == 0 && (self.hi.get(d) + 1).rem_euclid(bf) == 0)
    }

    /// Grow the box by `n` cells on every side.
    pub fn grown(&self, n: i64) -> IntBox {
        IntBox::new(self.lo - IntVect::splat(n), self.hi + IntVect::splat(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_basics() {
        let b = IntBox::from_extents(4, 3, 2);
        assert_eq!(b.num_cells(), 24);
        assert_eq!(b.size(), IntVect::new(4, 3, 2));
        assert!(b.contains(&IntVect::new(3, 2, 1)));
        assert!(!b.contains(&IntVect::new(4, 0, 0)));
    }

    #[test]
    fn intersection_symmetric() {
        let a = IntBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7));
        let b = IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, b.intersection(&a).unwrap());
        assert_eq!(i, IntBox::new(IntVect::new(4, 4, 4), IntVect::new(7, 7, 7)));
        let c = IntBox::new(IntVect::new(8, 0, 0), IntVect::new(9, 1, 1));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let b = IntBox::new(IntVect::new(2, 4, 6), IntVect::new(5, 7, 9));
        let r = b.refined(2);
        assert_eq!(r.lo, IntVect::new(4, 8, 12));
        assert_eq!(r.hi, IntVect::new(11, 15, 19));
        assert_eq!(r.coarsened(2), b);
        assert_eq!(r.num_cells(), b.num_cells() * 8);
    }

    #[test]
    fn coarsen_floor_semantics() {
        // Cells 0..=2 coarsen to 0..=1 with ratio 2 (cell 2 -> 1).
        let b = IntBox::new(IntVect::ZERO, IntVect::new(2, 2, 2));
        let c = b.coarsened(2);
        assert_eq!(c.hi, IntVect::new(1, 1, 1));
        // Negative indices floor correctly.
        let n = IntBox::new(IntVect::new(-3, -3, -3), IntVect::new(-1, -1, -1));
        assert_eq!(n.coarsened(2).lo, IntVect::new(-2, -2, -2));
    }

    #[test]
    fn subtraction_covers_complement() {
        let a = IntBox::from_extents(8, 8, 8);
        let b = IntBox::new(IntVect::new(2, 2, 2), IntVect::new(5, 5, 5));
        let pieces = a.subtract(&b);
        let total: u64 = pieces.iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, a.num_cells() - b.num_cells());
        // Pieces must be disjoint from each other and from b.
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                assert!(!p.intersects(q), "{p:?} overlaps {q:?}");
            }
        }
    }

    #[test]
    fn subtraction_disjoint_and_contained() {
        let a = IntBox::from_extents(4, 4, 4);
        let far = IntBox::new(IntVect::new(10, 10, 10), IntVect::new(12, 12, 12));
        assert_eq!(a.subtract(&far), vec![a]);
        let all = IntBox::new(IntVect::new(-1, -1, -1), IntVect::new(5, 5, 5));
        assert!(a.subtract(&all).is_empty());
    }

    #[test]
    fn linear_index_fortran_order() {
        let b = IntBox::new(IntVect::new(1, 1, 1), IntVect::new(3, 3, 3));
        assert_eq!(b.linear_index(&IntVect::new(1, 1, 1)), 0);
        assert_eq!(b.linear_index(&IntVect::new(2, 1, 1)), 1);
        assert_eq!(b.linear_index(&IntVect::new(1, 2, 1)), 3);
        assert_eq!(b.linear_index(&IntVect::new(1, 1, 2)), 9);
        // iter_points visits in the same order
        for (i, p) in b.iter_points().enumerate() {
            assert_eq!(b.linear_index(&p), i);
        }
    }

    #[test]
    fn tiles_partition_box() {
        let b = IntBox::from_extents(20, 12, 8);
        let tiles = b.tiles(8);
        let total: u64 = tiles.iter().map(|t| t.num_cells()).sum();
        assert_eq!(total, b.num_cells());
        for (i, t) in tiles.iter().enumerate() {
            for u in &tiles[i + 1..] {
                assert!(!t.intersects(u));
            }
        }
    }

    #[test]
    fn alignment() {
        assert!(IntBox::from_extents(16, 32, 8).is_aligned(8));
        assert!(!IntBox::from_extents(12, 32, 8).is_aligned(8));
        let shifted = IntBox::from_extents(16, 16, 16).shifted(IntVect::new(8, 8, 8));
        assert!(shifted.is_aligned(8));
        assert!(!shifted.shifted(IntVect::new(1, 0, 0)).is_aligned(8));
    }
}
