//! [`AmrHierarchy`]: the full multi-level mesh + data (AMReX `Amr`
//! equivalent), with AMReX numbering — level 0 is the coarsest.

use crate::boxarray::{BoxArray, DistributionMapping};
use crate::geom::{IntBox, IntVect};
use crate::multifab::MultiFab;

/// One refinement level: its grids, data and the refinement ratio *to the
/// next finer level* (AMReX stores ratios the same way).
#[derive(Clone, Debug)]
pub struct Level {
    /// Index-space domain of the whole level (covers the problem domain at
    /// this resolution).
    pub domain: IntBox,
    /// Field data over this level's grids.
    pub data: MultiFab,
}

/// A patch-based AMR hierarchy.
#[derive(Clone, Debug)]
pub struct AmrHierarchy {
    levels: Vec<Level>,
    /// `ref_ratio[l]` refines level `l` to level `l+1`. Length
    /// `levels.len() - 1`.
    ref_ratio: Vec<i64>,
    field_names: Vec<String>,
}

impl AmrHierarchy {
    /// Start a hierarchy from a coarse (level-0) domain decomposition.
    pub fn new(
        domain: IntBox,
        max_grid_size: i64,
        nranks: usize,
        field_names: Vec<String>,
    ) -> Self {
        let ba = BoxArray::decompose(domain, max_grid_size);
        let dm = DistributionMapping::knapsack(&ba, nranks);
        let data = MultiFab::new(ba, dm, field_names.clone());
        AmrHierarchy {
            levels: vec![Level { domain, data }],
            ref_ratio: Vec::new(),
            field_names,
        }
    }

    /// Append a finer level with the given grids (expressed in the finer
    /// index space).
    pub fn push_level(&mut self, ba: BoxArray, ratio: i64, nranks: usize) {
        assert!(ratio >= 2, "refinement ratio must be ≥ 2");
        let coarse_domain = self.levels.last().expect("non-empty").domain;
        let domain = coarse_domain.refined(ratio);
        for b in ba.iter() {
            assert!(
                domain.contains_box(b),
                "fine box {b:?} escapes domain {domain:?}"
            );
        }
        let dm = DistributionMapping::knapsack(&ba, nranks);
        let data = MultiFab::new(ba, dm, self.field_names.clone());
        self.levels.push(Level { domain, data });
        self.ref_ratio.push(ratio);
    }

    /// Number of levels (≥ 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level accessor (0 = coarsest).
    pub fn level(&self, l: usize) -> &Level {
        &self.levels[l]
    }

    /// Mutable level accessor.
    pub fn level_mut(&mut self, l: usize) -> &mut Level {
        &mut self.levels[l]
    }

    /// Refinement ratio from level `l` to `l+1`.
    pub fn ref_ratio(&self, l: usize) -> i64 {
        self.ref_ratio[l]
    }

    /// Field names shared by every level.
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// Iterate over levels, coarse to fine.
    pub fn levels(&self) -> impl Iterator<Item = &Level> {
        self.levels.iter()
    }

    /// Total cells stored across all levels (including redundant coarse
    /// cells — the quantity patch-based AMR actually writes).
    pub fn total_cells(&self) -> u64 {
        self.levels.iter().map(|l| l.data.num_cells()).sum()
    }

    /// Bytes of raw field data for one snapshot (f64).
    pub fn snapshot_bytes(&self) -> u64 {
        self.total_cells() * self.field_names.len() as u64 * 8
    }

    /// Fill a field on every level by evaluating `f` at the *physical*
    /// location of each cell, expressed in level-normalised coordinates in
    /// `[0,1)³` (cell centers). Coarse and fine levels therefore sample the
    /// same underlying continuous field, as a nested AMR solver would.
    pub fn fill_field_physical(&mut self, c: usize, f: impl Fn(f64, f64, f64) -> f64 + Sync) {
        for level in &mut self.levels {
            let n = level.domain.size();
            let (nx, ny, nz) = (n.get(0) as f64, n.get(1) as f64, n.get(2) as f64);
            let lo = level.domain.lo;
            let nfabs = level.data.box_array().len();
            for i in 0..nfabs {
                level.data.fab_mut(i).fill_with(c, |p: &IntVect| {
                    let x = (p.get(0) - lo.get(0)) as f64 / nx + 0.5 / nx;
                    let y = (p.get(1) - lo.get(1)) as f64 / ny + 0.5 / ny;
                    let z = (p.get(2) - lo.get(2)) as f64 / nz + 0.5 / nz;
                    f(x, y, z)
                });
            }
        }
    }

    /// Up-sample everything to the finest level's resolution, preferring the
    /// finest data available at each point (the post-analysis "uniform
    /// resolution" conversion of the paper's Fig. 3). Piecewise-constant
    /// (injection) upsampling, which is what AMReX's plotfile tools default
    /// to for cell-centered data.
    pub fn flatten_to_uniform(&self, c: usize) -> (IntBox, Vec<f64>) {
        let finest = self.levels.len() - 1;
        let domain = self.levels[finest].domain;
        let sz = domain.size();
        let mut out = vec![f64::NAN; domain.num_cells() as usize];
        // Fill coarse-to-fine so finer levels overwrite redundant coarse data.
        let mut ratio_to_finest = vec![1i64; self.levels.len()];
        for l in (0..finest).rev() {
            ratio_to_finest[l] = ratio_to_finest[l + 1] * self.ref_ratio[l];
        }
        for (l, level) in self.levels.iter().enumerate() {
            let r = ratio_to_finest[l];
            for (_, fab) in level.data.iter() {
                for p in fab.domain().iter_points() {
                    let v = fab.get(&p, c);
                    let fine = IntBox::new(p, p).refined(r);
                    for q in fine.iter_points() {
                        let idx = ((q.get(0) - domain.lo.get(0))
                            + sz.get(0)
                                * ((q.get(1) - domain.lo.get(1))
                                    + sz.get(1) * (q.get(2) - domain.lo.get(2))))
                            as usize;
                        out[idx] = v;
                    }
                }
            }
        }
        (domain, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::IntVect;

    fn two_level() -> AmrHierarchy {
        let mut h = AmrHierarchy::new(
            IntBox::from_extents(16, 16, 16),
            8,
            2,
            vec!["rho".into(), "T".into()],
        );
        // Refine the lower-left octant: coarse cells [0..8)³ → fine [0..16)³.
        let fine = BoxArray::new(vec![IntBox::from_extents(16, 16, 16)]);
        h.push_level(fine, 2, 2);
        h
    }

    #[test]
    fn construction() {
        let h = two_level();
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.ref_ratio(0), 2);
        assert_eq!(h.level(1).domain, IntBox::from_extents(32, 32, 32));
        assert_eq!(h.total_cells(), 16 * 16 * 16 + 16 * 16 * 16);
        assert_eq!(h.snapshot_bytes(), h.total_cells() * 2 * 8);
    }

    #[test]
    fn physical_fill_consistency() {
        let mut h = two_level();
        h.fill_field_physical(0, |x, y, z| x + 2.0 * y + 4.0 * z);
        // A coarse cell and the average of its fine children should be close
        // (equal for an affine function).
        let coarse_v = h.level(0).data.value_at(&IntVect::new(2, 2, 2), 0).unwrap();
        let mut fine_sum = 0.0;
        let children = IntBox::new(IntVect::new(2, 2, 2), IntVect::new(2, 2, 2)).refined(2);
        for q in children.iter_points() {
            fine_sum += h.level(1).data.value_at(&q, 0).unwrap();
        }
        assert!((coarse_v - fine_sum / 8.0).abs() < 1e-12);
    }

    #[test]
    fn flatten_prefers_fine() {
        let mut h = two_level();
        // Make levels distinguishable.
        for i in 0..h.level(0).data.box_array().len() {
            h.level_mut(0).data.fab_mut(i).fill_with(0, |_| 1.0);
        }
        for i in 0..h.level(1).data.box_array().len() {
            h.level_mut(1).data.fab_mut(i).fill_with(0, |_| 2.0);
        }
        let (domain, flat) = h.flatten_to_uniform(0);
        assert_eq!(domain, IntBox::from_extents(32, 32, 32));
        // Point inside the refined octant sees fine data.
        let idx = |x: i64, y: i64, z: i64| (x + 32 * (y + 32 * z)) as usize;
        assert_eq!(flat[idx(0, 0, 0)], 2.0);
        // Point outside sees upsampled coarse data.
        assert_eq!(flat[idx(31, 31, 31)], 1.0);
        assert!(flat.iter().all(|v| !v.is_nan()));
    }
}
