//! Cell tagging for refinement (AMReX `TagBox` / `ErrorEst` equivalent).
//!
//! A [`TagField`] is a boolean field over a level's domain marking cells
//! that need refinement. The paper (§2.3) describes the usual criteria:
//! tag a cell when its value, or the norm of its gradient, exceeds a
//! threshold (e.g. the field mean).

use crate::geom::{IntBox, IntVect};
use crate::multifab::MultiFab;

/// Dense boolean tag field over a level domain.
#[derive(Clone, Debug)]
pub struct TagField {
    domain: IntBox,
    tags: Vec<bool>,
}

impl TagField {
    /// All-false tags over `domain`.
    pub fn new(domain: IntBox) -> Self {
        TagField {
            tags: vec![false; domain.num_cells() as usize],
            domain,
        }
    }

    /// The tagged region's domain.
    pub fn domain(&self) -> &IntBox {
        &self.domain
    }

    /// Is `p` tagged?
    #[inline]
    pub fn get(&self, p: &IntVect) -> bool {
        self.tags[self.domain.linear_index(p)]
    }

    /// Tag or untag `p`.
    #[inline]
    pub fn set(&mut self, p: &IntVect, v: bool) {
        let i = self.domain.linear_index(p);
        self.tags[i] = v;
    }

    /// Number of tagged cells.
    pub fn count(&self) -> usize {
        self.tags.iter().filter(|&&t| t).count()
    }

    /// Count of tagged cells within `region`.
    pub fn count_in(&self, region: &IntBox) -> usize {
        region
            .intersection(&self.domain)
            .map(|r| r.iter_points().filter(|p| self.get(p)).count())
            .unwrap_or(0)
    }

    /// Any tagged cell within `region`?
    pub fn any_in(&self, region: &IntBox) -> bool {
        match region.intersection(&self.domain) {
            Some(r) => r.iter_points().any(|p| self.get(&p)),
            None => false,
        }
    }

    /// Minimal box containing every tagged cell in `region` (None if no
    /// tags).
    pub fn bounding_box_in(&self, region: &IntBox) -> Option<IntBox> {
        let r = region.intersection(&self.domain)?;
        let mut lo = IntVect::splat(i64::MAX);
        let mut hi = IntVect::splat(i64::MIN);
        let mut any = false;
        for p in r.iter_points() {
            if self.get(&p) {
                lo = lo.min(&p);
                hi = hi.max(&p);
                any = true;
            }
        }
        any.then(|| IntBox::new(lo, hi))
    }

    /// Grow every tag by `n` cells in each direction (AMReX
    /// `TagBox::buffer`, ensures refined regions have a safety margin),
    /// clipped to the domain.
    pub fn buffer(&self, n: i64) -> TagField {
        let mut out = TagField::new(self.domain);
        for p in self.domain.iter_points() {
            if self.get(&p) {
                let grown = IntBox::new(p, p).grown(n);
                if let Some(clip) = grown.intersection(&self.domain) {
                    for q in clip.iter_points() {
                        out.set(&q, true);
                    }
                }
            }
        }
        out
    }
}

/// Tag every cell whose field value exceeds `threshold` (the paper's
/// "refine a block when its maximum value surpasses a threshold" criterion,
/// applied cell-wise before clustering).
pub fn tag_above(mf: &MultiFab, comp: usize, threshold: f64, domain: IntBox) -> TagField {
    let mut tags = TagField::new(domain);
    for (_, fab) in mf.iter() {
        for p in fab.domain().iter_points() {
            if fab.get(&p, comp) > threshold {
                tags.set(&p, true);
            }
        }
    }
    tags
}

/// Tag cells whose centered-difference gradient norm exceeds `threshold`.
/// One-sided differences at level edges; differences never cross box
/// boundaries (cheap and local, adequate for synthetic workloads).
pub fn tag_gradient(mf: &MultiFab, comp: usize, threshold: f64, domain: IntBox) -> TagField {
    let mut tags = TagField::new(domain);
    for (_, fab) in mf.iter() {
        let b = *fab.domain();
        for p in b.iter_points() {
            let mut g2 = 0.0;
            for d in 0..3 {
                let mut hi = p;
                hi.0[d] = (p.get(d) + 1).min(b.hi.get(d));
                let mut lo = p;
                lo.0[d] = (p.get(d) - 1).max(b.lo.get(d));
                let span = (hi.get(d) - lo.get(d)).max(1) as f64;
                let diff = (fab.get(&hi, comp) - fab.get(&lo, comp)) / span;
                g2 += diff * diff;
            }
            if g2.sqrt() > threshold {
                tags.set(&p, true);
            }
        }
    }
    tags
}

/// Mean of a field over all boxes (a common refinement threshold in the
/// paper: "e.g., the average value of the entire field").
pub fn field_mean(mf: &MultiFab, comp: usize) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (_, fab) in mf.iter() {
        sum += fab.comp(comp).iter().sum::<f64>();
        n += fab.cells();
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxarray::{BoxArray, DistributionMapping};

    fn mf_with(f: impl Fn(&IntVect) -> f64 + Sync) -> (MultiFab, IntBox) {
        let domain = IntBox::from_extents(16, 16, 16);
        let ba = BoxArray::decompose(domain, 8);
        let dm = DistributionMapping::round_robin(ba.len(), 1);
        let mut mf = MultiFab::new(ba, dm, vec!["f".into()]);
        mf.fill_field(0, f);
        (mf, domain)
    }

    #[test]
    fn tag_above_threshold() {
        let (mf, domain) = mf_with(|p| p.get(0) as f64);
        let tags = tag_above(&mf, 0, 12.0, domain);
        // Cells with x in 13..=15 are tagged: 3 * 16 * 16.
        assert_eq!(tags.count(), 3 * 16 * 16);
        assert!(tags.get(&IntVect::new(13, 0, 0)));
        assert!(!tags.get(&IntVect::new(12, 0, 0)));
    }

    #[test]
    fn tag_gradient_flags_jump() {
        // Jump interior to a box (boxes span y 8..=15, jump at y=12) because
        // tag_gradient differences do not cross box boundaries.
        let (mf, domain) = mf_with(|p| if p.get(1) >= 12 { 10.0 } else { 0.0 });
        let tags = tag_gradient(&mf, 0, 1.0, domain);
        assert!(tags.count() > 0);
        // Gradient is confined near the jump plane y≈12.
        assert!(tags.get(&IntVect::new(4, 12, 4)) || tags.get(&IntVect::new(4, 11, 4)));
        assert!(!tags.get(&IntVect::new(4, 0, 4)));
        assert!(!tags.get(&IntVect::new(4, 15, 4)));
    }

    #[test]
    fn mean_matches() {
        let (mf, _) = mf_with(|_| 3.5);
        assert!((field_mean(&mf, 0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn buffer_grows_tags() {
        let domain = IntBox::from_extents(8, 8, 8);
        let mut tags = TagField::new(domain);
        tags.set(&IntVect::new(4, 4, 4), true);
        let grown = tags.buffer(1);
        assert_eq!(grown.count(), 27);
        let edge = {
            let mut t = TagField::new(domain);
            t.set(&IntVect::new(0, 0, 0), true);
            t.buffer(1)
        };
        assert_eq!(edge.count(), 8); // clipped at the domain corner
    }

    #[test]
    fn bounding_box_of_tags() {
        let domain = IntBox::from_extents(8, 8, 8);
        let mut tags = TagField::new(domain);
        tags.set(&IntVect::new(1, 2, 3), true);
        tags.set(&IntVect::new(5, 2, 6), true);
        let bb = tags.bounding_box_in(&domain).unwrap();
        assert_eq!(bb.lo, IntVect::new(1, 2, 3));
        assert_eq!(bb.hi, IntVect::new(5, 2, 6));
        assert_eq!(tags.count_in(&bb), 2);
    }
}
