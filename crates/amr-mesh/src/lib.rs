//! # amr-mesh — patch-based AMR substrate (AMReX data-model equivalent)
//!
//! This crate reimplements the slice of AMReX that the AMRIC paper (SC '23)
//! builds on: integer index-space geometry, per-level grids ([`BoxArray`]),
//! per-box field data ([`FArrayBox`] / [`MultiFab`]), the multi-level
//! [`AmrHierarchy`], cell tagging and Berger–Rigoutsos grid generation, and
//! the coarse/fine overlap (redundancy) queries AMRIC's pre-processing uses.
//!
//! Conventions follow AMReX exactly:
//! * level 0 is the coarsest level; refining by ratio 2 doubles resolution;
//! * boxes are inclusive `[lo, hi]` index ranges, data Fortran-ordered with
//!   x fastest and the field/component index slowest;
//! * grids are aligned to a blocking factor, so coarse/fine boundaries land
//!   on unit-block boundaries (the alignment AMRIC's truncation exploits).
//!
//! ```
//! use amr_mesh::prelude::*;
//!
//! // A 32³ coarse level decomposed into 16³ grids on 4 ranks.
//! let mut h = AmrHierarchy::new(IntBox::from_extents(32, 32, 32), 16, 4,
//!                               vec!["density".into()]);
//! h.fill_field_physical(0, |x, y, z| x + y + z);
//! // Tag hot cells and build a refined level.
//! let tags = tag_above(&h.level(0).data, 0, 2.0, h.level(0).domain);
//! let boxes = berger_rigoutsos(&tags, &ClusterParams::default());
//! if !boxes.is_empty() {
//!     let fine = BoxArray::new(boxes).refined(2);
//!     h.push_level(fine, 2, 4);
//! }
//! ```

pub mod boxarray;
pub mod cluster;
pub mod fab;
pub mod geom;
pub mod hierarchy;
pub mod multifab;
pub mod overlap;
pub mod tagging;

pub use boxarray::{BoxArray, DistributionMapping};
pub use fab::FArrayBox;
pub use geom::{IntBox, IntVect};
pub use hierarchy::AmrHierarchy;
pub use multifab::MultiFab;

/// Convenient re-exports of the commonly used types.
pub mod prelude {
    pub use crate::boxarray::{BoxArray, DistributionMapping};
    pub use crate::cluster::{berger_rigoutsos, ClusterParams};
    pub use crate::fab::FArrayBox;
    pub use crate::geom::{IntBox, IntVect, DIM};
    pub use crate::hierarchy::{AmrHierarchy, Level};
    pub use crate::multifab::{BoxPayload, MultiFab};
    pub use crate::overlap::{coverage, summarize, BoxCoverage, RedundancySummary};
    pub use crate::tagging::{field_mean, tag_above, tag_gradient, TagField};
}
