//! Berger–Rigoutsos point clustering: turn a [`TagField`] into a set of
//! rectangular grids for the next finer level (AMReX `Cluster` /
//! `MakeBoxes` equivalent).
//!
//! The classic algorithm recursively splits a candidate box at signature
//! holes or inflection points until every box has tagging efficiency above a
//! target threshold, then snaps boxes to the blocking factor so the fine
//! grids satisfy the AMReX alignment invariant AMRIC depends on (§3.1 of the
//! paper: overlap boundaries align with unit blocks).

use crate::geom::{IntBox, IntVect};
use crate::tagging::TagField;

/// Grid-generation parameters (names follow AMReX inputs).
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Minimum fraction of tagged cells in an accepted box
    /// (`amr.grid_eff`).
    pub grid_eff: f64,
    /// All accepted boxes are snapped outward to multiples of this
    /// (`amr.blocking_factor`), expressed in *coarse-level* cells.
    pub blocking_factor: i64,
    /// Maximum box extent in any dimension (`amr.max_grid_size`), in coarse
    /// cells.
    pub max_grid_size: i64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            grid_eff: 0.7,
            blocking_factor: 8,
            max_grid_size: 64,
        }
    }
}

/// Cluster tagged cells into boxes (in the same index space as the tags).
/// The returned boxes are disjoint, blocking-factor aligned, cover every
/// tagged cell, and respect `max_grid_size`.
pub fn berger_rigoutsos(tags: &TagField, params: &ClusterParams) -> Vec<IntBox> {
    let Some(seed) = tags.bounding_box_in(tags.domain()) else {
        return Vec::new();
    };
    let mut accepted = Vec::new();
    let mut work = vec![seed];
    while let Some(candidate) = work.pop() {
        // Berger–Rigoutsos step 1: shrink to the minimal box of tags.
        let Some(b) = tags.bounding_box_in(&candidate) else {
            continue;
        };
        let ntags = tags.count_in(&b);
        let eff = ntags as f64 / b.num_cells() as f64;
        let small = (0..3).all(|d| b.size().get(d) <= params.blocking_factor);
        if (eff >= params.grid_eff || small) && fits(&b, params.max_grid_size) {
            accepted.push(b);
            continue;
        }
        match split(tags, &b, params) {
            Some((l, r)) => {
                work.push(l);
                work.push(r);
            }
            None => accepted.push(b),
        }
    }
    snap_and_dedup(tags, accepted, params)
}

fn fits(b: &IntBox, max: i64) -> bool {
    (0..3).all(|d| b.size().get(d) <= max)
}

/// Tag counts along each plane of dimension `d` ("signature").
fn signature(tags: &TagField, b: &IntBox, d: usize) -> Vec<usize> {
    let lo = b.lo.get(d);
    let n = b.size().get(d) as usize;
    let mut sig = vec![0usize; n];
    for p in b.iter_points() {
        if tags.get(&p) {
            sig[(p.get(d) - lo) as usize] += 1;
        }
    }
    sig
}

/// Choose a split plane: prefer the widest zero-signature hole, then the
/// strongest Laplacian inflection, then the midpoint of the longest axis.
fn split(tags: &TagField, b: &IntBox, params: &ClusterParams) -> Option<(IntBox, IntBox)> {
    // Longest-first dimension ordering.
    let mut dims: Vec<usize> = (0..3).collect();
    dims.sort_by_key(|&d| std::cmp::Reverse(b.size().get(d)));

    // 1. Holes: cut at the center of the widest zero-signature run. After
    //    the shrink step holes never touch the box faces.
    let mut best_hole: Option<(usize, usize, i64)> = None; // (width, dim, plane)
    for &d in &dims {
        let sig = signature(tags, b, d);
        let mut run_start = None;
        for i in 0..=sig.len() {
            let zero = i < sig.len() && sig[i] == 0;
            match (zero, run_start) {
                (true, None) => run_start = Some(i),
                (false, Some(s)) => {
                    let width = i - s;
                    // Cut in the middle of the hole; both children then
                    // shrink away their half of the hole.
                    let plane = b.lo.get(d) + (s + width / 2).max(1) as i64;
                    if best_hole.is_none_or(|(w, _, _)| width > w) {
                        best_hole = Some((width, d, plane));
                    }
                    run_start = None;
                }
                _ => {}
            }
        }
    }
    if let Some((_, d, plane)) = best_hole {
        if let Some(pair) = cut(b, d, plane) {
            return Some(pair);
        }
    }

    // 2. Inflection of the signature Laplacian.
    let mut best_inf: Option<(i64, usize, i64)> = None; // (strength, dim, plane)
    for &d in &dims {
        if b.size().get(d) < 4 {
            continue;
        }
        let sig = signature(tags, b, d);
        let lap: Vec<i64> = (1..sig.len() - 1)
            .map(|i| sig[i - 1] as i64 - 2 * sig[i] as i64 + sig[i + 1] as i64)
            .collect();
        for i in 0..lap.len().saturating_sub(1) {
            if lap[i].signum() != lap[i + 1].signum() && lap[i] != 0 && lap[i + 1] != 0 {
                let strength = (lap[i] - lap[i + 1]).abs();
                let plane = b.lo.get(d) + i as i64 + 1;
                if best_inf.is_none_or(|(s, _, _)| strength > s) {
                    best_inf = Some((strength, d, plane));
                }
            }
        }
    }
    if let Some((_, d, plane)) = best_inf {
        if let Some(pair) = cut(b, d, plane) {
            return Some(pair);
        }
    }

    // 3. Midpoint of the longest splittable axis, snapped to the blocking
    //    factor when possible so children stay alignable.
    for &d in &dims {
        if b.size().get(d) >= 2 {
            let mut plane = b.lo.get(d) + b.size().get(d) / 2;
            let bf = params.blocking_factor;
            let snapped = plane.div_euclid(bf) * bf;
            if snapped > b.lo.get(d) && snapped <= b.hi.get(d) {
                plane = snapped;
            }
            if let Some(pair) = cut(b, d, plane) {
                return Some(pair);
            }
        }
    }
    None
}

/// Split `b` at `plane` along `d`: left gets `..plane-1`, right `plane..`.
fn cut(b: &IntBox, d: usize, plane: i64) -> Option<(IntBox, IntBox)> {
    if plane <= b.lo.get(d) || plane > b.hi.get(d) {
        return None;
    }
    let mut lhi = b.hi;
    lhi.0[d] = plane - 1;
    let mut rlo = b.lo;
    rlo.0[d] = plane;
    Some((IntBox::new(b.lo, lhi), IntBox::new(rlo, b.hi)))
}

/// Snap boxes outward to the blocking factor, clip to the tag domain,
/// split anything exceeding `max_grid_size`, and resolve overlaps created
/// by snapping (first box wins; later boxes keep their non-overlapping
/// pieces).
fn snap_and_dedup(tags: &TagField, boxes: Vec<IntBox>, params: &ClusterParams) -> Vec<IntBox> {
    let bf = params.blocking_factor;
    let domain = *tags.domain();
    let mut snapped: Vec<IntBox> = Vec::with_capacity(boxes.len());
    for b in boxes {
        let lo = IntVect::new(
            b.lo.get(0).div_euclid(bf) * bf,
            b.lo.get(1).div_euclid(bf) * bf,
            b.lo.get(2).div_euclid(bf) * bf,
        );
        let hi = IntVect::new(
            ((b.hi.get(0) + bf).div_euclid(bf)) * bf - 1,
            ((b.hi.get(1) + bf).div_euclid(bf)) * bf - 1,
            ((b.hi.get(2) + bf).div_euclid(bf)) * bf - 1,
        );
        let s = IntBox::new(lo, hi)
            .intersection(&domain)
            .expect("snapped box leaves domain");
        snapped.push(s);
    }
    // Resolve overlaps.
    let mut disjoint: Vec<IntBox> = Vec::with_capacity(snapped.len());
    for b in snapped {
        let mut pieces = vec![b];
        for existing in &disjoint {
            let mut next = Vec::new();
            for p in pieces {
                next.extend(p.subtract(existing));
            }
            pieces = next;
        }
        disjoint.extend(pieces);
    }
    // Enforce max_grid_size; drop tag-free fragments created by snapping.
    let mut out = Vec::new();
    for b in disjoint {
        for t in b.tiles(params.max_grid_size) {
            if tags.any_in(&t) {
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::IntVect;

    fn params(bf: i64) -> ClusterParams {
        ClusterParams {
            grid_eff: 0.7,
            blocking_factor: bf,
            max_grid_size: 64,
        }
    }

    fn tag_region(domain: IntBox, region: IntBox) -> TagField {
        let mut tags = TagField::new(domain);
        for p in region.iter_points() {
            tags.set(&p, true);
        }
        tags
    }

    fn check_invariants(tags: &TagField, boxes: &[IntBox], p: &ClusterParams) {
        // Every tag covered.
        for q in tags.domain().iter_points() {
            if tags.get(&q) {
                assert!(
                    boxes.iter().any(|b| b.contains(&q)),
                    "tag {q:?} not covered"
                );
            }
        }
        // Disjoint.
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                assert!(!a.intersects(b), "{a:?} overlaps {b:?}");
            }
        }
        // Aligned (interior boxes; domain-clipped boxes stay aligned because
        // the domain itself is a multiple of bf in these tests).
        for b in boxes {
            assert!(b.is_aligned(p.blocking_factor), "{b:?} not aligned");
            for d in 0..3 {
                assert!(b.size().get(d) <= p.max_grid_size);
            }
        }
    }

    #[test]
    fn single_cluster() {
        let domain = IntBox::from_extents(32, 32, 32);
        let region = IntBox::new(IntVect::new(8, 8, 8), IntVect::new(15, 15, 15));
        let tags = tag_region(domain, region);
        let p = params(8);
        let boxes = berger_rigoutsos(&tags, &p);
        check_invariants(&tags, &boxes, &p);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0], region);
    }

    #[test]
    fn two_separated_clusters() {
        let domain = IntBox::from_extents(64, 32, 32);
        let mut tags = tag_region(
            domain,
            IntBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
        );
        for p in IntBox::new(IntVect::new(48, 16, 16), IntVect::new(55, 23, 23)).iter_points() {
            tags.set(&p, true);
        }
        let p = params(8);
        let boxes = berger_rigoutsos(&tags, &p);
        check_invariants(&tags, &boxes, &p);
        assert_eq!(boxes.len(), 2, "hole split should separate clusters");
        let covered: u64 = boxes.iter().map(|b| b.num_cells()).sum();
        assert_eq!(covered, 2 * 8 * 8 * 8, "tight boxes expected: {boxes:?}");
    }

    #[test]
    fn empty_tags_no_boxes() {
        let tags = TagField::new(IntBox::from_extents(16, 16, 16));
        assert!(berger_rigoutsos(&tags, &params(8)).is_empty());
    }

    #[test]
    fn l_shape_splits() {
        let domain = IntBox::from_extents(32, 32, 32);
        let mut tags = tag_region(
            domain,
            IntBox::new(IntVect::new(0, 0, 0), IntVect::new(23, 7, 7)),
        );
        for q in IntBox::new(IntVect::new(0, 8, 0), IntVect::new(7, 23, 7)).iter_points() {
            tags.set(&q, true);
        }
        let p = params(8);
        let boxes = berger_rigoutsos(&tags, &p);
        check_invariants(&tags, &boxes, &p);
        // An efficient covering of an L uses 2–3 boxes, never the bounding
        // box (efficiency of bounding box = (24*8+8*16)/ (24*24*8) < 0.7).
        let total: u64 = boxes.iter().map(|b| b.num_cells()).sum();
        assert!(total < 24 * 24 * 8, "bounding box not split: {boxes:?}");
    }

    #[test]
    fn max_grid_size_respected() {
        let domain = IntBox::from_extents(128, 16, 16);
        let tags = tag_region(domain, domain);
        let p = ClusterParams {
            grid_eff: 0.7,
            blocking_factor: 8,
            max_grid_size: 32,
        };
        let boxes = berger_rigoutsos(&tags, &p);
        check_invariants(&tags, &boxes, &p);
        assert!(boxes.len() >= 4);
    }
}
