//! [`BoxArray`] (the set of grids on one AMR level) and
//! [`DistributionMapping`] (grid → MPI-rank assignment), mirroring AMReX.

use crate::geom::IntBox;

/// The collection of (disjoint) boxes that make up one AMR level.
///
/// AMReX invariants enforced here:
/// * boxes are pairwise disjoint,
/// * every box is aligned to the level's blocking factor (checked by
///   [`BoxArray::check_blocking_factor`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BoxArray {
    boxes: Vec<IntBox>,
}

impl BoxArray {
    /// Build from a list of boxes. Panics (debug) if boxes overlap.
    pub fn new(boxes: Vec<IntBox>) -> Self {
        #[cfg(debug_assertions)]
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                debug_assert!(!a.intersects(b), "BoxArray boxes overlap: {a:?} {b:?}");
            }
        }
        BoxArray { boxes }
    }

    /// A single box covering `domain`.
    pub fn single(domain: IntBox) -> Self {
        BoxArray {
            boxes: vec![domain],
        }
    }

    /// Chop `domain` into `max_grid_size`-sized boxes (AMReX `maxSize`),
    /// the standard way level-0 grids are created.
    pub fn decompose(domain: IntBox, max_grid_size: i64) -> Self {
        BoxArray {
            boxes: domain.tiles(max_grid_size),
        }
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when the level has no grids.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Access a box by index.
    pub fn get(&self, i: usize) -> &IntBox {
        &self.boxes[i]
    }

    /// Iterate over the boxes.
    pub fn iter(&self) -> impl Iterator<Item = &IntBox> {
        self.boxes.iter()
    }

    /// All boxes as a slice.
    pub fn boxes(&self) -> &[IntBox] {
        &self.boxes
    }

    /// Total number of cells across all boxes.
    pub fn num_cells(&self) -> u64 {
        self.boxes.iter().map(|b| b.num_cells()).sum()
    }

    /// The smallest box containing every grid (AMReX `minimalBox`).
    pub fn minimal_box(&self) -> Option<IntBox> {
        let first = self.boxes.first()?;
        let mut lo = first.lo;
        let mut hi = first.hi;
        for b in &self.boxes[1..] {
            lo = lo.min(&b.lo);
            hi = hi.max(&b.hi);
        }
        Some(IntBox::new(lo, hi))
    }

    /// Indices of boxes intersecting `region` together with the
    /// intersection pieces. This is the AMReX `BoxArray::intersections`
    /// fast-path used by AMRIC to find redundant coarse data (§3.1).
    pub fn intersections(&self, region: &IntBox) -> Vec<(usize, IntBox)> {
        // AMReX accelerates this with a hash of coarsened bounding cells;
        // a bounding-box pre-cull keeps this O(n) per query with a tiny
        // constant, which is plenty at our box counts.
        self.boxes
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.intersection(region).map(|ib| (i, ib)))
            .collect()
    }

    /// Do any of the boxes intersect `region`?
    pub fn intersects(&self, region: &IntBox) -> bool {
        self.boxes.iter().any(|b| b.intersects(region))
    }

    /// Refine every box by `r` (level grids expressed at the finer index
    /// space).
    pub fn refined(&self, r: i64) -> BoxArray {
        BoxArray {
            boxes: self.boxes.iter().map(|b| b.refined(r)).collect(),
        }
    }

    /// Coarsen every box by `r`.
    pub fn coarsened(&self, r: i64) -> BoxArray {
        BoxArray {
            boxes: self.boxes.iter().map(|b| b.coarsened(r)).collect(),
        }
    }

    /// Verify the AMReX blocking-factor invariant for every box.
    pub fn check_blocking_factor(&self, bf: i64) -> bool {
        self.boxes.iter().all(|b| b.is_aligned(bf))
    }

    /// Fraction of `domain`'s cells covered by this array ("data density"
    /// in the paper's Table 1).
    pub fn density_in(&self, domain: &IntBox) -> f64 {
        self.num_cells() as f64 / domain.num_cells() as f64
    }
}

/// Assignment of each box on a level to an owning rank.
///
/// AMReX's default space-filling-curve / knapsack strategies are
/// approximated by a cell-count-balanced greedy knapsack, which is what
/// matters for the I/O experiments: the per-rank data volume distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DistributionMapping {
    owner: Vec<usize>,
    nranks: usize,
}

impl DistributionMapping {
    /// Rebuild a mapping from explicit per-box owners (used when reading
    /// a plotfile back: the owners were recorded at write time).
    pub fn from_owners(owner: Vec<usize>, nranks: usize) -> Self {
        assert!(nranks > 0);
        assert!(owner.iter().all(|&o| o < nranks), "owner out of range");
        DistributionMapping { owner, nranks }
    }

    /// Round-robin assignment (AMReX `RoundRobin` strategy).
    pub fn round_robin(nboxes: usize, nranks: usize) -> Self {
        assert!(nranks > 0);
        DistributionMapping {
            owner: (0..nboxes).map(|i| i % nranks).collect(),
            nranks,
        }
    }

    /// Greedy knapsack on cell counts (largest box to least-loaded rank),
    /// approximating AMReX's `Knapsack` strategy.
    pub fn knapsack(ba: &BoxArray, nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut order: Vec<usize> = (0..ba.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(ba.get(i).num_cells()));
        let mut load = vec![0u64; nranks];
        let mut owner = vec![0usize; ba.len()];
        for i in order {
            let rank = (0..nranks).min_by_key(|&r| load[r]).expect("nranks > 0");
            owner[i] = rank;
            load[rank] += ba.get(i).num_cells();
        }
        DistributionMapping { owner, nranks }
    }

    /// Owning rank of box `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.owner[i]
    }

    /// Number of ranks in the mapping.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Indices of the boxes owned by `rank`.
    pub fn local_boxes(&self, rank: usize) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == rank)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total cells per rank, given the box array the mapping was built for.
    pub fn load_per_rank(&self, ba: &BoxArray) -> Vec<u64> {
        let mut load = vec![0u64; self.nranks];
        for (i, &o) in self.owner.iter().enumerate() {
            load[o] += ba.get(i).num_cells();
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::IntVect;

    #[test]
    fn decompose_covers_domain() {
        let domain = IntBox::from_extents(64, 64, 64);
        let ba = BoxArray::decompose(domain, 32);
        assert_eq!(ba.len(), 8);
        assert_eq!(ba.num_cells(), domain.num_cells());
        assert!(ba.check_blocking_factor(32));
        assert_eq!(ba.minimal_box(), Some(domain));
    }

    #[test]
    fn decompose_non_divisible() {
        let domain = IntBox::from_extents(40, 40, 40);
        let ba = BoxArray::decompose(domain, 16);
        assert_eq!(ba.num_cells(), domain.num_cells());
        // Edge boxes are clipped: 16+16+8 per dimension.
        assert_eq!(ba.len(), 27);
    }

    #[test]
    fn intersections_finds_overlaps() {
        let ba = BoxArray::decompose(IntBox::from_extents(32, 32, 32), 16);
        let probe = IntBox::new(IntVect::new(8, 8, 8), IntVect::new(23, 23, 23));
        let hits = ba.intersections(&probe);
        assert_eq!(hits.len(), 8); // probe straddles all 8 sub-boxes
        let covered: u64 = hits.iter().map(|(_, b)| b.num_cells()).sum();
        assert_eq!(covered, probe.num_cells());
    }

    #[test]
    fn density() {
        let domain = IntBox::from_extents(32, 32, 32);
        let ba = BoxArray::new(vec![IntBox::from_extents(16, 16, 16)]);
        let d = ba.density_in(&domain);
        assert!((d - 0.125).abs() < 1e-12);
    }

    #[test]
    fn knapsack_balances_load() {
        let domain = IntBox::from_extents(64, 64, 32);
        let ba = BoxArray::decompose(domain, 16);
        let dm = DistributionMapping::knapsack(&ba, 4);
        let load = dm.load_per_rank(&ba);
        let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(*hi <= lo * 2, "knapsack load imbalance: {load:?}");
        assert_eq!(load.iter().sum::<u64>(), ba.num_cells());
    }

    #[test]
    fn round_robin_assignment() {
        let dm = DistributionMapping::round_robin(10, 4);
        assert_eq!(dm.owner(0), 0);
        assert_eq!(dm.owner(5), 1);
        assert_eq!(dm.local_boxes(2), vec![2, 6]);
    }
}
