//! AMR workflow integration tests: the tag → cluster → refine → overlap
//! cycle AMReX applications run every regrid, exercised end to end.

use amr_mesh::prelude::*;

/// Build a level-0 field with two separated hot blobs and run the full
/// regrid cycle.
fn blob_field() -> (AmrHierarchy, IntBox) {
    let domain = IntBox::from_extents(32, 32, 32);
    let mut h = AmrHierarchy::new(domain, 16, 2, vec!["phi".into()]);
    h.fill_field_physical(0, |x, y, z| {
        let blob = |cx: f64, cy: f64, cz: f64| {
            let d2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - cz).powi(2);
            (-d2 / 0.01).exp()
        };
        blob(0.25, 0.25, 0.25) + blob(0.75, 0.75, 0.75)
    });
    (h, domain)
}

#[test]
fn regrid_cycle_produces_nested_aligned_grids() {
    let (mut h, domain) = blob_field();
    let tags = tag_above(&h.level(0).data, 0, 0.5, domain);
    assert!(tags.count() > 0);
    let params = ClusterParams {
        grid_eff: 0.7,
        blocking_factor: 4,
        max_grid_size: 16,
    };
    let boxes = berger_rigoutsos(&tags, &params);
    assert!(boxes.len() >= 2, "two blobs → at least two clusters");
    let fine = BoxArray::new(boxes).refined(2);
    assert!(fine.check_blocking_factor(8));
    h.push_level(fine, 2, 2);
    // Fine grids must nest inside the refined coarse domain.
    let fine_domain = h.level(1).domain;
    for b in h.level(1).data.box_array().iter() {
        assert!(fine_domain.contains_box(b));
    }
}

#[test]
fn overlap_accounting_closes() {
    let (mut h, domain) = blob_field();
    let tags = tag_above(&h.level(0).data, 0, 0.5, domain);
    let params = ClusterParams {
        grid_eff: 0.7,
        blocking_factor: 4,
        max_grid_size: 16,
    };
    let boxes = berger_rigoutsos(&tags, &params);
    let fine = BoxArray::new(boxes).refined(2);
    h.push_level(fine, 2, 2);
    let cov = coverage(h.level(0).data.box_array(), h.level(1).data.box_array(), 2);
    // covered + valid == every coarse box, cell-exactly.
    for c in &cov {
        let total = h.level(0).data.box_array().get(c.box_index).num_cells();
        assert_eq!(c.covered_cells() + c.valid_cells(), total);
    }
    let s = summarize(&cov, h.level(0).data.box_array());
    let fine_in_coarse = h.level(1).data.num_cells() / 8;
    assert_eq!(s.covered_cells, fine_in_coarse);
}

#[test]
fn flatten_respects_finest_data() {
    let (mut h, domain) = blob_field();
    let tags = tag_above(&h.level(0).data, 0, 0.5, domain);
    let params = ClusterParams {
        grid_eff: 0.7,
        blocking_factor: 4,
        max_grid_size: 16,
    };
    let fine = BoxArray::new(berger_rigoutsos(&tags, &params)).refined(2);
    h.push_level(fine, 2, 2);
    h.fill_field_physical(0, |x, y, z| x + 10.0 * y + 100.0 * z);
    let (fdomain, flat) = h.flatten_to_uniform(0);
    assert_eq!(fdomain, IntBox::from_extents(64, 64, 64));
    assert_eq!(flat.len(), 64 * 64 * 64);
    assert!(flat.iter().all(|v| v.is_finite()));
    // Inside a refined region the flattened value equals the fine sample.
    let fb = *h.level(1).data.box_array().get(0);
    let p = fb.lo;
    let idx = (p.get(0) + 64 * (p.get(1) + 64 * p.get(2))) as usize;
    let fine_v = h.level(1).data.value_at(&p, 0).unwrap();
    assert_eq!(flat[idx], fine_v);
}

#[test]
fn knapsack_beats_round_robin_on_skewed_boxes() {
    // Boxes of very different sizes: knapsack balances cells, round-robin
    // balances counts.
    let boxes = vec![
        IntBox::from_extents(32, 32, 32),
        IntBox::from_extents(8, 8, 8).shifted(IntVect::new(40, 0, 0)),
        IntBox::from_extents(8, 8, 8).shifted(IntVect::new(40, 16, 0)),
        IntBox::from_extents(8, 8, 8).shifted(IntVect::new(40, 32, 0)),
        IntBox::from_extents(8, 8, 8).shifted(IntVect::new(40, 48, 0)),
    ];
    let ba = BoxArray::new(boxes);
    let imbalance = |dm: &DistributionMapping| {
        let load = dm.load_per_rank(&ba);
        *load.iter().max().unwrap() as f64 / *load.iter().min().unwrap().max(&1) as f64
    };
    let ks = DistributionMapping::knapsack(&ba, 2);
    let rr = DistributionMapping::round_robin(ba.len(), 2);
    assert!(imbalance(&ks) <= imbalance(&rr));
}

#[test]
fn gradient_tagging_on_hierarchy() {
    let (h, domain) = blob_field();
    let tags = tag_gradient(&h.level(0).data, 0, 0.05, domain);
    // Gradients are largest on the blob flanks, not at the flat corners.
    assert!(tags.count() > 0);
    assert!(!tags.get(&IntVect::new(0, 0, 31)));
}

#[test]
fn mean_threshold_criterion() {
    // The paper's "refine where value exceeds the field mean" rule.
    let (h, domain) = blob_field();
    let mean = field_mean(&h.level(0).data, 0);
    let tags = tag_above(&h.level(0).data, 0, mean, domain);
    let frac = tags.count() as f64 / domain.num_cells() as f64;
    assert!(frac > 0.0 && frac < 0.5, "tagged fraction {frac}");
}

#[test]
fn three_level_hierarchy() {
    let (mut h, domain) = blob_field();
    let params = ClusterParams {
        grid_eff: 0.7,
        blocking_factor: 4,
        max_grid_size: 16,
    };
    let tags = tag_above(&h.level(0).data, 0, 0.5, domain);
    let l1 = BoxArray::new(berger_rigoutsos(&tags, &params)).refined(2);
    h.push_level(l1, 2, 2);
    h.fill_field_physical(0, |x, y, z| {
        (-((x - 0.25).powi(2) + (y - 0.25).powi(2) + (z - 0.25).powi(2)) / 0.01).exp()
    });
    // Tag on the level-1 data for a third level.
    let t1 = tag_above(&h.level(1).data, 0, 0.8, h.level(1).domain);
    if t1.count() > 0 {
        let l2 = BoxArray::new(berger_rigoutsos(&t1, &params)).refined(2);
        if !l2.is_empty() {
            h.push_level(l2, 2, 2);
            assert_eq!(h.num_levels(), 3);
            assert_eq!(h.level(2).domain, IntBox::from_extents(128, 128, 128));
        }
    }
}
