//! Container-level integration tests for h5lite: many datasets, chunk
//! geometry extremes, parallel writers, and byte-level robustness.
//!
//! These run on [`MemStorage`] — writer and reader share one in-memory
//! image, so the suite touches no filesystem and leaks nothing on panic.
//! Byte-layout behavior on real files is pinned separately by
//! `storage_golden.rs` and `storage_equivalence.rs`.

use h5lite::prelude::*;
use rankpar::run_ranks;
use std::sync::Arc;

/// Build a container in memory and reopen it for reading.
fn roundtrip(build: impl FnOnce(&H5Writer)) -> H5Reader {
    let (w, mem) = H5Writer::in_memory();
    build(&w);
    w.finish().unwrap();
    H5Reader::from_storage(Box::new(mem)).unwrap()
}

#[test]
fn hundred_datasets() {
    let r = roundtrip(|w| {
        for d in 0..100 {
            let data: Vec<f64> = (0..64).map(|i| (d * 1000 + i) as f64).collect();
            w.write_dataset(&format!("group_{}/ds_{}", d % 7, d), &data, 64, &NoFilter)
                .unwrap();
        }
    });
    assert_eq!(r.dataset_names().len(), 100);
    for d in (0..100).step_by(17) {
        let back = r
            .read_dataset(&format!("group_{}/ds_{}", d % 7, d))
            .unwrap();
        assert_eq!(back[0], (d * 1000) as f64);
    }
}

#[test]
fn empty_dataset() {
    let r = roundtrip(|w| {
        w.write_dataset("nothing", &[], 16, &NoFilter).unwrap();
    });
    assert_eq!(r.read_dataset("nothing").unwrap(), Vec::<f64>::new());
    assert_eq!(r.meta("nothing").unwrap().chunks.len(), 0);
}

#[test]
fn chunk_size_one() {
    let data = vec![1.0, 2.0, 3.0];
    let r = {
        let data = data.clone();
        roundtrip(move |w| {
            w.write_dataset("tiny", &data, 1, &NoFilter).unwrap();
        })
    };
    assert_eq!(r.read_dataset("tiny").unwrap(), data);
    assert_eq!(r.meta("tiny").unwrap().chunks.len(), 3);
}

#[test]
fn chunk_larger_than_data() {
    let data = vec![5.0; 10];
    let r = {
        let data = data.clone();
        roundtrip(move |w| {
            w.write_dataset("d", &data, 4096, &NoFilter).unwrap();
        })
    };
    assert_eq!(r.read_dataset("d").unwrap(), data);
    // Standard mode pads to the full chunk in store.
    assert_eq!(r.meta("d").unwrap().stored_bytes(), 4096 * 8);
}

#[test]
fn read_individual_chunks() {
    let r = roundtrip(|w| {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        w.write_dataset("d", &data, 32, &NoFilter).unwrap();
    });
    let c0 = r.read_chunk("d", 0).unwrap();
    assert_eq!(c0.len(), 32);
    assert_eq!(c0[31], 31.0);
    let raw = r.read_chunk_raw("d", 1).unwrap();
    assert_eq!(raw.len(), 32 * 8);
    assert!(r.read_chunk("d", 99).is_err());
}

#[test]
fn eight_rank_concurrent_collective_writes() {
    let (writer, mem) = H5Writer::in_memory();
    let writer = Arc::new(writer);
    let w = Arc::clone(&writer);
    run_ranks(8, move |comm| {
        for field in 0..3 {
            let rank = comm.rank();
            let data: Vec<f64> = (0..128)
                .map(|i| (rank * 10000 + field * 1000 + i) as f64)
                .collect();
            collective_write(
                &comm,
                &w,
                &format!("f{field}"),
                &[ChunkData::full(data)],
                128,
                &NoFilter,
                FilterMode::Standard,
            )
            .unwrap();
        }
    });
    writer.finish().unwrap();
    let r = H5Reader::from_storage(Box::new(mem)).unwrap();
    for field in 0..3 {
        let all = r.read_dataset(&format!("f{field}")).unwrap();
        assert_eq!(all.len(), 8 * 128);
        for rank in 0..8 {
            assert_eq!(all[rank * 128], (rank * 10000 + field * 1000) as f64);
        }
    }
}

#[test]
fn mixed_filters_in_one_file() {
    let smooth: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    let r = {
        let smooth = smooth.clone();
        roundtrip(move |w| {
            w.write_dataset("raw", &smooth, 1024, &NoFilter).unwrap();
            w.write_dataset("sz", &smooth, 1024, &SzFilter::one_dimensional(1e-3))
                .unwrap();
        })
    };
    let raw_bytes = r.meta("raw").unwrap().stored_bytes();
    let sz_bytes = r.meta("sz").unwrap().stored_bytes();
    assert!(sz_bytes < raw_bytes / 4, "sz {sz_bytes} vs raw {raw_bytes}");
    let back = r.read_dataset("sz").unwrap();
    for (o, v) in smooth.iter().zip(&back) {
        assert!((o - v).abs() <= 1e-3 * 2.0 + 1e-12);
    }
}

/// Finished container bytes, for corruption tests.
fn finished_bytes(build: impl FnOnce(&H5Writer)) -> Vec<u8> {
    let (w, mem) = H5Writer::in_memory();
    build(&w);
    w.finish().unwrap();
    mem.to_bytes()
}

#[test]
fn header_corruption_detected() {
    let mut bytes = finished_bytes(|w| {
        w.write_dataset("d", &[1.0], 1, &NoFilter).unwrap();
    });
    bytes[0] = b'X';
    assert!(H5Reader::from_storage(Box::new(MemStorage::from_bytes(bytes))).is_err());
}

#[test]
fn truncated_file_detected() {
    let bytes = finished_bytes(|w| {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        w.write_dataset("d", &data, 100, &NoFilter).unwrap();
    });
    let half = bytes[..bytes.len() / 2].to_vec();
    assert!(H5Reader::from_storage(Box::new(MemStorage::from_bytes(half))).is_err());
}

#[test]
fn stats_track_collective_and_serial_writes() {
    let (writer, _mem) = H5Writer::in_memory();
    let writer = Arc::new(writer);
    let w = Arc::clone(&writer);
    run_ranks(2, move |comm| {
        let data = vec![comm.rank() as f64; 64];
        collective_write(
            &comm,
            &w,
            "d",
            &[ChunkData::full(data)],
            64,
            &NoFilter,
            FilterMode::SizeAware,
        )
        .unwrap();
    });
    let s = writer.stats();
    assert_eq!(s.dataset_creates, 1);
    assert_eq!(s.filter_calls, 2);
    assert_eq!(s.write_calls, 2);
    assert_eq!(s.bytes_written, 2 * 64 * 8);
    writer.finish().unwrap();
}
