//! Container-level integration tests for h5lite: many datasets, chunk
//! geometry extremes, parallel writers, and on-disk robustness.

use h5lite::prelude::*;
use rankpar::run_ranks;
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("h5lite-suite-{}-{name}.h5l", std::process::id()));
    p
}

#[test]
fn hundred_datasets() {
    let path = tmp("hundred");
    let w = H5Writer::create(&path).unwrap();
    for d in 0..100 {
        let data: Vec<f64> = (0..64).map(|i| (d * 1000 + i) as f64).collect();
        w.write_dataset(&format!("group_{}/ds_{}", d % 7, d), &data, 64, &NoFilter)
            .unwrap();
    }
    w.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert_eq!(r.dataset_names().len(), 100);
    for d in (0..100).step_by(17) {
        let back = r
            .read_dataset(&format!("group_{}/ds_{}", d % 7, d))
            .unwrap();
        assert_eq!(back[0], (d * 1000) as f64);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_dataset() {
    let path = tmp("empty");
    let w = H5Writer::create(&path).unwrap();
    w.write_dataset("nothing", &[], 16, &NoFilter).unwrap();
    w.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert_eq!(r.read_dataset("nothing").unwrap(), Vec::<f64>::new());
    assert_eq!(r.meta("nothing").unwrap().chunks.len(), 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn chunk_size_one() {
    let path = tmp("chunk1");
    let w = H5Writer::create(&path).unwrap();
    let data = vec![1.0, 2.0, 3.0];
    w.write_dataset("tiny", &data, 1, &NoFilter).unwrap();
    w.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert_eq!(r.read_dataset("tiny").unwrap(), data);
    assert_eq!(r.meta("tiny").unwrap().chunks.len(), 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn chunk_larger_than_data() {
    let path = tmp("bigchunk");
    let w = H5Writer::create(&path).unwrap();
    let data = vec![5.0; 10];
    w.write_dataset("d", &data, 4096, &NoFilter).unwrap();
    w.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert_eq!(r.read_dataset("d").unwrap(), data);
    // Standard mode pads to the full chunk on disk.
    assert_eq!(r.meta("d").unwrap().stored_bytes(), 4096 * 8);
    std::fs::remove_file(&path).ok();
}

#[test]
fn read_individual_chunks() {
    let path = tmp("chunks");
    let w = H5Writer::create(&path).unwrap();
    let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
    w.write_dataset("d", &data, 32, &NoFilter).unwrap();
    w.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    let c0 = r.read_chunk("d", 0).unwrap();
    assert_eq!(c0.len(), 32);
    assert_eq!(c0[31], 31.0);
    let raw = r.read_chunk_raw("d", 1).unwrap();
    assert_eq!(raw.len(), 32 * 8);
    assert!(r.read_chunk("d", 99).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn eight_rank_concurrent_collective_writes() {
    let path = tmp("eight");
    let writer = Arc::new(H5Writer::create(&path).unwrap());
    let w = Arc::clone(&writer);
    run_ranks(8, move |comm| {
        for field in 0..3 {
            let rank = comm.rank();
            let data: Vec<f64> = (0..128)
                .map(|i| (rank * 10000 + field * 1000 + i) as f64)
                .collect();
            collective_write(
                &comm,
                &w,
                &format!("f{field}"),
                &[ChunkData::full(data)],
                128,
                &NoFilter,
                FilterMode::Standard,
            )
            .unwrap();
        }
    });
    writer.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    for field in 0..3 {
        let all = r.read_dataset(&format!("f{field}")).unwrap();
        assert_eq!(all.len(), 8 * 128);
        for rank in 0..8 {
            assert_eq!(all[rank * 128], (rank * 10000 + field * 1000) as f64);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mixed_filters_in_one_file() {
    let path = tmp("mixed");
    let w = H5Writer::create(&path).unwrap();
    let smooth: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
    w.write_dataset("raw", &smooth, 1024, &NoFilter).unwrap();
    w.write_dataset("sz", &smooth, 1024, &SzFilter::one_dimensional(1e-3))
        .unwrap();
    w.finish().unwrap();
    let r = H5Reader::open(&path).unwrap();
    let raw_bytes = r.meta("raw").unwrap().stored_bytes();
    let sz_bytes = r.meta("sz").unwrap().stored_bytes();
    assert!(sz_bytes < raw_bytes / 4, "sz {sz_bytes} vs raw {raw_bytes}");
    let back = r.read_dataset("sz").unwrap();
    for (o, v) in smooth.iter().zip(&back) {
        assert!((o - v).abs() <= 1e-3 * 2.0 + 1e-12);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn header_corruption_detected() {
    let path = tmp("head-corrupt");
    let w = H5Writer::create(&path).unwrap();
    w.write_dataset("d", &[1.0], 1, &NoFilter).unwrap();
    w.finish().unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    assert!(H5Reader::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_detected() {
    let path = tmp("truncated");
    let w = H5Writer::create(&path).unwrap();
    let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    w.write_dataset("d", &data, 100, &NoFilter).unwrap();
    w.finish().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(H5Reader::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn stats_track_collective_and_serial_writes() {
    let path = tmp("stats");
    let writer = Arc::new(H5Writer::create(&path).unwrap());
    let w = Arc::clone(&writer);
    run_ranks(2, move |comm| {
        let data = vec![comm.rank() as f64; 64];
        collective_write(
            &comm,
            &w,
            "d",
            &[ChunkData::full(data)],
            64,
            &NoFilter,
            FilterMode::SizeAware,
        )
        .unwrap();
    });
    let s = writer.stats();
    assert_eq!(s.dataset_creates, 1);
    assert_eq!(s.filter_calls, 2);
    assert_eq!(s.write_calls, 2);
    assert_eq!(s.bytes_written, 2 * 64 * 8);
    writer.finish().unwrap();
    std::fs::remove_file(&path).ok();
}
