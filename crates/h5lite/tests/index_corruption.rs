//! Fuzz-lite robustness suite for the persistent chunk-index section
//! (mirrors the `amric` crate's `corruption.rs` style): every malformed
//! index must surface as a typed `H5Error` or read as an index-less
//! legacy file — never a panic, never an absurd allocation.
//!
//! Runs on [`MemStorage`] images: thousands of mutants open without a
//! single filesystem write, and a panicking case leaks nothing.

use h5lite::prelude::*;

/// Container bytes with the same two datasets, with or without indexes.
fn build(with_index: bool) -> Vec<u8> {
    let (w, mem) = H5Writer::in_memory();
    let data: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.003).sin()).collect();
    w.write_dataset("a/raw", &data, 1024, &NoFilter).unwrap();
    w.write_dataset("a/sz", &data, 1024, &SzFilter::one_dimensional(1e-3))
        .unwrap();
    if with_index {
        for name in ["a/raw", "a/sz"] {
            let entries = (0..3)
                .map(|i| {
                    ChunkIndexEntry::new(
                        if name == "a/raw" { CODEC_RAW } else { 1 },
                        Some(([0, 0, i * 8], [15, 15, i * 8 + 7])),
                    )
                })
                .collect();
            w.set_chunk_index(name, ChunkIndex::new(entries)).unwrap();
        }
    }
    w.finish().unwrap();
    mem.to_bytes()
}

fn open_bytes(bytes: Vec<u8>) -> H5Result<H5Reader> {
    H5Reader::from_storage(Box::new(MemStorage::from_bytes(bytes)))
}

/// The byte span of the index section: everything the indexed image has
/// that the index-less twin does not (both end with the same 12-byte
/// footer).
fn section_span(indexed: &[u8], legacy: &[u8]) -> std::ops::Range<usize> {
    assert!(indexed.len() > legacy.len());
    let start = legacy.len() - 12;
    let end = indexed.len() - 12;
    assert_eq!(&indexed[..start], &legacy[..start], "common prefix differs");
    assert_eq!(&indexed[end..], &legacy[start..], "footers differ");
    start..end
}

/// Open + exercise a possibly-corrupt image: any typed `Err` is fine, a
/// panic is not; on `Ok` every surfaced index and dataset must still read
/// without panicking.
fn exercise(bytes: &[u8]) {
    if let Ok(r) = open_bytes(bytes.to_vec()) {
        for name in r.dataset_names() {
            let _ = r.chunk_index(name).map(|i| i.cloned());
            let _ = r.chunk_index_or_scan(name);
            let _ = r.read_dataset(name);
        }
    }
}

#[test]
fn index_section_is_total_over_byte_flips() {
    let indexed = build(true);
    let legacy = build(false);
    let span = section_span(&indexed, &legacy);
    for pos in span.clone() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = indexed.clone();
            corrupt[pos] ^= mask;
            exercise(&corrupt);
        }
    }
}

#[test]
fn truncated_index_streams_are_typed_errors() {
    let indexed = build(true);
    let legacy = build(false);
    let span = section_span(&indexed, &legacy);
    let section_len = span.len();
    // Splice k bytes out of the tail of the index section, keeping the
    // footer intact: the index magic survives, its stream is short.
    // (Cuts that leave fewer than 4 bytes erase the magic itself; those
    // read as an unknown trailing section — i.e. "no index" — by design.)
    for k in 1..=section_len - 4 {
        let mut spliced = Vec::with_capacity(indexed.len() - k);
        spliced.extend_from_slice(&indexed[..span.end - k]);
        spliced.extend_from_slice(&indexed[span.end..]);
        match open_bytes(spliced) {
            Err(H5Error::Format(_)) | Err(H5Error::Codec(_)) => {}
            Err(other) => panic!("cut {k}: unexpected error class {other:?}"),
            Ok(_) => panic!("cut {k}: truncated index must not parse"),
        }
    }
    // Splicing the whole section out reads as a legacy file.
    let mut stripped = Vec::new();
    stripped.extend_from_slice(&indexed[..span.start]);
    stripped.extend_from_slice(&indexed[span.end..]);
    let r = open_bytes(stripped).expect("index-less layout must open");
    assert!(r.chunk_index("a/sz").unwrap().is_none());
}

#[test]
fn absurd_index_counts_rejected_without_allocation() {
    let legacy = build(false);
    let insert_at = legacy.len() - 12;
    // Crafted sections claiming counts far beyond the stream's bytes: a
    // dataset count of u32::MAX and an entry count of u32::MAX. Both must
    // fail the pre-allocation bounds check, not allocate gigabytes.
    let magic = 0x5844_4943u32.to_le_bytes();
    let mut absurd_datasets = magic.to_vec();
    absurd_datasets.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut absurd_entries = magic.to_vec();
    absurd_entries.extend_from_slice(&1u32.to_le_bytes());
    absurd_entries.extend_from_slice(&2u16.to_le_bytes());
    absurd_entries.extend_from_slice(b"a/");
    absurd_entries.extend_from_slice(&u32::MAX.to_le_bytes());
    for section in [absurd_datasets, absurd_entries] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&legacy[..insert_at]);
        bytes.extend_from_slice(&section);
        bytes.extend_from_slice(&legacy[insert_at..]);
        match open_bytes(bytes) {
            Err(H5Error::Format(_)) | Err(H5Error::Codec(_)) => {}
            Err(other) => panic!("absurd count: unexpected error class {other:?}"),
            Ok(_) => panic!("absurd count must be a typed error"),
        }
    }
}

#[test]
fn index_for_unknown_dataset_or_wrong_arity_rejected() {
    let legacy = build(false);
    let insert_at = legacy.len() - 12;
    let magic = 0x5844_4943u32.to_le_bytes();
    // Index naming a dataset the directory does not hold.
    let mut unknown = magic.to_vec();
    unknown.extend_from_slice(&1u32.to_le_bytes());
    unknown.extend_from_slice(&4u16.to_le_bytes());
    unknown.extend_from_slice(b"ghost");
    // (name says 4 bytes: "ghos" — remaining "t" feeds the entry count,
    // which then truncates; either way a typed error.)
    unknown.extend_from_slice(&0u32.to_le_bytes());
    // Index with the wrong entry count for a real dataset.
    let mut arity = magic.to_vec();
    arity.extend_from_slice(&1u32.to_le_bytes());
    arity.extend_from_slice(&5u16.to_le_bytes());
    arity.extend_from_slice(b"a/raw");
    arity.extend_from_slice(&1u32.to_le_bytes()); // dataset has 3 chunks
    arity.extend_from_slice(&CODEC_RAW.to_le_bytes());
    arity.push(0);
    for section in [unknown, arity] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&legacy[..insert_at]);
        bytes.extend_from_slice(&section);
        bytes.extend_from_slice(&legacy[insert_at..]);
        match open_bytes(bytes) {
            Err(H5Error::Format(_)) | Err(H5Error::Codec(_)) => {}
            Err(other) => panic!("inconsistent index: unexpected error class {other:?}"),
            Ok(_) => panic!("inconsistent index must be a typed error"),
        }
    }
}
