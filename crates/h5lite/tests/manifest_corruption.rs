//! Robustness suite for the shard manifest: truncated, bit-flipped, and
//! forged manifests must surface as typed `H5Error`s — never a panic,
//! never an absurd allocation — and damaged shard sets must be caught at
//! open, not during a later read.

use h5lite::prelude::*;
use h5lite::sharded::{shard_name, MANIFEST_NAME};
use h5lite::testutil::TempDir;
use h5lite::{H5Error, ShardExtent};

/// A small finished sharded container; returns its directory.
fn build(dir: &TempDir) -> std::path::PathBuf {
    let path = dir.file("c.h5ls");
    let w = H5Writer::create_sharded(&path, 3).unwrap();
    let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.002).sin()).collect();
    w.write_dataset("raw", &data, 512, &NoFilter).unwrap();
    w.write_dataset("sz", &data, 512, &SzFilter::one_dimensional(1e-3))
        .unwrap();
    w.finish().unwrap();
    path
}

fn expect_typed_open_failure(path: &std::path::Path, ctx: &str) {
    match H5Reader::open(path) {
        Err(H5Error::Format(_)) | Err(H5Error::Io(_)) | Err(H5Error::Codec(_)) => {}
        Err(other) => panic!("{ctx}: unexpected error class {other:?}"),
        Ok(_) => panic!("{ctx}: corrupt container must not open"),
    }
}

#[test]
fn truncated_manifest_is_typed_error_at_every_length() {
    let dir = TempDir::new("h5lite-mancorr-trunc");
    let path = build(&dir);
    let mpath = path.join(MANIFEST_NAME);
    let intact = std::fs::read(&mpath).unwrap();
    for len in 0..intact.len() {
        std::fs::write(&mpath, &intact[..len]).unwrap();
        match read_manifest(&path) {
            Err(H5Error::Format(_)) | Err(H5Error::Io(_)) | Err(H5Error::Codec(_)) => {}
            Err(other) => panic!("cut to {len}: unexpected error class {other:?}"),
            Ok(_) => panic!("cut to {len}: truncated manifest must not parse"),
        }
        expect_typed_open_failure(&path, &format!("open with manifest cut to {len}"));
    }
    // Restored, it opens again.
    std::fs::write(&mpath, &intact).unwrap();
    assert!(H5Reader::open(&path).is_ok());
}

#[test]
fn manifest_byte_flips_never_panic() {
    let dir = TempDir::new("h5lite-mancorr-flip");
    let path = build(&dir);
    let mpath = path.join(MANIFEST_NAME);
    let intact = std::fs::read(&mpath).unwrap();
    for pos in 0..intact.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = intact.clone();
            corrupt[pos] ^= mask;
            std::fs::write(&mpath, &corrupt).unwrap();
            // Any typed Err is fine; on Ok every dataset must still read
            // or fail typed (a flipped extent can redirect reads into
            // other chunks' bytes — wrong data decoded as garbage is a
            // codec error, not a crash).
            if let Ok(r) = H5Reader::open(&path) {
                for name in r.dataset_names() {
                    let _ = r.read_dataset(name);
                }
            }
        }
    }
}

#[test]
fn forged_counts_do_not_allocate_absurdly() {
    let dir = TempDir::new("h5lite-mancorr-forge");
    let path = build(&dir);
    let mpath = path.join(MANIFEST_NAME);
    let intact = std::fs::read(&mpath).unwrap();
    // Header: magic(4) version(1) shard_count(4) logical_len(8) count(8).
    // Forge shard_count far past MAX_SHARDS.
    let mut huge_shards = intact.clone();
    huge_shards[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    // Forge extent count to u64::MAX: must fail on truncation or the
    // dense-coverage check long before any giant allocation.
    let mut huge_extents = intact.clone();
    huge_extents[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
    // Zero shards.
    let mut zero_shards = intact.clone();
    zero_shards[5..9].copy_from_slice(&0u32.to_le_bytes());
    for (ctx, forged) in [
        ("shard_count=u32::MAX", huge_shards),
        ("extent_count=u64::MAX", huge_extents),
        ("shard_count=0", zero_shards),
    ] {
        std::fs::write(&mpath, &forged).unwrap();
        match read_manifest(&path) {
            Err(H5Error::Format(_)) | Err(H5Error::Codec(_)) => {}
            Err(other) => panic!("{ctx}: unexpected error class {other:?}"),
            Ok(_) => panic!("{ctx}: forged manifest must not parse"),
        }
        expect_typed_open_failure(&path, ctx);
    }
}

#[test]
fn extent_forgery_is_rejected_structurally() {
    // Hand-build manifests with structurally invalid extent maps: the
    // parser must reject non-dense coverage, out-of-range shard ids, and
    // length mismatches.
    let dense = |extents: Vec<ShardExtent>, logical: u64| ShardManifest {
        shard_count: 2,
        logical_len: logical,
        extents,
    };
    let cases: Vec<(&str, ShardManifest)> = vec![
        (
            "gap in logical space",
            dense(
                vec![
                    ShardExtent {
                        logical: 0,
                        len: 10,
                        shard: 0,
                        offset: 0,
                    },
                    ShardExtent {
                        logical: 20, // hole at 10..20
                        len: 10,
                        shard: 1,
                        offset: 0,
                    },
                ],
                30,
            ),
        ),
        (
            "shard id out of range",
            dense(
                vec![ShardExtent {
                    logical: 0,
                    len: 10,
                    shard: 7,
                    offset: 0,
                }],
                10,
            ),
        ),
        (
            "coverage short of logical_len",
            dense(
                vec![ShardExtent {
                    logical: 0,
                    len: 10,
                    shard: 0,
                    offset: 0,
                }],
                99,
            ),
        ),
        (
            "zero-length extent",
            dense(
                vec![ShardExtent {
                    logical: 0,
                    len: 0,
                    shard: 0,
                    offset: 0,
                }],
                0,
            ),
        ),
    ];
    for (ctx, manifest) in cases {
        match ShardManifest::from_bytes(&manifest.to_bytes()) {
            Err(H5Error::Format(_)) => {}
            Err(other) => panic!("{ctx}: unexpected error class {other:?}"),
            Ok(_) => panic!("{ctx}: must be rejected"),
        }
    }
}

#[test]
fn missing_or_short_shard_files_fail_at_open() {
    // A shard file shorter than the ranges the manifest maps into it (or
    // missing entirely) must fail when the container is opened — not as a
    // surprise mid-query.
    let dir = TempDir::new("h5lite-mancorr-shards");
    let path = build(&dir);
    let shard1 = path.join(shard_name(1));
    let intact = std::fs::read(&shard1).unwrap();
    assert!(!intact.is_empty());
    // Truncate shard 1 below its mapped bytes.
    std::fs::write(&shard1, &intact[..intact.len() / 2]).unwrap();
    expect_typed_open_failure(&path, "short shard file");
    // Remove it entirely.
    std::fs::remove_file(&shard1).unwrap();
    expect_typed_open_failure(&path, "missing shard file");
    // Restore: opens again.
    std::fs::write(&shard1, &intact).unwrap();
    assert!(H5Reader::open(&path).is_ok());
}

#[test]
fn single_file_mistaken_for_shard_dir_and_vice_versa() {
    let dir = TempDir::new("h5lite-mancorr-kind");
    // A plain directory with no manifest is not a container at all.
    let empty = dir.file("not-a-container");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(!is_sharded(&empty));
    assert!(H5Reader::open(&empty).is_err());
    // A manifest dropped into a directory with no shard files: typed
    // failure (the manifest maps extents into files that do not exist).
    let path = build(&dir);
    let orphan = dir.file("orphan");
    std::fs::create_dir_all(&orphan).unwrap();
    std::fs::copy(path.join(MANIFEST_NAME), orphan.join(MANIFEST_NAME)).unwrap();
    assert!(is_sharded(&orphan));
    expect_typed_open_failure(&orphan, "manifest without shards");
}
