//! Backend-equivalence suite: the same write sequence through
//! file/mem/sharded storage must yield byte-identical **logical** content
//! — same dataset directory, same stored chunk bytes, same chunk
//! indexes — for every filter family, for parallel rank writers at 1 and
//! 4 pool workers, and for both indexed and (stripped) legacy tails.
//!
//! Physical layouts differ (one file vs N shard files + manifest); the
//! logical byte stream and everything parsed from it may not.

use h5lite::prelude::*;
use h5lite::testutil::TempDir;
use rankpar::run_ranks;
use std::sync::Arc;

type Backend = (&'static str, H5Writer, Box<dyn Fn() -> H5Reader>);

/// Every backend under test, built fresh inside `dir`.
fn backends(dir: &TempDir, tag: &str) -> Vec<Backend> {
    let file_path = dir.file(&format!("{tag}.h5l"));
    let shard_path = dir.file(&format!("{tag}.h5ls"));
    let (mem_w, mem) = H5Writer::in_memory();
    let fp = file_path.clone();
    let sp = shard_path.clone();
    vec![
        (
            "file",
            H5Writer::create(&file_path).unwrap(),
            Box::new(move || H5Reader::open(&fp).unwrap()),
        ),
        ("mem", mem_w, {
            let mem = mem.clone();
            Box::new(move || H5Reader::from_storage(Box::new(mem.clone())).unwrap())
        }),
        (
            "sharded",
            H5Writer::create_sharded(&shard_path, 3).unwrap(),
            Box::new(move || H5Reader::open(&sp).unwrap()),
        ),
    ]
}

/// Assert two readers expose identical logical content: directory,
/// metadata, stored chunk bytes, decoded values, and chunk indexes.
fn assert_logically_identical(a: &H5Reader, b: &H5Reader, ctx: &str) {
    assert_eq!(a.dataset_names(), b.dataset_names(), "{ctx}: directory");
    for name in a.dataset_names() {
        let (ma, mb) = (a.meta(name).unwrap(), b.meta(name).unwrap());
        assert_eq!(ma.total_elems, mb.total_elems, "{ctx}/{name}");
        assert_eq!(ma.chunk_elems, mb.chunk_elems, "{ctx}/{name}");
        assert_eq!(ma.filter_id, mb.filter_id, "{ctx}/{name}");
        assert_eq!(ma.chunks.len(), mb.chunks.len(), "{ctx}/{name}");
        for i in 0..ma.chunks.len() {
            assert_eq!(
                ma.chunks[i].stored_bytes, mb.chunks[i].stored_bytes,
                "{ctx}/{name} chunk {i}"
            );
            assert_eq!(
                ma.chunks[i].logical_elems, mb.chunks[i].logical_elems,
                "{ctx}/{name} chunk {i}"
            );
            assert_eq!(
                a.read_chunk_raw(name, i).unwrap(),
                b.read_chunk_raw(name, i).unwrap(),
                "{ctx}/{name} chunk {i} stored bytes"
            );
        }
        assert_eq!(
            a.chunk_index(name).unwrap(),
            b.chunk_index(name).unwrap(),
            "{ctx}/{name} index"
        );
        if ma.filter_id != 100 {
            // Registry-decodable filters: decoded values must match too
            // (the amric filter needs app context; its raw bytes matched
            // above, which is the stronger statement anyway).
            assert_eq!(
                a.read_dataset(name).unwrap(),
                b.read_dataset(name).unwrap(),
                "{ctx}/{name} decoded"
            );
        }
    }
}

/// One deterministic multi-filter write sequence, serial.
fn write_serial(w: &H5Writer, with_index: bool) {
    let smooth: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.002).sin()).collect();
    let ramp: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5 - 17.0).collect();
    w.write_dataset("eq/raw", &ramp, 256, &NoFilter).unwrap();
    w.write_dataset("eq/sz", &smooth, 1024, &SzFilter::one_dimensional(1e-3))
        .unwrap();
    let chunks = [
        ChunkData::full(smooth[..700].to_vec()),
        ChunkData::full(smooth[700..900].to_vec()),
    ];
    w.write_dataset_chunks(
        "eq/aware",
        &chunks,
        1024,
        &SzFilter::one_dimensional(1e-3),
        FilterMode::SizeAware,
        None,
    )
    .unwrap();
    if with_index {
        w.set_chunk_index(
            "eq/aware",
            ChunkIndex::new(vec![
                ChunkIndexEntry::new(CODEC_RAW, Some(([0, 0, 0], [7, 7, 3]))),
                ChunkIndexEntry::new(CODEC_RAW, Some(([0, 0, 4], [7, 7, 7]))),
            ]),
        )
        .unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn serial_write_identical_across_backends_indexed_and_legacy() {
    for with_index in [true, false] {
        let dir = TempDir::new("h5lite-eq-serial");
        let built = backends(&dir, "serial");
        let readers: Vec<(&str, H5Reader)> = built
            .into_iter()
            .map(|(kind, w, open)| {
                write_serial(&w, with_index);
                drop(w);
                (kind, open())
            })
            .collect();
        let (_, base) = &readers[0];
        for (kind, r) in &readers[1..] {
            assert_logically_identical(base, r, &format!("indexed={with_index} file vs {kind}"));
        }
    }
}

#[test]
fn collective_write_identical_across_backends_and_worker_counts() {
    // 4 rank threads, pipelined pool at 1 and 4 workers, both filter
    // families — all backends, all combinations, one logical content.
    let chunkset = |rank: usize| -> Vec<ChunkData> {
        (0..5)
            .map(|c| {
                ChunkData::full(
                    (0..192)
                        .map(|i| ((rank * 960 + c * 192 + i) as f64 * 0.013).sin())
                        .collect(),
                )
            })
            .collect()
    };
    for workers in [1usize, 4] {
        let dir = TempDir::new("h5lite-eq-coll");
        let built = backends(&dir, &format!("w{workers}"));
        let readers: Vec<(&str, H5Reader)> = built
            .into_iter()
            .map(|(kind, w, open)| {
                let writer = Arc::new(w);
                let wc = Arc::clone(&writer);
                run_ranks(4, move |comm| {
                    let chunks = chunkset(comm.rank());
                    let f = SzFilter::one_dimensional(1e-3);
                    collective_write_pipelined(
                        &comm,
                        &wc,
                        "sz",
                        &chunks,
                        192,
                        &f,
                        FilterMode::SizeAware,
                        workers,
                    )
                    .unwrap();
                    let raw = chunkset(comm.rank());
                    collective_write(
                        &comm,
                        &wc,
                        "raw",
                        &raw,
                        192,
                        &NoFilter,
                        FilterMode::Standard,
                    )
                    .unwrap();
                });
                writer.finish().unwrap();
                (kind, open())
            })
            .collect();
        let (_, base) = &readers[0];
        for (kind, r) in &readers[1..] {
            assert_logically_identical(base, r, &format!("workers={workers} file vs {kind}"));
        }
    }
}

#[test]
fn strip_chunk_indexes_equivalent_on_file_and_sharded() {
    // The downgrade tool must produce the same logical legacy content on
    // both persistent backends (it rewrites the tail through the trait).
    let dir = TempDir::new("h5lite-eq-strip");
    let fp = dir.file("s.h5l");
    let sp = dir.file("s.h5ls");
    for (path, shards) in [(&fp, None), (&sp, Some(3))] {
        let w = match shards {
            None => H5Writer::create(path).unwrap(),
            Some(n) => H5Writer::create_sharded(path, n).unwrap(),
        };
        write_serial(&w, true);
    }
    strip_chunk_indexes(&fp).unwrap();
    strip_chunk_indexes(&sp).unwrap();
    let a = H5Reader::open(&fp).unwrap();
    let b = H5Reader::open(&sp).unwrap();
    assert!(a.chunk_index("eq/aware").unwrap().is_none());
    assert!(b.chunk_index("eq/aware").unwrap().is_none());
    assert_logically_identical(&a, &b, "stripped file vs sharded");
    // And the stripped sharded container reopens for appending tools —
    // the manifest was rewritten consistently.
    let m = read_manifest(&sp).unwrap();
    assert_eq!(
        m.logical_len,
        m.shard_bytes().iter().sum::<u64>(),
        "manifest logical length must equal shard payload total"
    );
}

#[test]
fn sharded_reopen_roundtrip_preserves_content() {
    // Close and reopen through the auto-detecting path; also verify the
    // manifest maps every logical byte (dense coverage already enforced
    // by the parser — this checks total length against the reader).
    let dir = TempDir::new("h5lite-eq-reopen");
    let sp = dir.file("c.h5ls");
    let w = H5Writer::create_sharded(&sp, 5).unwrap();
    write_serial(&w, true);
    drop(w);
    let r = H5Reader::open(&sp).unwrap();
    assert_eq!(r.storage_kind(), "sharded");
    assert_eq!(r.read_dataset("eq/raw").unwrap().len(), 1000);
    let m = read_manifest(&sp).unwrap();
    assert_eq!(m.shard_count, 5);
    // Logical length covers everything up to and including the footer.
    assert!(m.logical_len > r.dir_offset());
}
