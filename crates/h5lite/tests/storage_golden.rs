//! Byte-identity pin for the single-file backend across the storage
//! refactor.
//!
//! The fixture at `tests/golden/container_v1.h5l` was produced by the
//! **pre-refactor** writer (the `H5Writer` that owned a raw `File` and
//! wrote through `pwrite` directly). The storage subsystem extracted that
//! behavior into `FileStorage`; this suite proves the extraction changed
//! nothing: the same deterministic write sequence must reproduce the
//! fixture bit for bit, and the fixture must stay readable.

use h5lite::prelude::*;

/// The deterministic write sequence behind the committed fixture. Every
/// call is single-threaded in a fixed order, so offsets, directory bytes,
/// and the chunk-index section are fully reproducible.
fn write_golden(w: &H5Writer) {
    // Raw dataset: 1000 elems, 4 chunks, last one padded.
    let raw: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5 - 3.0).collect();
    w.write_dataset("golden/raw", &raw, 256, &NoFilter).unwrap();
    // SZ-filtered smooth dataset: exercises the compressed chunk path.
    let smooth: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.002).sin()).collect();
    w.write_dataset("golden/sz", &smooth, 1024, &SzFilter::one_dimensional(1e-3))
        .unwrap();
    // Size-aware chunks: logical length below the chunk size, so the
    // record's logical_elems differs from chunk_elems.
    let short: Vec<f64> = (0..300).map(|i| (i as f64 * 0.01).cos()).collect();
    let chunks = [
        ChunkData::full(short[..200].to_vec()),
        ChunkData::full(short[200..].to_vec()),
    ];
    w.write_dataset_chunks(
        "golden/aware",
        &chunks,
        512,
        &SzFilter::one_dimensional(1e-3),
        FilterMode::SizeAware,
        None,
    )
    .unwrap();
    // A persisted chunk index (the optional CIDX tail section).
    w.set_chunk_index(
        "golden/aware",
        ChunkIndex::new(vec![
            ChunkIndexEntry::new(CODEC_RAW, Some(([0, 0, 0], [7, 7, 3]))),
            ChunkIndexEntry::new(CODEC_RAW, Some(([0, 0, 4], [7, 7, 7]))),
        ]),
    )
    .unwrap();
    w.finish().unwrap();
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/container_v1.h5l")
}

/// Regenerator, kept ignored: only meaningful when run against the
/// pre-refactor writer (it produced the committed fixture). Re-running it
/// against a changed writer would overwrite the evidence.
#[test]
#[ignore = "writes the committed fixture; run only to regenerate"]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let w = H5Writer::create(&path).unwrap();
    write_golden(&w);
}

/// The refactored single-file backend must reproduce the pre-refactor
/// fixture byte for byte.
#[test]
fn file_backend_is_byte_identical_to_pre_refactor_fixture() {
    let golden = std::fs::read(fixture_path()).expect("committed fixture");
    let mut tmp = std::env::temp_dir();
    tmp.push(format!("h5lite-golden-{}.h5l", std::process::id()));
    let w = H5Writer::create(&tmp).unwrap();
    write_golden(&w);
    let fresh = std::fs::read(&tmp).unwrap();
    std::fs::remove_file(&tmp).ok();
    assert_eq!(
        fresh.len(),
        golden.len(),
        "file length drifted from the pre-refactor layout"
    );
    assert!(
        fresh == golden,
        "single-file output is no longer byte-identical to the pre-refactor writer"
    );
}

/// The fixture must stay readable with correct content — the back-compat
/// half of the byte-identity contract.
#[test]
fn pre_refactor_fixture_reads_back() {
    let r = H5Reader::open(fixture_path()).unwrap();
    assert_eq!(
        r.dataset_names(),
        vec!["golden/raw", "golden/sz", "golden/aware"]
    );
    let raw = r.read_dataset("golden/raw").unwrap();
    assert_eq!(raw.len(), 1000);
    assert_eq!(raw[7], 7.0 * 0.5 - 3.0);
    let sz = r.read_dataset("golden/sz").unwrap();
    for (i, v) in sz.iter().enumerate() {
        assert!((v - (i as f64 * 0.002).sin()).abs() <= 1e-3 * 2.0 + 1e-12);
    }
    let idx = r
        .chunk_index("golden/aware")
        .unwrap()
        .expect("index stored");
    assert_eq!(idx.entries.len(), 2);
    assert_eq!(r.meta("golden/aware").unwrap().chunks[1].logical_elems, 100);
}
