//! Pluggable storage: the byte-level backend under the h5lite container.
//!
//! [`H5Writer`](crate::H5Writer) and [`H5Reader`](crate::H5Reader) no
//! longer own a `File` — they own a [`Storage`], which is the complete
//! contract between the container format and whatever holds its bytes:
//!
//! * **reserve** — atomically claim the next `n` logical bytes (the
//!   one-pass write of AMRIC §3.3: every extent is sized before any byte
//!   lands, so concurrent rank threads never contend on a file lock);
//! * **write extent / read range** — positioned I/O against logical
//!   offsets returned by `reserve`;
//! * **flush / finalize** — durability points (`finalize` additionally
//!   commits backend metadata such as the shard manifest);
//! * **byte-length / truncate** — the logical length, used by the footer
//!   parser and the tail-rewriting downgrade tools.
//!
//! Three backends implement it:
//!
//! * [`FileStorage`] — one local POSIX file, `pwrite`/`pread` positioned
//!   I/O. Byte-identical to the pre-trait writer (pinned by the golden
//!   fixture suite).
//! * [`MemStorage`] — a shared, growable byte vector. Fast tests and a
//!   cache tier; cloning shares the underlying bytes, so a writer and a
//!   reader can hand the same container around without touching a disk.
//! * [`crate::sharded::ShardedStorage`] — spreads reserved extents
//!   round-robin across N shard files with a versioned manifest mapping
//!   logical offsets to `(shard, offset)`, so concurrent writers and
//!   parallel prefetch land on independent file descriptors.

use crate::error::{H5Error, H5Result};
use parking_lot::RwLock;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte-level backend contract under the h5lite container. All methods
/// take `&self`: a storage is shared across rank threads exactly like the
/// writer that owns it.
pub trait Storage: Send + Sync {
    /// Short backend name for diagnostics ("file", "mem", "sharded").
    fn kind(&self) -> &'static str;

    /// Atomically reserve the next `bytes` logical bytes; returns the
    /// logical offset where the extent starts. Reservations are dense:
    /// every logical byte below [`Storage::reserved_len`] belongs to
    /// exactly one reserved extent.
    fn reserve(&self, bytes: u64) -> u64;

    /// Logical high-water mark of reservations (the next offset
    /// [`Storage::reserve`] would return).
    fn reserved_len(&self) -> u64;

    /// Write `bytes` at a logical offset previously returned by
    /// [`Storage::reserve`] (the write must stay inside reserved space).
    fn write_at(&self, offset: u64, bytes: &[u8]) -> H5Result<()>;

    /// Fill `buf` from the logical range starting at `offset`. Errors if
    /// the range extends past [`Storage::len`].
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> H5Result<()>;

    /// Total readable logical bytes. For a finished container this is the
    /// file size the footer parser works against.
    fn len(&self) -> H5Result<u64>;

    /// Whether the storage holds no bytes at all.
    fn is_empty(&self) -> H5Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Push written data to durable storage.
    fn flush(&self) -> H5Result<()>;

    /// Durability point at container finish: flush data **and** commit
    /// backend metadata (the shard manifest). Defaults to
    /// [`Storage::flush`] for backends without metadata of their own.
    fn finalize(&self) -> H5Result<()> {
        self.flush()
    }

    /// Cut the logical length back to `len`, discarding reservations and
    /// bytes beyond it. Tail-rewriting tools (the chunk-index stripper)
    /// truncate, re-reserve, and rewrite the directory in place.
    fn truncate(&self, len: u64) -> H5Result<()>;
}

// ---------------------------------------------------------------------------
// FileStorage
// ---------------------------------------------------------------------------

/// The classic backend: one local file, positioned reads and writes.
pub struct FileStorage {
    file: File,
    /// Reservation cursor. On read-only opens this is pinned to the file
    /// length so `reserved_len`/`len` agree with the on-disk bytes.
    cursor: AtomicU64,
}

impl FileStorage {
    /// Create (truncate) a file for writing.
    pub fn create(path: impl AsRef<Path>) -> H5Result<Self> {
        Ok(FileStorage {
            file: File::create(path)?,
            cursor: AtomicU64::new(0),
        })
    }

    /// Open an existing file read-only.
    pub fn open(path: impl AsRef<Path>) -> H5Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FileStorage {
            file,
            cursor: AtomicU64::new(len),
        })
    }

    /// Open an existing file for in-place tail rewrites (read + write,
    /// no truncation on open).
    pub fn open_rw(path: impl AsRef<Path>) -> H5Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileStorage {
            file,
            cursor: AtomicU64::new(len),
        })
    }
}

impl Storage for FileStorage {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn reserve(&self, bytes: u64) -> u64 {
        self.cursor.fetch_add(bytes, Ordering::Relaxed)
    }

    fn reserved_len(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> H5Result<()> {
        self.file.write_all_at(bytes, offset)?;
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> H5Result<()> {
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn len(&self) -> H5Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn flush(&self) -> H5Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&self, len: u64) -> H5Result<()> {
        self.file.set_len(len)?;
        self.cursor.store(len, Ordering::SeqCst);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemStorage
// ---------------------------------------------------------------------------

/// In-memory backend over a shared byte vector. `Clone` shares the bytes,
/// so the handle a writer filled can be opened by a reader without any
/// filesystem round trip — the fast-test and cache-tier backend.
#[derive(Clone, Default)]
pub struct MemStorage {
    data: Arc<RwLock<Vec<u8>>>,
    cursor: Arc<AtomicU64>,
}

impl MemStorage {
    /// Fresh empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Storage pre-loaded with a container image (e.g. bytes read from a
    /// file or received over the wire).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let len = bytes.len() as u64;
        MemStorage {
            data: Arc::new(RwLock::new(bytes)),
            cursor: Arc::new(AtomicU64::new(len)),
        }
    }

    /// Copy of the current container image.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.data.read().clone()
    }
}

impl Storage for MemStorage {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn reserve(&self, bytes: u64) -> u64 {
        self.cursor.fetch_add(bytes, Ordering::Relaxed)
    }

    fn reserved_len(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> H5Result<()> {
        let end = offset as usize + bytes.len();
        let mut data = self.data.write();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> H5Result<()> {
        let data = self.data.read();
        let end = offset as usize + buf.len();
        if end > data.len() {
            return Err(H5Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "read of {} bytes at {} past end of {}-byte mem storage",
                    buf.len(),
                    offset,
                    data.len()
                ),
            )));
        }
        buf.copy_from_slice(&data[offset as usize..end]);
        Ok(())
    }

    fn len(&self) -> H5Result<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn flush(&self) -> H5Result<()> {
        Ok(())
    }

    fn truncate(&self, len: u64) -> H5Result<()> {
        let mut data = self.data.write();
        data.truncate(len as usize);
        self.cursor.store(len, Ordering::SeqCst);
        Ok(())
    }
}

/// Open whatever backend lives at `path`, read-only: a directory holding
/// a shard manifest opens as [`crate::sharded::ShardedStorage`], anything
/// else as [`FileStorage`]. The detection every path-taking reader
/// ([`crate::H5Reader::open`], the query engine, the service catalog)
/// goes through.
pub fn open_storage(path: impl AsRef<Path>) -> H5Result<Box<dyn Storage>> {
    let path = path.as_ref();
    if crate::sharded::is_sharded(path) {
        Ok(Box::new(crate::sharded::ShardedStorage::open(path)?))
    } else {
        Ok(Box::new(FileStorage::open(path)?))
    }
}

/// Open whatever backend lives at `path` for in-place tail rewrites.
pub fn open_storage_rw(path: impl AsRef<Path>) -> H5Result<Box<dyn Storage>> {
    let path = path.as_ref();
    if crate::sharded::is_sharded(path) {
        Ok(Box::new(crate::sharded::ShardedStorage::open_rw(path)?))
    } else {
        Ok(Box::new(FileStorage::open_rw(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_reserve_write_read() {
        let s = MemStorage::new();
        assert_eq!(s.kind(), "mem");
        let a = s.reserve(4);
        let b = s.reserve(6);
        assert_eq!((a, b), (0, 4));
        assert_eq!(s.reserved_len(), 10);
        s.write_at(b, b"abcdef").unwrap();
        s.write_at(a, b"wxyz").unwrap();
        let mut buf = [0u8; 10];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"wxyzabcdef");
        assert_eq!(s.len().unwrap(), 10);
    }

    #[test]
    fn mem_storage_clone_shares_bytes() {
        let s = MemStorage::new();
        let off = s.reserve(3);
        s.write_at(off, b"one").unwrap();
        let view = s.clone();
        let mut buf = [0u8; 3];
        view.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"one");
        // Reservations are shared too: the clone sees the cursor.
        assert_eq!(view.reserve(1), 3);
        assert_eq!(s.reserved_len(), 4);
    }

    #[test]
    fn mem_storage_short_read_is_typed_io_error() {
        let s = MemStorage::from_bytes(vec![1, 2, 3]);
        let mut buf = [0u8; 4];
        assert!(matches!(s.read_at(0, &mut buf), Err(H5Error::Io(_))));
        assert!(matches!(s.read_at(3, &mut [0u8; 1]), Err(H5Error::Io(_))));
        s.read_at(1, &mut buf[..2]).unwrap();
        assert_eq!(&buf[..2], &[2, 3]);
    }

    #[test]
    fn mem_storage_truncate_resets_cursor() {
        let s = MemStorage::new();
        let off = s.reserve(8);
        s.write_at(off, &[7u8; 8]).unwrap();
        s.truncate(3).unwrap();
        assert_eq!(s.len().unwrap(), 3);
        assert_eq!(s.reserved_len(), 3);
        assert_eq!(s.reserve(2), 3);
    }

    #[test]
    fn file_storage_roundtrip_and_truncate() {
        let mut path = std::env::temp_dir();
        path.push(format!("h5lite-storage-file-{}", std::process::id()));
        let s = FileStorage::create(&path).unwrap();
        assert_eq!(s.kind(), "file");
        let off = s.reserve(5);
        s.write_at(off, b"hello").unwrap();
        s.flush().unwrap();
        assert_eq!(s.len().unwrap(), 5);
        drop(s);
        let r = FileStorage::open(&path).unwrap();
        assert_eq!(r.reserved_len(), 5);
        let mut buf = [0u8; 5];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        let rw = FileStorage::open_rw(&path).unwrap();
        rw.truncate(2).unwrap();
        assert_eq!(rw.len().unwrap(), 2);
        assert_eq!(rw.reserve(1), 2);
        std::fs::remove_file(&path).ok();
    }
}
