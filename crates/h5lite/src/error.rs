//! Error type shared by the h5lite read/write paths.

use sz_codec::CodecError;

/// Anything that can go wrong while reading or writing an h5lite file.
#[derive(Debug)]
pub enum H5Error {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structurally invalid file.
    Format(String),
    /// A chunk failed to encode or decode through its filter. The typed
    /// [`CodecError`] is preserved losslessly, so callers can still match
    /// on the precise failure (truncation vs bad magic vs …).
    Codec(CodecError),
    /// Unknown dataset name.
    NotFound(String),
    /// A chunk index beyond the dataset's chunk count was requested.
    ChunkOutOfRange {
        /// Dataset the request addressed.
        dataset: String,
        /// Requested chunk position.
        index: usize,
        /// Number of chunks the dataset actually stores.
        count: usize,
    },
    /// Dataset created twice.
    Duplicate(String),
    /// No registered filter for the stored filter id.
    UnknownFilter(u32),
}

impl std::fmt::Display for H5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H5Error::Io(e) => write!(f, "I/O error: {e}"),
            H5Error::Format(m) => write!(f, "malformed h5lite file: {m}"),
            H5Error::Codec(e) => write!(f, "chunk filter failed: {e}"),
            H5Error::NotFound(n) => write!(f, "dataset not found: {n}"),
            H5Error::ChunkOutOfRange {
                dataset,
                index,
                count,
            } => write!(
                f,
                "chunk {index} out of range for dataset {dataset} ({count} chunks)"
            ),
            H5Error::Duplicate(n) => write!(f, "dataset already exists: {n}"),
            H5Error::UnknownFilter(id) => write!(f, "no filter registered for id {id}"),
        }
    }
}

impl std::error::Error for H5Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            H5Error::Io(e) => Some(e),
            H5Error::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for H5Error {
    fn from(e: std::io::Error) -> Self {
        H5Error::Io(e)
    }
}

impl From<CodecError> for H5Error {
    fn from(e: CodecError) -> Self {
        H5Error::Codec(e)
    }
}

impl H5Error {
    /// The underlying [`CodecError`], when this is a codec failure.
    pub fn as_codec(&self) -> Option<&CodecError> {
        match self {
            H5Error::Codec(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias.
pub type H5Result<T> = Result<T, H5Error>;
