//! Test support: a scoped temp directory that cleans up even when the
//! owning test panics.
//!
//! Shipped as a normal (tiny, dependency-free) module rather than
//! `#[cfg(test)]` so integration tests and downstream crates' test suites
//! can use it; production code has no reason to touch it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// RAII temp directory under `std::env::temp_dir()`. Created on
/// construction, removed (recursively) on drop — including unwinds, so a
/// failing assertion no longer leaks scratch files the way the old
/// `tmp(name)` + trailing `remove_file` idiom did.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory whose name starts with `prefix`. The
    /// name also folds in the process id and a process-wide counter, so
    /// parallel test binaries and repeated runs never collide.
    pub fn new(prefix: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{id}", std::process::id()));
        // A stale dir from a SIGKILLed run may linger; reclaim it.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Convenience: a path to `name` inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::TempDir;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let d = TempDir::new("h5lite-testutil");
            kept = d.path().to_path_buf();
            std::fs::write(d.file("x.bin"), b"abc").unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists(), "dropped TempDir must remove its tree");
    }

    #[test]
    fn distinct_dirs_for_same_prefix() {
        let a = TempDir::new("h5lite-testutil-dup");
        let b = TempDir::new("h5lite-testutil-dup");
        assert_ne!(a.path(), b.path());
    }
}
