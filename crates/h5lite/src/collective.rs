//! Collective dataset writes: every rank contributes chunks to one shared
//! dataset (parallel-HDF5-with-filters semantics).
//!
//! With compression filters enabled, HDF5 requires collective metadata
//! operations: *all* ranks participate in every dataset create even when
//! they contribute no data — the effect that makes the one-dataset-per-rank
//! workaround of the paper's §3.3 serialize badly. That cost is captured by
//! counting a dataset-create participation per rank per dataset in the
//! returned receipt.

use crate::dataset::{ChunkRecord, DatasetMeta};
use crate::error::{H5Error, H5Result};
use crate::file::{encode_chunk, ChunkData, H5Writer};
use crate::filter::{encode_frame, ChunkFilter, EncodedFrame, FilterMode};
use rankpar::Communicator;

/// Per-rank accounting of one collective write, in PFS-model units.
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectiveReceipt {
    /// Filter invocations on this rank.
    pub filter_calls: u64,
    /// Write calls on this rank.
    pub write_calls: u64,
    /// Payload bytes this rank wrote.
    pub bytes_written: u64,
    /// Collective dataset creates this rank participated in (always ≥ 1).
    pub dataset_creates: u64,
    /// Seconds this rank spent inside filter encode calls.
    pub encode_seconds: f64,
}

/// Collectively write one dataset. Every rank passes its local chunks (in
/// rank-local order); the dataset's global chunk order is rank-major. All
/// ranks must call this with the same `name`, `chunk_elems`, filter
/// configuration and mode.
pub fn collective_write(
    comm: &Communicator,
    writer: &H5Writer,
    name: &str,
    my_chunks: &[ChunkData],
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
) -> H5Result<CollectiveReceipt> {
    let mut receipt = CollectiveReceipt {
        dataset_creates: 1,
        ..Default::default()
    };
    // Encode and write chunk by chunk, reusing one scratch pair across the
    // whole collective call — the per-chunk hot path allocates no fresh
    // output `Vec` (the §3.3 writer encodes one chunk per rank per
    // (level, field); the baseline path pushes hundreds through here).
    let mut pad = Vec::new();
    let mut encoded = Vec::new();
    let mut my_records = Vec::with_capacity(my_chunks.len());
    let mut failure: Option<H5Error> = None;
    for chunk in my_chunks {
        writer.count_filter_call();
        receipt.filter_calls += 1;
        let t0 = std::time::Instant::now();
        let result = encode_chunk(chunk, chunk_elems, filter, mode, &mut pad, &mut encoded);
        receipt.encode_seconds += t0.elapsed().as_secs_f64();
        let logical = match result {
            Ok(l) => l,
            Err(e) => {
                failure = Some(e);
                break;
            }
        };
        let offset = writer.reserve(encoded.len() as u64);
        if let Err(e) = writer.write_at(offset, &encoded) {
            failure = Some(e);
            break;
        }
        receipt.write_calls += 1;
        receipt.bytes_written += encoded.len() as u64;
        my_records.push(ChunkRecord {
            offset,
            stored_bytes: encoded.len() as u64,
            logical_elems: logical,
        });
    }

    collective_finalize(
        comm,
        writer,
        name,
        my_records,
        chunk_elems,
        filter,
        mode,
        failure,
        receipt,
    )
}

/// The shared tail of every collective write: agree on success, gather
/// chunk records in rank order, register the dataset on rank 0.
///
/// Public so callers that stream their frames to storage incrementally
/// (the overlapped field writer) can commit the dataset once per rank
/// from the records alone. Every rank must call this exactly once per
/// dataset, in the same order; `failure: Some(_)` is the abort vote —
/// the write never registers and every rank returns `Err`.
///
/// The agreement runs before the records gather so a rank whose encode
/// failed must not abandon its peers inside a barrier (the communicator
/// has no timeout): every rank first learns whether all succeeded and the
/// whole collective fails together.
#[allow(clippy::too_many_arguments)]
pub fn collective_finalize(
    comm: &Communicator,
    writer: &H5Writer,
    name: &str,
    my_records: Vec<ChunkRecord>,
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
    failure: Option<H5Error>,
    receipt: CollectiveReceipt,
) -> H5Result<CollectiveReceipt> {
    let all_ok = comm.allgather(failure.is_none());
    if let Some(e) = failure {
        return Err(e);
    }
    if all_ok.contains(&false) {
        return Err(H5Error::Format(
            "collective write aborted: a peer rank's chunk failed to encode".into(),
        ));
    }

    // Gather chunk records in rank order; rank 0 registers the dataset.
    let all_records: Vec<Vec<(u64, u64, u64)>> = comm.allgather(
        my_records
            .iter()
            .map(|r| (r.offset, r.stored_bytes, r.logical_elems))
            .collect::<Vec<_>>(),
    );
    if comm.rank() == 0 {
        let chunks: Vec<ChunkRecord> = all_records
            .into_iter()
            .flatten()
            .map(|(offset, stored_bytes, logical_elems)| ChunkRecord {
                offset,
                stored_bytes,
                logical_elems,
            })
            .collect();
        let total = chunks.iter().map(|c| c.logical_elems).sum();
        writer.register_dataset(DatasetMeta {
            name: name.to_string(),
            total_elems: total,
            chunk_elems: chunk_elems as u64,
            filter_id: filter.id(),
            filter_mode: mode,
            client_data: filter.client_data(),
            chunks,
        })?;
    }
    comm.barrier();
    Ok(receipt)
}

/// Collectively write one dataset from **pre-encoded** frames — the write
/// stage of the overlapped pipeline, where compression already happened
/// on the pool workers.
///
/// `my_frames: None` signals that this rank failed to produce its frames
/// (its compression error travels separately); the rank still
/// participates in every collective step so peers abort in lockstep
/// instead of deadlocking, and every rank returns `Err`.
///
/// Because all frame sizes are known up front, the rank's frames land in
/// **one contiguous pre-reserved extent** (a single atomic reservation —
/// the paper's one-pass write against its compress-then-rewrite
/// two-pass).
pub fn collective_write_frames(
    comm: &Communicator,
    writer: &H5Writer,
    name: &str,
    my_frames: Option<Vec<EncodedFrame>>,
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
) -> H5Result<CollectiveReceipt> {
    let mut receipt = CollectiveReceipt {
        dataset_creates: 1,
        ..Default::default()
    };
    let mut my_records = Vec::new();
    let mut failure: Option<H5Error> = None;
    match &my_frames {
        Some(frames) => {
            receipt.filter_calls = frames.len() as u64;
            receipt.encode_seconds = frames.iter().map(|f| f.encode_seconds).sum();
            let plan = writer.reserve_extent(frames.iter().map(|f| f.bytes.len() as u64));
            for (frame, &offset) in frames.iter().zip(&plan.offsets) {
                if let Err(e) = writer.write_at(offset, &frame.bytes) {
                    failure = Some(e);
                    break;
                }
                receipt.write_calls += 1;
                receipt.bytes_written += frame.bytes.len() as u64;
                my_records.push(ChunkRecord {
                    offset,
                    stored_bytes: frame.bytes.len() as u64,
                    logical_elems: frame.logical_elems,
                });
            }
        }
        None => {
            failure = Some(H5Error::Format(
                "collective write aborted: this rank failed to encode its frames".into(),
            ));
        }
    }
    collective_finalize(
        comm,
        writer,
        name,
        my_records,
        chunk_elems,
        filter,
        mode,
        failure,
        receipt,
    )
}

/// Collectively write one dataset with the chunk compression running on a
/// rank-local worker pool, overlapped with the writes: while batch `k`'s
/// frames stream to storage (one pre-reserved extent per batch), the
/// workers are already compressing batch `k + 1`. The reassembly window
/// (2 batches) is the double buffer — and the backpressure bound on
/// frames held in memory.
///
/// Output is byte-identical to [`collective_write`]: frames are encoded
/// per chunk with the same filter and assembled in submission order.
/// With `workers <= 1` this *is* [`collective_write`].
#[allow(clippy::too_many_arguments)]
pub fn collective_write_pipelined(
    comm: &Communicator,
    writer: &H5Writer,
    name: &str,
    my_chunks: &[ChunkData],
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
    workers: usize,
) -> H5Result<CollectiveReceipt> {
    if workers <= 1 {
        return collective_write(comm, writer, name, my_chunks, chunk_elems, filter, mode);
    }
    let mut receipt = CollectiveReceipt {
        dataset_creates: 1,
        ..Default::default()
    };
    let mut my_records: Vec<ChunkRecord> = Vec::new();
    let batch_size = workers.max(2);
    let mut batch: Vec<EncodedFrame> = Vec::with_capacity(batch_size);

    fn flush_batch(
        writer: &H5Writer,
        batch: &mut Vec<EncodedFrame>,
        receipt: &mut CollectiveReceipt,
        records: &mut Vec<ChunkRecord>,
    ) -> H5Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let plan = writer.reserve_extent(batch.iter().map(|f| f.bytes.len() as u64));
        for (frame, &offset) in batch.iter().zip(&plan.offsets) {
            writer.write_at(offset, &frame.bytes)?;
            receipt.write_calls += 1;
            receipt.bytes_written += frame.bytes.len() as u64;
            records.push(ChunkRecord {
                offset,
                stored_bytes: frame.bytes.len() as u64,
                logical_elems: frame.logical_elems,
            });
        }
        batch.clear();
        Ok(())
    }

    let pool_result: Result<(), H5Error> = rankpar::pool::for_each_ordered(
        my_chunks,
        workers,
        2 * batch_size,
        Vec::new, // per-worker padding buffer
        |pad: &mut Vec<f64>, _i, chunk| {
            writer.count_filter_call();
            encode_frame(chunk, chunk_elems, filter, mode, pad)
        },
        |_i, frame| {
            receipt.filter_calls += 1;
            receipt.encode_seconds += frame.encode_seconds;
            batch.push(frame);
            if batch.len() >= batch_size {
                flush_batch(writer, &mut batch, &mut receipt, &mut my_records)
            } else {
                Ok(())
            }
        },
    );
    let failure = match pool_result {
        Ok(()) => flush_batch(writer, &mut batch, &mut receipt, &mut my_records).err(),
        Err(e) => Some(e),
    };
    collective_finalize(
        comm,
        writer,
        name,
        my_records,
        chunk_elems,
        filter,
        mode,
        failure,
        receipt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::H5Reader;
    use crate::filter::{NoFilter, SzFilter};
    use crate::storage::MemStorage;
    use rankpar::run_ranks;
    use std::sync::Arc;

    /// Collective tests run entirely in memory: the writer and the later
    /// reader share one [`MemStorage`] image, so nothing touches the
    /// filesystem and a panicking rank leaks no temp files.
    fn mem_writer() -> (Arc<H5Writer>, MemStorage) {
        let (w, mem) = H5Writer::in_memory();
        (Arc::new(w), mem)
    }

    fn open(mem: MemStorage) -> H5Reader {
        H5Reader::from_storage(Box::new(mem)).unwrap()
    }

    #[test]
    fn four_ranks_write_one_dataset() {
        let (writer, mem) = mem_writer();
        let w = Arc::clone(&writer);
        run_ranks(4, move |comm| {
            let rank = comm.rank();
            let data: Vec<f64> = (0..256).map(|i| (rank * 1000 + i) as f64).collect();
            let chunks = vec![ChunkData::full(data)];
            collective_write(
                &comm,
                &w,
                "d",
                &chunks,
                256,
                &NoFilter,
                FilterMode::Standard,
            )
            .unwrap();
        });
        writer.finish().unwrap();
        let r = open(mem);
        let all = r.read_dataset("d").unwrap();
        assert_eq!(all.len(), 1024);
        // Rank-major order regardless of which thread wrote first.
        for rank in 0..4 {
            assert_eq!(all[rank * 256], (rank * 1000) as f64);
            assert_eq!(all[rank * 256 + 255], (rank * 1000 + 255) as f64);
        }
    }

    #[test]
    fn unbalanced_ranks_size_aware() {
        // Rank r holds (r+1)·128 values; global chunk = largest rank's
        // size; size-aware mode stores no padding (paper Fig. 12).
        let (writer, mem) = mem_writer();
        let w = Arc::clone(&writer);
        let receipts = run_ranks(4, move |comm| {
            let rank = comm.rank();
            let n = (rank + 1) * 128;
            let data: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.01).sin() + rank as f64)
                .collect();
            let my_elems = data.len() as u64;
            let chunk_elems = comm.allreduce_max(my_elems) as usize;
            assert_eq!(chunk_elems, 512);
            let chunks = vec![ChunkData::full(data)];
            let f = SzFilter::one_dimensional(1e-3);
            collective_write(
                &comm,
                &w,
                "d",
                &chunks,
                chunk_elems,
                &f,
                FilterMode::SizeAware,
            )
            .unwrap()
        });
        writer.finish().unwrap();
        for (rank, r) in receipts.iter().enumerate() {
            assert_eq!(r.filter_calls, 1, "rank {rank}");
            assert_eq!(r.dataset_creates, 1);
        }
        let r = open(mem);
        let meta = r.meta("d").unwrap();
        assert_eq!(meta.total_elems, (128 + 256 + 384 + 512) as u64);
        let all = r.read_dataset("d").unwrap();
        // Rank 3's first value follows rank 2's last.
        let off = 128 + 256 + 384;
        // Rank 3's chunk range is ≈2 (sin ± 1), so REL 1e-3 → abs ≈2e-3.
        assert!((all[off] - 3.0).abs() <= 2.5e-3);
    }

    #[test]
    fn failing_rank_aborts_collective_without_deadlock() {
        // One rank's chunk is invalid (larger than the chunk size): every
        // rank must return Err — the failing rank its encode error, the
        // peers an abort notice — instead of hanging in the record gather.
        let (writer, _mem) = mem_writer();
        let w = Arc::clone(&writer);
        let results = run_ranks(2, move |comm| {
            let n = if comm.rank() == 1 { 512 } else { 64 }; // 512 > chunk 64
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            collective_write(
                &comm,
                &w,
                "d",
                &[ChunkData::full(data)],
                64,
                &NoFilter,
                FilterMode::Standard,
            )
        });
        for (rank, r) in results.iter().enumerate() {
            assert!(r.is_err(), "rank {rank} must see the collective failure");
        }
    }

    #[test]
    fn pipelined_write_matches_serial_bytes() {
        // The overlapped path must store byte-identical chunks (offsets
        // may differ; stored bytes and logical counts may not).
        let chunk_data: Vec<Vec<f64>> = (0..13)
            .map(|c| {
                (0..192)
                    .map(|i| ((c * 192 + i) as f64 * 0.013).sin() * (c + 1) as f64)
                    .collect()
            })
            .collect();
        let chunks: Vec<ChunkData> = chunk_data.into_iter().map(ChunkData::full).collect();
        let f = SzFilter::one_dimensional(1e-3);
        let write = |workers: usize| {
            let (writer, mem) = mem_writer();
            let w = Arc::clone(&writer);
            let chunks = chunks.clone();
            run_ranks(2, move |comm| {
                collective_write_pipelined(
                    &comm,
                    &w,
                    "d",
                    &chunks,
                    192,
                    &f,
                    FilterMode::SizeAware,
                    workers,
                )
                .unwrap()
            });
            writer.finish().unwrap();
            open(mem)
        };
        let rs = write(1);
        let rp = write(4);
        let (ms, mp) = (rs.meta("d").unwrap(), rp.meta("d").unwrap());
        assert_eq!(ms.chunks.len(), mp.chunks.len());
        for i in 0..ms.chunks.len() {
            assert_eq!(
                rs.read_chunk_raw("d", i).unwrap(),
                rp.read_chunk_raw("d", i).unwrap(),
                "chunk {i} bytes differ between serial and parallel"
            );
            assert_eq!(ms.chunks[i].logical_elems, mp.chunks[i].logical_elems);
        }
        assert_eq!(rs.read_dataset("d").unwrap(), rp.read_dataset("d").unwrap());
    }

    #[test]
    fn frames_path_writes_preencoded_chunks() {
        let (writer, mem) = mem_writer();
        let w = Arc::clone(&writer);
        let receipts = run_ranks(2, move |comm| {
            let rank = comm.rank();
            let data: Vec<f64> = (0..64).map(|i| (rank * 100 + i) as f64).collect();
            let f = NoFilter;
            let frame = crate::filter::encode_frame(
                &ChunkData::full(data),
                64,
                &f,
                FilterMode::SizeAware,
                &mut Vec::new(),
            )
            .unwrap();
            collective_write_frames(
                &comm,
                &w,
                "d",
                Some(vec![frame]),
                64,
                &f,
                FilterMode::SizeAware,
            )
            .unwrap()
        });
        writer.finish().unwrap();
        for r in &receipts {
            assert_eq!(r.filter_calls, 1);
            assert_eq!(r.write_calls, 1);
        }
        let r = open(mem);
        let all = r.read_dataset("d").unwrap();
        assert_eq!(all.len(), 128);
        assert_eq!(all[64], 100.0);
    }

    #[test]
    fn frames_path_none_aborts_all_ranks_without_deadlock() {
        let (writer, _mem) = mem_writer();
        let w = Arc::clone(&writer);
        let results = run_ranks(3, move |comm| {
            let frames = if comm.rank() == 1 {
                None // this rank's compression "failed"
            } else {
                let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
                Some(vec![crate::filter::encode_frame(
                    &ChunkData::full(data),
                    16,
                    &NoFilter,
                    FilterMode::SizeAware,
                    &mut Vec::new(),
                )
                .unwrap()])
            };
            collective_write_frames(&comm, &w, "d", frames, 16, &NoFilter, FilterMode::SizeAware)
        });
        for (rank, r) in results.iter().enumerate() {
            assert!(r.is_err(), "rank {rank} must see the abort");
        }
    }

    #[test]
    fn pipelined_failing_chunk_aborts_collective() {
        // One rank's mid-batch chunk exceeds the chunk size: the pool must
        // drain, and every rank must return Err.
        let (writer, _mem) = mem_writer();
        let w = Arc::clone(&writer);
        let results = run_ranks(2, move |comm| {
            let mut chunks: Vec<ChunkData> = (0..8)
                .map(|c| ChunkData::full((0..32).map(|i| (c * 32 + i) as f64).collect()))
                .collect();
            if comm.rank() == 1 {
                // 64 > chunk size 32, injected mid-batch.
                chunks[4] = ChunkData::full((0..64).map(|i| i as f64).collect());
            }
            collective_write_pipelined(
                &comm,
                &w,
                "d",
                &chunks,
                32,
                &NoFilter,
                FilterMode::Standard,
                4,
            )
        });
        for (rank, r) in results.iter().enumerate() {
            assert!(r.is_err(), "rank {rank} must see the collective failure");
        }
    }

    #[test]
    fn several_collective_datasets() {
        let (writer, mem) = mem_writer();
        let w = Arc::clone(&writer);
        let receipts = run_ranks(2, move |comm| {
            let mut total = CollectiveReceipt::default();
            for field in ["rho", "T", "vx"] {
                let data: Vec<f64> = (0..64).map(|i| i as f64 + comm.rank() as f64).collect();
                let rec = collective_write(
                    &comm,
                    &w,
                    field,
                    &[ChunkData::full(data)],
                    64,
                    &NoFilter,
                    FilterMode::Standard,
                )
                .unwrap();
                total.dataset_creates += rec.dataset_creates;
                total.filter_calls += rec.filter_calls;
            }
            total
        });
        writer.finish().unwrap();
        // The §3.3 pathology: every rank pays a create per dataset.
        for r in &receipts {
            assert_eq!(r.dataset_creates, 3);
        }
        let rd = open(mem);
        assert_eq!(rd.dataset_names().len(), 3);
    }
}
