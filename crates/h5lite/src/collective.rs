//! Collective dataset writes: every rank contributes chunks to one shared
//! dataset (parallel-HDF5-with-filters semantics).
//!
//! With compression filters enabled, HDF5 requires collective metadata
//! operations: *all* ranks participate in every dataset create even when
//! they contribute no data — the effect that makes the one-dataset-per-rank
//! workaround of the paper's §3.3 serialize badly. That cost is captured by
//! counting a dataset-create participation per rank per dataset in the
//! returned receipt.

use crate::dataset::{ChunkRecord, DatasetMeta};
use crate::error::{H5Error, H5Result};
use crate::file::{encode_chunk, ChunkData, H5Writer};
use crate::filter::{ChunkFilter, FilterMode};
use rankpar::Communicator;

/// Per-rank accounting of one collective write, in PFS-model units.
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectiveReceipt {
    /// Filter invocations on this rank.
    pub filter_calls: u64,
    /// Write calls on this rank.
    pub write_calls: u64,
    /// Payload bytes this rank wrote.
    pub bytes_written: u64,
    /// Collective dataset creates this rank participated in (always ≥ 1).
    pub dataset_creates: u64,
    /// Seconds this rank spent inside filter encode calls.
    pub encode_seconds: f64,
}

/// Collectively write one dataset. Every rank passes its local chunks (in
/// rank-local order); the dataset's global chunk order is rank-major. All
/// ranks must call this with the same `name`, `chunk_elems`, filter
/// configuration and mode.
pub fn collective_write(
    comm: &Communicator,
    writer: &H5Writer,
    name: &str,
    my_chunks: &[ChunkData],
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
) -> H5Result<CollectiveReceipt> {
    let mut receipt = CollectiveReceipt {
        dataset_creates: 1,
        ..Default::default()
    };
    // Encode and write chunk by chunk, reusing one scratch pair across the
    // whole collective call — the per-chunk hot path allocates no fresh
    // output `Vec` (the §3.3 writer encodes one chunk per rank per
    // (level, field); the baseline path pushes hundreds through here).
    let mut pad = Vec::new();
    let mut encoded = Vec::new();
    let mut my_records = Vec::with_capacity(my_chunks.len());
    let mut failure: Option<H5Error> = None;
    for chunk in my_chunks {
        writer.count_filter_call();
        receipt.filter_calls += 1;
        let t0 = std::time::Instant::now();
        let result = encode_chunk(chunk, chunk_elems, filter, mode, &mut pad, &mut encoded);
        receipt.encode_seconds += t0.elapsed().as_secs_f64();
        let logical = match result {
            Ok(l) => l,
            Err(e) => {
                failure = Some(e);
                break;
            }
        };
        let offset = writer.reserve(encoded.len() as u64);
        if let Err(e) = writer.write_at(offset, &encoded) {
            failure = Some(e);
            break;
        }
        receipt.write_calls += 1;
        receipt.bytes_written += encoded.len() as u64;
        my_records.push(ChunkRecord {
            offset,
            stored_bytes: encoded.len() as u64,
            logical_elems: logical,
        });
    }

    // Collective agreement before the records gather: a rank whose encode
    // failed must not abandon its peers inside a barrier (the communicator
    // has no timeout), so every rank first learns whether all succeeded
    // and the whole collective fails together.
    let all_ok = comm.allgather(failure.is_none());
    if let Some(e) = failure {
        return Err(e);
    }
    if all_ok.contains(&false) {
        return Err(H5Error::Format(
            "collective write aborted: a peer rank's chunk failed to encode".into(),
        ));
    }

    // 3. Gather chunk records in rank order; rank 0 registers the dataset.
    let all_records: Vec<Vec<(u64, u64, u64)>> = comm.allgather(
        my_records
            .iter()
            .map(|r| (r.offset, r.stored_bytes, r.logical_elems))
            .collect::<Vec<_>>(),
    );
    if comm.rank() == 0 {
        let chunks: Vec<ChunkRecord> = all_records
            .into_iter()
            .flatten()
            .map(|(offset, stored_bytes, logical_elems)| ChunkRecord {
                offset,
                stored_bytes,
                logical_elems,
            })
            .collect();
        let total = chunks.iter().map(|c| c.logical_elems).sum();
        writer.register_dataset(DatasetMeta {
            name: name.to_string(),
            total_elems: total,
            chunk_elems: chunk_elems as u64,
            filter_id: filter.id(),
            filter_mode: mode,
            client_data: filter.client_data(),
            chunks,
        })?;
    }
    comm.barrier();
    Ok(receipt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::H5Reader;
    use crate::filter::{NoFilter, SzFilter};
    use rankpar::run_ranks;
    use std::sync::Arc;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("h5lite-coll-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn four_ranks_write_one_dataset() {
        let path = tmp("basic");
        let writer = Arc::new(H5Writer::create(&path).unwrap());
        let w = Arc::clone(&writer);
        run_ranks(4, move |comm| {
            let rank = comm.rank();
            let data: Vec<f64> = (0..256).map(|i| (rank * 1000 + i) as f64).collect();
            let chunks = vec![ChunkData::full(data)];
            collective_write(
                &comm,
                &w,
                "d",
                &chunks,
                256,
                &NoFilter,
                FilterMode::Standard,
            )
            .unwrap();
        });
        writer.finish().unwrap();
        let r = H5Reader::open(&path).unwrap();
        let all = r.read_dataset("d").unwrap();
        assert_eq!(all.len(), 1024);
        // Rank-major order regardless of which thread wrote first.
        for rank in 0..4 {
            assert_eq!(all[rank * 256], (rank * 1000) as f64);
            assert_eq!(all[rank * 256 + 255], (rank * 1000 + 255) as f64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbalanced_ranks_size_aware() {
        // Rank r holds (r+1)·128 values; global chunk = largest rank's
        // size; size-aware mode stores no padding (paper Fig. 12).
        let path = tmp("unbalanced");
        let writer = Arc::new(H5Writer::create(&path).unwrap());
        let w = Arc::clone(&writer);
        let receipts = run_ranks(4, move |comm| {
            let rank = comm.rank();
            let n = (rank + 1) * 128;
            let data: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.01).sin() + rank as f64)
                .collect();
            let my_elems = data.len() as u64;
            let chunk_elems = comm.allreduce_max(my_elems) as usize;
            assert_eq!(chunk_elems, 512);
            let chunks = vec![ChunkData::full(data)];
            let f = SzFilter::one_dimensional(1e-3);
            collective_write(
                &comm,
                &w,
                "d",
                &chunks,
                chunk_elems,
                &f,
                FilterMode::SizeAware,
            )
            .unwrap()
        });
        writer.finish().unwrap();
        for (rank, r) in receipts.iter().enumerate() {
            assert_eq!(r.filter_calls, 1, "rank {rank}");
            assert_eq!(r.dataset_creates, 1);
        }
        let r = H5Reader::open(&path).unwrap();
        let meta = r.meta("d").unwrap();
        assert_eq!(meta.total_elems, (128 + 256 + 384 + 512) as u64);
        let all = r.read_dataset("d").unwrap();
        // Rank 3's first value follows rank 2's last.
        let off = 128 + 256 + 384;
        // Rank 3's chunk range is ≈2 (sin ± 1), so REL 1e-3 → abs ≈2e-3.
        assert!((all[off] - 3.0).abs() <= 2.5e-3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failing_rank_aborts_collective_without_deadlock() {
        // One rank's chunk is invalid (larger than the chunk size): every
        // rank must return Err — the failing rank its encode error, the
        // peers an abort notice — instead of hanging in the record gather.
        let path = tmp("abort");
        let writer = Arc::new(H5Writer::create(&path).unwrap());
        let w = Arc::clone(&writer);
        let results = run_ranks(2, move |comm| {
            let n = if comm.rank() == 1 { 512 } else { 64 }; // 512 > chunk 64
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            collective_write(
                &comm,
                &w,
                "d",
                &[ChunkData::full(data)],
                64,
                &NoFilter,
                FilterMode::Standard,
            )
        });
        for (rank, r) in results.iter().enumerate() {
            assert!(r.is_err(), "rank {rank} must see the collective failure");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn several_collective_datasets() {
        let path = tmp("several");
        let writer = Arc::new(H5Writer::create(&path).unwrap());
        let w = Arc::clone(&writer);
        let receipts = run_ranks(2, move |comm| {
            let mut total = CollectiveReceipt::default();
            for field in ["rho", "T", "vx"] {
                let data: Vec<f64> = (0..64).map(|i| i as f64 + comm.rank() as f64).collect();
                let rec = collective_write(
                    &comm,
                    &w,
                    field,
                    &[ChunkData::full(data)],
                    64,
                    &NoFilter,
                    FilterMode::Standard,
                )
                .unwrap();
                total.dataset_creates += rec.dataset_creates;
                total.filter_calls += rec.filter_calls;
            }
            total
        });
        writer.finish().unwrap();
        // The §3.3 pathology: every rank pays a create per dataset.
        for r in &receipts {
            assert_eq!(r.dataset_creates, 3);
        }
        let rd = H5Reader::open(&path).unwrap();
        assert_eq!(rd.dataset_names().len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
