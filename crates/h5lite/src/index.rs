//! Persistent per-dataset chunk index — the read-side acceleration
//! structure behind the `amr-query` subsystem.
//!
//! The directory already records *where* each chunk lives
//! ([`crate::dataset::ChunkRecord`]); the chunk index adds what a random
//! -access reader needs to touch only relevant chunks without decoding
//! anything:
//!
//! * the **codec id** of the chunk's stream envelope (so tooling and
//!   planners know how a chunk decodes without reading its payload),
//! * an optional **box extent**: the index-space bounding box of the data
//!   the chunk covers (the AMRIC writer stores the bounding box of the
//!   rank's surviving unit blocks), letting a region-of-interest planner
//!   prune chunks by rectangle intersection alone, and
//! * an optional **reference id**: for delta-coded chunks (the temporal
//!   codec family), the snapshot id whose decoded data the chunk predicts
//!   from — random access can resolve exactly which prior file a delta
//!   chunk needs without decoding anything.
//!
//! The index is written by [`crate::file::H5Writer::finish`] as an
//! optional section *after* the dataset entries inside the directory
//! block. Readers that predate the index parse the dataset entries and
//! never look further, so indexed files stay readable by old tooling;
//! files with no index registered are byte-identical to pre-index files.
//! [`crate::file::H5Reader`] exposes the parsed index per dataset and a
//! fallback scan ([`crate::file::H5Reader::scan_chunk_index`]) that
//! reconstructs codec ids from the stored chunk envelopes of legacy
//! files.

use crate::error::{H5Error, H5Result};
use sz_codec::wire::{Reader, Writer};

/// Magic marking the start of the optional chunk-index section inside the
/// directory block (`CIDX` little-endian).
pub(crate) const INDEX_MAGIC: u32 = 0x5844_4943;

/// Codec id recorded for chunks whose payload carries no stream envelope
/// (raw/unfiltered data, or unrecognizable legacy bytes).
pub const CODEC_RAW: u32 = u32::MAX;

/// Index entry for one chunk of a dataset (position matches the chunk's
/// position in [`crate::dataset::DatasetMeta::chunks`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkIndexEntry {
    /// Envelope codec id of the stored stream ([`CODEC_RAW`] when the
    /// chunk has none).
    pub codec_id: u32,
    /// Index-space bounding box of the chunk's data as `(lo, hi)`
    /// inclusive corners; `None` when the chunk holds no spatial data
    /// (empty rank) or the producer recorded no geometry.
    pub extent: Option<([i64; 3], [i64; 3])>,
    /// Snapshot id the chunk's stream is delta-coded against (temporal
    /// codec family); `None` for self-contained chunks. Files recording
    /// no references serialize byte-identically to the pre-reference
    /// format.
    pub reference: Option<u64>,
}

impl ChunkIndexEntry {
    /// Self-contained entry (no reference).
    pub fn new(codec_id: u32, extent: Option<([i64; 3], [i64; 3])>) -> Self {
        ChunkIndexEntry {
            codec_id,
            extent,
            reference: None,
        }
    }

    /// Record the reference snapshot id the chunk predicts from.
    pub fn with_reference(mut self, reference: u64) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Does the entry's extent intersect the inclusive box `[lo, hi]`?
    /// Extent-less entries never intersect (they hold no spatial data).
    pub fn intersects(&self, lo: [i64; 3], hi: [i64; 3]) -> bool {
        match self.extent {
            Some((elo, ehi)) => (0..3).all(|d| elo[d] <= hi[d] && lo[d] <= ehi[d]),
            None => false,
        }
    }
}

/// Chunk index of one dataset: one entry per stored chunk, in chunk
/// (= rank-major) order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkIndex {
    /// Entries aligned with the dataset's chunk records.
    pub entries: Vec<ChunkIndexEntry>,
}

impl ChunkIndex {
    /// Index over pre-built entries.
    pub fn new(entries: Vec<ChunkIndexEntry>) -> Self {
        ChunkIndex { entries }
    }

    /// Chunk positions whose extent intersects the inclusive box
    /// `[lo, hi]`.
    pub fn intersecting(&self, lo: [i64; 3], hi: [i64; 3]) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.intersects(lo, hi))
            .map(|(i, _)| i)
            .collect()
    }

    // Entry tag bits: the tag byte after the codec id is a bitset —
    // bit 0 = box extent follows, bit 1 = reference id follows. Entries
    // without a reference emit tag 0/1, byte-identical to the
    // pre-reference format.
    const TAG_EXTENT: u8 = 0b01;
    const TAG_REFERENCE: u8 = 0b10;

    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_u32(e.codec_id);
            let mut tag = 0u8;
            if e.extent.is_some() {
                tag |= Self::TAG_EXTENT;
            }
            if e.reference.is_some() {
                tag |= Self::TAG_REFERENCE;
            }
            w.put_u8(tag);
            if let Some((lo, hi)) = e.extent {
                for v in lo.iter().chain(hi.iter()) {
                    w.put_u64(*v as u64);
                }
            }
            if let Some(r) = e.reference {
                w.put_u64(r);
            }
        }
    }

    pub(crate) fn read_from(r: &mut Reader<'_>) -> H5Result<Self> {
        let n = r.get_u32()? as usize;
        // Each entry is at least 5 bytes; reject counts the stream cannot
        // hold before allocating (corrupt counts must not drive absurd
        // allocations).
        r.check_count(n, 5)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let codec_id = r.get_u32()?;
            let tag = r.get_u8()?;
            if tag & !(Self::TAG_EXTENT | Self::TAG_REFERENCE) != 0 {
                return Err(H5Error::Format(format!("bad chunk index extent tag {tag}")));
            }
            let extent = if tag & Self::TAG_EXTENT != 0 {
                let mut c = [0i64; 6];
                for v in &mut c {
                    *v = r.get_u64()? as i64;
                }
                let (lo, hi) = ([c[0], c[1], c[2]], [c[3], c[4], c[5]]);
                if (0..3).any(|d| lo[d] > hi[d]) {
                    return Err(H5Error::Format(format!(
                        "chunk index extent has lo {lo:?} > hi {hi:?}"
                    )));
                }
                Some((lo, hi))
            } else {
                None
            };
            let reference = if tag & Self::TAG_REFERENCE != 0 {
                Some(r.get_u64()?)
            } else {
                None
            };
            entries.push(ChunkIndexEntry {
                codec_id,
                extent,
                reference,
            });
        }
        Ok(ChunkIndex { entries })
    }
}

/// Serialize the index section (`INDEX_MAGIC`, dataset count, then
/// name + index per dataset).
pub(crate) fn write_index_section(w: &mut Writer, indexes: &[(String, ChunkIndex)]) {
    w.put_u32(INDEX_MAGIC);
    w.put_u32(indexes.len() as u32);
    for (name, idx) in indexes {
        let bytes = name.as_bytes();
        w.put_u16(bytes.len() as u16);
        w.put_raw(bytes);
        idx.write_to(w);
    }
}

/// Parse the index section if the reader is positioned at one. Returns
/// `None` when the remaining bytes hold no index (legacy file or an
/// unknown trailing section — both read as "no index").
pub(crate) fn read_index_section(
    r: &mut Reader<'_>,
) -> H5Result<Option<Vec<(String, ChunkIndex)>>> {
    if r.remaining() < 4 {
        return Ok(None);
    }
    let mut probe = Reader::new(r.get_raw(r.remaining())?);
    if probe.get_u32()? != INDEX_MAGIC {
        return Ok(None);
    }
    let n = probe.get_u32()? as usize;
    // A dataset's index is at least 6 bytes (empty name + empty entries).
    probe.check_count(n, 6)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = probe.get_u16()? as usize;
        let name = String::from_utf8(probe.get_raw(name_len)?.to_vec())
            .map_err(|_| H5Error::Format("chunk index dataset name is not UTF-8".into()))?;
        let idx = ChunkIndex::read_from(&mut probe)?;
        out.push((name, idx));
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, ChunkIndex)> {
        vec![
            (
                "level_0/field_0".into(),
                ChunkIndex::new(vec![
                    ChunkIndexEntry::new(3, Some(([0, 0, 0], [7, 7, 7]))),
                    ChunkIndexEntry::new(3, None),
                    ChunkIndexEntry::new(7, Some(([8, 0, 0], [15, 7, 7]))).with_reference(41),
                    ChunkIndexEntry::new(7, None).with_reference(2),
                ]),
            ),
            ("meta/header".into(), ChunkIndex::default()),
        ]
    }

    #[test]
    fn section_roundtrip() {
        let indexes = sample();
        let mut w = Writer::new();
        write_index_section(&mut w, &indexes);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_index_section(&mut r).unwrap().expect("index present");
        assert_eq!(back, indexes);
    }

    #[test]
    fn missing_section_reads_as_none() {
        let mut r = Reader::new(&[]);
        assert!(read_index_section(&mut r).unwrap().is_none());
        // Unknown trailing section: ignored, not an error.
        let mut w = Writer::new();
        w.put_u32(0xDEAD_BEEF);
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(read_index_section(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_section_is_typed_error() {
        let indexes = sample();
        let mut w = Writer::new();
        write_index_section(&mut w, &indexes);
        let bytes = w.into_bytes();
        for cut in 5..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                read_index_section(&mut r).is_err(),
                "truncation to {cut}/{} must be rejected",
                bytes.len()
            );
        }
    }

    #[test]
    fn absurd_counts_rejected_before_allocation() {
        // Entry count far beyond what the bytes can hold.
        let mut w = Writer::new();
        w.put_u32(INDEX_MAGIC);
        w.put_u32(1);
        w.put_u16(1);
        w.put_raw(b"d");
        w.put_u32(u32::MAX); // entry count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(read_index_section(&mut r).is_err());
        // Dataset count beyond what the bytes can hold.
        let mut w = Writer::new();
        w.put_u32(INDEX_MAGIC);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(read_index_section(&mut r).is_err());
    }

    #[test]
    fn invalid_extent_rejected() {
        let mut w = Writer::new();
        w.put_u32(1); // one entry
        w.put_u32(3);
        w.put_u8(1);
        for v in [5i64, 0, 0, 2, 7, 7] {
            w.put_u64(v as u64); // lo.x 5 > hi.x 2
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(ChunkIndex::read_from(&mut r).is_err());
        // Bad extent tag.
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u32(3);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(ChunkIndex::read_from(&mut r).is_err());
    }

    #[test]
    fn intersection_queries() {
        let idx = ChunkIndex::new(vec![
            ChunkIndexEntry::new(3, Some(([0, 0, 0], [7, 7, 7]))),
            ChunkIndexEntry::new(3, Some(([8, 0, 0], [15, 7, 7]))),
            ChunkIndexEntry::new(3, None),
        ]);
        assert_eq!(idx.intersecting([0, 0, 0], [3, 3, 3]), vec![0]);
        assert_eq!(idx.intersecting([6, 0, 0], [9, 3, 3]), vec![0, 1]);
        assert!(idx.intersecting([20, 20, 20], [30, 30, 30]).is_empty());
    }

    #[test]
    fn reference_free_entries_keep_legacy_bytes() {
        // An index with no references must serialize byte-identically to
        // the pre-reference format (tag 0/1, nothing appended) so
        // existing files and the golden storage fixture stay valid.
        let idx = ChunkIndex::new(vec![
            ChunkIndexEntry::new(3, Some(([0, 0, 0], [7, 7, 7]))),
            ChunkIndexEntry::new(3, None),
        ]);
        let mut w = Writer::new();
        idx.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut legacy = Writer::new();
        legacy.put_u32(2);
        legacy.put_u32(3);
        legacy.put_u8(1);
        for v in [0u64, 0, 0, 7, 7, 7] {
            legacy.put_u64(v);
        }
        legacy.put_u32(3);
        legacy.put_u8(0);
        assert_eq!(bytes, legacy.into_bytes());
    }

    #[test]
    fn truncated_reference_is_typed_error() {
        let idx = ChunkIndex::new(vec![ChunkIndexEntry::new(7, None).with_reference(9)]);
        let mut w = Writer::new();
        idx.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(ChunkIndex::read_from(&mut r).unwrap(), idx);
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(ChunkIndex::read_from(&mut r).is_err());
        }
    }
}
