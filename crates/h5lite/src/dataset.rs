//! Dataset and chunk metadata plus directory (de)serialization.

use crate::error::{H5Error, H5Result};
use crate::filter::FilterMode;
use sz_codec::wire::{Reader, Writer};

/// One contiguous byte extent pre-reserved for a batch of frames whose
/// sizes were computed before the write (the paper's one-pass write:
/// compress first, then reserve the exact extent once and stream the
/// frames out while the next batch compresses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtentPlan {
    /// File offset where the extent starts.
    pub base: u64,
    /// Absolute file offset of each frame, in frame order.
    pub offsets: Vec<u64>,
    /// Total reserved bytes (`sum(sizes)`).
    pub total_bytes: u64,
}

/// Location and shape of one stored chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Byte offset of the encoded chunk in the file.
    pub offset: u64,
    /// Encoded (stored) size in bytes.
    pub stored_bytes: u64,
    /// Number of meaningful elements the chunk decodes to. Equal to the
    /// chunk size in standard-filter mode; the actual per-rank data size in
    /// AMRIC's size-aware mode.
    pub logical_elems: u64,
}

/// Directory entry for one dataset.
#[derive(Clone, Debug)]
pub struct DatasetMeta {
    /// Path-style dataset name ("level_0/density").
    pub name: String,
    /// Logical element count of the whole dataset.
    pub total_elems: u64,
    /// Uniform chunk size in elements (HDF5 requires one per dataset —
    /// the constraint at the heart of the paper's §3.3).
    pub chunk_elems: u64,
    /// Filter id ([`crate::filter::FILTER_NONE`] etc.).
    pub filter_id: u32,
    /// Standard vs size-aware filter semantics.
    pub filter_mode: FilterMode,
    /// Opaque filter parameters.
    pub client_data: Vec<u8>,
    /// Chunk records in dataset order.
    pub chunks: Vec<ChunkRecord>,
}

impl DatasetMeta {
    /// Total stored bytes across the dataset's chunks.
    pub fn stored_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.stored_bytes).sum()
    }

    /// Compression ratio versus raw f64 storage of the logical elements.
    pub fn compression_ratio(&self) -> f64 {
        self.total_elems as f64 * 8.0 / self.stored_bytes().max(1) as f64
    }

    pub(crate) fn write_to(&self, w: &mut Writer) {
        let name = self.name.as_bytes();
        w.put_u16(name.len() as u16);
        w.put_raw(name);
        w.put_u64(self.total_elems);
        w.put_u64(self.chunk_elems);
        w.put_u32(self.filter_id);
        w.put_u8(self.filter_mode.to_u8());
        w.put_block(&self.client_data);
        w.put_u32(self.chunks.len() as u32);
        for c in &self.chunks {
            w.put_u64(c.offset);
            w.put_u64(c.stored_bytes);
            w.put_u64(c.logical_elems);
        }
    }

    pub(crate) fn read_from(r: &mut Reader<'_>) -> H5Result<Self> {
        let name_len = r.get_u16()? as usize;
        let name = String::from_utf8(r.get_raw(name_len)?.to_vec())
            .map_err(|_| H5Error::Format("dataset name is not UTF-8".into()))?;
        let total_elems = r.get_u64()?;
        let chunk_elems = r.get_u64()?;
        let filter_id = r.get_u32()?;
        let filter_mode = FilterMode::from_u8(r.get_u8()?)?;
        let client_data = r.get_block()?.to_vec();
        let nchunks = r.get_u32()? as usize;
        let mut chunks = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            chunks.push(ChunkRecord {
                offset: r.get_u64()?,
                stored_bytes: r.get_u64()?,
                logical_elems: r.get_u64()?,
            });
        }
        Ok(DatasetMeta {
            name,
            total_elems,
            chunk_elems,
            filter_id,
            filter_mode,
            client_data,
            chunks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DatasetMeta {
        DatasetMeta {
            name: "level_0/density".into(),
            total_elems: 1000,
            chunk_elems: 256,
            filter_id: 1,
            filter_mode: FilterMode::SizeAware,
            client_data: vec![0, 1, 2],
            chunks: vec![
                ChunkRecord {
                    offset: 5,
                    stored_bytes: 100,
                    logical_elems: 256,
                },
                ChunkRecord {
                    offset: 105,
                    stored_bytes: 80,
                    logical_elems: 200,
                },
            ],
        }
    }

    #[test]
    fn directory_roundtrip() {
        let meta = sample();
        let mut w = Writer::new();
        meta.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = DatasetMeta::read_from(&mut r).unwrap();
        assert_eq!(back.name, meta.name);
        assert_eq!(back.total_elems, meta.total_elems);
        assert_eq!(back.chunk_elems, meta.chunk_elems);
        assert_eq!(back.filter_id, meta.filter_id);
        assert_eq!(back.filter_mode, meta.filter_mode);
        assert_eq!(back.client_data, meta.client_data);
        assert_eq!(back.chunks, meta.chunks);
    }

    #[test]
    fn stored_bytes_and_ratio() {
        let meta = sample();
        assert_eq!(meta.stored_bytes(), 180);
        let cr = meta.compression_ratio();
        assert!((cr - 8000.0 / 180.0).abs() < 1e-9);
    }

    #[test]
    fn truncated_directory_errors() {
        let meta = sample();
        let mut w = Writer::new();
        meta.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..10]);
        assert!(DatasetMeta::read_from(&mut r).is_err());
    }
}
