//! File-level API: [`H5Writer`] (shareable across rank threads) and
//! [`H5Reader`].
//!
//! Container layout (all little-endian):
//!
//! ```text
//! "H5LT" u8-version | chunk payloads ... | directory | dir_offset u64 "H5LE"
//! ```
//!
//! The byte space underneath is a pluggable [`Storage`]: chunk payloads
//! are written at reserved logical offsets (threads write concurrently
//! via positioned writes), the directory is written once by
//! [`H5Writer::finish`]. The single-file backend keeps the historical
//! on-disk layout byte for byte (pinned by the golden fixture suite);
//! the in-memory and sharded backends carry the same logical byte stream
//! over different physical layouts.

use crate::dataset::{ChunkRecord, DatasetMeta};
use crate::error::{H5Error, H5Result};
use crate::filter::{decoder_for, ChunkFilter, FilterMode};
use crate::index::{read_index_section, write_index_section, ChunkIndex, ChunkIndexEntry};
use crate::storage::{open_storage, open_storage_rw, FileStorage, MemStorage, Storage};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC_HEAD: &[u8; 4] = b"H5LT";
const MAGIC_TAIL: &[u8; 4] = b"H5LE";
const VERSION: u8 = 1;

/// Aggregate write-side counters (inputs to the PFS cost model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Filter invocations (= compressor launches).
    pub filter_calls: u64,
    /// Write calls issued.
    pub write_calls: u64,
    /// Payload bytes written (excludes directory).
    pub bytes_written: u64,
    /// Dataset creates.
    pub dataset_creates: u64,
}

/// One chunk of data heading to storage: the values plus how many of them
/// are real (the rest is padding the caller added to reach the uniform
/// chunk size).
#[derive(Clone, Debug)]
pub struct ChunkData {
    /// Values; `data.len() ≤ chunk_elems`.
    pub data: Vec<f64>,
    /// Number of meaningful leading elements.
    pub logical: usize,
}

impl ChunkData {
    /// A chunk that is entirely real data.
    pub fn full(data: Vec<f64>) -> Self {
        let logical = data.len();
        ChunkData { data, logical }
    }
}

/// Writer for a new h5lite container. All methods take `&self`; the
/// writer can be shared across rank threads (chunk space is reserved
/// atomically, payloads written with positioned writes).
pub struct H5Writer {
    storage: Box<dyn Storage>,
    directory: Mutex<Vec<DatasetMeta>>,
    indexes: Mutex<Vec<(String, ChunkIndex)>>,
    finished: AtomicU64,
    stats: Mutex<WriteStats>,
}

impl H5Writer {
    /// Create (truncate) a single-file container and write the
    /// superblock — the classic backend.
    pub fn create(path: impl AsRef<Path>) -> H5Result<Self> {
        Self::with_storage(Box::new(FileStorage::create(path)?))
    }

    /// Create a sharded container at `path` (a directory) spreading
    /// extents across `shards` shard files.
    pub fn create_sharded(path: impl AsRef<Path>, shards: usize) -> H5Result<Self> {
        Self::with_storage(Box::new(crate::sharded::ShardedStorage::create(
            path, shards,
        )?))
    }

    /// Create an in-memory container; the returned [`MemStorage`] handle
    /// shares the bytes, so after [`H5Writer::finish`] it opens directly
    /// with [`H5Reader::from_storage`] — no filesystem involved.
    pub fn in_memory() -> (Self, MemStorage) {
        let mem = MemStorage::new();
        let w = Self::with_storage(Box::new(mem.clone())).expect("mem storage cannot fail");
        (w, mem)
    }

    /// Create a writer over any empty [`Storage`] and write the
    /// superblock.
    pub fn with_storage(storage: Box<dyn Storage>) -> H5Result<Self> {
        let base = storage.reserve(5);
        if base != 0 {
            return Err(H5Error::Format(format!(
                "storage already holds {base} reserved bytes; a container must start at 0"
            )));
        }
        storage.write_at(0, MAGIC_HEAD)?;
        storage.write_at(4, &[VERSION])?;
        Ok(H5Writer {
            storage,
            directory: Mutex::new(Vec::new()),
            indexes: Mutex::new(Vec::new()),
            finished: AtomicU64::new(0),
            stats: Mutex::new(WriteStats::default()),
        })
    }

    /// The storage backend underneath ("file", "mem", "sharded").
    pub fn storage_kind(&self) -> &'static str {
        self.storage.kind()
    }

    /// Reserve `bytes` of payload space; returns the logical offset.
    pub fn reserve(&self, bytes: u64) -> u64 {
        self.storage.reserve(bytes)
    }

    /// Reserve one contiguous extent for a batch of frames with known
    /// sizes (the one-pass write of AMRIC §3.3: sizes are known before
    /// any byte lands, so the whole batch costs a single atomic
    /// reservation and lands contiguously). Returns the per-frame
    /// absolute offsets.
    pub fn reserve_extent(&self, sizes: impl IntoIterator<Item = u64>) -> crate::ExtentPlan {
        let mut offsets = Vec::new();
        let mut total = 0u64;
        for s in sizes {
            offsets.push(total);
            total += s;
        }
        let base = self.reserve(total);
        for o in &mut offsets {
            *o += base;
        }
        crate::ExtentPlan {
            base,
            offsets,
            total_bytes: total,
        }
    }

    /// Write raw bytes at a reserved offset.
    pub fn write_at(&self, offset: u64, bytes: &[u8]) -> H5Result<()> {
        self.storage.write_at(offset, bytes)?;
        let mut s = self.stats.lock();
        s.write_calls += 1;
        s.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Count a filter invocation (callers that encode chunks themselves,
    /// e.g. the collective path, report through this).
    pub fn count_filter_call(&self) {
        self.stats.lock().filter_calls += 1;
    }

    /// Register a fully-described dataset (collective path: rank 0 calls
    /// this after gathering chunk records).
    pub fn register_dataset(&self, meta: DatasetMeta) -> H5Result<()> {
        let mut dir = self.directory.lock();
        if dir.iter().any(|d| d.name == meta.name) {
            return Err(H5Error::Duplicate(meta.name));
        }
        dir.push(meta);
        self.stats.lock().dataset_creates += 1;
        Ok(())
    }

    /// Serial convenience: chunk `data` uniformly, run `filter` on every
    /// chunk (standard HDF5 semantics: the last chunk is zero-padded to the
    /// full chunk size before filtering) and write it out.
    pub fn write_dataset(
        &self,
        name: &str,
        data: &[f64],
        chunk_elems: usize,
        filter: &dyn ChunkFilter,
    ) -> H5Result<()> {
        assert!(chunk_elems > 0, "chunk size must be positive");
        let chunks: Vec<ChunkData> = if data.is_empty() {
            Vec::new()
        } else {
            data.chunks(chunk_elems)
                .map(|c| ChunkData::full(c.to_vec()))
                .collect()
        };
        self.write_dataset_chunks(
            name,
            &chunks,
            chunk_elems,
            filter,
            FilterMode::Standard,
            Some(data.len() as u64),
        )
    }

    /// Write a dataset from explicit chunks.
    ///
    /// * `FilterMode::Standard` — each chunk is zero-padded to
    ///   `chunk_elems` before the filter runs and decodes back to
    ///   `chunk_elems` values (padding survives the roundtrip).
    /// * `FilterMode::SizeAware` — only `chunk.logical` values reach the
    ///   filter; no padding is compressed (the AMRIC modification).
    ///
    /// `total_override` pins the dataset's logical length (used by the
    /// standard mode where trailing padding is not real data).
    pub fn write_dataset_chunks(
        &self,
        name: &str,
        chunks: &[ChunkData],
        chunk_elems: usize,
        filter: &dyn ChunkFilter,
        mode: FilterMode,
        total_override: Option<u64>,
    ) -> H5Result<()> {
        let mut records = Vec::with_capacity(chunks.len());
        // One scratch pair reused across every chunk of the dataset: the
        // padded-values staging and the encoded output buffer.
        let mut pad = Vec::new();
        let mut encoded = Vec::new();
        for chunk in chunks {
            let logical_elems =
                encode_chunk(chunk, chunk_elems, filter, mode, &mut pad, &mut encoded)?;
            self.count_filter_call();
            let offset = self.reserve(encoded.len() as u64);
            self.write_at(offset, &encoded)?;
            records.push(ChunkRecord {
                offset,
                stored_bytes: encoded.len() as u64,
                logical_elems,
            });
        }
        let total = total_override.unwrap_or_else(|| records.iter().map(|r| r.logical_elems).sum());
        self.register_dataset(DatasetMeta {
            name: name.to_string(),
            total_elems: total,
            chunk_elems: chunk_elems as u64,
            filter_id: filter.id(),
            filter_mode: mode,
            client_data: filter.client_data(),
            chunks: records,
        })
    }

    /// Attach a chunk index to an already-registered dataset, to be
    /// persisted by [`H5Writer::finish`]. The entry count must match the
    /// dataset's chunk count (one entry per stored chunk, in chunk
    /// order). Files where no dataset registers an index are
    /// byte-identical to pre-index files.
    pub fn set_chunk_index(&self, name: &str, index: ChunkIndex) -> H5Result<()> {
        if self.finished.load(Ordering::SeqCst) == 1 {
            return Err(H5Error::Format(
                "cannot register a chunk index after finish(): the directory is already on disk"
                    .into(),
            ));
        }
        let dir = self.directory.lock();
        let meta = dir
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| H5Error::NotFound(name.to_string()))?;
        if meta.chunks.len() != index.entries.len() {
            return Err(H5Error::Format(format!(
                "chunk index for {name} holds {} entries, dataset stores {} chunks",
                index.entries.len(),
                meta.chunks.len()
            )));
        }
        drop(dir);
        let mut indexes = self.indexes.lock();
        if indexes.iter().any(|(n, _)| n == name) {
            return Err(H5Error::Duplicate(format!("chunk index for {name}")));
        }
        indexes.push((name.to_string(), index));
        Ok(())
    }

    /// Snapshot of the write counters.
    pub fn stats(&self) -> WriteStats {
        *self.stats.lock()
    }

    /// Write the directory + footer and finalize the storage (data flush
    /// plus backend metadata such as the shard manifest). Idempotent;
    /// returns the final logical container size.
    pub fn finish(&self) -> H5Result<u64> {
        if self.finished.swap(1, Ordering::SeqCst) == 1 {
            return Err(H5Error::Format("finish() called twice".into()));
        }
        let dir_offset = self.storage.reserved_len();
        let mut w = sz_codec::wire::Writer::new();
        let dir = self.directory.lock();
        w.put_u32(dir.len() as u32);
        for d in dir.iter() {
            d.write_to(&mut w);
        }
        // Optional chunk-index section: old readers stop after the dataset
        // entries, so indexed files stay readable by pre-index tooling.
        let indexes = self.indexes.lock();
        if !indexes.is_empty() {
            write_index_section(&mut w, &indexes);
        }
        w.put_u64(dir_offset);
        w.put_raw(MAGIC_TAIL);
        let bytes = w.into_bytes();
        // finish() runs after every rank thread joined, so this extent
        // starts exactly at dir_offset.
        let at = self.storage.reserve(bytes.len() as u64);
        debug_assert_eq!(at, dir_offset);
        self.storage.write_at(at, &bytes)?;
        self.storage.finalize()?;
        Ok(dir_offset + bytes.len() as u64)
    }
}

/// Apply mode semantics and run the filter, writing the encoded bytes
/// into `out` (cleared first; `pad` is the reusable padding staging
/// buffer). Returns the logical element count to record.
pub(crate) fn encode_chunk(
    chunk: &ChunkData,
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
    pad: &mut Vec<f64>,
    out: &mut Vec<u8>,
) -> H5Result<u64> {
    out.clear();
    let (data, logical) = crate::filter::staged_chunk(chunk, chunk_elems, mode, pad)?;
    filter.encode_into(data, out)?;
    Ok(logical)
}

/// Parsed container tail: directory entries, aligned chunk indexes, and
/// the directory offset. Shared by [`H5Reader::from_storage`] and the
/// tail-rewriting tools.
fn parse_container(
    storage: &dyn Storage,
) -> H5Result<(Vec<DatasetMeta>, Vec<Option<ChunkIndex>>, u64)> {
    let len = storage.len()?;
    if len < 17 {
        return Err(H5Error::Format("file too short for footer".into()));
    }
    let mut head = [0u8; 5];
    storage.read_at(0, &mut head)?;
    if &head[..4] != MAGIC_HEAD {
        return Err(H5Error::Format("bad superblock magic".into()));
    }
    if head[4] != VERSION {
        return Err(H5Error::Format(format!("unsupported version {}", head[4])));
    }
    let mut tail = [0u8; 12];
    storage.read_at(len - 12, &mut tail)?;
    if &tail[8..] != MAGIC_TAIL {
        return Err(H5Error::Format("bad footer magic".into()));
    }
    let dir_offset = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
    // The directory must end before the 12-byte footer; an offset
    // inside the footer would underflow the length below into an
    // absurd allocation.
    if dir_offset > len - 12 {
        return Err(H5Error::Format("directory offset out of range".into()));
    }
    let mut dir_bytes = vec![0u8; (len - 12 - dir_offset) as usize];
    storage.read_at(dir_offset, &mut dir_bytes)?;
    let mut r = sz_codec::wire::Reader::new(&dir_bytes);
    let n = r.get_u32()? as usize;
    let mut datasets = Vec::with_capacity(n);
    for _ in 0..n {
        datasets.push(DatasetMeta::read_from(&mut r)?);
    }
    let mut indexes: Vec<Option<ChunkIndex>> = vec![None; datasets.len()];
    if let Some(named) = read_index_section(&mut r)? {
        for (name, idx) in named {
            let pos = datasets
                .iter()
                .position(|d| d.name == name)
                .ok_or_else(|| {
                    H5Error::Format(format!("chunk index for unknown dataset {name}"))
                })?;
            if datasets[pos].chunks.len() != idx.entries.len() {
                return Err(H5Error::Format(format!(
                    "chunk index for {name} holds {} entries, dataset stores {} chunks",
                    idx.entries.len(),
                    datasets[pos].chunks.len()
                )));
            }
            indexes[pos] = Some(idx);
        }
    }
    Ok((datasets, indexes, dir_offset))
}

/// Reader over a finished h5lite container on any storage backend.
pub struct H5Reader {
    storage: Box<dyn Storage>,
    datasets: Vec<DatasetMeta>,
    /// Parsed chunk indexes, aligned with `datasets` (`None` for datasets
    /// the writer did not index — all of them in legacy files).
    indexes: Vec<Option<ChunkIndex>>,
    /// Directory offset, kept for tooling that rewrites the tail.
    dir_offset: u64,
}

impl H5Reader {
    /// Open and parse the directory, auto-detecting the backend: a
    /// directory holding a shard manifest opens sharded, anything else as
    /// a single file.
    pub fn open(path: impl AsRef<Path>) -> H5Result<Self> {
        Self::from_storage(open_storage(path)?)
    }

    /// Open a container over an explicit storage (e.g. the
    /// [`MemStorage`] handle a writer just filled).
    pub fn from_storage(storage: Box<dyn Storage>) -> H5Result<Self> {
        let (datasets, indexes, dir_offset) = parse_container(&*storage)?;
        Ok(H5Reader {
            storage,
            datasets,
            indexes,
            dir_offset,
        })
    }

    /// The storage backend underneath ("file", "mem", "sharded").
    pub fn storage_kind(&self) -> &'static str {
        self.storage.kind()
    }

    /// Logical offset where the directory begins (payload bytes end).
    pub fn dir_offset(&self) -> u64 {
        self.dir_offset
    }

    /// Names of all datasets, in creation order.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.iter().map(|d| d.name.as_str()).collect()
    }

    /// Metadata for a dataset.
    pub fn meta(&self, name: &str) -> H5Result<&DatasetMeta> {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| H5Error::NotFound(name.to_string()))
    }

    /// The persistent chunk index of a dataset, when the writer stored
    /// one (`None` for unindexed datasets and all legacy files).
    pub fn chunk_index(&self, name: &str) -> H5Result<Option<&ChunkIndex>> {
        let pos = self
            .datasets
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| H5Error::NotFound(name.to_string()))?;
        Ok(self.indexes[pos].as_ref())
    }

    /// Chunk index of a dataset, falling back to a storage scan when the
    /// writer stored none: each chunk's leading bytes are read and its
    /// stream envelope sniffed for the codec id
    /// ([`crate::index::CODEC_RAW`] when the chunk carries no envelope).
    /// Extents cannot be reconstructed from the container alone and come
    /// back `None`; format-aware callers (the AMRIC query planner)
    /// re-derive geometry from their own metadata.
    pub fn chunk_index_or_scan(&self, name: &str) -> H5Result<ChunkIndex> {
        if let Some(idx) = self.chunk_index(name)? {
            return Ok(idx.clone());
        }
        self.scan_chunk_index(name)
    }

    /// The legacy fallback scan behind [`H5Reader::chunk_index_or_scan`],
    /// exposed for tooling that wants to compare stored and scanned
    /// views.
    pub fn scan_chunk_index(&self, name: &str) -> H5Result<ChunkIndex> {
        let meta = self.meta(name)?;
        let mut entries = Vec::with_capacity(meta.chunks.len());
        let mut head = [0u8; 8];
        for rec in &meta.chunks {
            let n = (rec.stored_bytes as usize).min(head.len());
            self.storage.read_at(rec.offset, &mut head[..n])?;
            let codec_id = match sz_codec::codec::read_envelope(&head[..n]) {
                Ok(env) => env.codec as u32,
                Err(_) => crate::index::CODEC_RAW,
            };
            entries.push(ChunkIndexEntry::new(codec_id, None));
        }
        Ok(ChunkIndex::new(entries))
    }

    /// The chunk record for `(name, index)` with a typed out-of-range
    /// error naming the dataset and the offending index.
    fn chunk_record(&self, name: &str, index: usize) -> H5Result<&ChunkRecord> {
        let meta = self.meta(name)?;
        meta.chunks
            .get(index)
            .ok_or_else(|| H5Error::ChunkOutOfRange {
                dataset: name.to_string(),
                index,
                count: meta.chunks.len(),
            })
    }

    /// Read and decode one chunk of a dataset using the registry decoder.
    pub fn read_chunk(&self, name: &str, index: usize) -> H5Result<Vec<f64>> {
        let meta = self.meta(name)?;
        let decoder = decoder_for(meta.filter_id, &meta.client_data)?;
        self.read_chunk_with(name, index, decoder.as_ref())
    }

    /// Read one chunk through an explicitly supplied decoder — used for
    /// application-defined filters (e.g. AMRIC's) that are not in the
    /// built-in registry.
    pub fn read_chunk_with(
        &self,
        name: &str,
        index: usize,
        decoder: &dyn crate::filter::ChunkFilter,
    ) -> H5Result<Vec<f64>> {
        let rec = *self.chunk_record(name, index)?;
        let bytes = self.read_chunk_raw(name, index)?;
        decoder.decode(&bytes, rec.logical_elems as usize)
    }

    /// Read the stored (encoded) bytes of one chunk without filtering.
    pub fn read_chunk_raw(&self, name: &str, index: usize) -> H5Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.read_chunk_raw_into(name, index, &mut buf)?;
        Ok(buf)
    }

    /// Read one chunk's stored bytes into a caller-provided buffer
    /// (cleared and resized) — the partial-read hot path, where prefetch
    /// workers reuse one byte buffer per worker across chunks.
    pub fn read_chunk_raw_into(&self, name: &str, index: usize, buf: &mut Vec<u8>) -> H5Result<()> {
        let rec = *self.chunk_record(name, index)?;
        buf.clear();
        buf.resize(rec.stored_bytes as usize, 0);
        self.storage.read_at(rec.offset, buf)?;
        Ok(())
    }

    /// Read the full logical dataset (chunk concatenation truncated to
    /// `total_elems`).
    pub fn read_dataset(&self, name: &str) -> H5Result<Vec<f64>> {
        let meta = self.meta(name)?;
        let mut out = Vec::with_capacity(meta.total_elems as usize);
        for i in 0..meta.chunks.len() {
            out.extend_from_slice(&self.read_chunk(name, i)?);
        }
        out.truncate(meta.total_elems as usize);
        Ok(out)
    }

    /// Read the full dataset through an explicitly supplied decoder.
    pub fn read_dataset_with(
        &self,
        name: &str,
        decoder: &dyn crate::filter::ChunkFilter,
    ) -> H5Result<Vec<f64>> {
        let meta = self.meta(name)?;
        let mut out = Vec::with_capacity(meta.total_elems as usize);
        for i in 0..meta.chunks.len() {
            out.extend_from_slice(&self.read_chunk_with(name, i, decoder)?);
        }
        out.truncate(meta.total_elems as usize);
        Ok(out)
    }
}

/// Rewrite a container's directory without its chunk-index section,
/// producing the byte layout pre-index writers emitted. A downgrade tool
/// for sharing files with old readers — and the honest way to manufacture
/// legacy files for fallback tests. Works on any backend (the sharded
/// manifest is rewritten alongside the clipped tail). No-op on containers
/// without an index. Returns the resulting logical container size.
pub fn strip_chunk_indexes(path: impl AsRef<Path>) -> H5Result<u64> {
    strip_chunk_indexes_in(&*open_storage_rw(path)?)
}

/// [`strip_chunk_indexes`] against an already-open storage.
pub fn strip_chunk_indexes_in(storage: &dyn Storage) -> H5Result<u64> {
    let (datasets, indexes, dir_offset) = parse_container(storage)?;
    if indexes.iter().all(|i| i.is_none()) {
        return storage.len();
    }
    let mut w = sz_codec::wire::Writer::new();
    w.put_u32(datasets.len() as u32);
    for d in &datasets {
        d.write_to(&mut w);
    }
    w.put_u64(dir_offset);
    w.put_raw(MAGIC_TAIL);
    let bytes = w.into_bytes();
    storage.truncate(dir_offset)?;
    let at = storage.reserve(bytes.len() as u64);
    debug_assert_eq!(at, dir_offset);
    storage.write_at(at, &bytes)?;
    storage.finalize()?;
    Ok(dir_offset + bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{NoFilter, SzFilter};
    use crate::testutil::TempDir;

    /// Write-then-read entirely in memory — the fast-test idiom.
    fn mem_roundtrip(build: impl FnOnce(&H5Writer)) -> H5Reader {
        let (w, mem) = H5Writer::in_memory();
        build(&w);
        w.finish().unwrap();
        H5Reader::from_storage(Box::new(mem)).unwrap()
    }

    #[test]
    fn write_read_raw_dataset() {
        let r = mem_roundtrip(|w| {
            let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
            w.write_dataset("a/b", &data, 256, &NoFilter).unwrap();
        });
        assert_eq!(r.dataset_names(), vec!["a/b"]);
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        assert_eq!(r.read_dataset("a/b").unwrap(), data);
        // 1000 elems at chunk 256 → 4 chunks, last padded to 256 in store.
        let meta = r.meta("a/b").unwrap();
        assert_eq!(meta.chunks.len(), 4);
        assert_eq!(meta.stored_bytes(), 4 * 256 * 8);
        assert_eq!(r.storage_kind(), "mem");
    }

    #[test]
    fn sz_filtered_dataset_roundtrip() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.002).sin()).collect();
        let r = {
            let data = data.clone();
            mem_roundtrip(move |w| {
                w.write_dataset("level_0/x", &data, 1024, &SzFilter::one_dimensional(1e-3))
                    .unwrap();
            })
        };
        let back = r.read_dataset("level_0/x").unwrap();
        assert_eq!(back.len(), data.len());
        // REL bound against per-chunk range ≤ global range of 2.
        for (o, v) in data.iter().zip(&back) {
            assert!((o - v).abs() <= 1e-3 * 2.0 + 1e-12);
        }
        assert!(r.meta("level_0/x").unwrap().stored_bytes() < (data.len() * 8) as u64);
    }

    #[test]
    fn size_aware_mode_skips_padding() {
        // One rank holds 4096 values, chunk size forced to 32768 (the
        // biggest-rank scenario of paper Fig. 12).
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).cos()).collect();
        let f = SzFilter::one_dimensional(1e-3);
        let chunk = ChunkData {
            data: data.clone(),
            logical: data.len(),
        };
        let r1 = {
            let chunk = chunk.clone();
            mem_roundtrip(move |w| {
                w.write_dataset_chunks(
                    "d",
                    std::slice::from_ref(&chunk),
                    32768,
                    &f,
                    FilterMode::Standard,
                    None,
                )
                .unwrap();
            })
        };
        let r2 = mem_roundtrip(move |w| {
            w.write_dataset_chunks("d", &[chunk], 32768, &f, FilterMode::SizeAware, None)
                .unwrap();
        });
        // Standard mode compressed 8× padding; stored data reflects that.
        assert_eq!(r1.meta("d").unwrap().total_elems, 32768);
        assert_eq!(r2.meta("d").unwrap().total_elems, 4096);
        let back = r2.read_dataset("d").unwrap();
        for (o, v) in data.iter().zip(&back) {
            assert!((o - v).abs() <= 1e-3 * 2.0 + 1e-12);
        }
        // Size-aware read returns exactly the logical data; standard mode
        // returns padding too (first 4096 must still match; the padded
        // chunk's range includes the 0.0 fill).
        let padded = r1.read_dataset("d").unwrap();
        for (o, v) in data.iter().zip(padded.iter().take(4096)) {
            assert!((o - v).abs() <= 1e-3 * 2.0 + 1e-12);
        }
    }

    #[test]
    fn multiple_datasets_and_stats() {
        let (w, mem) = H5Writer::in_memory();
        let data: Vec<f64> = (0..512).map(|i| i as f64).collect();
        w.write_dataset("one", &data, 128, &NoFilter).unwrap();
        w.write_dataset("two", &data, 512, &NoFilter).unwrap();
        let s = w.stats();
        assert_eq!(s.dataset_creates, 2);
        assert_eq!(s.filter_calls, 5); // 4 + 1 chunks
        assert_eq!(s.write_calls, 5);
        assert_eq!(s.bytes_written, (4 * 128 + 512) * 8);
        w.finish().unwrap();
        let r = H5Reader::from_storage(Box::new(mem)).unwrap();
        assert_eq!(r.dataset_names().len(), 2);
        assert_eq!(r.read_dataset("two").unwrap(), data);
    }

    #[test]
    fn duplicate_dataset_rejected() {
        let (w, _mem) = H5Writer::in_memory();
        w.write_dataset("d", &[1.0], 8, &NoFilter).unwrap();
        assert!(matches!(
            w.write_dataset("d", &[2.0], 8, &NoFilter),
            Err(H5Error::Duplicate(_))
        ));
    }

    #[test]
    fn unknown_dataset_errors() {
        let r = mem_roundtrip(|_| {});
        assert!(matches!(r.read_dataset("x"), Err(H5Error::NotFound(_))));
    }

    #[test]
    fn corrupt_footer_detected() {
        let (w, mem) = H5Writer::in_memory();
        w.write_dataset("d", &[1.0, 2.0], 8, &NoFilter).unwrap();
        w.finish().unwrap();
        let mut bytes = mem.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert!(H5Reader::from_storage(Box::new(MemStorage::from_bytes(bytes))).is_err());
    }

    #[test]
    fn chunk_out_of_range_is_typed() {
        // Regression: a bad chunk index must surface as the typed
        // `ChunkOutOfRange` carrying the dataset name and index — on the
        // registry path, the explicit-decoder path, and the raw path.
        let r = mem_roundtrip(|w| {
            let data: Vec<f64> = (0..512).map(|i| i as f64).collect();
            w.write_dataset("d", &data, 256, &NoFilter).unwrap();
        });
        for result in [
            r.read_chunk("d", 2).err(),
            r.read_chunk_with("d", 7, &NoFilter).err(),
            r.read_chunk_raw("d", 2).err(),
        ] {
            match result.expect("out-of-range must fail") {
                H5Error::ChunkOutOfRange {
                    dataset,
                    index,
                    count,
                } => {
                    assert_eq!(dataset, "d");
                    assert!(index >= 2);
                    assert_eq!(count, 2);
                }
                other => panic!("expected ChunkOutOfRange, got {other:?}"),
            }
        }
        // In-range chunks still read.
        assert_eq!(r.read_chunk("d", 1).unwrap().len(), 256);
    }

    #[test]
    fn chunk_index_roundtrip_and_pruning() {
        let idx = ChunkIndex::new(vec![
            ChunkIndexEntry::new(crate::index::CODEC_RAW, Some(([0, 0, 0], [7, 7, 3]))),
            ChunkIndexEntry::new(crate::index::CODEC_RAW, Some(([0, 0, 4], [7, 7, 7]))),
        ]);
        let r = {
            let idx = idx.clone();
            mem_roundtrip(move |w| {
                let data: Vec<f64> = (0..512).map(|i| i as f64).collect();
                w.write_dataset("d", &data, 256, &NoFilter).unwrap();
                w.set_chunk_index("d", idx).unwrap();
                // Wrong entry count and unknown dataset are rejected.
                assert!(w.set_chunk_index("d2", ChunkIndex::default()).is_err());
                assert!(matches!(
                    w.set_chunk_index("d", ChunkIndex::default()),
                    Err(H5Error::Format(_)) | Err(H5Error::Duplicate(_))
                ));
            })
        };
        let back = r.chunk_index("d").unwrap().expect("index persisted");
        assert_eq!(*back, idx);
        assert_eq!(back.intersecting([0, 0, 0], [7, 7, 2]), vec![0]);
        assert_eq!(back.intersecting([0, 0, 3], [7, 7, 5]), vec![0, 1]);
    }

    #[test]
    fn unindexed_files_scan_and_strip_is_noop() {
        // A file written with no index: chunk_index is None, the fallback
        // scan reconstructs codec ids from the stored envelopes, and
        // stripping changes nothing.
        let dir = TempDir::new("h5lite-index-scan");
        let path = dir.path().join("f.h5l");
        let w = H5Writer::create(&path).unwrap();
        let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.002).sin()).collect();
        w.write_dataset("raw", &data, 1024, &NoFilter).unwrap();
        w.write_dataset("sz", &data, 1024, &SzFilter::one_dimensional(1e-3))
            .unwrap();
        w.finish().unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let r = H5Reader::open(&path).unwrap();
        assert!(r.chunk_index("raw").unwrap().is_none());
        let scanned = r.chunk_index_or_scan("sz").unwrap();
        assert_eq!(scanned.entries.len(), 2);
        for e in &scanned.entries {
            assert_eq!(e.codec_id, sz_codec::codec::CodecId::LrSle as u32);
            assert!(e.extent.is_none());
        }
        let raw_scanned = r.scan_chunk_index("raw").unwrap();
        assert!(raw_scanned
            .entries
            .iter()
            .all(|e| e.codec_id == crate::index::CODEC_RAW));
        drop(r);
        assert_eq!(super::strip_chunk_indexes(&path).unwrap(), before);
    }

    #[test]
    fn strip_chunk_indexes_produces_legacy_layout() {
        let dir = TempDir::new("h5lite-strip");
        let indexed = dir.path().join("a.h5l");
        let legacy = dir.path().join("b.h5l");
        let build = |path: &std::path::Path, with_index: bool| {
            let w = H5Writer::create(path).unwrap();
            let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.01).cos()).collect();
            w.write_dataset("d", &data, 256, &NoFilter).unwrap();
            if with_index {
                w.set_chunk_index("d", ChunkIndex::new(vec![ChunkIndexEntry::new(1, None); 2]))
                    .unwrap();
            }
            w.finish().unwrap();
        };
        build(&indexed, true);
        build(&legacy, false);
        assert_ne!(
            std::fs::read(&indexed).unwrap(),
            std::fs::read(&legacy).unwrap()
        );
        super::strip_chunk_indexes(&indexed).unwrap();
        // Stripped bytes == the file a pre-index writer produces.
        assert_eq!(
            std::fs::read(&indexed).unwrap(),
            std::fs::read(&legacy).unwrap()
        );
        let r = H5Reader::open(&indexed).unwrap();
        assert!(r.chunk_index("d").unwrap().is_none());
        assert_eq!(r.read_dataset("d").unwrap().len(), 512);
    }

    #[test]
    fn read_chunk_raw_into_reuses_buffer() {
        let r = mem_roundtrip(|w| {
            let data: Vec<f64> = (0..300).map(|i| i as f64).collect();
            w.write_dataset("d", &data, 128, &NoFilter).unwrap();
        });
        let mut buf = vec![0xAA; 4];
        for i in 0..3 {
            r.read_chunk_raw_into("d", i, &mut buf).unwrap();
            assert_eq!(buf, r.read_chunk_raw("d", i).unwrap(), "chunk {i}");
        }
        assert!(matches!(
            r.read_chunk_raw_into("d", 3, &mut buf),
            Err(H5Error::ChunkOutOfRange { .. })
        ));
    }

    #[test]
    fn finish_twice_errors() {
        let (w, _mem) = H5Writer::in_memory();
        w.finish().unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn set_chunk_index_after_finish_errors() {
        // Regression: the directory is flushed by finish(); a later index
        // registration must fail loudly instead of silently vanishing.
        let (w, _mem) = H5Writer::in_memory();
        w.write_dataset("d", &[1.0, 2.0], 8, &NoFilter).unwrap();
        w.finish().unwrap();
        let idx = ChunkIndex::new(vec![ChunkIndexEntry::new(crate::index::CODEC_RAW, None)]);
        assert!(matches!(
            w.set_chunk_index("d", idx),
            Err(H5Error::Format(_))
        ));
    }

    #[test]
    fn footer_overlapping_dir_offset_is_typed_error() {
        // Regression: a dir_offset pointing inside the 12-byte footer
        // must not underflow into an absurd allocation.
        let (w, mem) = H5Writer::in_memory();
        w.write_dataset("d", &[1.0, 2.0], 8, &NoFilter).unwrap();
        w.finish().unwrap();
        let mut bytes = mem.to_bytes();
        let n = bytes.len();
        for bad_offset in [n as u64 - 11, n as u64 - 1] {
            bytes[n - 12..n - 4].copy_from_slice(&bad_offset.to_le_bytes());
            assert!(
                matches!(
                    H5Reader::from_storage(Box::new(MemStorage::from_bytes(bytes.clone()))),
                    Err(H5Error::Format(_))
                ),
                "offset {bad_offset} of {n} must be rejected"
            );
        }
    }

    #[test]
    fn non_empty_storage_rejected_by_writer() {
        let mem = MemStorage::from_bytes(vec![0u8; 8]);
        mem.reserve(8);
        assert!(matches!(
            H5Writer::with_storage(Box::new(mem)),
            Err(H5Error::Format(_))
        ));
    }

    #[test]
    fn sharded_container_roundtrip() {
        let dir = TempDir::new("h5lite-file-sharded");
        let path = dir.path().join("c.h5ls");
        let w = H5Writer::create_sharded(&path, 3).unwrap();
        assert_eq!(w.storage_kind(), "sharded");
        let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.002).sin()).collect();
        w.write_dataset("raw", &data, 512, &NoFilter).unwrap();
        w.write_dataset("sz", &data, 512, &SzFilter::one_dimensional(1e-3))
            .unwrap();
        w.finish().unwrap();
        // Auto-detected on open; logical content identical to any backend.
        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.storage_kind(), "sharded");
        assert_eq!(r.read_dataset("raw").unwrap(), data);
        let back = r.read_dataset("sz").unwrap();
        for (o, v) in data.iter().zip(&back) {
            assert!((o - v).abs() <= 1e-3 * 2.0 + 1e-12);
        }
        let manifest = crate::sharded::read_manifest(&path).unwrap();
        assert_eq!(manifest.shard_count, 3);
        assert!(manifest.shard_bytes().iter().all(|&b| b > 0));
    }
}
