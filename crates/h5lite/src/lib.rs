//! # h5lite — chunked scientific container with compression filters
//!
//! A from-scratch stand-in for the slice of HDF5 that the AMRIC paper
//! (SC '23) exercises:
//!
//! * single-file container with named datasets of `f64`;
//! * **uniform chunking** per dataset — the constraint that forces the
//!   paper's chunk-size gymnastics (§2.1, §3.3);
//! * a **filter pipeline** applied per chunk ([`filter::ChunkFilter`]),
//!   with both stock semantics (filters see padded chunks) and AMRIC's
//!   size-aware modification (filters see the actual data size);
//! * **collective writes** across thread-ranks ([`collective`]), with
//!   per-rank accounting for the PFS cost model.
//!
//! ```no_run
//! use h5lite::prelude::*;
//!
//! let w = H5Writer::create("/tmp/example.h5l").unwrap();
//! let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.01).sin()).collect();
//! w.write_dataset("level_0/density", &data, 1024,
//!                 &SzFilter::one_dimensional(1e-3)).unwrap();
//! w.finish().unwrap();
//!
//! let r = H5Reader::open("/tmp/example.h5l").unwrap();
//! let back = r.read_dataset("level_0/density").unwrap();
//! assert_eq!(back.len(), data.len());
//! ```

pub mod collective;
pub mod dataset;
pub mod error;
pub mod file;
pub mod filter;
pub mod index;
pub mod sharded;
pub mod storage;
pub mod testutil;

pub use dataset::{ChunkRecord, DatasetMeta, ExtentPlan};
pub use error::{H5Error, H5Result};
pub use file::{
    strip_chunk_indexes, strip_chunk_indexes_in, ChunkData, H5Reader, H5Writer, WriteStats,
};
pub use filter::{ChunkFilter, EncodedFrame, FilterMode, NoFilter, SzFilter};
pub use index::{ChunkIndex, ChunkIndexEntry, CODEC_RAW};
pub use sharded::{is_sharded, read_manifest, ShardExtent, ShardManifest, ShardedStorage};
pub use storage::{open_storage, open_storage_rw, FileStorage, MemStorage, Storage};

/// Commonly used items.
pub mod prelude {
    pub use crate::collective::{
        collective_finalize, collective_write, collective_write_frames, collective_write_pipelined,
        CollectiveReceipt,
    };
    pub use crate::dataset::{ChunkRecord, DatasetMeta, ExtentPlan};
    pub use crate::error::{H5Error, H5Result};
    pub use crate::file::{strip_chunk_indexes, ChunkData, H5Reader, H5Writer, WriteStats};
    pub use crate::filter::{
        encode_frame, staged_chunk, ChunkFilter, EncodedFrame, FilterMode, NoFilter, SzFilter,
    };
    pub use crate::index::{ChunkIndex, ChunkIndexEntry, CODEC_RAW};
    pub use crate::sharded::{is_sharded, read_manifest, ShardManifest, ShardedStorage};
    pub use crate::storage::{open_storage, FileStorage, MemStorage, Storage};
}
