//! Sharded-object backend: reserved extents spread across N shard files
//! under one directory, with a small versioned manifest mapping logical
//! offsets to `(shard, offset)`.
//!
//! The layout object stores want: a container is a directory
//!
//! ```text
//! plotfile.h5ls/
//!   manifest.h5sm      versioned extent map (written at finalize)
//!   shard-000.h5s      payload bytes
//!   shard-001.h5s
//!   ...
//! ```
//!
//! Every [`Storage::reserve`] claims one logical extent and assigns it to
//! the next shard round-robin, appending at that shard's tail. Because
//! the collective write path reserves one extent per frame *batch*,
//! consecutive batches land on different shards — concurrent rank writers
//! and the query engine's parallel prefetch hit independent file
//! descriptors instead of serializing on one.
//!
//! Logical space is dense: every logical byte below the reservation
//! high-water belongs to exactly one extent, so reads that straddle an
//! extent boundary (the directory parse) split transparently across
//! shards.
//!
//! ## Manifest format (version 1, little-endian)
//!
//! ```text
//! "H5SM" | version u8 | shard_count u32 | logical_len u64
//! | extent_count u64 | { logical u64, len u64, shard u32, offset u64 }*
//! | "H5SE"
//! ```
//!
//! Parsing is hardened the same way the container directory is: bounded
//! reads, checked arithmetic, dense-coverage validation, shard ids
//! checked against `shard_count`, shard files checked against the byte
//! ranges the manifest maps into them. Every violation is a typed
//! [`H5Error`], never a panic or an absurd allocation.

use crate::error::{H5Error, H5Result};
use crate::storage::Storage;
use parking_lot::Mutex;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Manifest file name inside a sharded container directory.
pub const MANIFEST_NAME: &str = "manifest.h5sm";
/// Manifest head/tail magics.
const MANIFEST_MAGIC: &[u8; 4] = b"H5SM";
const MANIFEST_TAIL: &[u8; 4] = b"H5SE";
/// Current manifest format version.
const MANIFEST_VERSION: u8 = 1;
/// Upper bound on shard files per container — a format sanity limit, far
/// above any sensible fan-out.
pub const MAX_SHARDS: u32 = 1024;

/// One mapped extent: `len` logical bytes at logical offset `logical`,
/// stored in `shard` starting at byte `offset` of that shard file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardExtent {
    /// Logical (container-space) start offset.
    pub logical: u64,
    /// Extent length in bytes.
    pub len: u64,
    /// Shard file index.
    pub shard: u32,
    /// Byte offset inside the shard file.
    pub offset: u64,
}

/// Parsed manifest: the full logical→physical map of a sharded container.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of shard files.
    pub shard_count: u32,
    /// Logical container length (reservation high-water mark).
    pub logical_len: u64,
    /// Extents in logical order, densely covering `0..logical_len`.
    pub extents: Vec<ShardExtent>,
}

impl ShardManifest {
    /// Bytes each shard holds according to the extent map (index = shard).
    pub fn shard_bytes(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.shard_count as usize];
        for e in &self.extents {
            bytes[e.shard as usize] += e.len;
        }
        bytes
    }

    /// Serialize to the on-disk manifest encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = sz_codec::wire::Writer::new();
        w.put_raw(MANIFEST_MAGIC);
        w.put_u8(MANIFEST_VERSION);
        w.put_u32(self.shard_count);
        w.put_u64(self.logical_len);
        w.put_u64(self.extents.len() as u64);
        for e in &self.extents {
            w.put_u64(e.logical);
            w.put_u64(e.len);
            w.put_u32(e.shard);
            w.put_u64(e.offset);
        }
        w.put_raw(MANIFEST_TAIL);
        w.into_bytes()
    }

    /// Parse and validate a manifest image. Enforces the full contract:
    /// magic, version, shard count in `1..=MAX_SHARDS`, extents dense in
    /// logical order summing to `logical_len`, shard ids in range, no
    /// arithmetic overflow anywhere.
    pub fn from_bytes(bytes: &[u8]) -> H5Result<Self> {
        let mut r = sz_codec::wire::Reader::new(bytes);
        if r.get_raw(4)? != MANIFEST_MAGIC {
            return Err(H5Error::Format("bad shard manifest magic".into()));
        }
        let version = r.get_u8()?;
        if version != MANIFEST_VERSION {
            return Err(H5Error::Format(format!(
                "unsupported shard manifest version {version}"
            )));
        }
        let shard_count = r.get_u32()?;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(H5Error::Format(format!(
                "shard count {shard_count} outside 1..={MAX_SHARDS}"
            )));
        }
        let logical_len = r.get_u64()?;
        let count = r.get_u64()?;
        // Capacity clamped: a forged count must not drive an absurd
        // allocation — the loop below fails on truncation long before.
        let mut extents = Vec::with_capacity(count.min(4096) as usize);
        let mut expected_logical = 0u64;
        for _ in 0..count {
            let e = ShardExtent {
                logical: r.get_u64()?,
                len: r.get_u64()?,
                shard: r.get_u32()?,
                offset: r.get_u64()?,
            };
            if e.len == 0 {
                return Err(H5Error::Format(format!(
                    "zero-length extent at logical {}",
                    e.logical
                )));
            }
            if e.logical != expected_logical {
                return Err(H5Error::Format(format!(
                    "extent at logical {} breaks dense coverage (expected {})",
                    e.logical, expected_logical
                )));
            }
            if e.shard >= shard_count {
                return Err(H5Error::Format(format!(
                    "extent maps to shard {} of {shard_count}",
                    e.shard
                )));
            }
            e.offset
                .checked_add(e.len)
                .ok_or_else(|| H5Error::Format("extent shard offset + length overflows".into()))?;
            expected_logical = e.logical.checked_add(e.len).ok_or_else(|| {
                H5Error::Format("extent logical offset + length overflows".into())
            })?;
            extents.push(e);
        }
        if expected_logical != logical_len {
            return Err(H5Error::Format(format!(
                "extents cover {expected_logical} bytes, manifest claims {logical_len}"
            )));
        }
        if r.get_raw(4)? != MANIFEST_TAIL {
            return Err(H5Error::Format("bad shard manifest tail magic".into()));
        }
        Ok(ShardManifest {
            shard_count,
            logical_len,
            extents,
        })
    }
}

/// Read and validate the manifest of the sharded container at `dir`
/// without opening any shard file — the inspection entry point.
pub fn read_manifest(dir: impl AsRef<Path>) -> H5Result<ShardManifest> {
    let bytes = std::fs::read(dir.as_ref().join(MANIFEST_NAME))?;
    ShardManifest::from_bytes(&bytes)
}

/// Whether `path` looks like a sharded container (a directory holding a
/// manifest). The backend auto-detection used by
/// [`crate::storage::open_storage`].
pub fn is_sharded(path: impl AsRef<Path>) -> bool {
    let path = path.as_ref();
    path.is_dir() && path.join(MANIFEST_NAME).is_file()
}

/// File name of shard `i` inside a sharded container directory.
pub fn shard_name(i: usize) -> String {
    format!("shard-{i:03}.h5s")
}

/// Mutable allocation state behind the shared lock. Shard files live
/// outside it so positioned reads and writes never serialize on the map.
struct ShardState {
    extents: Vec<ShardExtent>,
    /// Append cursor (current length) per shard.
    shard_len: Vec<u64>,
    /// Logical reservation high-water mark.
    logical_len: u64,
    /// Round-robin pointer for the next reservation.
    next_shard: usize,
}

/// Sharded storage over N shard files plus a manifest; see the module
/// docs for the layout and manifest format.
pub struct ShardedStorage {
    dir: PathBuf,
    shards: Vec<File>,
    state: Mutex<ShardState>,
    writable: bool,
}

impl ShardedStorage {
    /// Create a fresh sharded container at `dir` with `shards` shard
    /// files (clamped to `1..=MAX_SHARDS` with a typed error). Stale
    /// shard/manifest files from a previous container at the same path
    /// are removed.
    pub fn create(dir: impl AsRef<Path>, shards: usize) -> H5Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        if shards == 0 || shards > MAX_SHARDS as usize {
            return Err(H5Error::Format(format!(
                "shard count {shards} outside 1..={MAX_SHARDS}"
            )));
        }
        std::fs::create_dir_all(&dir)?;
        // Drop leftovers of any previous container in this directory so
        // the manifest never points at bytes from two generations.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == MANIFEST_NAME || (name.starts_with("shard-") && name.ends_with(".h5s")) {
                std::fs::remove_file(entry.path())?;
            }
        }
        let mut files = Vec::with_capacity(shards);
        for i in 0..shards {
            // read+write: writers read back through the same handles
            // (e.g. the golden/equivalence suites verify as they go).
            files.push(
                std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(dir.join(shard_name(i)))?,
            );
        }
        Ok(ShardedStorage {
            dir,
            shards: files,
            state: Mutex::new(ShardState {
                extents: Vec::new(),
                shard_len: vec![0; shards],
                logical_len: 0,
                next_shard: 0,
            }),
            writable: true,
        })
    }

    /// Open an existing sharded container read-only, validating the
    /// manifest and every shard file against the byte ranges mapped into
    /// it.
    pub fn open(dir: impl AsRef<Path>) -> H5Result<Self> {
        Self::open_with(dir, false)
    }

    /// Open an existing sharded container for in-place tail rewrites.
    pub fn open_rw(dir: impl AsRef<Path>) -> H5Result<Self> {
        Self::open_with(dir, true)
    }

    fn open_with(dir: impl AsRef<Path>, writable: bool) -> H5Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = read_manifest(&dir)?;
        let nshards = manifest.shard_count as usize;
        // Per-shard high-water marks implied by the extent map.
        let mut shard_len = vec![0u64; nshards];
        for e in &manifest.extents {
            let end = e.offset + e.len; // overflow checked at parse
            let len = &mut shard_len[e.shard as usize];
            *len = (*len).max(end);
        }
        let mut files = Vec::with_capacity(nshards);
        for (i, &need) in shard_len.iter().enumerate() {
            let path = dir.join(shard_name(i));
            let file = if writable {
                std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)?
            } else {
                File::open(&path)?
            };
            let have = file.metadata()?.len();
            if have < need {
                return Err(H5Error::Format(format!(
                    "shard {i} holds {have} bytes, manifest maps up to {need}"
                )));
            }
            files.push(file);
        }
        let next_shard = manifest
            .extents
            .last()
            .map(|e| (e.shard as usize + 1) % nshards)
            .unwrap_or(0);
        Ok(ShardedStorage {
            dir,
            shards: files,
            state: Mutex::new(ShardState {
                extents: manifest.extents,
                shard_len,
                logical_len: manifest.logical_len,
                next_shard,
            }),
            writable,
        })
    }

    /// Number of shard files.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot of the current extent map as a manifest value.
    pub fn manifest(&self) -> ShardManifest {
        let state = self.state.lock();
        ShardManifest {
            shard_count: self.shards.len() as u32,
            logical_len: state.logical_len,
            extents: state.extents.clone(),
        }
    }

    /// Resolve the longest physical run starting at logical `offset`:
    /// `(shard, shard_offset, run_len)`.
    fn resolve(&self, offset: u64, want: u64) -> H5Result<(usize, u64, u64)> {
        let state = self.state.lock();
        if offset >= state.logical_len {
            return Err(H5Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "access at logical {offset} past {}-byte sharded container",
                    state.logical_len
                ),
            )));
        }
        // Extents are dense and sorted by logical offset.
        let idx = state.extents.partition_point(|e| e.logical <= offset) - 1;
        let e = state.extents[idx];
        let within = offset - e.logical;
        let run = (e.len - within).min(want);
        Ok((e.shard as usize, e.offset + within, run))
    }

    /// Write the manifest via a temp file + rename so a crash mid-write
    /// leaves either the old manifest or the new one, never a torn one.
    fn write_manifest(&self) -> H5Result<()> {
        let bytes = self.manifest().to_bytes();
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, self.dir.join(MANIFEST_NAME))?;
        Ok(())
    }
}

impl Storage for ShardedStorage {
    fn kind(&self) -> &'static str {
        "sharded"
    }

    fn reserve(&self, bytes: u64) -> u64 {
        let mut state = self.state.lock();
        let logical = state.logical_len;
        if bytes > 0 {
            let shard = state.next_shard;
            state.next_shard = (shard + 1) % self.shards.len();
            let offset = state.shard_len[shard];
            state.shard_len[shard] += bytes;
            state.extents.push(ShardExtent {
                logical,
                len: bytes,
                shard: shard as u32,
                offset,
            });
            state.logical_len += bytes;
        }
        logical
    }

    fn reserved_len(&self) -> u64 {
        self.state.lock().logical_len
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> H5Result<()> {
        let mut pos = offset;
        let mut rest = bytes;
        while !rest.is_empty() {
            let (shard, phys, run) = self.resolve(pos, rest.len() as u64)?;
            let (head, tail) = rest.split_at(run as usize);
            self.shards[shard].write_all_at(head, phys)?;
            pos += run;
            rest = tail;
        }
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> H5Result<()> {
        let mut pos = offset;
        let mut rest = &mut buf[..];
        while !rest.is_empty() {
            let (shard, phys, run) = self.resolve(pos, rest.len() as u64)?;
            let (head, tail) = rest.split_at_mut(run as usize);
            self.shards[shard].read_exact_at(head, phys)?;
            pos += run;
            rest = tail;
        }
        Ok(())
    }

    fn len(&self) -> H5Result<u64> {
        Ok(self.state.lock().logical_len)
    }

    fn flush(&self) -> H5Result<()> {
        if !self.writable {
            return Ok(());
        }
        for f in &self.shards {
            f.sync_data()?;
        }
        self.write_manifest()
    }

    fn truncate(&self, len: u64) -> H5Result<()> {
        let mut state = self.state.lock();
        // Drop extents beyond the cut, clip the straddler.
        state.extents.retain(|e| e.logical < len);
        if let Some(last) = state.extents.last_mut() {
            if last.logical + last.len > len {
                last.len = len - last.logical;
            }
        }
        // Recompute shard tails and physically truncate so no stale bytes
        // survive past the mapped ranges.
        let mut shard_len = vec![0u64; self.shards.len()];
        for e in &state.extents {
            let end = e.offset + e.len;
            let l = &mut shard_len[e.shard as usize];
            *l = (*l).max(end);
        }
        for (f, &l) in self.shards.iter().zip(&shard_len) {
            f.set_len(l)?;
        }
        state.shard_len = shard_len;
        state.logical_len = len;
        state.next_shard = state
            .extents
            .last()
            .map(|e| (e.shard as usize + 1) % self.shards.len())
            .unwrap_or(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("h5lite-sharded-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn reserve_round_robins_across_shards() {
        let dir = tmpdir("rr");
        let s = ShardedStorage::create(&dir, 3).unwrap();
        for i in 0..6 {
            let off = s.reserve(10);
            assert_eq!(off, i * 10);
        }
        let m = s.manifest();
        assert_eq!(m.logical_len, 60);
        let shards: Vec<u32> = m.extents.iter().map(|e| e.shard).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(m.shard_bytes(), vec![20, 20, 20]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_roundtrip_across_extent_boundaries() {
        let dir = tmpdir("xread");
        let s = ShardedStorage::create(&dir, 2).unwrap();
        let a = s.reserve(4);
        let b = s.reserve(5);
        s.write_at(a, b"abcd").unwrap();
        s.write_at(b, b"efghi").unwrap();
        // One read spanning both extents (and both shards).
        let mut buf = [0u8; 9];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdefghi");
        // Offset read inside the second extent.
        let mut two = [0u8; 2];
        s.read_at(6, &mut two).unwrap();
        assert_eq!(&two, b"gh");
        // Past-the-end access is a typed error.
        assert!(matches!(s.read_at(8, &mut [0u8; 2]), Err(H5Error::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_persists_across_reopen() {
        let dir = tmpdir("reopen");
        let s = ShardedStorage::create(&dir, 2).unwrap();
        let a = s.reserve(6);
        s.write_at(a, b"stored").unwrap();
        s.flush().unwrap();
        drop(s);
        assert!(is_sharded(&dir));
        let r = ShardedStorage::open(&dir).unwrap();
        assert_eq!(r.len().unwrap(), 6);
        let mut buf = [0u8; 6];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"stored");
        // Reservations continue round-robin after the last mapped extent.
        drop(r);
        let rw = ShardedStorage::open_rw(&dir).unwrap();
        assert_eq!(rw.reserve(2), 6);
        assert_eq!(rw.manifest().extents.last().unwrap().shard, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_clips_extents_and_shard_files() {
        let dir = tmpdir("trunc");
        let s = ShardedStorage::create(&dir, 2).unwrap();
        let a = s.reserve(4);
        let b = s.reserve(4);
        let c = s.reserve(4);
        s.write_at(a, b"aaaa").unwrap();
        s.write_at(b, b"bbbb").unwrap();
        s.write_at(c, b"cccc").unwrap();
        // Cut mid-second-extent: extent c dropped, b clipped to 2 bytes.
        s.truncate(6).unwrap();
        assert_eq!(s.len().unwrap(), 6);
        let m = s.manifest();
        assert_eq!(m.extents.len(), 2);
        assert_eq!(m.extents[1].len, 2);
        let mut buf = [0u8; 6];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"aaaabb");
        // New reservations append after the cut.
        let d = s.reserve(3);
        assert_eq!(d, 6);
        s.write_at(d, b"ddd").unwrap();
        s.flush().unwrap();
        let r = ShardedStorage::open(&dir).unwrap();
        let mut all = [0u8; 9];
        r.read_at(0, &mut all).unwrap();
        assert_eq!(&all, b"aaaabbddd");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let m = ShardManifest {
            shard_count: 3,
            logical_len: 15,
            extents: vec![
                ShardExtent {
                    logical: 0,
                    len: 10,
                    shard: 0,
                    offset: 0,
                },
                ShardExtent {
                    logical: 10,
                    len: 5,
                    shard: 2,
                    offset: 0,
                },
            ],
        };
        let back = ShardManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn create_clears_stale_previous_container() {
        let dir = tmpdir("stale");
        let s = ShardedStorage::create(&dir, 4).unwrap();
        let off = s.reserve(8);
        s.write_at(off, &[1u8; 8]).unwrap();
        s.flush().unwrap();
        drop(s);
        // Re-create with fewer shards: old shard-003 and the manifest of
        // the previous generation must be gone.
        let s = ShardedStorage::create(&dir, 2).unwrap();
        assert!(!dir.join(shard_name(3)).exists());
        assert_eq!(s.len().unwrap(), 0);
        assert!(ShardedStorage::create(&dir, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
