//! Chunk filter pipeline (HDF5 `H5Z` equivalent).
//!
//! A filter transforms one chunk of `f64` data into bytes on the way to
//! storage and back. The crucial AMRIC-relevant semantics are reproduced:
//!
//! * **Standard mode** (stock HDF5): the filter always receives the full,
//!   padded chunk buffer — it cannot know how much of it is real data, so
//!   padding gets compressed too.
//! * **Size-aware mode** (AMRIC's modified filter, paper §3.3 Solution 2):
//!   the writer passes the *actual* per-rank data size and only the logical
//!   prefix of the chunk reaches the filter; the chunk record keeps the
//!   logical element count as metadata for decompression.

use crate::error::{H5Error, H5Result};
use crate::file::ChunkData;
use sz_codec::prelude::*;
use sz_codec::ErrorBound;

/// Filter id for "no filter" (raw little-endian f64 bytes).
pub const FILTER_NONE: u32 = 0;
/// Filter id for the SZ error-bounded filter.
pub const FILTER_SZ: u32 = 1;

/// Whether the writer hands filters the padded chunk or the logical prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterMode {
    /// Stock HDF5: filters see full chunks including padding.
    Standard,
    /// AMRIC's modification: filters see only the actual data.
    SizeAware,
}

impl FilterMode {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            FilterMode::Standard => 0,
            FilterMode::SizeAware => 1,
        }
    }

    pub(crate) fn from_u8(v: u8) -> H5Result<Self> {
        match v {
            0 => Ok(FilterMode::Standard),
            1 => Ok(FilterMode::SizeAware),
            _ => Err(H5Error::Format(format!("bad filter mode {v}"))),
        }
    }
}

/// A bidirectional chunk transform.
///
/// `encode_into` is the primary entry point: it **appends** to a
/// caller-provided buffer (the writer reuses one buffer across chunks, so
/// the per-chunk hot path allocates no fresh output `Vec`) and it is
/// fallible — a filter handed a chunk it cannot represent returns `Err`
/// instead of panicking.
pub trait ChunkFilter: Send + Sync {
    /// Stable id stored in the file.
    fn id(&self) -> u32;
    /// Opaque parameter bytes stored next to the id (HDF5 "client data").
    fn client_data(&self) -> Vec<u8> {
        Vec::new()
    }
    /// Encode one chunk (already cut to the data the filter may see),
    /// appending the bytes to `out`.
    fn encode_into(&self, chunk: &[f64], out: &mut Vec<u8>) -> H5Result<()>;
    /// Convenience: encode into a fresh buffer.
    fn encode(&self, chunk: &[f64]) -> H5Result<Vec<u8>> {
        let mut out = Vec::new();
        self.encode_into(chunk, &mut out)?;
        Ok(out)
    }
    /// Decode to exactly `n_elems` values.
    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>>;
}

/// One chunk's encoded bytes plus the metadata the collective write path
/// records for it — the unit of work the parallel compression engine
/// hands from workers to the ordered reassembly stage.
#[derive(Clone, Debug)]
pub struct EncodedFrame {
    /// Filter output for this chunk.
    pub bytes: Vec<u8>,
    /// Meaningful element count the frame decodes to (chunk size in
    /// standard mode, the actual data size in size-aware mode).
    pub logical_elems: u64,
    /// Seconds spent inside the filter encode for this frame.
    pub encode_seconds: f64,
}

/// Resolve which values of `chunk` the filter may see under `mode`, and
/// the logical element count to record. Standard mode zero-pads short
/// chunks to `chunk_elems` (into the reusable `pad` buffer); size-aware
/// mode exposes only the logical prefix. Shared by the serial encode path
/// and the parallel frame encoders so mode semantics cannot drift.
pub fn staged_chunk<'a>(
    chunk: &'a ChunkData,
    chunk_elems: usize,
    mode: FilterMode,
    pad: &'a mut Vec<f64>,
) -> H5Result<(&'a [f64], u64)> {
    if chunk.data.len() > chunk_elems {
        return Err(H5Error::Format(format!(
            "chunk holds {} elems, exceeds chunk size {chunk_elems}",
            chunk.data.len()
        )));
    }
    if chunk.logical > chunk.data.len() {
        return Err(H5Error::Format(format!(
            "chunk logical length {} exceeds its {} elems",
            chunk.logical,
            chunk.data.len()
        )));
    }
    match mode {
        FilterMode::Standard => {
            if chunk.data.len() == chunk_elems {
                Ok((&chunk.data, chunk_elems as u64))
            } else {
                pad.clear();
                pad.extend_from_slice(&chunk.data);
                pad.resize(chunk_elems, 0.0);
                Ok((pad, chunk_elems as u64))
            }
        }
        FilterMode::SizeAware => Ok((&chunk.data[..chunk.logical], chunk.logical as u64)),
    }
}

/// Encode one chunk into an owned [`EncodedFrame`] — the job body of the
/// chunk-level parallel write pipeline. `pad` is the worker's reusable
/// padding buffer.
pub fn encode_frame(
    chunk: &ChunkData,
    chunk_elems: usize,
    filter: &dyn ChunkFilter,
    mode: FilterMode,
    pad: &mut Vec<f64>,
) -> H5Result<EncodedFrame> {
    let t0 = std::time::Instant::now();
    let (data, logical_elems) = staged_chunk(chunk, chunk_elems, mode, pad)?;
    let mut bytes = Vec::new();
    filter.encode_into(data, &mut bytes)?;
    Ok(EncodedFrame {
        bytes,
        logical_elems,
        encode_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Identity filter: raw little-endian f64 bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFilter;

impl ChunkFilter for NoFilter {
    fn id(&self) -> u32 {
        FILTER_NONE
    }

    fn encode_into(&self, chunk: &[f64], out: &mut Vec<u8>) -> H5Result<()> {
        out.reserve(chunk.len() * 8);
        for v in chunk {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        if bytes.len() != n_elems * 8 {
            return Err(H5Error::Format(format!(
                "raw chunk is {} bytes, expected {}",
                bytes.len(),
                n_elems * 8
            )));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect())
    }
}

/// SZ error-bounded lossy filter (H5Z-SZ equivalent). The chunk is treated
/// as a 1-D stream unless `dims_hint` reshapes it — AMRIC's pre-processing
/// hands 3-D-arranged buffers through this hint, the AMReX baseline leaves
/// it unset and gets 1-D compression.
///
/// With a relative bound, the bound resolves against **each chunk's own
/// value range** — exactly H5Z-SZ's `REL` mode, where the range is taken
/// per compression call.
#[derive(Clone, Copy, Debug)]
pub struct SzFilter {
    /// Which SZ algorithm to run.
    pub algorithm: SzAlgorithm,
    /// Error bound applied inside the filter.
    pub eb: ErrorBound,
    /// Optional 3-D shape of the incoming chunk. Element count must match
    /// the chunk exactly when set.
    pub dims_hint: Option<Dims3>,
    /// SZ_L/R block size override (None = stock 6).
    pub block_size: Option<usize>,
}

impl SzFilter {
    /// 1-D range-relative SZ_L/R filter — what AMReX's stock integration
    /// uses.
    pub fn one_dimensional(rel_eb: f64) -> Self {
        SzFilter {
            algorithm: SzAlgorithm::LorenzoRegression,
            eb: ErrorBound::Rel(rel_eb),
            dims_hint: None,
            block_size: None,
        }
    }

    /// 3-D filter with a shape hint and absolute bound (AMRIC path).
    pub fn three_dimensional(algorithm: SzAlgorithm, abs_eb: f64, dims: Dims3) -> Self {
        SzFilter {
            algorithm,
            eb: ErrorBound::Abs(abs_eb),
            dims_hint: Some(dims),
            block_size: None,
        }
    }
}

impl ChunkFilter for SzFilter {
    fn id(&self) -> u32 {
        FILTER_SZ
    }

    fn client_data(&self) -> Vec<u8> {
        // algorithm tag + bound mode + value, informational (streams are
        // self-describing).
        let (mode, value) = match self.eb {
            ErrorBound::Abs(v) => (0u8, v),
            ErrorBound::Rel(v) => (1u8, v),
        };
        let mut cd = vec![
            match self.algorithm {
                SzAlgorithm::LorenzoRegression => 0u8,
                SzAlgorithm::Interpolation => 1u8,
            },
            mode,
        ];
        cd.extend_from_slice(&value.to_le_bytes());
        cd
    }

    fn encode_into(&self, chunk: &[f64], out: &mut Vec<u8>) -> H5Result<()> {
        if chunk.is_empty() {
            // Zero-length chunks carry no bytes; decode restores them
            // symmetrically without touching the SZ layer.
            return Ok(());
        }
        let dims = match self.dims_hint {
            Some(d) if d.len() == chunk.len() => d,
            _ => Dims3::new(chunk.len().max(1), 1, 1),
        };
        let buf = Buffer3::from_vec(dims, chunk.to_vec());
        let abs_eb = self.eb.to_absolute(buf.value_range());
        match self.algorithm {
            SzAlgorithm::LorenzoRegression => {
                let mut cfg = LrConfig::new(abs_eb);
                if let Some(bs) = self.block_size {
                    cfg = cfg.with_block_size(bs);
                }
                lr::compress_domains_pooled(&[&buf], &cfg, out);
            }
            SzAlgorithm::Interpolation => {
                interp::compress_into(&buf, &InterpConfig::new(abs_eb), out)
            }
        }
        Ok(())
    }

    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        if n_elems == 0 {
            return Ok(Vec::new());
        }
        let buf = match self.algorithm {
            SzAlgorithm::LorenzoRegression => lr::decompress(bytes)?,
            SzAlgorithm::Interpolation => interp::decompress(bytes)?,
        };
        let mut data = buf.into_vec();
        if data.len() < n_elems {
            return Err(H5Error::Format(format!(
                "decoded {} elems, need {}",
                data.len(),
                n_elems
            )));
        }
        data.truncate(n_elems);
        Ok(data)
    }
}

/// Decoder lookup for reading: maps a stored `(filter_id, client_data)`
/// pair back to a filter instance.
pub fn decoder_for(filter_id: u32, client_data: &[u8]) -> H5Result<Box<dyn ChunkFilter>> {
    match filter_id {
        FILTER_NONE => Ok(Box::new(NoFilter)),
        FILTER_SZ => {
            let algorithm = match client_data.first() {
                Some(0) => SzAlgorithm::LorenzoRegression,
                Some(1) => SzAlgorithm::Interpolation,
                _ => return Err(H5Error::Format("bad SZ filter client data".into())),
            };
            let mode = client_data
                .get(1)
                .ok_or_else(|| H5Error::Format("short SZ filter client data".into()))?;
            let value = client_data
                .get(2..10)
                .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte value")))
                .ok_or_else(|| H5Error::Format("short SZ filter client data".into()))?;
            let eb = match mode {
                0 => ErrorBound::Abs(value),
                1 => ErrorBound::Rel(value),
                _ => return Err(H5Error::Format("bad SZ bound mode".into())),
            };
            Ok(Box::new(SzFilter {
                algorithm,
                eb,
                dims_hint: None,
                block_size: None,
            }))
        }
        other => Err(H5Error::UnknownFilter(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_filter_roundtrip() {
        let data = vec![1.5, -2.25, 1e300, 0.0];
        let f = NoFilter;
        let enc = f.encode(&data).unwrap();
        assert_eq!(enc.len(), 32);
        assert_eq!(f.decode(&enc, 4).unwrap(), data);
        assert!(f.decode(&enc, 3).is_err());
    }

    #[test]
    fn sz_filter_roundtrip_1d() {
        let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.01).sin()).collect();
        let f = SzFilter::one_dimensional(1e-3);
        let enc = f.encode(&data).unwrap();
        assert!(enc.len() < data.len() * 8);
        let dec = f.decode(&enc, 2000).unwrap();
        // REL mode: bound resolves against the chunk's own range.
        let range = 2.0;
        for (o, r) in data.iter().zip(&dec) {
            assert!((o - r).abs() <= 1e-3 * range + 1e-12);
        }
    }

    #[test]
    fn sz_filter_3d_hint_beats_1d() {
        // 3-D structure exploited through the dims hint → better ratio on
        // spatially smooth data. This is the heart of AMRIC's "3-D vs 1-D"
        // argument.
        let dims = Dims3::cube(24);
        let mut buf = Buffer3::zeros(dims);
        buf.fill_with(|i, j, k| {
            ((i as f64) * 0.2).sin() * ((j as f64) * 0.15).cos() + (k as f64 * 0.1).sin()
        });
        let data = buf.data().to_vec();
        let f1 = SzFilter::one_dimensional(1e-3);
        let f3 = SzFilter::three_dimensional(SzAlgorithm::LorenzoRegression, 1e-3, dims);
        let e1 = f1.encode(&data).unwrap().len();
        let e3 = f3.encode(&data).unwrap().len();
        assert!(e3 < e1, "3-D ({e3}) should beat 1-D ({e1})");
        let dec = f3.decode(&f3.encode(&data).unwrap(), data.len()).unwrap();
        for (o, r) in data.iter().zip(&dec) {
            assert!((o - r).abs() <= 1e-3);
        }
    }

    #[test]
    fn interp_filter_roundtrip() {
        let dims = Dims3::cube(16);
        let mut buf = Buffer3::zeros(dims);
        buf.fill_with(|i, j, k| (i + 2 * j + 3 * k) as f64 * 0.05);
        let f = SzFilter::three_dimensional(SzAlgorithm::Interpolation, 1e-4, dims);
        let enc = f.encode(buf.data()).unwrap();
        let dec = f.decode(&enc, dims.len()).unwrap();
        for (o, r) in buf.data().iter().zip(&dec) {
            assert!((o - r).abs() <= 1e-4);
        }
    }

    #[test]
    fn sz_filter_empty_chunk_is_not_a_panic() {
        // Regression: the fallible filter contract extends to zero-length
        // chunks — no Buffer3 dims assert, symmetric decode.
        let f = SzFilter::one_dimensional(1e-3);
        let enc = f.encode(&[]).unwrap();
        assert!(enc.is_empty());
        assert_eq!(f.decode(&enc, 0).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn decoder_registry_roundtrip() {
        let f = SzFilter::one_dimensional(5e-3);
        let d = decoder_for(f.id(), &f.client_data()).unwrap();
        assert_eq!(d.id(), FILTER_SZ);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let enc = f.encode(&data).unwrap();
        let dec = d.decode(&enc, 100).unwrap();
        for (o, r) in data.iter().zip(&dec) {
            assert!((o - r).abs() <= 5e-3 * 99.0 + 1e-12);
        }
        assert!(matches!(
            decoder_for(99, &[]),
            Err(H5Error::UnknownFilter(99))
        ));
    }
}
