//! End-to-end `QualityReport` contract: compare real plotfile pairs
//! written by the AMRIC writer and served through `QueryEngine`s.

use amr_apps::prelude::*;
use amr_quality::{Psnr, QualityReport};
use amr_query::{QueryEngine, QueryError};
use amric::config::AmricConfig;
use amric::writer::write_amric;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amr-quality-{}-{name}.h5l", std::process::id()));
    p
}

fn nyx(seed: u64, coarse: i64, levels: usize) -> amr_mesh::AmrHierarchy {
    let s = NyxScenario::new(seed);
    let cfg = AmrRunConfig {
        coarse_dims: (coarse, coarse, coarse),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: levels,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    build_hierarchy(&s, &cfg, 0.0)
}

#[test]
fn report_tracks_bound_tightness() {
    let h = nyx(91, 16, 2);
    let reference = tmp("report-ref");
    let good = tmp("report-good");
    let bad = tmp("report-bad");
    write_amric(&reference, &h, &AmricConfig::lr(1e-12), 8).unwrap();
    write_amric(&good, &h, &AmricConfig::lr(1e-4), 8).unwrap();
    write_amric(&bad, &h, &AmricConfig::lr(1e-2), 8).unwrap();

    let re = QueryEngine::open(&reference).unwrap();
    let rg = QualityReport::compare(&re, &QueryEngine::open(&good).unwrap()).unwrap();
    let rb = QualityReport::compare(&re, &QueryEngine::open(&bad).unwrap()).unwrap();

    assert_eq!(rg.fields.len(), h.field_names().len());
    for (f, field) in rg.fields.iter().enumerate() {
        assert_eq!(field.field, h.field_names()[f]);
        assert_eq!(field.levels.len(), 2);
        for l in &field.levels {
            let domain = re.meta().levels[l.level].domain.size();
            let cells = (domain.get(0) * domain.get(1) * domain.get(2)) as usize;
            assert_eq!(l.cells, cells, "full-domain comparison expected");
            assert_eq!(l.histogram.total(), cells as u64);
            assert!(l.psnr.db() > 0.0, "{}: PSNR {:?}", field.field, l.psnr);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&l.ssim),
                "{}: SSIM {}",
                field.field,
                l.ssim
            );
            assert!(l.max_abs_err >= l.mean_abs_err);
        }
    }
    // A 100x looser bound must read as worse on every metric summary.
    assert!(
        rg.min_psnr().db() > rb.min_psnr().db(),
        "tight {} vs loose {}",
        rg.min_psnr(),
        rb.min_psnr()
    );
    for (fg, fb) in rg.fields.iter().zip(&rb.fields) {
        assert!(fg.min_ssim() >= fb.min_ssim() - 1e-12, "{}", fg.field);
    }
    for p in [&reference, &good, &bad] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn identical_plotfiles_are_reported_perfect() {
    let h = nyx(92, 16, 2);
    let path = tmp("perfect");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    let a = QueryEngine::open(&path).unwrap();
    let b = QueryEngine::open(&path).unwrap();
    let r = QualityReport::compare(&a, &b).unwrap();
    assert_eq!(r.min_psnr(), Psnr::Infinite);
    for f in &r.fields {
        for l in &f.levels {
            assert_eq!(l.psnr, Psnr::Infinite);
            assert_eq!(l.ssim, 1.0, "{}", f.field);
            assert_eq!(l.max_abs_err, 0.0);
            assert_eq!(l.histogram.counts[0], l.histogram.total());
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn structural_mismatches_are_typed_errors() {
    let two_level = tmp("mismatch-a");
    let one_level = tmp("mismatch-b");
    let small = tmp("mismatch-c");
    write_amric(&two_level, &nyx(93, 16, 2), &AmricConfig::lr(1e-3), 8).unwrap();
    write_amric(&one_level, &nyx(93, 16, 1), &AmricConfig::lr(1e-3), 8).unwrap();
    write_amric(&small, &nyx(93, 8, 2), &AmricConfig::lr(1e-3), 8).unwrap();
    let e2 = QueryEngine::open(&two_level).unwrap();
    assert!(matches!(
        QualityReport::compare(&e2, &QueryEngine::open(&one_level).unwrap()),
        Err(QueryError::BadQuery(_))
    ));
    assert!(matches!(
        QualityReport::compare(&e2, &QueryEngine::open(&small).unwrap()),
        Err(QueryError::BadQuery(_))
    ));
    for p in [&two_level, &one_level, &small] {
        std::fs::remove_file(p).ok();
    }
}
