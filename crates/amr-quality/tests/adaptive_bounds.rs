//! The adaptive-bound acceptance harness: at **equal stored bytes**,
//! `BoundPolicy::GradientAdaptive` must (a) keep every reconstructed
//! value within its loose bound, and (b) beat the fixed-bound PSNR on
//! the tagged-region Nyx scenario — the paper-style "spend bits where
//! the data is rough" payoff, measured end to end through plotfiles.

use amr_apps::prelude::*;
use amric::config::{AmricConfig, BoundPolicy};
use amric::reader::read_amric_hierarchy;
use amric::writer::write_amric;
use sz_codec::prelude::absolute_bound;

const TIGHT: f64 = 1e-4;
const LOOSE: f64 = 8e-3;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "amr-quality-adapt-{}-{name}.h5l",
        std::process::id()
    ));
    p
}

/// The tagged-region Nyx hierarchy: gradient tagging concentrates the
/// fine level (and the rough data) in a small fraction of the domain.
fn nyx(seed: u64) -> amr_mesh::AmrHierarchy {
    let s = NyxScenario::new(seed);
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    build_hierarchy(&s, &cfg, 0.0)
}

fn stored_bytes(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).unwrap().len()
}

/// Binary-search a fixed `rel_eb` whose plotfile stores (about) the same
/// bytes as `target` — compressed size shrinks monotonically as the
/// bound loosens.
fn write_fixed_at_bytes(
    path: &std::path::Path,
    h: &amr_mesh::AmrHierarchy,
    target: u64,
) -> (f64, u64) {
    let (mut lo, mut hi) = (TIGHT, LOOSE);
    let mut best = (lo, u64::MAX);
    for _ in 0..12 {
        let eb = (lo * hi).sqrt();
        write_amric(path, h, &AmricConfig::lr(eb), 8).unwrap();
        let bytes = stored_bytes(path);
        if bytes.abs_diff(target) < best.1.abs_diff(target) {
            best = (eb, bytes);
        }
        if bytes > target {
            lo = eb; // too many bytes: loosen
        } else {
            hi = eb;
        }
    }
    // Re-write the best candidate so the file on disk matches it.
    write_amric(path, h, &AmricConfig::lr(best.0), 8).unwrap();
    best
}

#[test]
fn adaptive_beats_fixed_psnr_at_equal_bytes_and_respects_loose_bound() {
    let h = nyx(181);
    let reference = tmp("ref");
    let adaptive = tmp("adaptive");
    let fixed = tmp("fixed");
    write_amric(&reference, &h, &AmricConfig::lr(1e-12), 8).unwrap();
    let adaptive_cfg = AmricConfig::lr(1e-3).with_bound_policy(BoundPolicy::GradientAdaptive {
        tight: TIGHT,
        loose: LOOSE,
    });
    write_amric(&adaptive, &h, &adaptive_cfg, 8).unwrap();
    let target = stored_bytes(&adaptive);
    let (fixed_eb, fixed_bytes) = write_fixed_at_bytes(&fixed, &h, target);

    // Equal stored bytes, within tolerance — otherwise the PSNR
    // comparison is meaningless.
    let skew = fixed_bytes.abs_diff(target) as f64 / target as f64;
    assert!(
        skew < 0.03,
        "could not match stored bytes: adaptive {target}, fixed {fixed_bytes} (eb {fixed_eb:.2e})"
    );

    // (a) Bound compliance everywhere: every reconstructed cell of the
    // adaptive file is within the *loose* absolute bound of the
    // reference decode (whose own error, at rel 1e-12, is negligible).
    // Comparing decode-vs-decode keeps the redundancy-removed zero
    // pattern identical on both sides.
    let pf_ref = read_amric_hierarchy(&reference).unwrap();
    let pf_ad = read_amric_hierarchy(&adaptive).unwrap();
    for (level, (mf_ref, mf_ad)) in pf_ref.levels.iter().zip(&pf_ad.levels).enumerate() {
        for field in 0..h.field_names().len() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (i, fab) in mf_ref.iter() {
                for p in mf_ref.box_array().get(i).iter_points() {
                    let v = fab.get(&p, field);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let loose_abs = absolute_bound(LOOSE, hi - lo);
            let tol = loose_abs * (1.0 + 1e-9) + 1e-12;
            for (i, fab) in mf_ref.iter() {
                for p in mf_ref.box_array().get(i).iter_points() {
                    let err = (fab.get(&p, field) - mf_ad.fab(i).get(&p, field)).abs();
                    assert!(
                        err <= tol,
                        "level {level} field {field} cell {p:?}: err {err:.3e} > loose {loose_abs:.3e}"
                    );
                }
            }
        }
    }

    // (b) At equal bytes, adaptive wins on the **tagged region** — the
    // cells the writer actually classified rough and bounded tight,
    // recovered from the stored streams via `stream_unit_bounds`. (Over
    // the whole domain a uniform bound is MSE-optimal at a given byte
    // budget; the adaptive payoff is concentrating fidelity where the
    // visualization looks.)
    let pf_fx = read_amric_hierarchy(&fixed).unwrap();
    let file = h5lite::H5Reader::open(&adaptive).unwrap();
    let nfields = h.field_names().len();
    let mut sse_ad = 0.0f64; // range-normalized squared errors
    let mut sse_fx = 0.0f64;
    let mut tagged_cells = 0u64;
    for level in 0..pf_ad.levels.len() {
        for field in 0..nfields {
            let (lo, hi) = level_field_range(&pf_ref.levels[level], field);
            let range = (hi - lo).max(f64::MIN_POSITIVE);
            let name = format!("level_{level}/field_{field}");
            let nchunks = file.meta(&name).unwrap().chunks.len();
            for rank in 0..nchunks {
                let raw = file.read_chunk_raw(&name, rank).unwrap();
                let Some(bounds) = amric::stream_unit_bounds(&raw).unwrap() else {
                    continue; // empty / non-adaptive chunk
                };
                let plan = &pf_ad.unit_plans[level][rank];
                assert_eq!(bounds.len(), plan.len(), "{name} rank {rank}");
                let chunk_max = bounds.iter().cloned().fold(0.0f64, f64::max);
                for (u, b) in plan.iter().zip(&bounds) {
                    if *b >= chunk_max {
                        continue; // loose (or single-group) unit
                    }
                    for p in u.region.iter_points() {
                        let r = pf_ref.levels[level].value_at(&p, field).unwrap_or(0.0);
                        let ea =
                            (r - pf_ad.levels[level].value_at(&p, field).unwrap_or(0.0)) / range;
                        let ef =
                            (r - pf_fx.levels[level].value_at(&p, field).unwrap_or(0.0)) / range;
                        sse_ad += ea * ea;
                        sse_fx += ef * ef;
                        tagged_cells += 1;
                    }
                }
            }
        }
    }
    assert!(
        tagged_cells > 1000,
        "classifier found too few tight-bounded cells ({tagged_cells})"
    );
    let gap_db = 10.0 * (sse_fx / sse_ad).log10();
    assert!(
        sse_ad < sse_fx,
        "adaptive must beat fixed (eb {fixed_eb:.2e}) on the {tagged_cells} tight-bounded \
         cells at {target} stored bytes: gap {gap_db:.2} dB"
    );

    for p in [&reference, &adaptive, &fixed] {
        std::fs::remove_file(p).ok();
    }
}

/// Reference value range of one field over one decoded level (all fab
/// cells, the same population the writer's range allgather sees).
fn level_field_range(mf: &amr_mesh::MultiFab, field: usize) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, fab) in mf.iter() {
        for p in mf.box_array().get(i).iter_points() {
            let v = fab.get(&p, field);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

/// Every compressed stream of a plotfile, keyed by dataset name and
/// chunk (= rank) index. Container *placement* of chunks is
/// scheduling-dependent (rank threads allocate space in completion
/// order), so per-chunk stream identity is the strongest determinism the
/// writer guarantees.
fn stream_map(path: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let r = h5lite::H5Reader::open(path).unwrap();
    let mut m = std::collections::BTreeMap::new();
    for name in r.dataset_names() {
        for i in 0..r.meta(name).unwrap().chunks.len() {
            m.insert(format!("{name}#{i}"), r.read_chunk_raw(name, i).unwrap());
        }
    }
    m
}

#[test]
fn explicit_fixed_policy_streams_are_byte_identical_to_default() {
    // `BoundPolicy::Fixed` is the default; opting into it explicitly must
    // not perturb a single byte of any compressed stream. (The
    // pipeline-level golden corpus in `amric` pins the same contract
    // against the pre-policy stream format.)
    let h = nyx(182);
    let a = tmp("default");
    let b = tmp("explicit-fixed");
    write_amric(&a, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    write_amric(
        &b,
        &h,
        &AmricConfig::lr(1e-3).with_bound_policy(BoundPolicy::Fixed),
        8,
    )
    .unwrap();
    let (ma, mb) = (stream_map(&a), stream_map(&b));
    assert_eq!(ma.keys().collect::<Vec<_>>(), mb.keys().collect::<Vec<_>>());
    for (k, va) in &ma {
        assert_eq!(Some(va), mb.get(k), "stream {k} differs");
    }
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}
