//! # amr-quality — visualization-fidelity metrics for AMRIC plotfiles
//!
//! The AMRIC paper's evaluation ends at compression ratio and raw PSNR;
//! the follow-up question every user asks is *"what does the
//! visualization look like?"*. This crate answers it quantitatively:
//!
//! * [`metrics`] — the primitive metrics: [`Psnr`] (a total, NaN-free
//!   PSNR with an explicit `Infinite` case for exact reconstructions
//!   and a defined value on constant slices), windowed [`ssim_plane`]
//!   on 2-D plane slices, and range-relative [`ErrorHistogram`]s.
//! * [`report`] — [`QualityReport`]: drive two [`amr_query::QueryEngine`]s
//!   over the same hierarchy (full-domain regions for error stats,
//!   mid-domain plane slices for PSNR/SSIM) and tabulate per field per
//!   level.
//!
//! The `amric_inspect` binary lives here too; its `--quality <ref> <cmp>`
//! subcommand prints a [`QualityReport`] for two plotfiles.
//!
//! Together with [`amric::BoundPolicy::GradientAdaptive`] this closes
//! the loop: the writer spends bits where the data is rough, and this
//! crate measures what that buys in the rendered output.

pub mod metrics;
pub mod report;

pub use metrics::{ssim_plane, ErrorHistogram, Psnr, HISTOGRAM_BINS, SSIM_WINDOW};
pub use report::{FieldQuality, LevelQuality, QualityReport};

/// Commonly used items.
pub mod prelude {
    pub use crate::metrics::{ssim_plane, ErrorHistogram, Psnr};
    pub use crate::report::{FieldQuality, LevelQuality, QualityReport};
}
