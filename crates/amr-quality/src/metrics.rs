//! Visualization-fidelity metrics on reconstructed AMR data: PSNR with a
//! defined degenerate case, windowed SSIM on 2-D plane slices, and
//! per-level error histograms.
//!
//! The metric definitions follow the visualization-impact follow-up work
//! to the AMRIC paper: compressors are judged by what a downstream
//! rendering of a plane slice looks like, not just by max-error.

use sz_codec::{Buffer3, ErrorStats};

/// SSIM window edge (cells). Windows are non-overlapping; partial edge
/// windows are included, so every cell of the plane contributes.
pub const SSIM_WINDOW: usize = 8;

/// Peak signal-to-noise ratio with a **defined degenerate case**.
///
/// The raw paper formula `20·log10(range) − 10·log10(MSE)` has two
/// hazards on the slices the query engine hands back: a perfect
/// reconstruction (`MSE = 0`, common once a plane of a quiet field
/// round-trips exactly) divides by zero, and a **constant** reference
/// plane (`range = 0`, e.g. any slice of an untouched ghost field) takes
/// `log10(0) = −∞`. Both are real outputs of
/// `QueryEngine::plane_slice`/`point_sample` on constant fields, so the
/// type makes them explicit instead of letting NaN/−∞ leak into reports:
///
/// * `MSE == 0` ⇒ [`Psnr::Infinite`], whatever the range;
/// * `range == 0 && MSE > 0` ⇒ finite, computed with the range floored
///   to 1.0 (pure-noise-power PSNR) — defined, never NaN.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Psnr {
    /// Perfect reconstruction (zero mean-squared error).
    Infinite,
    /// Finite PSNR in dB (never NaN).
    Finite(f64),
}

impl Psnr {
    /// PSNR between a reference slice and a reconstruction of it.
    ///
    /// Panics on empty or length-mismatched inputs (same contract as
    /// [`ErrorStats::compare`]).
    pub fn compute(reference: &[f64], candidate: &[f64]) -> Psnr {
        Psnr::from_stats(&ErrorStats::compare(reference, candidate))
    }

    /// PSNR from precomputed error statistics.
    pub fn from_stats(stats: &ErrorStats) -> Psnr {
        if stats.mse == 0.0 {
            return Psnr::Infinite;
        }
        let range = if stats.value_range > 0.0 {
            stats.value_range
        } else {
            1.0
        };
        Psnr::Finite(20.0 * range.log10() - 10.0 * stats.mse.log10())
    }

    /// The value in dB (`f64::INFINITY` for [`Psnr::Infinite`]).
    pub fn db(&self) -> f64 {
        match *self {
            Psnr::Infinite => f64::INFINITY,
            Psnr::Finite(db) => db,
        }
    }

    /// Is this the perfect-reconstruction case?
    pub fn is_infinite(&self) -> bool {
        matches!(self, Psnr::Infinite)
    }
}

impl std::fmt::Display for Psnr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Psnr::Infinite => write!(f, "inf"),
            Psnr::Finite(db) => write!(f, "{db:.2}"),
        }
    }
}

/// The 2-D lattice of a plane slice: the two free axes of a [`Buffer3`]
/// with one axis pinned to extent 1 (what `QueryEngine::plane_slice`
/// returns). Returns `None` if no axis has extent 1.
fn plane_extents(b: &Buffer3) -> Option<(usize, usize, usize)> {
    let d = b.dims();
    let ext = [d.nx, d.ny, d.nz];
    let pinned = ext.iter().position(|&e| e == 1)?;
    let free: Vec<usize> = (0..3).filter(|&a| a != pinned).collect();
    Some((pinned, free[0], free[1]))
}

/// Value at 2-D plane coordinates `(a, b)` given the pinned axis.
fn plane_get(buf: &Buffer3, pinned: usize, ax_a: usize, ax_b: usize, a: usize, b: usize) -> f64 {
    let mut ijk = [0usize; 3];
    ijk[ax_a] = a;
    ijk[ax_b] = b;
    let _ = pinned; // pinned coordinate stays 0
    buf.get(ijk[0], ijk[1], ijk[2])
}

/// Mean structural similarity between a reference plane slice and a
/// reconstruction of it, over non-overlapping [`SSIM_WINDOW`]² windows
/// (partial windows at the edges included).
///
/// Uses the standard stabilized form with `C1 = (0.01·L)²`,
/// `C2 = (0.03·L)²` where `L` is the reference plane's value range; a
/// constant reference (range 0) floors `L` to 1.0, so an exact
/// constant-vs-constant comparison is a well-defined 1.0 rather than
/// 0/0. Identical inputs always score 1.0; the score decreases toward 0
/// as local luminance/contrast/structure diverge.
///
/// Panics if the buffers' dims differ or neither has a pinned
/// (extent-1) axis — both are query-plan bugs, not data conditions.
pub fn ssim_plane(reference: &Buffer3, candidate: &Buffer3) -> f64 {
    assert_eq!(
        reference.dims(),
        candidate.dims(),
        "SSIM inputs must cover the same plane"
    );
    let (pinned, ax_a, ax_b) = plane_extents(reference).expect("ssim_plane needs an extent-1 axis");
    let ext = [
        reference.dims().nx,
        reference.dims().ny,
        reference.dims().nz,
    ];
    let (na, nb) = (ext[ax_a], ext[ax_b]);
    let (lo, hi) = reference.min_max();
    let l = if hi > lo { hi - lo } else { 1.0 };
    let c1 = (0.01 * l) * (0.01 * l);
    let c2 = (0.03 * l) * (0.03 * l);
    let mut sum = 0.0f64;
    let mut windows = 0u64;
    let mut a0 = 0;
    while a0 < na {
        let a1 = (a0 + SSIM_WINDOW).min(na);
        let mut b0 = 0;
        while b0 < nb {
            let b1 = (b0 + SSIM_WINDOW).min(nb);
            let n = ((a1 - a0) * (b1 - b0)) as f64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for a in a0..a1 {
                for b in b0..b1 {
                    let x = plane_get(reference, pinned, ax_a, ax_b, a, b);
                    let y = plane_get(candidate, pinned, ax_a, ax_b, a, b);
                    sx += x;
                    sy += y;
                    sxx += x * x;
                    syy += y * y;
                    sxy += x * y;
                }
            }
            let (mx, my) = (sx / n, sy / n);
            let vx = (sxx / n - mx * mx).max(0.0);
            let vy = (syy / n - my * my).max(0.0);
            let cov = sxy / n - mx * my;
            sum += ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                / ((mx * mx + my * my + c1) * (vx + vy + c2));
            windows += 1;
            b0 = b1;
        }
        a0 = a1;
    }
    sum / windows as f64
}

/// Number of histogram bins: one for exact zeros, seven decades of
/// scaled error, and one overflow bin.
pub const HISTOGRAM_BINS: usize = 9;

/// Upper edges of the scaled-error decades (bins 1..=7); bin 0 is exact
/// zero, bin 8 is everything above the last edge.
const DECADE_EDGES: [f64; 7] = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

/// Histogram of pointwise absolute errors, scaled by a reference value
/// (typically the level's value range, making the bins range-relative —
/// the same normalization REL error bounds use).
///
/// Bin 0 counts exact-zero errors; bins 1–7 cover scaled-error decades
/// `(0, 1e-7], …, (1e-2, 1e-1]`; bin 8 is the overflow `(1e-1, ∞)`.
/// With `scale <= 0` the raw absolute errors are binned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorHistogram {
    /// Counts per bin (see the type docs for the bin layout).
    pub counts: [u64; HISTOGRAM_BINS],
}

impl ErrorHistogram {
    /// Bin label for reports (`i < HISTOGRAM_BINS`).
    pub fn bin_label(i: usize) -> String {
        match i {
            0 => "0".into(),
            8 => ">1e-1".into(),
            _ => format!("<=1e-{}", 8 - i),
        }
    }

    /// Histogram of `|reference − candidate| / scale`.
    pub fn collect(reference: &[f64], candidate: &[f64], scale: f64) -> Self {
        assert_eq!(reference.len(), candidate.len(), "length mismatch");
        let inv = if scale > 0.0 { 1.0 / scale } else { 1.0 };
        let mut h = ErrorHistogram::default();
        for (&o, &r) in reference.iter().zip(candidate) {
            h.add((o - r).abs() * inv);
        }
        h
    }

    /// Add one scaled error.
    pub fn add(&mut self, scaled_err: f64) {
        let bin = if scaled_err == 0.0 {
            0
        } else {
            match DECADE_EDGES.iter().position(|&e| scaled_err <= e) {
                Some(d) => d + 1,
                None => HISTOGRAM_BINS - 1,
            }
        };
        self.counts[bin] += 1;
    }

    /// Fold another histogram in (per-level merges across slices).
    pub fn merge(&mut self, other: &ErrorHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total samples counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_codec::Dims3;

    fn plane(nx: usize, ny: usize, f: impl Fn(usize, usize) -> f64) -> Buffer3 {
        let mut b = Buffer3::zeros(Dims3::new(nx, ny, 1));
        b.fill_with(|i, j, _| f(i, j));
        b
    }

    #[test]
    fn psnr_matches_paper_formula_on_regular_data() {
        let orig: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin() * 5.0).collect();
        let recon: Vec<f64> = orig.iter().map(|v| v + 1e-3).collect();
        let p = Psnr::compute(&orig, &recon);
        let s = ErrorStats::compare(&orig, &recon);
        assert!(!p.is_infinite());
        assert!((p.db() - s.psnr()).abs() < 1e-12);
    }

    #[test]
    fn psnr_degenerate_cases_are_defined() {
        // Exact round-trip (MSE 0): Infinite, not a division by zero.
        let v: Vec<f64> = (0..64).map(|i| i as f64).collect();
        assert_eq!(Psnr::compute(&v, &v), Psnr::Infinite);
        assert_eq!(Psnr::compute(&v, &v).db(), f64::INFINITY);
        // Constant reference reconstructed exactly: still Infinite —
        // range 0 must not turn it into NaN or −inf.
        let flat = vec![3.5; 64];
        assert_eq!(Psnr::compute(&flat, &flat), Psnr::Infinite);
        // Constant reference with error: finite and NOT NaN — the raw
        // formula would take log10(0) here.
        let off: Vec<f64> = flat.iter().map(|v| v + 1e-3).collect();
        let p = Psnr::compute(&flat, &off);
        assert!(p.db().is_finite(), "range-0 PSNR must be defined: {p:?}");
        assert!((p.db() - 60.0).abs() < 1e-9, "floored range 1.0 ⇒ 60 dB");
        assert_eq!(format!("{}", Psnr::Infinite), "inf");
    }

    #[test]
    fn ssim_identical_planes_score_one() {
        let p = plane(20, 20, |i, j| ((i * 3 + j) as f64 * 0.2).sin());
        assert_eq!(ssim_plane(&p, &p), 1.0);
        // Constant plane vs itself: L floors to 1.0, still exactly 1.0.
        let flat = plane(12, 12, |_, _| 7.0);
        assert_eq!(ssim_plane(&flat, &flat), 1.0);
    }

    #[test]
    fn ssim_decreases_with_distortion_and_detects_structure_loss() {
        let p = plane(32, 32, |i, j| {
            ((i as f64 * 0.7).sin() + (j as f64 * 0.5).cos()) * 2.0
        });
        let mut light = p.clone();
        for v in light.data_mut() {
            *v += 1e-3;
        }
        let mut heavy = p.clone();
        for (idx, v) in heavy.data_mut().iter_mut().enumerate() {
            *v = if idx % 2 == 0 { 1.0 } else { -1.0 }; // structure destroyed
        }
        let s_light = ssim_plane(&p, &light);
        let s_heavy = ssim_plane(&p, &heavy);
        assert!(s_light > 0.99, "{s_light}");
        assert!(s_heavy < 0.5, "{s_heavy}");
        assert!(s_light > s_heavy);
    }

    #[test]
    fn ssim_works_on_any_pinned_axis() {
        for dims in [
            Dims3::new(1, 16, 16),
            Dims3::new(16, 1, 16),
            Dims3::new(16, 16, 1),
        ] {
            let mut a = Buffer3::zeros(dims);
            a.fill_with(|i, j, k| (i + 2 * j + 3 * k) as f64 * 0.1);
            let mut b = a.clone();
            for v in b.data_mut() {
                *v += 0.01;
            }
            let s = ssim_plane(&a, &b);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn histogram_bins_scaled_errors_by_decade() {
        let reference = vec![0.0; 5];
        let candidate = vec![0.0, 5e-8, 5e-5, 5e-3, 2.0];
        let h = ErrorHistogram::collect(&reference, &candidate, 1.0);
        assert_eq!(h.counts[0], 1); // exact zero
        assert_eq!(h.counts[1], 1); // <= 1e-7
        assert_eq!(h.counts[4], 1); // <= 1e-4
        assert_eq!(h.counts[6], 1); // <= 1e-2
        assert_eq!(h.counts[8], 1); // overflow
        assert_eq!(h.total(), 5);
        // Scaling: same data at scale 10 shifts everything a decade down.
        let h10 = ErrorHistogram::collect(&reference, &candidate, 10.0);
        assert_eq!(h10.counts[3], 1); // 5e-5/10 = 5e-6 <= 1e-5
        let mut merged = h;
        merged.merge(&h10);
        assert_eq!(merged.total(), 10);
        assert!(!ErrorHistogram::bin_label(4).is_empty());
    }
}
