//! `amric-inspect` — h5ls-style inspection of h5lite plotfiles.
//!
//! ```text
//! amric_inspect <file.h5l>              # dataset table + totals
//! amric_inspect <file.h5l> --chunks     # per-chunk detail
//! amric_inspect <file.h5l> --header     # decoded AMR header/box metadata
//! amric_inspect <file.h5l> --index      # chunk index + per-level ratios
//! amric_inspect <file.h5l> --stats      # query-engine counters after probes
//! amric_inspect <dir.h5ls> --shards     # shard manifest: per-shard bytes + extent map
//! amric_inspect --quality <ref> <cmp>   # per-level PSNR/SSIM table of cmp vs ref
//! ```
//!
//! (Hosted by `amr-quality` — `--quality` compares two plotfiles through
//! a pair of `QueryEngine`s, the layer above the `amric` pipeline crate.)

use h5lite::prelude::*;
use h5lite::sharded::shard_name;
use std::process::ExitCode;

fn human(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

fn filter_name(id: u32) -> &'static str {
    match id {
        0 => "none",
        1 => "sz",
        100 => "amric",
        _ => "custom",
    }
}

fn print_datasets(r: &H5Reader, chunks: bool) {
    let mut total_logical = 0u64;
    let mut total_stored = 0u64;
    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>8} {:>7} {:>6}",
        "dataset", "elems", "stored", "chunk", "filter", "mode", "CR"
    );
    for name in r.dataset_names() {
        let m = r.meta(name).expect("listed dataset");
        let stored = m.stored_bytes();
        total_logical += m.total_elems * 8;
        total_stored += stored;
        println!(
            "{:<28} {:>12} {:>12} {:>10} {:>8} {:>7} {:>6.1}",
            name,
            m.total_elems,
            human(stored),
            m.chunk_elems,
            filter_name(m.filter_id),
            match m.filter_mode {
                FilterMode::Standard => "std",
                FilterMode::SizeAware => "aware",
            },
            m.compression_ratio(),
        );
        if chunks {
            for (i, c) in m.chunks.iter().enumerate() {
                println!(
                    "    chunk {:<4} offset {:>10}  stored {:>10}  logical {:>10}",
                    i,
                    c.offset,
                    human(c.stored_bytes),
                    c.logical_elems
                );
            }
        }
    }
    println!(
        "\ntotals: logical {} stored {} overall CR {:.1}",
        human(total_logical),
        human(total_stored),
        total_logical as f64 / total_stored.max(1) as f64
    );
}

fn codec_name(id: u32) -> String {
    if id == CODEC_RAW {
        return "raw".into();
    }
    u16::try_from(id)
        .ok()
        .and_then(sz_codec::codec::CodecId::from_u16)
        .map(|c| c.name().to_string())
        .unwrap_or_else(|| format!("#{id}"))
}

/// Dump every dataset's chunk index (persistent when the writer stored
/// one, otherwise the legacy fallback scan) plus a per-level compression
/// summary.
fn print_index(r: &H5Reader) {
    println!(
        "{:<28} {:>5} {:>10} {:>10} {:>10} {:>12} {:>7}  extent",
        "dataset", "chunk", "offset", "stored", "logical", "codec", "source"
    );
    for name in r.dataset_names() {
        let m = r.meta(name).expect("listed dataset");
        let (index, source) = match r.chunk_index(name) {
            Ok(Some(idx)) => (idx.clone(), "index"),
            _ => match r.scan_chunk_index(name) {
                Ok(idx) => (idx, "scan"),
                Err(e) => {
                    println!("{name:<28} <unreadable: {e}>");
                    continue;
                }
            },
        };
        for (i, (rec, e)) in m.chunks.iter().zip(&index.entries).enumerate() {
            let extent = match e.extent {
                Some((lo, hi)) => format!(
                    "[{},{},{}]..[{},{},{}]",
                    lo[0], lo[1], lo[2], hi[0], hi[1], hi[2]
                ),
                None => "-".into(),
            };
            println!(
                "{:<28} {:>5} {:>10} {:>10} {:>10} {:>12} {:>7}  {}",
                if i == 0 { name } else { "" },
                i,
                rec.offset,
                rec.stored_bytes,
                rec.logical_elems,
                codec_name(e.codec_id),
                source,
                extent
            );
        }
    }
    // Per-level compression ratios over the field datasets.
    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>6}",
        "level", "datasets", "logical", "stored", "CR"
    );
    let mut level = 0usize;
    loop {
        let prefix = format!("level_{level}/");
        let members: Vec<_> = r
            .dataset_names()
            .into_iter()
            .filter(|n| n.starts_with(&prefix))
            .collect();
        if members.is_empty() {
            break;
        }
        let logical: u64 = members
            .iter()
            .map(|n| r.meta(n).expect("listed").total_elems * 8)
            .sum();
        let stored: u64 = members
            .iter()
            .map(|n| r.meta(n).expect("listed").stored_bytes())
            .sum();
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>6.1}",
            level,
            members.len(),
            human(logical),
            human(stored),
            logical as f64 / stored.max(1) as f64
        );
        level += 1;
    }
}

fn print_header(path: &str) {
    match amric::reader::read_amric_hierarchy(path) {
        Ok(pf) => {
            println!(
                "AMRIC plotfile: {} levels, fields {:?}",
                pf.levels.len(),
                pf.field_names
            );
            println!(
                "blocking factor {}, redundancy removed: {}",
                pf.bf, pf.remove_redundancy
            );
            for (l, (mf, domain)) in pf.levels.iter().zip(&pf.domains).enumerate() {
                let n = domain.size();
                println!(
                    "  level {l}: domain {}x{}x{}, {} boxes, density {:.2}%",
                    n.get(0),
                    n.get(1),
                    n.get(2),
                    mf.box_array().len(),
                    mf.box_array().density_in(domain) * 100.0
                );
            }
        }
        Err(e) => println!("not an AMRIC plotfile ({e}); raw dataset listing only"),
    }
}

/// Exercise a representative query workload through an
/// [`amr_query::QueryEngine`]
/// and dump the engine/cache counter snapshot — the same atomics the
/// `amr-serve` stats endpoint reports per open file.
fn print_stats(path: &str) {
    use amr_query::prelude::*;
    let engine = match QueryEngine::open(path) {
        Ok(e) => e,
        Err(e) => {
            println!("query stats unavailable: {e}");
            return;
        }
    };
    let meta = engine.meta();
    let domain = meta.levels[0].domain;
    let center = amr_mesh::IntVect::new(
        (domain.lo.get(0) + domain.hi.get(0)) / 2,
        (domain.lo.get(1) + domain.hi.get(1)) / 2,
        (domain.lo.get(2) + domain.hi.get(2)) / 2,
    );
    // Probe workload: a point, a mid-plane, an octant ROI (cold), and
    // the same ROI again (warm) so hit/miss counters show both paths.
    engine.point_sample(0, center).ok();
    engine.plane_slice(0, 0, 2, center.get(2)).ok();
    let octant = amr_mesh::IntBox::new(domain.lo, center);
    engine.roi(0, octant, LevelSelect::All).ok();
    engine.roi(0, octant, LevelSelect::All).ok();
    let s = engine.stats();
    println!("query-engine stats after probe workload (point, plane, 2x ROI):");
    println!(
        "  queries: {} roi, {} region, {} plane, {} point",
        s.roi_queries, s.region_queries, s.plane_queries, s.point_queries
    );
    println!(
        "  chunks decoded: {} ({} decoded, {} compressed read)",
        s.chunks_decoded,
        human(s.decoded_bytes),
        human(s.read_bytes)
    );
    if let Ok(cost) = engine.roi_cost(0, domain, LevelSelect::All) {
        println!(
            "  full-domain ROI estimate: {} chunks, {} decoded",
            cost.chunks,
            human(cost.decode_bytes)
        );
    }
    let c = &s.cache;
    println!("  cache: {} hits / {} misses (rate {:.1}%), {} insertions, {} evictions, resident {} of {}", c.hits, c.misses, c.hit_rate() * 100.0, c.insertions, c.evictions, human(c.resident_bytes), human(c.capacity_bytes));
}

/// Dump the sharded container's manifest: shard population and the
/// logical→physical extent map. Works from the manifest alone — no shard
/// file is opened, so it also serves as a forensics view of a container
/// whose shards are damaged.
fn print_shards(path: &str) {
    if !h5lite::is_sharded(path) {
        println!("{path}: single-file container (no shard manifest)");
        return;
    }
    let m = match h5lite::read_manifest(path) {
        Ok(m) => m,
        Err(e) => {
            println!("cannot read shard manifest: {e}");
            return;
        }
    };
    println!(
        "sharded container: {} shards, logical {} in {} extents",
        m.shard_count,
        human(m.logical_len),
        m.extents.len()
    );
    let bytes = m.shard_bytes();
    println!(
        "{:<8} {:>12} {:>8} {:>7}",
        "shard", "bytes", "extents", "fill"
    );
    for (i, b) in bytes.iter().enumerate() {
        let n = m.extents.iter().filter(|e| e.shard as usize == i).count();
        println!(
            "{:<8} {:>12} {:>8} {:>6.1}%",
            shard_name(i),
            human(*b),
            n,
            *b as f64 / m.logical_len.max(1) as f64 * 100.0
        );
    }
    println!(
        "\n{:>12} {:>12} {:>8} {:>12}  ({} extents)",
        "logical",
        "len",
        "shard",
        "offset",
        m.extents.len()
    );
    for e in &m.extents {
        println!(
            "{:>12} {:>12} {:>8} {:>12}",
            e.logical, e.len, e.shard, e.offset
        );
    }
}

/// Compare `cmp` against `ref` and print the per-level PSNR/SSIM table.
fn print_quality(reference: &str, candidate: &str) -> ExitCode {
    use amr_query::QueryEngine;
    let open = |p: &str| match QueryEngine::open(p) {
        Ok(e) => Some(e),
        Err(e) => {
            eprintln!("cannot open {p}: {e}");
            None
        }
    };
    let (Some(re), Some(ce)) = (open(reference), open(candidate)) else {
        return ExitCode::FAILURE;
    };
    match amr_quality::QualityReport::compare(&re, &ce) {
        Ok(report) => {
            println!("quality of {candidate} vs {reference}:");
            print!("{}", report.render_table());
            println!("worst-level PSNR: {} dB", report.min_psnr());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("comparison failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if args.iter().any(|a| a == "--quality") {
        if let [reference, candidate] = paths[..] {
            return print_quality(reference, candidate);
        }
        eprintln!("usage: amric_inspect --quality <reference.h5l> <candidate.h5l>");
        return ExitCode::FAILURE;
    }
    let Some(path) = paths.first().copied() else {
        eprintln!(
            "usage: amric_inspect <file.h5l|dir.h5ls> [--chunks] [--header] [--index] [--stats] [--shards]\n       amric_inspect --quality <reference.h5l> <candidate.h5l>"
        );
        return ExitCode::FAILURE;
    };
    let r = match H5Reader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_datasets(&r, args.iter().any(|a| a == "--chunks"));
    if args.iter().any(|a| a == "--shards") {
        println!();
        print_shards(path);
    }
    if args.iter().any(|a| a == "--index") {
        println!();
        print_index(&r);
    }
    if args.iter().any(|a| a == "--header") {
        println!();
        print_header(path);
    }
    if args.iter().any(|a| a == "--stats") {
        println!();
        print_stats(path);
    }
    ExitCode::SUCCESS
}
