//! Whole-plotfile quality reports: compare a compressed plotfile against
//! a reference through two [`QueryEngine`]s, field by field and level by
//! level.
//!
//! Full-domain [`QueryEngine::level_region`] extractions drive the error
//! statistics (max/mean absolute error, the range-relative histogram),
//! while a mid-domain z plane drives the visualization metrics
//! (PSNR/SSIM) — the slice a viewer would actually render.

use crate::metrics::{ssim_plane, ErrorHistogram, Psnr};
use amr_query::{QueryEngine, QueryError, QueryResult};

/// Quality of one field at one AMR level.
#[derive(Clone, Debug)]
pub struct LevelQuality {
    /// AMR level (0 = coarsest).
    pub level: usize,
    /// Cells compared (the level's full domain).
    pub cells: usize,
    /// Reference value range over the full level domain.
    pub value_range: f64,
    /// Maximum pointwise absolute error over the full level domain.
    pub max_abs_err: f64,
    /// Mean pointwise absolute error over the full level domain.
    pub mean_abs_err: f64,
    /// PSNR of the mid-domain z plane slice.
    pub psnr: Psnr,
    /// Mean SSIM of the mid-domain z plane slice.
    pub ssim: f64,
    /// Histogram of absolute errors scaled by `value_range`.
    pub histogram: ErrorHistogram,
}

/// Quality of one field across all levels.
#[derive(Clone, Debug)]
pub struct FieldQuality {
    /// Field name (from the plotfile metadata).
    pub field: String,
    /// Per-level rows, coarsest first.
    pub levels: Vec<LevelQuality>,
}

impl FieldQuality {
    /// Worst (lowest) per-level PSNR, the single number the bench table
    /// reports. `Psnr::Infinite` only when every level is exact.
    pub fn min_psnr(&self) -> Psnr {
        self.levels
            .iter()
            .map(|l| l.psnr)
            .min_by(|a, b| a.db().total_cmp(&b.db()))
            .unwrap_or(Psnr::Infinite)
    }

    /// Worst (lowest) per-level SSIM.
    pub fn min_ssim(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.ssim)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Quality report over every field of a plotfile pair.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Per-field results, in component order.
    pub fields: Vec<FieldQuality>,
}

impl QualityReport {
    /// Compare `candidate` against `reference` field by field, level by
    /// level. The two plotfiles must agree structurally (same fields,
    /// same level domains) — mismatches are [`QueryError::BadQuery`],
    /// not silent partial comparisons.
    pub fn compare(reference: &QueryEngine, candidate: &QueryEngine) -> QueryResult<QualityReport> {
        let rm = reference.meta();
        let cm = candidate.meta();
        if rm.field_names != cm.field_names {
            return Err(QueryError::BadQuery(format!(
                "field mismatch: reference has {:?}, candidate has {:?}",
                rm.field_names, cm.field_names
            )));
        }
        if rm.num_levels() != cm.num_levels() {
            return Err(QueryError::BadQuery(format!(
                "level-count mismatch: reference has {}, candidate has {}",
                rm.num_levels(),
                cm.num_levels()
            )));
        }
        for (l, (a, b)) in rm.levels.iter().zip(&cm.levels).enumerate() {
            if a.domain != b.domain {
                return Err(QueryError::BadQuery(format!(
                    "level {l} domain mismatch: {:?} vs {:?}",
                    a.domain, b.domain
                )));
            }
        }
        let mut fields = Vec::with_capacity(rm.field_names.len());
        for (f, name) in rm.field_names.iter().enumerate() {
            let mut levels = Vec::with_capacity(rm.num_levels());
            for l in 0..rm.num_levels() {
                levels.push(Self::compare_level(reference, candidate, f, l)?);
            }
            fields.push(FieldQuality {
                field: name.clone(),
                levels,
            });
        }
        Ok(QualityReport { fields })
    }

    fn compare_level(
        reference: &QueryEngine,
        candidate: &QueryEngine,
        field: usize,
        level: usize,
    ) -> QueryResult<LevelQuality> {
        let domain = reference.meta().levels[level].domain;
        let r_full = reference.level_region(field, level, domain)?;
        let c_full = candidate.level_region(field, level, domain)?;
        let (rd, cd) = (r_full.data.data(), c_full.data.data());
        let (lo, hi) = r_full.data.min_max();
        let value_range = hi - lo;
        let mut max_abs = 0.0f64;
        let mut sum_abs = 0.0f64;
        for (&a, &b) in rd.iter().zip(cd) {
            let e = (a - b).abs();
            max_abs = max_abs.max(e);
            sum_abs += e;
        }
        let histogram = ErrorHistogram::collect(rd, cd, value_range);

        let mid = (domain.lo.get(2) + domain.hi.get(2)) / 2;
        let r_plane = reference.plane_slice(field, level, 2, mid)?;
        let c_plane = candidate.plane_slice(field, level, 2, mid)?;
        let psnr = Psnr::compute(r_plane.data.data(), c_plane.data.data());
        let ssim = ssim_plane(&r_plane.data, &c_plane.data);

        Ok(LevelQuality {
            level,
            cells: rd.len(),
            value_range,
            max_abs_err: max_abs,
            mean_abs_err: sum_abs / rd.len().max(1) as f64,
            psnr,
            ssim,
            histogram,
        })
    }

    /// Worst per-field PSNR across all fields and levels.
    pub fn min_psnr(&self) -> Psnr {
        self.fields
            .iter()
            .map(|f| f.min_psnr())
            .min_by(|a, b| a.db().total_cmp(&b.db()))
            .unwrap_or(Psnr::Infinite)
    }

    /// The **tagged region** of an adaptive-bound plotfile: for each
    /// `(level, field)`, the unit regions (level-local index space) the
    /// writer classified rough and bounded tight, recovered from the
    /// stored streams via [`amric::stream_unit_bounds`]. Fixed-policy
    /// and empty chunks contribute nothing, so a `Fixed` plotfile yields
    /// all-empty region lists.
    ///
    /// This is the region the equal-bytes evaluation scores: adaptive
    /// bounds trade whole-domain MSE for fidelity exactly here.
    pub fn tight_unit_regions(
        path: impl AsRef<std::path::Path>,
    ) -> QueryResult<Vec<Vec<Vec<amr_mesh::IntBox>>>> {
        let r = h5lite::H5Reader::open(path)?;
        let meta = amric::reader::read_plotfile_meta(&r)?;
        let nfields = meta.field_names.len();
        let mut out = vec![vec![Vec::new(); nfields]; meta.num_levels()];
        for (level, fields) in out.iter_mut().enumerate() {
            for (field, regions) in fields.iter_mut().enumerate() {
                let name = format!("level_{level}/field_{field}");
                let nchunks = r.meta(&name)?.chunks.len();
                for rank in 0..nchunks {
                    let raw = r.read_chunk_raw(&name, rank)?;
                    let Some(bounds) = amric::stream_unit_bounds(&raw)? else {
                        continue;
                    };
                    let plan = meta.unit_plan(level, rank);
                    if plan.len() != bounds.len() {
                        return Err(QueryError::BadQuery(format!(
                            "{name} chunk {rank}: {} planned units vs {} stream bounds",
                            plan.len(),
                            bounds.len()
                        )));
                    }
                    let chunk_max = bounds.iter().cloned().fold(0.0f64, f64::max);
                    regions.extend(
                        plan.iter()
                            .zip(&bounds)
                            .filter(|(_, &b)| b < chunk_max)
                            .map(|(u, _)| u.region),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Render the per-level PSNR/SSIM table `amric_inspect --quality`
    /// prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "field                level      cells      psnr(db)   ssim     max_err      mean_err\n",
        );
        for f in &self.fields {
            for l in &f.levels {
                out.push_str(&format!(
                    "{:<20} {:<10} {:<10} {:<10} {:<8.4} {:<12.4e} {:<12.4e}\n",
                    f.field,
                    l.level,
                    l.cells,
                    format!("{}", l.psnr),
                    l.ssim,
                    l.max_abs_err,
                    l.mean_abs_err,
                ));
            }
        }
        out
    }
}
