//! Acceptance gate for the sharded backend at the query layer: a sharded
//! AMRIC write followed by `amr-query` ROI/point/plane reads must be
//! **bitwise-identical** to the single-file path — across cold and warm
//! cache, prefetch workers {1, 4}, both codec families, and with the
//! chunk index stripped (legacy fallback scan) on both backends.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amr_query::prelude::*;
use amric::config::AmricConfig;
use amric::writer::{write_amric, write_amric_sharded};
use h5lite::testutil::TempDir;

fn hierarchy(seed: u64) -> AmrHierarchy {
    let s = NyxScenario::new(seed);
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    build_hierarchy(&s, &cfg, 0.0)
}

fn view_bits(lr: &LevelRegion) -> Vec<u64> {
    lr.data.data().iter().map(|v| v.to_bits()).collect()
}

fn probe_rois() -> Vec<IntBox> {
    vec![
        IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)),
        IntBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 15, 5)),
        IntBox::from_extents(16, 16, 16),
    ]
}

/// Run the probe workload on both engines and demand bitwise equality,
/// cold then warm.
fn assert_engines_agree(file: &QueryEngine, sharded: &QueryEngine, ctx: &str) {
    for pass in ["cold", "warm"] {
        // ROI queries, all levels.
        for (ri, roi) in probe_rois().into_iter().enumerate() {
            for field in [0usize, 3] {
                let a = file.roi(field, roi, LevelSelect::All).unwrap();
                let b = sharded.roi(field, roi, LevelSelect::All).unwrap();
                assert_eq!(a.levels.len(), b.levels.len(), "{ctx} {pass} roi {ri}");
                for (la, lb) in a.levels.iter().zip(&b.levels) {
                    assert_eq!(la.level, lb.level);
                    assert_eq!(la.region, lb.region, "{ctx} {pass} roi {ri}");
                    assert_eq!(
                        view_bits(la),
                        view_bits(lb),
                        "{ctx} {pass} roi {ri} field {field} level {} differs",
                        la.level
                    );
                }
            }
        }
        // Point samples over a lattice of cells (finest index space).
        for x in (0..32).step_by(7) {
            for y in (0..32).step_by(9) {
                let p = IntVect::new(x, y, 16);
                let a = file.point_sample(0, p).unwrap();
                let b = sharded.point_sample(0, p).unwrap();
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.level, b.level, "{ctx} {pass} point {p:?}");
                        assert_eq!(a.cell, b.cell, "{ctx} {pass} point {p:?}");
                        assert_eq!(
                            a.value.to_bits(),
                            b.value.to_bits(),
                            "{ctx} {pass} point {p:?}"
                        );
                    }
                    other => panic!("{ctx} {pass} point {p:?}: mismatch {other:?}"),
                }
            }
        }
        // Plane slices on every axis at both levels.
        for level in 0..2 {
            for axis in 0..3 {
                let a = file.plane_slice(1, level, axis, 3).unwrap();
                let b = sharded.plane_slice(1, level, axis, 3).unwrap();
                assert_eq!(a.region, b.region, "{ctx} {pass} plane l{level} a{axis}");
                assert_eq!(
                    view_bits(&a),
                    view_bits(&b),
                    "{ctx} {pass} plane l{level} a{axis} differs"
                );
            }
        }
    }
    // The warm passes actually hit the cache on both engines.
    assert!(file.cache_stats().hits > 0, "{ctx}: file cache never hit");
    assert!(
        sharded.cache_stats().hits > 0,
        "{ctx}: sharded cache never hit"
    );
}

#[test]
fn sharded_queries_bitwise_match_single_file() {
    let h = hierarchy(71);
    let dir = TempDir::new("amr-query-sharded");
    for (tag, cfg) in [
        ("lr", AmricConfig::lr(1e-3)),
        ("interp", AmricConfig::interp(1e-3)),
    ] {
        let fp = dir.file(&format!("{tag}.h5l"));
        let sp = dir.file(&format!("{tag}.h5ls"));
        let rf = write_amric(&fp, &h, &cfg, 8).unwrap();
        let rs = write_amric_sharded(&sp, 4, &h, &cfg, 8).unwrap();
        assert_eq!(rf.stored_bytes, rs.stored_bytes, "{tag}: payload differs");
        // The sharded container really is sharded, with populated shards.
        let manifest = h5lite::read_manifest(&sp).unwrap();
        assert_eq!(manifest.shard_count, 4, "{tag}");
        assert!(
            manifest.shard_bytes().iter().filter(|&&b| b > 0).count() > 1,
            "{tag}: write landed in a single shard"
        );
        for workers in [1usize, 4] {
            let ef = QueryEngine::open(&fp).unwrap().with_workers(workers);
            let es = QueryEngine::open(&sp).unwrap().with_workers(workers);
            assert!(ef.has_persistent_index(), "{tag}");
            assert!(es.has_persistent_index(), "{tag}");
            assert_engines_agree(&ef, &es, &format!("{tag} workers={workers}"));
        }
    }
}

#[test]
fn sharded_legacy_fallback_matches_single_file() {
    // Strip the chunk index from both containers: the fallback scan path
    // must stay bitwise-identical across backends too.
    let h = hierarchy(29);
    let dir = TempDir::new("amr-query-sharded-legacy");
    let cfg = AmricConfig::lr(1e-3);
    let fp = dir.file("legacy.h5l");
    let sp = dir.file("legacy.h5ls");
    write_amric(&fp, &h, &cfg, 8).unwrap();
    write_amric_sharded(&sp, 3, &h, &cfg, 8).unwrap();
    h5lite::strip_chunk_indexes(&fp).unwrap();
    h5lite::strip_chunk_indexes(&sp).unwrap();
    for workers in [1usize, 4] {
        let ef = QueryEngine::open(&fp).unwrap().with_workers(workers);
        let es = QueryEngine::open(&sp).unwrap().with_workers(workers);
        assert!(!ef.has_persistent_index());
        assert!(!es.has_persistent_index());
        assert_engines_agree(&ef, &es, &format!("legacy workers={workers}"));
    }
}
