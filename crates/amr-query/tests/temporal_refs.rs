//! The planner-level face of temporal compression: a delta-coded chunk's
//! reference snapshot id is resolvable from the persisted chunk index
//! alone — no chunk is read, nothing is decoded.

use amr_apps::prelude::*;
use amr_query::prelude::*;
use amric::temporal::{TemporalSession, TemporalSessionConfig};
use h5lite::{H5Reader, H5Writer};
use std::sync::Arc;
use sz_codec::codec::CodecId;

fn engines_over_series(nsteps: usize) -> Vec<QueryEngine> {
    let scenario = NyxScenario::new(11);
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let mut session = TemporalSession::new(TemporalSessionConfig::new(1e-3), 8);
    TimeSeries::new(&scenario, cfg, 0.02, nsteps)
        .map(|(_, _, h)| {
            let (w, mem) = H5Writer::in_memory();
            session.write_to(Arc::new(w), &h).unwrap();
            QueryEngine::from_reader(H5Reader::from_storage(Box::new(mem)).unwrap()).unwrap()
        })
        .collect()
}

#[test]
fn chunk_references_resolve_without_decoding() {
    let engines = engines_over_series(2);
    // First snapshot: spatial-only, no chunk references anything.
    let first = &engines[0];
    assert!(first.has_persistent_index());
    for l in 0..first.meta().num_levels() {
        for e in first.chunk_entries(l).unwrap() {
            assert_eq!(e.codec_id, CodecId::Temporal as u32);
            assert_eq!(e.reference, None);
        }
    }
    // Second snapshot: its stable-region chunks name snapshot 1.
    let second = &engines[1];
    let mut saw_reference = false;
    for l in 0..second.meta().num_levels() {
        for (c, e) in second.chunk_entries(l).unwrap().iter().enumerate() {
            assert_eq!(second.chunk_reference(l, c).unwrap(), e.reference);
            if e.reference == Some(1) {
                saw_reference = true;
            }
        }
    }
    assert!(
        saw_reference,
        "no chunk of snapshot 2 records its reference"
    );
}

#[test]
fn out_of_range_lookups_are_typed_errors() {
    let engines = engines_over_series(1);
    let e = &engines[0];
    assert!(e.chunk_entries(99).is_err());
    assert!(e.chunk_reference(0, 999).is_err());
}
