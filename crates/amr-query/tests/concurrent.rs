//! `QueryEngine` is shared across threads by the service layer: queries
//! take `&self` and all mutability is interior (cache shards, atomic
//! counters). This suite hammers one engine from many threads and
//! checks every answer bitwise against a serial baseline.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amr_query::prelude::*;
use amric::config::AmricConfig;
use amric::writer::write_amric;
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amr-query-conc-{}-{name}.h5l", std::process::id()));
    p
}

fn write_plotfile(seed: u64, path: &std::path::Path) {
    let s = NyxScenario::new(seed);
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&s, &cfg, 0.0);
    write_amric(path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
}

fn view_bits(view: &RegionView) -> Vec<Vec<u64>> {
    view.levels
        .iter()
        .map(|lr| lr.data.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn concurrent_readers_match_serial_answers() {
    let path = tmp("readers");
    write_plotfile(81, &path);
    // Small cache budget so threads also race insert/evict paths, plus
    // prefetch workers so rankpar fan-out runs under contention too.
    let engine = Arc::new(
        QueryEngine::open(&path)
            .unwrap()
            .with_cache_bytes(64 * 1024)
            .with_workers(2),
    );
    let rois: Vec<IntBox> = vec![
        IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)),
        IntBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 15, 3)),
        IntBox::from_extents(16, 16, 16),
    ];
    let points: Vec<IntVect> = (0..16)
        .map(|i| IntVect::new(i % 16, (3 * i) % 16, (7 * i) % 16))
        .collect();
    // Serial baselines first.
    let roi_expect: Vec<_> = rois
        .iter()
        .map(|roi| view_bits(&engine.roi(0, *roi, LevelSelect::All).unwrap()))
        .collect();
    let point_expect: Vec<_> = points
        .iter()
        .map(|p| {
            engine
                .point_sample(1, *p)
                .unwrap()
                .map(|s| (s.level, s.cell, s.value.to_bits()))
        })
        .collect();
    // Now 8 threads × 10 rounds, mixing point and ROI traffic, all on
    // `&engine`.
    let mut handles = Vec::new();
    for t in 0..8usize {
        let engine = Arc::clone(&engine);
        let rois = rois.clone();
        let points = points.clone();
        let roi_expect = roi_expect.clone();
        let point_expect = point_expect.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..10 {
                let ri = (t + round) % rois.len();
                let view = engine.roi(0, rois[ri], LevelSelect::All).unwrap();
                assert_eq!(view_bits(&view), roi_expect[ri], "thread {t} roi {ri}");
                let pi = (t * 3 + round) % points.len();
                let got = engine
                    .point_sample(1, points[pi])
                    .unwrap()
                    .map(|s| (s.level, s.cell, s.value.to_bits()));
                assert_eq!(got, point_expect[pi], "thread {t} point {pi}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Counter sanity: every query accounted exactly once.
    let s = engine.stats();
    assert_eq!(s.roi_queries, rois.len() as u64 + 8 * 10);
    assert_eq!(s.point_queries, points.len() as u64 + 8 * 10);
    std::fs::remove_file(&path).ok();
}

#[test]
fn shared_store_isolates_per_file_stats() {
    let path_a = tmp("shared-a");
    let path_b = tmp("shared-b");
    write_plotfile(82, &path_a);
    write_plotfile(83, &path_b);
    let store: Arc<ChunkStore> = Arc::new(ShardedLru::new(8 << 20));
    let a = QueryEngine::open(&path_a)
        .unwrap()
        .with_shared_cache(Arc::clone(&store), 1);
    let b = QueryEngine::open(&path_b)
        .unwrap()
        .with_shared_cache(Arc::clone(&store), 2);
    let roi = IntBox::from_extents(16, 16, 16);
    let va = a.roi(0, roi, LevelSelect::All).unwrap();
    let vb = b.roi(0, roi, LevelSelect::All).unwrap();
    // Different seeds produce different data; same store must never
    // cross-serve chunks between file ids.
    assert_ne!(view_bits(&va), view_bits(&vb));
    // Warm pass on A hits; B's counters are untouched by it.
    let b_stats_before = b.stats();
    let va2 = a.roi(0, roi, LevelSelect::All).unwrap();
    assert_eq!(view_bits(&va), view_bits(&va2));
    assert!(a.stats().cache.hits > 0, "warm pass must hit");
    assert_eq!(b.stats().cache.hits, b_stats_before.cache.hits);
    // Both engines' chunks live in the one store.
    assert!(store.resident_bytes() > 0);
    let (sa, sb) = (a.stats(), b.stats());
    assert!(sa.cache.insertions > 0 && sb.cache.insertions > 0);
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
