//! The query subsystem's hard invariant: any ROI/level query answered
//! through `QueryEngine` is **bitwise-identical** to slicing the same
//! region out of a full `read_amric_hierarchy` decode — under a cold
//! cache, a warm cache, prefetch worker counts {1, 2, 4}, and for legacy
//! (index-less) files served through the fallback scan. Enforced for
//! every codec configuration a plotfile can contain.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amr_query::prelude::*;
use amric::config::{AmricConfig, MergePolicy};
use amric::reader::{read_amric_hierarchy, Plotfile};
use amric::writer::write_amric;
use h5lite::strip_chunk_indexes;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amr-query-eq-{}-{name}.h5l", std::process::id()));
    p
}

fn hierarchy(seed: u64) -> AmrHierarchy {
    let s = NyxScenario::new(seed);
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    build_hierarchy(&s, &cfg, 0.0)
}

/// Every codec configuration the AMRIC pipeline can put in a plotfile
/// (stream modes LR/SLE, LR/LinearMerge, Interp/Cluster, Interp/Linear).
fn codec_configs() -> Vec<(&'static str, AmricConfig)> {
    vec![
        ("lr-sle", AmricConfig::lr(1e-3)),
        (
            "lr-lm",
            AmricConfig::lr(1e-3).with_merge(MergePolicy::LinearMerge),
        ),
        ("interp-cluster", AmricConfig::interp(1e-3)),
        (
            "interp-linear",
            AmricConfig::interp(1e-3).with_cluster_arrangement(false),
        ),
    ]
}

/// Reference: slice `region` (level coordinates) of one level out of the
/// full decode. Cells no box covers read as 0.0 — the full decode's own
/// convention for unrepresented cells.
fn reference_slice(pf: &Plotfile, level: usize, region: &IntBox, field: usize) -> Vec<u64> {
    region
        .iter_points()
        .map(|p| {
            pf.levels[level]
                .value_at(&p, field)
                .unwrap_or(0.0)
                .to_bits()
        })
        .collect()
}

fn view_bits(lr: &LevelRegion) -> Vec<u64> {
    lr.data.data().iter().map(|v| v.to_bits()).collect()
}

/// The regions of interest the suite probes, in level-0 coordinates:
/// interior cube over the refined region, a domain-edge box, a thin slab,
/// and the full domain.
fn probe_rois() -> Vec<IntBox> {
    vec![
        IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11)),
        IntBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 15, 5)),
        IntBox::new(IntVect::new(2, 9, 7), IntVect::new(13, 10, 7)),
        IntBox::from_extents(16, 16, 16),
    ]
}

#[test]
fn roi_queries_match_full_decode_bitwise() {
    let h = hierarchy(71);
    for (tag, cfg) in codec_configs() {
        let path = tmp(&format!("roi-{tag}"));
        write_amric(&path, &h, &cfg, 8).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        for workers in [1usize, 2, 4] {
            let engine = QueryEngine::open(&path).unwrap().with_workers(workers);
            assert!(engine.has_persistent_index(), "{tag}: index missing");
            for (ri, roi) in probe_rois().into_iter().enumerate() {
                for field in [0usize, 3] {
                    // Cold pass (fresh regions may still share chunks with
                    // earlier ROIs — that is the point of the cache; the
                    // first ROI of the first field is fully cold).
                    let view = engine.roi(field, roi, LevelSelect::All).unwrap();
                    assert_eq!(view.levels.len(), 2, "{tag} roi {ri}");
                    for lr in &view.levels {
                        assert_eq!(
                            view_bits(lr),
                            reference_slice(&pf, lr.level, &lr.region, field),
                            "{tag} workers={workers} roi {ri} field {field} level {}",
                            lr.level
                        );
                    }
                    // Warm pass: served from cache, still bitwise equal.
                    let hits_before = engine.cache_stats().hits;
                    let warm = engine.roi(field, roi, LevelSelect::All).unwrap();
                    assert!(
                        engine.cache_stats().hits > hits_before,
                        "{tag}: warm pass did not hit the cache"
                    );
                    for (a, b) in view.levels.iter().zip(&warm.levels) {
                        assert_eq!(view_bits(a), view_bits(b), "{tag}: warm differs from cold");
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn legacy_index_less_files_answer_identically() {
    let h = hierarchy(72);
    for (tag, cfg) in codec_configs() {
        let path = tmp(&format!("legacy-{tag}"));
        write_amric(&path, &h, &cfg, 8).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        let indexed = QueryEngine::open(&path).unwrap().with_workers(2);
        let roi = IntBox::new(IntVect::new(3, 2, 5), IntVect::new(12, 13, 11));
        let from_indexed = indexed.roi(1, roi, LevelSelect::All).unwrap();
        // Downgrade the file to the pre-index layout and re-query.
        strip_chunk_indexes(&path).unwrap();
        let legacy = QueryEngine::open(&path).unwrap().with_workers(2);
        assert!(
            !legacy.has_persistent_index(),
            "{tag}: stripped file should fall back to the scan"
        );
        let from_legacy = legacy.roi(1, roi, LevelSelect::All).unwrap();
        assert_eq!(from_indexed.levels.len(), from_legacy.levels.len());
        for (a, b) in from_indexed.levels.iter().zip(&from_legacy.levels) {
            assert_eq!(a.region, b.region, "{tag}");
            assert_eq!(view_bits(a), view_bits(b), "{tag}: legacy differs");
            assert_eq!(
                view_bits(a),
                reference_slice(&pf, a.level, &a.region, 1),
                "{tag}: legacy differs from full decode"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn level_select_variants_and_level_region() {
    let h = hierarchy(73);
    let path = tmp("select");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    let pf = read_amric_hierarchy(&path).unwrap();
    let engine = QueryEngine::open(&path).unwrap();
    let roi = IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11));
    let fine_only = engine.roi(0, roi, LevelSelect::Finest).unwrap();
    assert_eq!(fine_only.levels.len(), 1);
    assert_eq!(fine_only.levels[0].level, 1);
    let coarse_only = engine.roi(0, roi, LevelSelect::Level(0)).unwrap();
    assert_eq!(coarse_only.levels[0].region, roi);
    let range = engine.roi(0, roi, LevelSelect::Range(0, 1)).unwrap();
    assert_eq!(range.levels.len(), 2);
    // level_region takes level-local coordinates directly.
    let fine_region = IntBox::new(IntVect::new(9, 8, 10), IntVect::new(22, 21, 23));
    let lr = engine.level_region(0, 1, fine_region).unwrap();
    assert_eq!(view_bits(&lr), reference_slice(&pf, 1, &lr.region, 0));
    // A region clipped at the fine domain edge still answers.
    let clipped = engine
        .level_region(
            0,
            1,
            IntBox::new(IntVect::new(20, 20, 20), IntVect::new(60, 60, 60)),
        )
        .unwrap();
    assert_eq!(
        view_bits(&clipped),
        reference_slice(&pf, 1, &clipped.region, 0)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn point_samples_match_full_decode_with_fine_priority() {
    let h = hierarchy(74);
    let path = tmp("points");
    write_amric(&path, &h, &AmricConfig::interp(1e-3), 8).unwrap();
    let pf = read_amric_hierarchy(&path).unwrap();
    let engine = QueryEngine::open(&path).unwrap();
    let meta = engine.meta();
    let nlevels = meta.num_levels();
    let finest_factor = meta.refine_factor(nlevels - 1);
    // Reference coverage from the full decode's reconstructed plans.
    let covered = |level: usize, cell: &IntVect| {
        pf.unit_plans[level]
            .iter()
            .flatten()
            .any(|u| u.region.contains(cell))
    };
    let fine_domain = meta.levels[nlevels - 1].domain;
    let mut sampled = 0usize;
    for p in fine_domain.iter_points().step_by(97) {
        let got = engine.point_sample(2, p).unwrap();
        // Expected: finest level whose valid data covers the cell.
        let mut expect = None;
        for l in (0..nlevels).rev() {
            let cell = p.coarsened(finest_factor / meta.refine_factor(l));
            if covered(l, &cell) {
                expect = Some((l, cell, pf.levels[l].value_at(&cell, 2).unwrap()));
                break;
            }
        }
        match (got, expect) {
            (Some(s), Some((l, cell, v))) => {
                assert_eq!(s.level, l, "point {p:?}");
                assert_eq!(s.cell, cell, "point {p:?}");
                assert_eq!(s.value.to_bits(), v.to_bits(), "point {p:?}");
                sampled += 1;
            }
            (None, None) => {}
            (got, expect) => panic!("point {p:?}: engine {got:?} vs reference {expect:?}"),
        }
    }
    assert!(sampled > 10, "too few covered sample points ({sampled})");
    std::fs::remove_file(&path).ok();
}

#[test]
fn plane_slices_match_full_decode() {
    let h = hierarchy(75);
    let path = tmp("planes");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    let pf = read_amric_hierarchy(&path).unwrap();
    let engine = QueryEngine::open(&path).unwrap().with_workers(2);
    for (level, axis, coord) in [(0, 2, 7), (0, 0, 0), (1, 1, 16), (1, 2, 31)] {
        let slice = engine.plane_slice(0, level, axis, coord).unwrap();
        assert_eq!(slice.region.size().get(axis), 1);
        assert_eq!(
            view_bits(&slice),
            reference_slice(&pf, level, &slice.region, 0),
            "level {level} axis {axis} coord {coord}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn pruning_reads_fewer_chunks_and_tiny_cache_stays_correct() {
    let h = hierarchy(76);
    let path = tmp("prune");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    let pf = read_amric_hierarchy(&path).unwrap();
    // A one-cell coarse ROI decodes at most one chunk per level — not the
    // whole file.
    let engine = QueryEngine::open(&path).unwrap();
    let tiny = IntBox::new(IntVect::new(1, 1, 1), IntVect::new(1, 1, 1));
    engine.roi(0, tiny, LevelSelect::Level(0)).unwrap();
    let s = engine.cache_stats();
    assert_eq!(s.insertions, 1, "one-cell coarse ROI must decode 1 chunk");
    // A byte-starved cache keeps evicting but answers stay bitwise right.
    let starved = QueryEngine::open(&path).unwrap().with_cache_bytes(1024);
    let roi = IntBox::from_extents(16, 16, 16);
    for _ in 0..2 {
        let view = starved.roi(0, roi, LevelSelect::All).unwrap();
        for lr in &view.levels {
            assert_eq!(view_bits(lr), reference_slice(&pf, lr.level, &lr.region, 0));
        }
    }
    // The starved budget forces evictions (the exact byte-budget policy —
    // newest entry per shard survives, LRU goes first — is unit-tested in
    // `cache.rs`); answers stay bitwise correct regardless.
    let st = starved.cache_stats();
    assert!(st.evictions > 0, "starved cache never evicted: {st:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn invalid_queries_and_files_are_typed_errors() {
    let h = hierarchy(77);
    let path = tmp("errors");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
    let engine = QueryEngine::open(&path).unwrap();
    let roi = IntBox::from_extents(4, 4, 4);
    assert!(matches!(
        engine.roi(99, roi, LevelSelect::All),
        Err(QueryError::BadQuery(_))
    ));
    assert!(matches!(
        engine.roi(0, roi, LevelSelect::Level(9)),
        Err(QueryError::BadQuery(_))
    ));
    assert!(matches!(
        engine.roi(0, roi, LevelSelect::Range(1, 0)),
        Err(QueryError::BadQuery(_))
    ));
    assert!(matches!(
        engine.plane_slice(0, 0, 3, 0),
        Err(QueryError::BadQuery(_))
    ));
    assert!(matches!(
        engine.plane_slice(0, 0, 2, -5),
        Err(QueryError::BadQuery(_))
    ));
    std::fs::remove_file(&path).ok();
    // Baseline files have no unit layout to query.
    let bpath = tmp("errors-baseline");
    amric::baseline::write_nocomp(&bpath, &h).unwrap();
    assert!(matches!(
        QueryEngine::open(&bpath),
        Err(QueryError::BadQuery(_))
    ));
    std::fs::remove_file(&bpath).ok();
}
