//! Typed errors for the query subsystem.

use h5lite::H5Error;
use sz_codec::CodecError;

/// Anything that can go wrong answering a query.
#[derive(Debug)]
pub enum QueryError {
    /// The container layer failed (I/O, malformed file, missing dataset).
    H5(H5Error),
    /// A chunk stream failed to decode.
    Codec(CodecError),
    /// The query itself is invalid for this file (bad field, level out of
    /// range, coordinate outside the domain, …).
    BadQuery(String),
    /// The file's stored layout contradicts its own metadata (a decoded
    /// chunk does not match the reconstructed unit plan).
    Inconsistent(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::H5(e) => write!(f, "container error: {e}"),
            QueryError::Codec(e) => write!(f, "chunk decode failed: {e}"),
            QueryError::BadQuery(m) => write!(f, "invalid query: {m}"),
            QueryError::Inconsistent(m) => write!(f, "inconsistent plotfile: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::H5(e) => Some(e),
            QueryError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<H5Error> for QueryError {
    fn from(e: H5Error) -> Self {
        QueryError::H5(e)
    }
}

impl From<CodecError> for QueryError {
    fn from(e: CodecError) -> Self {
        QueryError::Codec(e)
    }
}

/// Result alias.
pub type QueryResult<T> = Result<T, QueryError>;
