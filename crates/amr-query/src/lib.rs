//! # amr-query — random-access reads over AMRIC plotfiles
//!
//! AMRIC's promise (Wang et al., SC '23) is that compressed AMR output
//! stays *post-processing friendly*: analysis and visualization read it
//! back without a custom decompression step. The dominant consumer
//! workload is not "load the whole snapshot" but region-of-interest and
//! level-selective reads — pan a subvolume, sample a probe point, pull
//! one slice plane. This crate serves exactly those queries while
//! touching only the chunks that intersect the query:
//!
//! * **Indexed partial reads** — the h5lite container persists a
//!   per-dataset chunk index (codec id + extent bounding box per chunk);
//!   the planner prunes chunks by rectangle intersection before any byte
//!   is read. Files written before the index existed are still served
//!   through a fallback scan.
//! * **ROI / level / point / plane queries** —
//!   [`QueryEngine::roi`] (a [`Box3`] in coarse coordinates refined to
//!   every selected level), [`QueryEngine::level_region`],
//!   [`QueryEngine::point_sample`] (finest covering level wins, the
//!   fine-over-coarse rule of the writer's pre-process), and
//!   [`QueryEngine::plane_slice`].
//! * **Decompressed-chunk cache** — a sharded, byte-bounded LRU
//!   ([`cache::ChunkCache`]) between planner and codecs; repeated and
//!   overlapping queries from one process decode each chunk once.
//! * **Parallel prefetch** — cache misses fan out over the `rankpar`
//!   worker pool with ordered reassembly and per-worker scratch, the same
//!   engine the overlapped write path uses.
//!
//! Results are **bitwise-identical** to slicing the corresponding region
//! out of a full [`amric::reader::read_amric_hierarchy`] decode — cold or
//! warm cache, any worker count, indexed or legacy file (enforced by
//! `tests/equivalence.rs`).
//!
//! ```no_run
//! use amr_query::prelude::*;
//!
//! let engine = QueryEngine::open("plt0001.h5l").unwrap().with_workers(4);
//! let view = engine
//!     .roi(0, Box3::from_extents(8, 8, 8), LevelSelect::All)
//!     .unwrap();
//! for lr in &view.levels {
//!     println!("level {}: {:?}", lr.level, lr.region);
//! }
//! println!("cache: {:?}", engine.cache_stats());
//! ```

pub mod cache;
pub mod engine;
pub mod error;

pub use cache::{CacheStats, ChunkCache, ChunkStore, GlobalChunkKey, ShardedLru};
pub use engine::{
    Box3, EngineStats, LevelRegion, LevelSelect, PointSample, QueryCost, QueryEngine, RegionView,
};
pub use error::{QueryError, QueryResult};

/// Commonly used items.
pub mod prelude {
    pub use crate::cache::{CacheStats, ChunkCache, ChunkStore, GlobalChunkKey, ShardedLru};
    pub use crate::engine::{
        Box3, EngineStats, LevelRegion, LevelSelect, PointSample, QueryCost, QueryEngine,
        RegionView,
    };
    pub use crate::error::{QueryError, QueryResult};
}
