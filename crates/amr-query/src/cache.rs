//! Sharded, byte-bounded LRU cache of decompressed chunks — usable as a
//! private per-engine cache or as one **global store shared by every
//! open plotfile in a process** (the `amr-serve` service tier).
//!
//! Decoding a chunk costs a full SZ decompression; analysis workloads
//! (pan a region of interest, step through neighboring slices) hit the
//! same chunks over and over. The cache sits between the query planner
//! and the codecs so repeated or overlapping queries served from one
//! process pay the decode once.
//!
//! Two layers:
//!
//! * [`ShardedLru<K>`] — the storage engine, generic over the key. Keys
//!   hash onto independently-locked shards; the byte budget is split
//!   evenly across shards; an insert evicts that shard's
//!   least-recently-used entries until the newcomer fits (the newest
//!   entry of a shard is never evicted by its own insert, so a single
//!   chunk larger than a shard's budget still caches and is first out on
//!   the next insert). Values are `Arc`ed unit-block vectors: eviction
//!   never invalidates data a query is still assembling from.
//! * [`ChunkCache`] — the engine-facing handle: a key prefix (the
//!   *file id*) plus its own atomic hit/miss/insert/evict counters over
//!   a [`ShardedLru`] that may be private ([`ChunkCache::new`]) or
//!   shared ([`ChunkCache::shared`]). Sharing the store while keeping
//!   counters on the handle is what gives the service tier per-tenant
//!   statistics under one global byte budget.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sz_codec::Buffer3;

/// Cache key within one plotfile: `(level, field, chunk position)` of a
/// field dataset's chunk (chunk position = writing rank in AMRIC
/// plotfiles).
pub type ChunkKey = (usize, usize, usize);

/// Store-wide key: a [`ChunkKey`] qualified by the owning file's id, so
/// many open plotfiles can share one byte budget without colliding.
pub type GlobalChunkKey = (u64, ChunkKey);

/// The store type every [`ChunkCache`] handle points at.
pub type ChunkStore = ShardedLru<GlobalChunkKey>;

/// A cached decoded chunk: the unit blocks of one rank's chunk, in plan
/// order.
pub type CachedChunk = Arc<Vec<Buffer3>>;

/// Snapshot of a cache handle's counters (hits/misses/insertions/
/// evictions are the handle's own; resident/capacity describe the
/// underlying store, which may be shared).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a decode.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident (whole store).
    pub resident_bytes: u64,
    /// Configured budget in bytes (whole store).
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: CachedChunk,
    bytes: u64,
    last_used: u64,
}

struct Shard<K> {
    entries: HashMap<K, Entry>,
    bytes: u64,
}

impl<K> Default for Shard<K> {
    fn default() -> Self {
        Shard {
            entries: HashMap::new(),
            bytes: 0,
        }
    }
}

/// The sharded LRU storage engine. All methods take `&self`; the store
/// is shared by prefetch workers and, in the service tier, by every open
/// plotfile's engine.
pub struct ShardedLru<K> {
    shards: Vec<Mutex<Shard<K>>>,
    shard_capacity: u64,
    capacity: u64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// Shard count: enough to keep a handful of prefetch workers off each
/// other's locks without fragmenting small budgets.
const SHARDS: usize = 8;

/// Approximate resident size of a decoded chunk (unit payloads dominate;
/// the accounting ignores per-`Buffer3` header overhead).
pub fn chunk_bytes(units: &[Buffer3]) -> u64 {
    units.iter().map(|u| u.dims().len() as u64 * 8).sum()
}

impl<K: Hash + Eq + Copy> ShardedLru<K> {
    /// Store bounded by `max_bytes` of decoded data (split evenly across
    /// the shards).
    pub fn new(max_bytes: u64) -> Self {
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: max_bytes / SHARDS as u64,
            capacity: max_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look a chunk up, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<CachedChunk> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(key).lock();
        match shard.entries.get_mut(key) {
            Some(e) => {
                e.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a decoded chunk, evicting the shard's least-recently-used
    /// entries until it fits (the newcomer itself is never evicted by its
    /// own insert). Re-inserting an existing key refreshes it. Returns
    /// the number of entries evicted to make room.
    pub fn insert(&self, key: K, value: CachedChunk) -> u64 {
        let bytes = chunk_bytes(&value);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&key).lock();
        if let Some(old) = shard.entries.remove(&key) {
            shard.bytes -= old.bytes;
        }
        let mut evicted_here = 0u64;
        while shard.bytes + bytes > self.shard_capacity && !shard.entries.is_empty() {
            let victim = *shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
                .expect("non-empty shard");
            let evicted = shard.entries.remove(&victim).expect("victim present");
            shard.bytes -= evicted.bytes;
            evicted_here += 1;
        }
        shard.bytes += bytes;
        shard.entries.insert(
            key,
            Entry {
                value,
                bytes,
                last_used: stamp,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted_here, Ordering::Relaxed);
        evicted_here
    }

    /// Drop every entry whose key matches `pred`; returns the count
    /// removed. The service catalog uses this to invalidate a stale
    /// file's chunks when a plotfile is reopened under a new generation.
    pub fn remove_matching(&self, pred: impl Fn(&K) -> bool) -> u64 {
        let mut removed = 0u64;
        for s in &self.shards {
            let mut s = s.lock();
            let victims: Vec<K> = s.entries.keys().filter(|k| pred(k)).copied().collect();
            for k in victims {
                let e = s.entries.remove(&k).expect("listed key present");
                s.bytes -= e.bytes;
                removed += 1;
            }
        }
        removed
    }

    /// Store-wide counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.shards.iter().map(|s| s.lock().bytes).sum(),
            capacity_bytes: self.capacity,
        }
    }

    /// Decoded bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.entries.clear();
            s.bytes = 0;
        }
    }
}

/// Engine-facing cache handle: a file-id key prefix plus per-handle
/// counters over a private or shared [`ChunkStore`].
///
/// Every [`crate::QueryEngine`] owns one handle. With
/// [`ChunkCache::new`] the store is private and the behavior is the
/// classic per-engine cache. With [`ChunkCache::shared`] many engines
/// point at one store under one global byte budget while each handle
/// still counts its own hits/misses/insertions/evictions — the
/// per-tenant statistics the service tier reports.
pub struct ChunkCache {
    store: Arc<ChunkStore>,
    file_id: u64,
    /// Whether this handle owns the store exclusively (`clear` semantics:
    /// a private handle clears the whole store, a shared handle drops
    /// only its own file's entries).
    private: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ChunkCache {
    /// Private cache bounded by `max_bytes` of decoded data.
    pub fn new(max_bytes: u64) -> Self {
        ChunkCache {
            store: Arc::new(ShardedLru::new(max_bytes)),
            file_id: 0,
            private: true,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Handle into a shared store, qualifying every key with `file_id`.
    /// Distinct open files (and distinct generations of the same path)
    /// must use distinct ids; the catalog allocates them.
    pub fn shared(store: Arc<ChunkStore>, file_id: u64) -> Self {
        ChunkCache {
            store,
            file_id,
            private: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying store (shared or private).
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// The file-id prefix this handle qualifies keys with.
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Look a chunk up, refreshing its recency on a hit.
    pub fn get(&self, key: &ChunkKey) -> Option<CachedChunk> {
        let got = self.store.get(&(self.file_id, *key));
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert a decoded chunk (evictions it causes are charged to this
    /// handle).
    pub fn insert(&self, key: ChunkKey, value: CachedChunk) {
        let evicted = self.store.insert((self.file_id, key), value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Handle-local counter snapshot over store-wide residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.store.resident_bytes(),
            capacity_bytes: self.store.capacity_bytes(),
        }
    }

    /// Drop cached chunks: the whole store for a private handle, only
    /// this file's entries for a shared one (counters survive).
    pub fn clear(&self) {
        if self.private {
            self.store.clear();
        } else {
            let fid = self.file_id;
            self.store.remove_matching(|(f, _)| *f == fid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_codec::Dims3;

    fn chunk(cells: usize, tag: f64) -> CachedChunk {
        Arc::new(vec![Buffer3::from_vec(
            Dims3::new(cells, 1, 1),
            vec![tag; cells],
        )])
    }

    #[test]
    fn hit_miss_accounting() {
        let c = ChunkCache::new(1 << 20);
        assert!(c.get(&(0, 0, 0)).is_none());
        c.insert((0, 0, 0), chunk(16, 1.0));
        let v = c.get(&(0, 0, 0)).expect("hit");
        assert_eq!(v[0].data()[0], 1.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.resident_bytes, 16 * 8);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // One shard's budget holds two 64-cell chunks; pin every key to
        // the same shard by brute-force search (the store hashes the
        // global `(file_id, key)` tuple; a private handle uses id 0).
        let c = ChunkCache::new((64 * 8 * 2) * SHARDS as u64);
        let shard_of = |key: &ChunkKey| {
            let mut h = DefaultHasher::new();
            (0u64, *key).hash(&mut h);
            (h.finish() as usize) % SHARDS
        };
        let keys: Vec<ChunkKey> = (0..1000usize)
            .map(|i| (i, 0, 0))
            .filter(|k| shard_of(k) == 0)
            .take(3)
            .collect();
        assert_eq!(keys.len(), 3);
        c.insert(keys[0], chunk(64, 0.0));
        c.insert(keys[1], chunk(64, 1.0));
        // Touch keys[0] so keys[1] is the LRU when keys[2] arrives.
        assert!(c.get(&keys[0]).is_some());
        c.insert(keys[2], chunk(64, 2.0));
        assert!(c.get(&keys[0]).is_some(), "recently used entry survives");
        assert!(c.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(c.get(&keys[2]).is_some(), "newcomer resident");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_still_caches() {
        let c = ChunkCache::new(64); // 8 bytes per shard
        c.insert((0, 0, 0), chunk(100, 3.0));
        assert!(c.get(&(0, 0, 0)).is_some());
        // The next insert into the same shard evicts it.
        let s = c.stats();
        assert_eq!(s.insertions, 1);
        assert!(s.resident_bytes > 64);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c = ChunkCache::new(1 << 20);
        c.insert((1, 2, 3), chunk(8, 0.5));
        assert!(c.get(&(1, 2, 3)).is_some());
        c.clear();
        assert!(c.get(&(1, 2, 3)).is_none());
        let s = c.stats();
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn shared_store_isolates_files_and_counters() {
        let store: Arc<ChunkStore> = Arc::new(ShardedLru::new(1 << 20));
        let a = ChunkCache::shared(Arc::clone(&store), 1);
        let b = ChunkCache::shared(Arc::clone(&store), 2);
        a.insert((0, 0, 0), chunk(16, 1.0));
        // Same chunk key, different file id: b must not see a's entry.
        assert!(b.get(&(0, 0, 0)).is_none());
        b.insert((0, 0, 0), chunk(16, 2.0));
        assert_eq!(a.get(&(0, 0, 0)).expect("a's entry")[0].data()[0], 1.0);
        assert_eq!(b.get(&(0, 0, 0)).expect("b's entry")[0].data()[0], 2.0);
        // Handle counters are per-tenant; the store aggregates.
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!((sa.hits, sa.misses, sa.insertions), (1, 0, 1));
        assert_eq!((sb.hits, sb.misses, sb.insertions), (1, 1, 1));
        let g = store.stats();
        assert_eq!((g.hits, g.misses, g.insertions), (2, 1, 2));
        // Both files' bytes count against the one budget.
        assert_eq!(g.resident_bytes, 2 * 16 * 8);
    }

    #[test]
    fn shared_clear_drops_only_own_file() {
        let store: Arc<ChunkStore> = Arc::new(ShardedLru::new(1 << 20));
        let a = ChunkCache::shared(Arc::clone(&store), 7);
        let b = ChunkCache::shared(Arc::clone(&store), 8);
        a.insert((0, 0, 0), chunk(8, 1.0));
        b.insert((0, 0, 0), chunk(8, 2.0));
        a.clear();
        assert!(a.get(&(0, 0, 0)).is_none(), "a's entries dropped");
        assert!(b.get(&(0, 0, 0)).is_some(), "b's entries survive");
        assert_eq!(store.resident_bytes(), 8 * 8);
    }

    #[test]
    fn remove_matching_invalidates_a_generation() {
        let store: Arc<ChunkStore> = Arc::new(ShardedLru::new(1 << 20));
        let old = ChunkCache::shared(Arc::clone(&store), 3);
        for r in 0..5 {
            old.insert((0, 0, r), chunk(8, r as f64));
        }
        assert_eq!(store.remove_matching(|(f, _)| *f == 3), 5);
        assert_eq!(store.resident_bytes(), 0);
        assert!(old.get(&(0, 0, 0)).is_none());
    }
}
