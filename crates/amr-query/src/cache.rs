//! Sharded, byte-bounded LRU cache of decompressed chunks.
//!
//! Decoding a chunk costs a full SZ decompression; analysis workloads
//! (pan a region of interest, step through neighboring slices) hit the
//! same chunks over and over. The cache sits between the query planner
//! and the codecs so repeated or overlapping queries served from one
//! process pay the decode once.
//!
//! Design:
//!
//! * **Sharded** — keys hash onto independently-locked shards, so
//!   prefetch workers inserting different chunks never contend on one
//!   lock.
//! * **Byte-bounded** — the budget is split evenly across shards; an
//!   insert evicts that shard's least-recently-used entries until the
//!   newcomer fits. The newest entry of a shard is never evicted by its
//!   own insert, so a single chunk larger than a shard's budget still
//!   caches (and is first out on the next insert).
//! * **Shared values** — entries are `Arc`ed unit-block vectors: eviction
//!   never invalidates data a query is still assembling from.
//! * **Counted** — hits, misses, insertions, and evictions are tracked
//!   for the stats surface ([`CacheStats`]).

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sz_codec::Buffer3;

/// Cache key: `(level, field, chunk position)` of a field dataset's
/// chunk (chunk position = writing rank in AMRIC plotfiles).
pub type ChunkKey = (usize, usize, usize);

/// A cached decoded chunk: the unit blocks of one rank's chunk, in plan
/// order.
pub type CachedChunk = Arc<Vec<Buffer3>>;

/// Snapshot of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a decode.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: u64,
    /// Configured budget in bytes.
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: CachedChunk,
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<ChunkKey, Entry>,
    bytes: u64,
}

/// The sharded LRU itself. All methods take `&self`; the cache is shared
/// by the prefetch workers.
pub struct ChunkCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: u64,
    capacity: u64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// Shard count: enough to keep a handful of prefetch workers off each
/// other's locks without fragmenting small budgets.
const SHARDS: usize = 8;

/// Approximate resident size of a decoded chunk (unit payloads dominate;
/// the accounting ignores per-`Buffer3` header overhead).
pub fn chunk_bytes(units: &[Buffer3]) -> u64 {
    units.iter().map(|u| u.dims().len() as u64 * 8).sum()
}

impl ChunkCache {
    /// Cache bounded by `max_bytes` of decoded data (split evenly across
    /// the shards).
    pub fn new(max_bytes: u64) -> Self {
        ChunkCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: max_bytes / SHARDS as u64,
            capacity: max_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &ChunkKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look a chunk up, refreshing its recency on a hit.
    pub fn get(&self, key: &ChunkKey) -> Option<CachedChunk> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(key).lock();
        match shard.entries.get_mut(key) {
            Some(e) => {
                e.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a decoded chunk, evicting the shard's least-recently-used
    /// entries until it fits (the newcomer itself is never evicted by its
    /// own insert). Re-inserting an existing key refreshes it.
    pub fn insert(&self, key: ChunkKey, value: CachedChunk) {
        let bytes = chunk_bytes(&value);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&key).lock();
        if let Some(old) = shard.entries.remove(&key) {
            shard.bytes -= old.bytes;
        }
        while shard.bytes + bytes > self.shard_capacity && !shard.entries.is_empty() {
            let victim = *shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
                .expect("non-empty shard");
            let evicted = shard.entries.remove(&victim).expect("victim present");
            shard.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.bytes += bytes;
        shard.entries.insert(
            key,
            Entry {
                value,
                bytes,
                last_used: stamp,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.shards.iter().map(|s| s.lock().bytes).sum(),
            capacity_bytes: self.capacity,
        }
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.entries.clear();
            s.bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_codec::Dims3;

    fn chunk(cells: usize, tag: f64) -> CachedChunk {
        Arc::new(vec![Buffer3::from_vec(
            Dims3::new(cells, 1, 1),
            vec![tag; cells],
        )])
    }

    #[test]
    fn hit_miss_accounting() {
        let c = ChunkCache::new(1 << 20);
        assert!(c.get(&(0, 0, 0)).is_none());
        c.insert((0, 0, 0), chunk(16, 1.0));
        let v = c.get(&(0, 0, 0)).expect("hit");
        assert_eq!(v[0].data()[0], 1.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.resident_bytes, 16 * 8);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // One shard's budget holds two 64-cell chunks; pin every key to
        // the same shard by brute-force search.
        let c = ChunkCache::new((64 * 8 * 2) * SHARDS as u64);
        let shard_of = |key: &ChunkKey| {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() as usize) % SHARDS
        };
        let keys: Vec<ChunkKey> = (0..1000usize)
            .map(|i| (i, 0, 0))
            .filter(|k| shard_of(k) == 0)
            .take(3)
            .collect();
        assert_eq!(keys.len(), 3);
        c.insert(keys[0], chunk(64, 0.0));
        c.insert(keys[1], chunk(64, 1.0));
        // Touch keys[0] so keys[1] is the LRU when keys[2] arrives.
        assert!(c.get(&keys[0]).is_some());
        c.insert(keys[2], chunk(64, 2.0));
        assert!(c.get(&keys[0]).is_some(), "recently used entry survives");
        assert!(c.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(c.get(&keys[2]).is_some(), "newcomer resident");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_still_caches() {
        let c = ChunkCache::new(64); // 8 bytes per shard
        c.insert((0, 0, 0), chunk(100, 3.0));
        assert!(c.get(&(0, 0, 0)).is_some());
        // The next insert into the same shard evicts it.
        let s = c.stats();
        assert_eq!(s.insertions, 1);
        assert!(s.resident_bytes > 64);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c = ChunkCache::new(1 << 20);
        c.insert((1, 2, 3), chunk(8, 0.5));
        assert!(c.get(&(1, 2, 3)).is_some());
        c.clear();
        assert!(c.get(&(1, 2, 3)).is_none());
        let s = c.stats();
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.hits, 1);
    }
}
