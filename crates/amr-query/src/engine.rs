//! [`QueryEngine`]: answer spatial/level queries against an AMRIC
//! plotfile by touching only the chunks that intersect the query.
//!
//! # How a query resolves
//!
//! 1. **Plan** — the engine reconstructs every rank's unit decomposition
//!    from the plotfile metadata ([`amric::reader::PlotfileMeta`]), the
//!    same way the writer's pre-process planned it. The persistent chunk
//!    index (chunk → codec id + extent bounding box) prunes whole chunks
//!    by rectangle intersection; the unit plan then gives the exact cell
//!    layout inside each surviving chunk. Legacy files without an index
//!    fall back to a scan: codec ids are sniffed from the stored chunk
//!    envelopes and extents re-derived from the unit plans.
//! 2. **Fetch** — needed chunks are looked up in the sharded
//!    decompressed-chunk cache; misses fan out over a `rankpar` worker
//!    pool (read raw bytes into per-worker scratch, decompress through
//!    the self-describing stream) with ordered reassembly, so cold reads
//!    scale with cores like the write path does.
//! 3. **Assemble** — decoded unit blocks intersecting the query region
//!    are copied into the result buffer. Cells no unit covers (outside
//!    every grid, or removed as fine-covered redundancy at write time)
//!    stay zero — exactly what a full [`amric::reader::read_amric_hierarchy`]
//!    decode leaves there, so partial and full reads are bitwise
//!    interchangeable (the equivalence suite enforces it).

use crate::cache::{chunk_bytes, CacheStats, CachedChunk, ChunkCache, ChunkKey, ChunkStore};
use crate::error::{QueryError, QueryResult};
use amr_mesh::prelude::*;
use amric::pipeline::decompress_field_units;
use amric::preprocess::{plan_bounding_box, UnitRef};
use amric::reader::{read_plotfile_meta, PlotfileMeta};
use amric::writer::field_dataset;
use h5lite::index::ChunkIndexEntry;
use h5lite::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sz_codec::{Buffer3, Dims3};

/// A rectangular region of interest in index space (alias of the mesh
/// crate's inclusive [`IntBox`]).
pub type Box3 = IntBox;

/// Which AMR levels a query covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LevelSelect {
    /// Every level in the file.
    All,
    /// One level.
    Level(usize),
    /// An inclusive level range `lo..=hi`.
    Range(usize, usize),
    /// Only the finest level.
    Finest,
}

impl LevelSelect {
    /// Resolve to concrete level numbers, validating against the file.
    pub fn resolve(self, num_levels: usize) -> QueryResult<Vec<usize>> {
        let check = |l: usize| {
            if l < num_levels {
                Ok(l)
            } else {
                Err(QueryError::BadQuery(format!(
                    "level {l} out of range (file has {num_levels} levels)"
                )))
            }
        };
        Ok(match self {
            LevelSelect::All => (0..num_levels).collect(),
            LevelSelect::Level(l) => vec![check(l)?],
            LevelSelect::Range(lo, hi) => {
                if lo > hi {
                    return Err(QueryError::BadQuery(format!(
                        "level range {lo}..={hi} is empty"
                    )));
                }
                (check(lo)?..=check(hi)?).collect()
            }
            LevelSelect::Finest => vec![num_levels
                .checked_sub(1)
                .ok_or_else(|| QueryError::BadQuery("file has no levels".into()))?],
        })
    }
}

/// One level's slice of a query result.
#[derive(Clone, Debug)]
pub struct LevelRegion {
    /// Which level the data came from.
    pub level: usize,
    /// The queried region in the level's own index space (the ROI refined
    /// to the level and clipped to its domain).
    pub region: IntBox,
    /// Values over `region` in Fortran order. Cells no unit covers are
    /// zero (same convention as the full decode).
    pub data: Buffer3,
}

impl LevelRegion {
    /// Value at a point given in the level's index space (`None` outside
    /// the region).
    pub fn value_at(&self, p: &IntVect) -> Option<f64> {
        if !self.region.contains(p) {
            return None;
        }
        let d = p.get(0) - self.region.lo.get(0);
        let e = p.get(1) - self.region.lo.get(1);
        let g = p.get(2) - self.region.lo.get(2);
        Some(self.data.get(d as usize, e as usize, g as usize))
    }
}

/// Result of a region-of-interest query: one [`LevelRegion`] per selected
/// level that intersects the ROI, coarsest first.
#[derive(Clone, Debug)]
pub struct RegionView {
    /// Queried field (component index).
    pub field: usize,
    /// Queried field name.
    pub field_name: String,
    /// Per-level slices.
    pub levels: Vec<LevelRegion>,
}

impl RegionView {
    /// The slice for one level, if it intersected the ROI.
    pub fn level(&self, level: usize) -> Option<&LevelRegion> {
        self.levels.iter().find(|l| l.level == level)
    }
}

/// Result of a point sample: the value at the finest level whose valid
/// (non-redundant) data covers the point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointSample {
    /// Level that answered.
    pub level: usize,
    /// The sampled cell in that level's index space.
    pub cell: IntVect,
    /// The decoded value.
    pub value: f64,
}

/// Per-level planning state: the reconstructed unit plans and the chunk
/// extents used for pruning.
struct LevelPlan {
    /// `[rank] -> units`, in chunk layout order.
    plans: Vec<Vec<UnitRef>>,
    /// One pruning entry per chunk (persisted index, or re-derived for
    /// legacy files).
    extents: Vec<ChunkIndexEntry>,
    /// `[rank] -> decoded size in bytes` of the rank's chunk (sum of its
    /// unit volumes × 8), precomputed for cost estimation.
    chunk_bytes: Vec<u64>,
}

/// Lock-free snapshot of an engine's lifetime counters (the satellite
/// stats surface: atomics only, no lock on the read path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// [`QueryEngine::roi`] calls answered (including errors).
    pub roi_queries: u64,
    /// [`QueryEngine::level_region`] calls answered.
    pub region_queries: u64,
    /// [`QueryEngine::plane_slice`] calls answered.
    pub plane_queries: u64,
    /// [`QueryEngine::point_sample`] calls answered.
    pub point_queries: u64,
    /// Chunks decoded (cache misses that went to the codecs).
    pub chunks_decoded: u64,
    /// Decoded output bytes produced by those decodes.
    pub decoded_bytes: u64,
    /// Stored (compressed) bytes read from the container.
    pub read_bytes: u64,
    /// The engine's cache-handle counters.
    pub cache: CacheStats,
}

/// Atomic counter block behind [`EngineStats`].
#[derive(Default)]
struct EngineCounters {
    roi_queries: AtomicU64,
    region_queries: AtomicU64,
    plane_queries: AtomicU64,
    point_queries: AtomicU64,
    chunks_decoded: AtomicU64,
    decoded_bytes: AtomicU64,
    read_bytes: AtomicU64,
}

/// Predicted cost of answering a query with a cold cache: every chunk
/// whose indexed extent intersects the (refined, clipped) query region,
/// and the decoded bytes those chunks expand to. The service tier's
/// admission control classifies and bounds requests with this **before**
/// any byte is read; a warm cache only ever makes the real cost smaller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Chunks the planner would touch.
    pub chunks: usize,
    /// Decoded bytes those chunks expand to.
    pub decode_bytes: u64,
}

/// Default cache budget: 256 MiB of decoded chunks.
const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// Random-access reader over one AMRIC plotfile.
///
/// All query methods take `&self` (the reader uses positioned reads, the
/// cache and counters use interior locking/atomics), so one engine is
/// safely shared across threads for concurrent reads — `QueryEngine` is
/// `Send + Sync` and the concurrent-readers suite exercises exactly
/// that. The service tier wraps engines in `Arc` and serves many
/// connections from each.
pub struct QueryEngine {
    reader: H5Reader,
    meta: PlotfileMeta,
    levels: Vec<LevelPlan>,
    /// Whether the file carried a persistent chunk index (false = legacy
    /// fallback scan).
    indexed: bool,
    cache: ChunkCache,
    workers: usize,
    counters: EngineCounters,
}

// Compile-time guarantee that the engine stays shareable across threads;
// a field losing `Send + Sync` breaks the service tier, so fail the
// build, not the server.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
};

impl QueryEngine {
    /// Open a plotfile and build the query plans from its metadata. No
    /// field data is read or decoded here. The storage backend is
    /// auto-detected: a directory holding a shard manifest opens sharded,
    /// anything else as a single file.
    pub fn open(path: impl AsRef<std::path::Path>) -> QueryResult<Self> {
        Self::from_reader(H5Reader::open(path)?)
    }

    /// Build an engine over an already-open container — any storage
    /// backend, including a [`h5lite::MemStorage`] image that never
    /// touched a filesystem.
    pub fn from_reader(reader: H5Reader) -> QueryResult<Self> {
        let meta = read_plotfile_meta(&reader)?;
        if meta.bf <= 0 {
            return Err(QueryError::BadQuery(
                "not an AMRIC plotfile (no blocking factor recorded; \
                 baseline/no-compression files have no unit layout to query)"
                    .into(),
            ));
        }
        if meta.num_levels() == 0 {
            return Err(QueryError::Inconsistent(
                "plotfile header records zero AMR levels".into(),
            ));
        }
        let mut levels = Vec::with_capacity(meta.num_levels());
        let mut indexed = true;
        for l in 0..meta.num_levels() {
            let plans: Vec<Vec<UnitRef>> = (0..meta.nranks).map(|r| meta.unit_plan(l, r)).collect();
            // All fields of a level share one layout; dataset 0 speaks for
            // the level. Chunk count must be 0 (nothing kept) or nranks.
            let name = field_dataset(l, 0);
            let dmeta = reader.meta(&name).map_err(|e| match e {
                H5Error::NotFound(n) => {
                    QueryError::BadQuery(format!("not an AMRIC plotfile (missing dataset {n})"))
                }
                other => QueryError::H5(other),
            })?;
            let nchunks = dmeta.chunks.len();
            if nchunks != 0 && nchunks != meta.nranks {
                return Err(QueryError::Inconsistent(format!(
                    "{name}: {nchunks} chunks for {} ranks",
                    meta.nranks
                )));
            }
            let extents = match reader.chunk_index(&name)? {
                Some(idx) => idx.entries.clone(),
                None => {
                    // Legacy file: sniff codec ids from the stored chunk
                    // envelopes, re-derive extents from the unit plans.
                    indexed = false;
                    let scanned = reader.scan_chunk_index(&name)?;
                    scanned
                        .entries
                        .iter()
                        .enumerate()
                        .map(|(rank, e)| {
                            ChunkIndexEntry::new(e.codec_id, plan_bounding_box(&plans[rank]))
                        })
                        .collect()
                }
            };
            let chunk_bytes = plans
                .iter()
                .map(|p| p.iter().map(|u| u.region.num_cells() * 8).sum())
                .collect();
            levels.push(LevelPlan {
                plans,
                extents,
                chunk_bytes,
            });
        }
        Ok(QueryEngine {
            reader,
            meta,
            levels,
            indexed,
            cache: ChunkCache::new(DEFAULT_CACHE_BYTES),
            workers: 1,
            counters: EngineCounters::default(),
        })
    }

    /// Set the prefetch worker count (`n <= 1` fetches serially). Decoded
    /// results are bitwise-identical for every worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Replace the decompressed-chunk cache with an empty one bounded by
    /// `max_bytes`.
    pub fn with_cache_bytes(mut self, max_bytes: u64) -> Self {
        self.cache = ChunkCache::new(max_bytes);
        self
    }

    /// Point the engine at a **shared** chunk store under `file_id`: its
    /// decoded chunks then compete for the store's global byte budget
    /// with every other engine sharing it, while hit/miss accounting
    /// stays per-engine. The service catalog allocates one distinct
    /// `file_id` per open `(path, generation)`.
    pub fn with_shared_cache(mut self, store: Arc<ChunkStore>, file_id: u64) -> Self {
        self.cache = ChunkCache::shared(store, file_id);
        self
    }

    /// The plotfile's structural metadata.
    pub fn meta(&self) -> &PlotfileMeta {
        &self.meta
    }

    /// Did the file carry a persistent chunk index (`false` = answered
    /// through the legacy fallback scan)?
    pub fn has_persistent_index(&self) -> bool {
        self.indexed
    }

    /// The per-chunk index entries of one level (codec id, pruning
    /// extent, and — for delta-coded temporal chunks — the reference
    /// snapshot id). Empty when the level stored no chunks.
    pub fn chunk_entries(&self, level: usize) -> QueryResult<&[ChunkIndexEntry]> {
        self.levels
            .get(level)
            .map(|l| l.extents.as_slice())
            .ok_or_else(|| QueryError::BadQuery(format!("level {level} out of range")))
    }

    /// Reference snapshot id of one chunk, if it is delta-coded — the
    /// planner-level answer to "which prior file does random access into
    /// this chunk need?", resolved from the index without decoding.
    pub fn chunk_reference(&self, level: usize, chunk: usize) -> QueryResult<Option<u64>> {
        let entries = self.chunk_entries(level)?;
        entries.get(chunk).map(|e| e.reference).ok_or_else(|| {
            QueryError::BadQuery(format!("level {level} chunk {chunk} out of range"))
        })
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Lifetime counter snapshot (atomic loads only — cheap enough for a
    /// stats endpoint to poll on every request).
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        EngineStats {
            roi_queries: c.roi_queries.load(Ordering::Relaxed),
            region_queries: c.region_queries.load(Ordering::Relaxed),
            plane_queries: c.plane_queries.load(Ordering::Relaxed),
            point_queries: c.point_queries.load(Ordering::Relaxed),
            chunks_decoded: c.chunks_decoded.load(Ordering::Relaxed),
            decoded_bytes: c.decoded_bytes.load(Ordering::Relaxed),
            read_bytes: c.read_bytes.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Drop all cached chunks (for cold-read measurements).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Component index of a named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.meta.field_names.iter().position(|n| n == name)
    }

    fn check_field(&self, field: usize) -> QueryResult<()> {
        if field < self.meta.field_names.len() {
            Ok(())
        } else {
            Err(QueryError::BadQuery(format!(
                "field {field} out of range (file has {} fields)",
                self.meta.field_names.len()
            )))
        }
    }

    /// Answer a region-of-interest query. `roi` is given in **level-0
    /// (coarsest) index space** and is refined to each selected level;
    /// levels whose refined ROI misses their domain are omitted from the
    /// result. Only chunks whose indexed extent intersects the refined
    /// ROI are read and decoded.
    pub fn roi(&self, field: usize, roi: Box3, select: LevelSelect) -> QueryResult<RegionView> {
        self.counters.roi_queries.fetch_add(1, Ordering::Relaxed);
        self.check_field(field)?;
        // Refine + clip per level, then plan the minimal chunk set across
        // all levels so one prefetch fan-out covers the whole query.
        let regions = self.roi_regions(roi, select)?;
        let mut requests: Vec<ChunkKey> = Vec::new();
        for &(l, region) in &regions {
            for rank in self.chunks_for_region(l, &region) {
                requests.push((l, field, rank));
            }
        }
        let fetched = self.fetch(&requests)?;
        let mut levels = Vec::with_capacity(regions.len());
        for &(l, region) in &regions {
            let sz = region.size();
            let mut out = Buffer3::zeros(Dims3::new(
                sz.get(0) as usize,
                sz.get(1) as usize,
                sz.get(2) as usize,
            ));
            for (key, units) in requests.iter().zip(&fetched) {
                if key.0 != l {
                    continue;
                }
                self.paste_units(&self.levels[l].plans[key.2], units, &region, &mut out)?;
            }
            levels.push(LevelRegion {
                level: l,
                region,
                data: out,
            });
        }
        Ok(RegionView {
            field,
            field_name: self.meta.field_names[field].clone(),
            levels,
        })
    }

    /// The per-level regions an ROI query resolves to: the ROI refined
    /// to each selected level and clipped to the level's domain (levels
    /// the refined ROI misses are omitted).
    fn roi_regions(&self, roi: Box3, select: LevelSelect) -> QueryResult<Vec<(usize, IntBox)>> {
        let selected = select.resolve(self.meta.num_levels())?;
        let mut regions: Vec<(usize, IntBox)> = Vec::new();
        for &l in &selected {
            let refined = roi.refined(self.meta.refine_factor(l));
            if let Some(clipped) = refined.intersection(&self.meta.levels[l].domain) {
                regions.push((l, clipped));
            }
        }
        Ok(regions)
    }

    /// Cold-cache cost bound of [`QueryEngine::roi`] with the same
    /// arguments: planning only, no bytes read. Same validation errors as
    /// the query itself.
    pub fn roi_cost(&self, field: usize, roi: Box3, select: LevelSelect) -> QueryResult<QueryCost> {
        self.check_field(field)?;
        let mut cost = QueryCost::default();
        for (l, region) in self.roi_regions(roi, select)? {
            for rank in self.chunks_for_region(l, &region) {
                cost.chunks += 1;
                cost.decode_bytes += self.levels[l].chunk_bytes[rank];
            }
        }
        Ok(cost)
    }

    /// Cold-cache cost bound of [`QueryEngine::level_region`] with the
    /// same arguments (a region that misses the level's domain costs
    /// zero rather than erroring — admission control wants a number, the
    /// query itself still reports the miss).
    pub fn region_cost(&self, field: usize, level: usize, region: Box3) -> QueryResult<QueryCost> {
        self.check_field(field)?;
        if level >= self.meta.num_levels() {
            return Err(QueryError::BadQuery(format!(
                "level {level} out of range (file has {} levels)",
                self.meta.num_levels()
            )));
        }
        let mut cost = QueryCost::default();
        if let Some(clipped) = region.intersection(&self.meta.levels[level].domain) {
            for rank in self.chunks_for_region(level, &clipped) {
                cost.chunks += 1;
                cost.decode_bytes += self.levels[level].chunk_bytes[rank];
            }
        }
        Ok(cost)
    }

    /// Decode every chunk an ROI query would touch into the cache
    /// without assembling a result; returns the number of chunks the
    /// plan covered. The service tier warms large scans slab by slab
    /// with this (each slab under the fair gate), then assembles the
    /// full answer from the warm cache.
    pub fn prefetch_roi(&self, field: usize, roi: Box3, select: LevelSelect) -> QueryResult<usize> {
        self.check_field(field)?;
        let mut requests: Vec<ChunkKey> = Vec::new();
        for (l, region) in self.roi_regions(roi, select)? {
            for rank in self.chunks_for_region(l, &region) {
                requests.push((l, field, rank));
            }
        }
        self.fetch(&requests)?;
        Ok(requests.len())
    }

    /// [`QueryEngine::prefetch_roi`] for a single-level region in that
    /// level's own index space (regions missing the domain are a no-op).
    pub fn prefetch_region(&self, field: usize, level: usize, region: Box3) -> QueryResult<usize> {
        self.check_field(field)?;
        if level >= self.meta.num_levels() {
            return Err(QueryError::BadQuery(format!(
                "level {level} out of range (file has {} levels)",
                self.meta.num_levels()
            )));
        }
        let Some(clipped) = region.intersection(&self.meta.levels[level].domain) else {
            return Ok(0);
        };
        let requests: Vec<ChunkKey> = self
            .chunks_for_region(level, &clipped)
            .into_iter()
            .map(|rank| (level, field, rank))
            .collect();
        self.fetch(&requests)?;
        Ok(requests.len())
    }

    /// Extract one rectangular region at one specific level (`region` in
    /// that level's index space, clipped to its domain).
    pub fn level_region(
        &self,
        field: usize,
        level: usize,
        region: Box3,
    ) -> QueryResult<LevelRegion> {
        self.counters.region_queries.fetch_add(1, Ordering::Relaxed);
        self.level_region_impl(field, level, region)
    }

    /// [`QueryEngine::level_region`] without the counter bump, shared
    /// with [`QueryEngine::plane_slice`] so each public entry point
    /// counts exactly once.
    fn level_region_impl(
        &self,
        field: usize,
        level: usize,
        region: Box3,
    ) -> QueryResult<LevelRegion> {
        self.check_field(field)?;
        if level >= self.meta.num_levels() {
            return Err(QueryError::BadQuery(format!(
                "level {level} out of range (file has {} levels)",
                self.meta.num_levels()
            )));
        }
        let clipped = region
            .intersection(&self.meta.levels[level].domain)
            .ok_or_else(|| {
                QueryError::BadQuery(format!(
                    "region {region:?} misses level {level}'s domain {:?}",
                    self.meta.levels[level].domain
                ))
            })?;
        let requests: Vec<ChunkKey> = self
            .chunks_for_region(level, &clipped)
            .into_iter()
            .map(|rank| (level, field, rank))
            .collect();
        let fetched = self.fetch(&requests)?;
        let sz = clipped.size();
        let mut out = Buffer3::zeros(Dims3::new(
            sz.get(0) as usize,
            sz.get(1) as usize,
            sz.get(2) as usize,
        ));
        for (key, units) in requests.iter().zip(&fetched) {
            self.paste_units(&self.levels[level].plans[key.2], units, &clipped, &mut out)?;
        }
        Ok(LevelRegion {
            level,
            region: clipped,
            data: out,
        })
    }

    /// Full-domain plane slice at one level: `axis` (0 = x, 1 = y,
    /// 2 = z) pinned to `coord` in the level's index space.
    pub fn plane_slice(
        &self,
        field: usize,
        level: usize,
        axis: usize,
        coord: i64,
    ) -> QueryResult<LevelRegion> {
        self.counters.plane_queries.fetch_add(1, Ordering::Relaxed);
        if axis >= 3 {
            return Err(QueryError::BadQuery(format!("axis {axis} out of range")));
        }
        if level >= self.meta.num_levels() {
            return Err(QueryError::BadQuery(format!(
                "level {level} out of range (file has {} levels)",
                self.meta.num_levels()
            )));
        }
        let domain = self.meta.levels[level].domain;
        if coord < domain.lo.get(axis) || coord > domain.hi.get(axis) {
            return Err(QueryError::BadQuery(format!(
                "plane {coord} outside level {level}'s domain along axis {axis}"
            )));
        }
        let mut lo = domain.lo;
        let mut hi = domain.hi;
        lo.0[axis] = coord;
        hi.0[axis] = coord;
        self.level_region_impl(field, level, IntBox::new(lo, hi))
    }

    /// Sample the value at a cell given in **finest-level index space**,
    /// answered by the finest level whose valid (non-redundant) data
    /// covers the cell. `Ok(None)` when no level holds the cell.
    pub fn point_sample(&self, field: usize, p: IntVect) -> QueryResult<Option<PointSample>> {
        self.counters.point_queries.fetch_add(1, Ordering::Relaxed);
        self.check_field(field)?;
        let n = self.meta.num_levels();
        let finest_factor = self.meta.refine_factor(n - 1);
        for l in (0..n).rev() {
            let down = finest_factor / self.meta.refine_factor(l);
            let cell = p.coarsened(down);
            if !self.meta.levels[l].domain.contains(&cell) {
                continue;
            }
            let lp = &self.levels[l];
            let probe = [cell.get(0), cell.get(1), cell.get(2)];
            for (rank, plan) in lp.plans.iter().enumerate() {
                if !lp
                    .extents
                    .get(rank)
                    .map(|e| e.intersects(probe, probe))
                    .unwrap_or(false)
                {
                    continue;
                }
                if let Some(ui) = plan.iter().position(|u| u.region.contains(&cell)) {
                    let units = self
                        .fetch(std::slice::from_ref(&(l, field, rank)))?
                        .pop()
                        .expect("one request, one chunk");
                    let u = &plan[ui];
                    let buf = &units[ui];
                    let d = (cell.get(0) - u.region.lo.get(0)) as usize;
                    let e = (cell.get(1) - u.region.lo.get(1)) as usize;
                    let g = (cell.get(2) - u.region.lo.get(2)) as usize;
                    return Ok(Some(PointSample {
                        level: l,
                        cell,
                        value: buf.get(d, e, g),
                    }));
                }
            }
        }
        Ok(None)
    }

    /// Chunk positions (= ranks) of a level whose indexed extent
    /// intersects `region`, refined by an exact unit-plan check.
    fn chunks_for_region(&self, level: usize, region: &IntBox) -> Vec<usize> {
        let lp = &self.levels[level];
        let lo = [region.lo.get(0), region.lo.get(1), region.lo.get(2)];
        let hi = [region.hi.get(0), region.hi.get(1), region.hi.get(2)];
        (0..lp.extents.len())
            .filter(|&rank| lp.extents[rank].intersects(lo, hi))
            .filter(|&rank| lp.plans[rank].iter().any(|u| u.region.intersects(region)))
            .collect()
    }

    /// Fetch the requested chunks, serving from the cache and decoding
    /// misses on the worker pool (ordered reassembly; per-worker byte
    /// scratch). Returns decoded chunks aligned with `requests`.
    fn fetch(&self, requests: &[ChunkKey]) -> QueryResult<Vec<CachedChunk>> {
        let mut out: Vec<Option<CachedChunk>> = Vec::with_capacity(requests.len());
        let mut missing: Vec<(usize, ChunkKey)> = Vec::new();
        for (i, key) in requests.iter().enumerate() {
            match self.cache.get(key) {
                Some(v) => out.push(Some(v)),
                None => {
                    out.push(None);
                    missing.push((i, *key));
                }
            }
        }
        if !missing.is_empty() {
            let mut decoded: Vec<(usize, CachedChunk)> = Vec::with_capacity(missing.len());
            let pool_result: Result<(), QueryError> = rankpar::pool::for_each_ordered(
                &missing,
                self.workers.min(missing.len()),
                (2 * self.workers).max(2),
                Vec::new, // per-worker raw-byte scratch
                |buf: &mut Vec<u8>, _j, &(slot, (level, field, rank))| {
                    let name = field_dataset(level, field);
                    self.reader.read_chunk_raw_into(&name, rank, buf)?;
                    self.counters
                        .read_bytes
                        .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    let units = decompress_field_units(buf)?;
                    self.validate_chunk(level, rank, &units)?;
                    self.counters.chunks_decoded.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .decoded_bytes
                        .fetch_add(chunk_bytes(&units), Ordering::Relaxed);
                    Ok((slot, Arc::new(units)))
                },
                |_j, (slot, value): (usize, CachedChunk)| {
                    decoded.push((slot, value));
                    Ok(())
                },
            );
            pool_result?;
            for (slot, value) in decoded {
                let key = requests[slot];
                self.cache.insert(key, Arc::clone(&value));
                out[slot] = Some(value);
            }
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("every request resolved"))
            .collect())
    }

    /// A decoded chunk must match the reconstructed plan exactly — unit
    /// count and per-unit shapes — or the file contradicts itself.
    fn validate_chunk(&self, level: usize, rank: usize, units: &[Buffer3]) -> QueryResult<()> {
        let plan = &self.levels[level].plans[rank];
        if units.len() != plan.len() {
            return Err(QueryError::Inconsistent(format!(
                "level {level} rank {rank}: chunk decoded {} units, plan expects {}",
                units.len(),
                plan.len()
            )));
        }
        for (u, b) in plan.iter().zip(units) {
            let sz = u.region.size();
            let want = Dims3::new(sz.get(0) as usize, sz.get(1) as usize, sz.get(2) as usize);
            if b.dims() != want {
                return Err(QueryError::Inconsistent(format!(
                    "level {level} rank {rank}: unit at {:?} decoded {:?}, expected {want:?}",
                    u.region,
                    b.dims()
                )));
            }
        }
        Ok(())
    }

    /// Copy every unit's overlap with `region` into `out` (x-runs, same
    /// traversal as the full decode's scatter).
    fn paste_units(
        &self,
        plan: &[UnitRef],
        units: &[Buffer3],
        region: &IntBox,
        out: &mut Buffer3,
    ) -> QueryResult<()> {
        let out_dims = out.dims();
        for (u, buf) in plan.iter().zip(units) {
            let Some(overlap) = u.region.intersection(region) else {
                continue;
            };
            let run = overlap.size().get(0) as usize;
            for z in overlap.lo.get(2)..=overlap.hi.get(2) {
                for y in overlap.lo.get(1)..=overlap.hi.get(1) {
                    let src = buf.dims().idx(
                        (overlap.lo.get(0) - u.region.lo.get(0)) as usize,
                        (y - u.region.lo.get(1)) as usize,
                        (z - u.region.lo.get(2)) as usize,
                    );
                    let dst = out_dims.idx(
                        (overlap.lo.get(0) - region.lo.get(0)) as usize,
                        (y - region.lo.get(1)) as usize,
                        (z - region.lo.get(2)) as usize,
                    );
                    out.data_mut()[dst..dst + run].copy_from_slice(&buf.data()[src..src + run]);
                }
            }
        }
        Ok(())
    }
}
