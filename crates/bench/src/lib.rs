//! Shared experiment harness for the paper-reproduction binaries
//! (`src/bin/table*.rs`, `src/bin/fig*.rs`) and the Criterion benches.
//!
//! Everything here is deterministic (fixed seeds); the binaries print the
//! same rows/series the paper reports, scaled per README.md. Absolute
//! numbers differ from Summit, the *shape* (who wins, by what factor,
//! where crossovers sit) is the reproduction target.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amric::prelude::*;
use amric::reader::{read_amric_hierarchy, read_baseline_hierarchy};
use sz_codec::prelude::*;

/// Which synthetic application drives a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// Cosmology-like (hard to compress).
    Nyx,
    /// Laser-PIC-like (very smooth).
    WarpX,
}

/// One evaluation run (a scaled row of the paper's Table 1).
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Run name ("Nyx_1", "WarpX_3", ...).
    pub name: &'static str,
    /// Application.
    pub app: App,
    /// Coarse (level-0) domain.
    pub coarse_dims: (i64, i64, i64),
    /// Thread-rank count (weak scaling: cells/rank constant per app).
    pub nranks: usize,
    /// Paper-scale counterpart, for the printed tables.
    pub paper_ranks: usize,
    /// Target tagged fraction (paper's fine density).
    pub fine_fraction: f64,
    /// AMRIC relative error bound (paper Table 1, col 7 first value).
    pub amric_rel_eb: f64,
    /// AMReX-baseline relative error bound (col 7 second value).
    pub amrex_rel_eb: f64,
    /// Fine-level blocking factor = AMRIC unit size.
    pub blocking_factor: i64,
    /// `amr.max_grid_size` per level.
    pub max_grid_size: i64,
    /// Generator seed.
    pub seed: u64,
}

/// The six scaled Table-1 runs. Weak scaling: WarpX keeps 32 768
/// cells/rank, Nyx 16 384 cells/rank (the paper's 8× ratio between the
/// apps' per-rank sizes is kept at 2× to fit the test machine).
pub fn table1_runs() -> Vec<RunSpec> {
    vec![
        RunSpec {
            name: "WarpX_1",
            app: App::WarpX,
            coarse_dims: (32, 32, 128),
            nranks: 4,
            paper_ranks: 64,
            fine_fraction: 0.02,
            amric_rel_eb: 1e-3,
            amrex_rel_eb: 5e-3,
            blocking_factor: 8,
            max_grid_size: 32,
            seed: 101,
        },
        RunSpec {
            name: "WarpX_2",
            app: App::WarpX,
            coarse_dims: (32, 32, 256),
            nranks: 8,
            paper_ranks: 512,
            fine_fraction: 0.02,
            amric_rel_eb: 1e-3,
            amrex_rel_eb: 5e-3,
            blocking_factor: 8,
            max_grid_size: 32,
            seed: 102,
        },
        RunSpec {
            name: "WarpX_3",
            app: App::WarpX,
            coarse_dims: (32, 64, 256),
            nranks: 16,
            paper_ranks: 4096,
            fine_fraction: 0.01,
            amric_rel_eb: 1e-4,
            amrex_rel_eb: 5e-4,
            blocking_factor: 8,
            max_grid_size: 32,
            seed: 103,
        },
        RunSpec {
            name: "Nyx_1",
            app: App::Nyx,
            coarse_dims: (32, 32, 32),
            nranks: 2,
            paper_ranks: 64,
            fine_fraction: 0.014,
            amric_rel_eb: 1e-3,
            amrex_rel_eb: 1e-2,
            blocking_factor: 8,
            max_grid_size: 16,
            seed: 201,
        },
        RunSpec {
            name: "Nyx_2",
            app: App::Nyx,
            coarse_dims: (32, 32, 64),
            nranks: 4,
            paper_ranks: 512,
            fine_fraction: 0.032,
            amric_rel_eb: 1e-3,
            amrex_rel_eb: 1e-2,
            blocking_factor: 8,
            max_grid_size: 16,
            seed: 202,
        },
        RunSpec {
            name: "Nyx_3",
            app: App::Nyx,
            coarse_dims: (32, 64, 64),
            nranks: 8,
            paper_ranks: 4096,
            fine_fraction: 0.017,
            amric_rel_eb: 1e-3,
            amrex_rel_eb: 1e-2,
            blocking_factor: 8,
            max_grid_size: 16,
            seed: 203,
        },
    ]
}

impl RunSpec {
    /// Mesh configuration for this run.
    pub fn amr_config(&self) -> AmrRunConfig {
        AmrRunConfig {
            coarse_dims: self.coarse_dims,
            max_grid_size: self.max_grid_size,
            blocking_factor: self.blocking_factor,
            nranks: self.nranks,
            num_levels: 2,
            fine_fraction: self.fine_fraction,
            grid_eff: 0.7,
        }
    }

    /// Build the hierarchy at time `t`.
    pub fn build(&self, t: f64) -> AmrHierarchy {
        let cfg = self.amr_config();
        match self.app {
            App::Nyx => build_hierarchy(&NyxScenario::new(self.seed), &cfg, t),
            App::WarpX => build_hierarchy(&WarpXScenario::new(self.seed), &cfg, t),
        }
    }
}

/// Rank-local compression workers the harness defaults to: the
/// `AMRIC_WORKERS` env var when set (workers=1 forces the serial
/// reference path), otherwise every available core. Parallelism never
/// changes compressed bytes — only wall-clock — so results stay
/// comparable across machines.
pub fn default_workers() -> usize {
    std::env::var("AMRIC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// AMRIC(SZ_L/R) configuration with the harness-default write
/// parallelism — what every figure/table binary should build instead of
/// hardcoding the single-threaded preset, so writer-driven experiments
/// pick up one consistent default. Note the `parallelism` field is read
/// only by the in-situ writer (`write_amric` and friends); the offline
/// unit-compression studies (`compress_field_units`) are single-stream
/// and ignore it.
pub fn amric_lr(rel_eb: f64) -> AmricConfig {
    AmricConfig::lr(rel_eb).with_workers(default_workers())
}

/// AMRIC(SZ_Interp) configuration with the harness-default write
/// parallelism (see [`amric_lr`] for which paths read it).
pub fn amric_interp(rel_eb: f64) -> AmricConfig {
    AmricConfig::interp(rel_eb).with_workers(default_workers())
}

/// A temp path under the OS temp dir, unique per (process, tag). The tag
/// is sanitized (method labels contain '/' and parentheses).
pub fn scratch(tag: &str) -> std::path::PathBuf {
    let safe: String = tag
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut p = std::env::temp_dir();
    p.push(format!("amric-bench-{}-{safe}.h5l", std::process::id()));
    p
}

/// Measured outcome of writing one snapshot with one method.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method label ("NoComp", "AMReX", "AMRIC(SZ_L/R)", ...).
    pub method: String,
    /// Compression ratio (orig / stored).
    pub compression_ratio: f64,
    /// Mean per-field PSNR of the reconstruction (dB); `None` for NoComp.
    pub psnr: Option<f64>,
    /// Modeled prep seconds (slowest rank).
    pub prep_s: f64,
    /// Modeled I/O seconds including compression (slowest rank).
    pub io_s: f64,
    /// Total filter calls across ranks.
    pub filter_calls: u64,
    /// Stored bytes.
    pub stored_bytes: u64,
    /// Slowest rank's ledger (for paper-scale projection).
    pub worst_ledger: rankpar::IoLedger,
    /// Whether this method's call/write counts scale with per-rank data
    /// volume (true for the chunk-per-1024-elements baseline; false for
    /// one-call-per-field AMRIC and NoComp).
    pub calls_scale_with_data: bool,
}

impl MethodResult {
    /// Project the slowest rank's modeled I/O seconds to the paper-scale
    /// per-rank data volume (`factor` = paper cells/rank ÷ ours). Bytes
    /// and measured compression compute scale with volume; call counts
    /// scale only for methods that issue one call per fixed-size chunk.
    pub fn projected_io_seconds(
        &self,
        factor: f64,
        params: &rankpar::PfsParams,
        nranks: usize,
    ) -> f64 {
        let l = &self.worst_ledger;
        let call_factor = if self.calls_scale_with_data {
            factor
        } else {
            1.0
        };
        let mut p = rankpar::IoLedger {
            bytes_written: (l.bytes_written as f64 * factor) as u64,
            write_calls: (l.write_calls as f64 * call_factor) as u64,
            filter_calls: (l.filter_calls as f64 * call_factor) as u64,
            dataset_creates: l.dataset_creates,
            measured_compute_s: l.measured_compute_s * factor,
        };
        let _ = &mut p;
        rankpar::pfs::job_seconds(&[p], params, nranks)
    }
}

/// Paper per-rank cells ÷ scaled per-rank cells for a run (weak scaling
/// keeps this constant per app): WarpX 128³/32³ = 64, Nyx 64³/16·32² = 16.
pub fn paper_volume_factor(spec: &RunSpec) -> f64 {
    match spec.app {
        App::WarpX => 64.0,
        App::Nyx => 16.0,
    }
}

/// Mean per-field PSNR from read-back verification.
pub fn mean_psnr(checks: &[amric::reader::FieldVerification]) -> f64 {
    let vals: Vec<f64> = checks
        .iter()
        .map(|c| c.stats.psnr())
        .filter(|p| p.is_finite())
        .collect();
    if vals.is_empty() {
        f64::INFINITY
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// The ledger of the slowest rank in a write report.
fn worst(report: &amric::writer::WriteReport) -> rankpar::IoLedger {
    *report
        .ledgers
        .iter()
        .max_by(|a, b| {
            a.measured_compute_s
                .partial_cmp(&b.measured_compute_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one rank")
}

/// Run all four methods of Figs. 17/18 + Tables 2/3 on one spec.
pub fn evaluate_run(spec: &RunSpec, params: &rankpar::PfsParams) -> Vec<MethodResult> {
    let h = spec.build(0.0);
    let mut out = Vec::new();

    // NoComp.
    {
        let path = scratch(&format!("{}-nocomp", spec.name));
        let report = write_nocomp(&path, &h).expect("nocomp write");
        let (prep_s, io_s) = report.modeled_seconds(params);
        out.push(MethodResult {
            method: "NoComp".into(),
            compression_ratio: report.compression_ratio(),
            psnr: None,
            prep_s,
            io_s,
            filter_calls: report.ledgers.iter().map(|l| l.filter_calls).sum(),
            stored_bytes: report.stored_bytes,
            worst_ledger: worst(&report),
            calls_scale_with_data: false,
        });
        std::fs::remove_file(&path).ok();
    }
    // AMReX baseline.
    {
        let path = scratch(&format!("{}-amrex", spec.name));
        let report = write_amrex_baseline(&path, &h, &BaselineConfig::new(spec.amrex_rel_eb))
            .expect("baseline write");
        let pf = read_baseline_hierarchy(&path).expect("baseline read");
        let checks = verify_against(&pf, &h, spec.amrex_rel_eb);
        let (prep_s, io_s) = report.modeled_seconds(params);
        out.push(MethodResult {
            method: "AMReX(1D)".into(),
            compression_ratio: report.compression_ratio(),
            psnr: Some(mean_psnr(&checks)),
            prep_s,
            io_s,
            filter_calls: report.ledgers.iter().map(|l| l.filter_calls).sum(),
            stored_bytes: report.stored_bytes,
            worst_ledger: worst(&report),
            calls_scale_with_data: true,
        });
        std::fs::remove_file(&path).ok();
    }
    // AMRIC variants (harness-default parallelism; bytes are identical
    // to serial, so CR/PSNR stay machine-independent).
    for (label, cfg) in [
        ("AMRIC(SZ_L/R)", amric_lr(spec.amric_rel_eb)),
        ("AMRIC(SZ_Interp)", amric_interp(spec.amric_rel_eb)),
    ] {
        let path = scratch(&format!("{}-{label}", spec.name));
        let report = write_amric(&path, &h, &cfg, spec.blocking_factor).expect("amric write");
        let pf = read_amric_hierarchy(&path).expect("amric read");
        let checks = verify_against(&pf, &h, spec.amric_rel_eb);
        let (prep_s, io_s) = report.modeled_seconds(params);
        out.push(MethodResult {
            method: label.into(),
            compression_ratio: report.compression_ratio(),
            psnr: Some(mean_psnr(&checks)),
            prep_s,
            io_s,
            filter_calls: report.ledgers.iter().map(|l| l.filter_calls).sum(),
            stored_bytes: report.stored_bytes,
            worst_ledger: worst(&report),
            calls_scale_with_data: false,
        });
        std::fs::remove_file(&path).ok();
    }
    out
}

/// Single-field ("baryon density" only) view of the Nyx scenario — the §3
/// studies use one field, and skipping the other five makes data
/// generation 6× cheaper.
pub struct NyxDensity(pub NyxScenario);

impl Scenario for NyxDensity {
    fn name(&self) -> &str {
        "nyx-density"
    }
    fn field_names(&self) -> Vec<String> {
        vec!["baryon_density".into()]
    }
    fn eval(&self, _field: usize, x: f64, y: f64, z: f64, t: f64) -> f64 {
        self.0.eval(0, x, y, z, t)
    }
    fn refine_value(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        self.0.refine_value(x, y, z, t)
    }
}

/// The Fig. 5/6/7/9 test hierarchy: a scaled version of the paper's §3
/// Nyx study (two levels, one field, fine density in the ~17 % regime,
/// coarse valid fraction ≈ 80 %). `coarse` is the level-0 edge length
/// (64 for the figure binaries, 32 for fast tests).
pub fn section3_nyx(coarse: i64) -> AmrHierarchy {
    let cfg = AmrRunConfig {
        coarse_dims: (coarse, coarse, coarse),
        max_grid_size: coarse / 2,
        blocking_factor: 16,
        nranks: 1,
        num_levels: 2,
        fine_fraction: 0.012,
        grid_eff: 0.85,
    };
    build_hierarchy(&NyxDensity(NyxScenario::new(777)), &cfg, 0.0)
}

/// The relative error bounds of the paper's rate-distortion sweeps
/// (Figs. 5, 7, 16): 2·10⁻² down to 3·10⁻⁴.
pub fn rd_bounds() -> Vec<f64> {
    vec![2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 3e-4]
}

/// Extract one level's unit blocks (single rank) for a field, the §3
/// studies' working set.
pub fn level_units(h: &AmrHierarchy, level: usize, unit: i64, field: usize) -> Vec<Buffer3> {
    let finer = (level + 1 < h.num_levels())
        .then(|| (h.level(level + 1).data.box_array(), h.ref_ratio(level)));
    let plan = plan_units(&h.level(level).data, finer, unit, 0, true);
    extract_units(&h.level(level).data, &plan, field)
}

/// Evaluate (CR, PSNR) of an arbitrary compress/decompress pair on unit
/// blocks.
pub fn rate_point(
    units: &[Buffer3],
    compress: impl Fn(&[Buffer3]) -> Vec<u8>,
    decompress: impl Fn(&[u8]) -> Vec<Buffer3>,
) -> (f64, f64) {
    let orig_bytes: usize = units.iter().map(|u| u.dims().len() * 8).sum();
    let stream = compress(units);
    let back = decompress(&stream);
    let orig: Vec<f64> = units
        .iter()
        .flat_map(|u| u.data().iter().copied())
        .collect();
    let recon: Vec<f64> = back.iter().flat_map(|u| u.data().iter().copied()).collect();
    let stats = ErrorStats::compare(&orig, &recon);
    (orig_bytes as f64 / stream.len() as f64, stats.psnr())
}

/// Fixed-width table printer for the harness binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format helpers for the tables.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}
/// Two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}
/// Three significant-ish decimals for seconds.
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_specs_weak_scale() {
        let runs = table1_runs();
        assert_eq!(runs.len(), 6);
        for r in &runs {
            let cells = r.coarse_dims.0 * r.coarse_dims.1 * r.coarse_dims.2;
            let per_rank = cells as usize / r.nranks;
            match r.app {
                App::WarpX => assert_eq!(per_rank, 32 * 32 * 32, "{}", r.name),
                App::Nyx => assert_eq!(per_rank, 16 * 32 * 32, "{}", r.name),
            }
        }
    }

    #[test]
    fn section3_data_has_paper_densities() {
        let h = section3_nyx(32);
        assert_eq!(h.num_levels(), 2);
        let stats = level_stats(&h);
        // At the 32³ test size the box-snap granularity floors the density
        // well above the paper's 17.4 % — the 64³ figure binaries land in
        // the paper regime (see EXPERIMENTS.md); here we only check the
        // fixture builds a sane two-level mesh.
        assert!(
            stats[1].density > 0.05 && stats[1].density < 0.9,
            "fine density {}",
            stats[1].density
        );
    }

    #[test]
    fn rate_point_smoke() {
        let h = section3_nyx(32);
        let units = level_units(&h, 1, 16, 0);
        assert!(!units.is_empty());
        let cfg = AmricConfig::lr(1e-3);
        let (cr, psnr) = rate_point(
            &units,
            |u| compress_field_units(u, &cfg, 16),
            |b| decompress_field_units(b).unwrap(),
        );
        assert!(cr > 1.0 && psnr > 20.0, "cr={cr} psnr={psnr}");
    }
}
