//! Table 3: reconstruction quality (PSNR, dB) of the three compression
//! solutions per run. Note the paper's setup gives AMReX a *looser* error
//! bound (Table 1) and it still loses on quality.

use amric_bench::{evaluate_run, f1, print_table, table1_runs};
use rankpar::PfsParams;

fn main() {
    let params = PfsParams::default();
    let mut rows = Vec::new();
    for spec in table1_runs() {
        let results = evaluate_run(&spec, &params);
        let get = |m: &str| {
            results
                .iter()
                .find(|r| r.method == m)
                .and_then(|r| r.psnr)
                .map(f1)
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            spec.name.to_string(),
            get("AMReX(1D)"),
            get("AMRIC(SZ_L/R)"),
            get("AMRIC(SZ_Interp)"),
        ]);
        eprintln!("[table3] {} done", spec.name);
    }
    print_table(
        "Table 3: reconstruction quality (mean per-field PSNR, dB)",
        &["Run", "AMReX(1D)", "AMRIC(SZ_L/R)", "AMRIC(SZ_Interp)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): AMRIC beats AMReX by >10 dB everywhere despite\nAMReX's looser bound; the two AMRIC variants are within ~1 dB of each other."
    );
}
