//! Figure 10: full-pipeline visual comparison — original SZ_L/R (linear
//! merging, stock 6³ blocks) vs AMRIC's optimized SZ_L/R (SLE + adaptive
//! block size) on the two-level Nyx data. The paper highlights artifacts
//! at AMR level boundaries; we quantify error in coarse cells adjacent to
//! the coarse/fine boundary vs far from it, at matched error bounds.

use amr_mesh::prelude::*;
use amric::config::MergePolicy;
use amric::pipeline::{compress_field_units, decompress_field_units};
use amric::preprocess::{extract_units, plan_units};
use amric_bench::{amric_lr, print_table, section3_nyx};

fn main() {
    let h = section3_nyx(64);
    let rel_eb = 2e-3;
    let coarse = &h.level(0).data;
    let fine_ba = h.level(1).data.box_array();
    let plan = plan_units(coarse, Some((fine_ba, 2)), 8, 0, true);
    let units = extract_units(coarse, &plan, 0);
    let orig_bytes: usize = units.iter().map(|u| u.dims().len() * 8).sum();

    // Cells adjacent to the level boundary: valid coarse cells whose
    // 1-cell neighbourhood intersects the (coarsened) fine grids.
    let fine_coarsened = fine_ba.coarsened(2);
    let near_boundary = |p: &IntVect| -> bool {
        let probe = IntBox::new(*p, *p).grown(1);
        fine_coarsened.intersects(&probe)
    };

    let mut rows = Vec::new();
    for (label, merge, adaptive) in [
        ("Original SZ_L/R", MergePolicy::LinearMerge, false),
        ("AMRIC SZ_L/R", MergePolicy::SharedEncoding, true),
    ] {
        let cfg = amric_lr(rel_eb)
            .with_merge(merge)
            .with_adaptive_block_size(adaptive);
        let stream = compress_field_units(&units, &cfg, 8);
        let recon = decompress_field_units(&stream).expect("decode");
        let (mut nb_sum, mut nb_n, mut far_sum, mut far_n) = (0.0, 0u64, 0.0, 0u64);
        for (u, (o, r)) in plan.iter().zip(units.iter().zip(&recon)) {
            let d = o.dims();
            for k in 0..d.nz {
                for j in 0..d.ny {
                    for i in 0..d.nx {
                        let p = IntVect::new(
                            u.region.lo.get(0) + i as i64,
                            u.region.lo.get(1) + j as i64,
                            u.region.lo.get(2) + k as i64,
                        );
                        let e = (o.get(i, j, k) - r.get(i, j, k)).abs();
                        if near_boundary(&p) {
                            nb_sum += e;
                            nb_n += 1;
                        } else {
                            far_sum += e;
                            far_n += 1;
                        }
                    }
                }
            }
        }
        let nb = nb_sum / nb_n.max(1) as f64;
        let far = far_sum / far_n.max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", orig_bytes as f64 / stream.len() as f64),
            format!("{nb:.3e}"),
            format!("{far:.3e}"),
            format!("{:.2}", nb / far.max(f64::MIN_POSITIVE)),
        ]);
    }
    print_table(
        "Figure 10: level-boundary artifacts, original vs AMRIC SZ_L/R (rel_eb 2e-3)",
        &[
            "Variant",
            "CR",
            "|err| near boundary",
            "|err| far",
            "near/far",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 10): AMRIC reaches a slightly *higher* CR\n(paper: 53.2 vs 51.7) while its near-boundary error ratio drops — the\nwhite-arrow artifacts of Fig. 10b disappear."
    );
}
