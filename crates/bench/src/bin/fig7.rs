//! Figure 7: rate-distortion of the four SZ_L/R variants — LM (linear
//! merging), SLE (shared lossless encoding), Adp-4 (adaptive block size)
//! and 1-D compression — on the fine (unit 16) and coarse (unit 8) levels
//! of the §3 Nyx study.

use amric::config::MergePolicy;
use amric::pipeline::{compress_field_units, decompress_field_units, resolve_abs_eb};
use amric_bench::{
    amric_lr, f1, f2, level_units, print_table, rate_point, rd_bounds, section3_nyx,
};
use sz_codec::prelude::*;

/// AMReX-style 1-D compression of the units: flatten, cut into
/// 1024-element chunks, compress each chunk independently.
fn one_d(units: &[Buffer3], rel_eb: f64) -> (f64, f64) {
    let flat: Vec<f64> = units
        .iter()
        .flat_map(|u| u.data().iter().copied())
        .collect();
    let abs_eb = resolve_abs_eb(units, rel_eb);
    let orig_bytes = flat.len() * 8;
    let mut stored = 0usize;
    let mut recon = Vec::with_capacity(flat.len());
    for chunk in flat.chunks(1024) {
        let stream = lr::compress_1d(chunk, abs_eb);
        stored += stream.len();
        recon.extend(lr::decompress(&stream).expect("decode").into_vec());
    }
    let stats = ErrorStats::compare(&flat, &recon);
    (orig_bytes as f64 / stored as f64, stats.psnr())
}

fn main() {
    let h = section3_nyx(64);
    for (label, level, unit) in [("Fine level", 1usize, 16i64), ("Coarse level", 0, 8)] {
        let units = level_units(&h, level, unit, 0);
        let mut rows = Vec::new();
        for rel_eb in rd_bounds() {
            let point = |merge: MergePolicy, adaptive: bool| {
                let cfg = amric_lr(rel_eb)
                    .with_merge(merge)
                    .with_adaptive_block_size(adaptive);
                rate_point(
                    &units,
                    |u| compress_field_units(u, &cfg, unit as usize),
                    |b| decompress_field_units(b).expect("decode"),
                )
            };
            let (cr_lm, ps_lm) = point(MergePolicy::LinearMerge, false);
            let (cr_sle, ps_sle) = point(MergePolicy::SharedEncoding, false);
            let (cr_adp, ps_adp) = point(MergePolicy::SharedEncoding, true);
            let (cr_1d, ps_1d) = one_d(&units, rel_eb);
            rows.push(vec![
                format!("{rel_eb:.0e}"),
                format!("{}/{}", f1(cr_lm), f2(ps_lm)),
                format!("{}/{}", f1(cr_sle), f2(ps_sle)),
                format!("{}/{}", f1(cr_adp), f2(ps_adp)),
                format!("{}/{}", f1(cr_1d), f2(ps_1d)),
            ]);
        }
        print_table(
            &format!("Figure 7 ({label}, unit={unit}): CR/PSNR per variant"),
            &["rel_eb", "LM", "SLE", "Adp-4", "1D"],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 7): all 3-D variants ≫ 1D. Fine level\n(unit 16): SLE ≈ Adp-4 ≥ LM (16 mod 6 = 4 → no residue issue, Eq. 1 keeps 6³).\nCoarse level (unit 8): Adp-4 > SLE ≈ LM (8 mod 6 = 2 → degenerate residues\nhurt SLE until the adaptive 4³ block removes them)."
    );
}
