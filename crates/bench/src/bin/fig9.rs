//! Figure 9: pointwise-error comparison of the adaptive block size
//! (Adp-4) vs plain unit SLE on the *coarse* level (unit 8, where 8 mod 6
//! = 2 triggers the degenerate-residue problem). Numeric counterpart of
//! the paper's error-slice visualization, plus a CSV slice dump.

use amric::pipeline::{compress_field_units, decompress_field_units};
use amric_bench::{amric_lr, level_units, print_table, section3_nyx};
use std::io::Write;
use sz_codec::prelude::*;

fn main() {
    let h = section3_nyx(64);
    let units = level_units(&h, 0, 8, 0);
    let orig_bytes: usize = units.iter().map(|u| u.dims().len() * 8).sum();
    let rel_eb = 4e-3;
    let mut rows = Vec::new();
    for (label, adaptive) in [("SLE (6³)", false), ("Adp-4 (4³)", true)] {
        let cfg = amric_lr(rel_eb).with_adaptive_block_size(adaptive);
        let stream = compress_field_units(&units, &cfg, 8);
        let recon = decompress_field_units(&stream).expect("decode");
        let orig: Vec<f64> = units
            .iter()
            .flat_map(|u| u.data().iter().copied())
            .collect();
        let rec: Vec<f64> = recon
            .iter()
            .flat_map(|u| u.data().iter().copied())
            .collect();
        let stats = ErrorStats::compare(&orig, &rec);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", orig_bytes as f64 / stream.len() as f64),
            format!("{:.3e}", stats.mse.sqrt()),
            format!("{:.3e}", stats.max_abs_err),
            format!("{:.2}", stats.psnr()),
        ]);
        if let (Some(o), Some(r)) = (units.first(), recon.first()) {
            let d = o.dims();
            let k = d.nz / 2;
            let path = format!(
                "/tmp/amric-fig9-{}.csv",
                if adaptive { "adp4" } else { "sle" }
            );
            let mut f = std::fs::File::create(&path).expect("slice file");
            for j in 0..d.ny {
                let row: Vec<String> = (0..d.nx)
                    .map(|i| format!("{:.6e}", (o.get(i, j, k) - r.get(i, j, k)).abs()))
                    .collect();
                writeln!(f, "{}", row.join(",")).expect("write row");
            }
            eprintln!("[fig9] wrote error slice to {path}");
        }
    }
    print_table(
        "Figure 9: adaptive block size vs SLE (coarse level, unit 8, rel_eb 4e-3)",
        &["Variant", "CR", "RMSE", "max |err|", "PSNR"],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 9): at comparable CR, Adp-4 reduces the error\n(higher PSNR) because 4³ blocks avoid the flattened 6×6×2 / 6×2×2 / 2³\nresidues of the 8³ unit."
    );
}
