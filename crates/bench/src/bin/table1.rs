//! Table 1: detailed information about the tested AMR runs (scaled).
//!
//! Prints the same columns as the paper — levels, ranks, grid size per
//! level, data density per level, snapshot size, error bounds — for the
//! six scaled runs, plus the paper-scale counterpart for context.

use amr_apps::prelude::*;
use amric_bench::{print_table, table1_runs};

fn main() {
    let rows: Vec<Vec<String>> = table1_runs()
        .iter()
        .map(|spec| {
            let h = spec.build(0.0);
            let stats = level_stats(&h);
            let grids = stats
                .iter()
                .map(|s| format!("{}x{}x{}", s.grid_size.0, s.grid_size.1, s.grid_size.2))
                .collect::<Vec<_>>()
                .join(", ");
            let density = stats
                .iter()
                .map(|s| format!("{:.2}%", s.density * 100.0))
                .collect::<Vec<_>>()
                .join(", ");
            let mb = h.snapshot_bytes() as f64 / (1 << 20) as f64;
            vec![
                spec.name.to_string(),
                format!("{}", h.num_levels()),
                format!("{} ({})", spec.nranks, spec.paper_ranks),
                grids,
                density,
                format!("{mb:.1} MB"),
                format!("{:.0e}, {:.0e}", spec.amric_rel_eb, spec.amrex_rel_eb),
            ]
        })
        .collect();
    print_table(
        "Table 1: tested AMR runs (scaled; paper rank count in parentheses)",
        &[
            "Run",
            "#Levels",
            "#Ranks(paper)",
            "Grid size per level",
            "Density per level",
            "Data size",
            "EB (AMRIC, AMReX)",
        ],
        &rows,
    );
}
