//! Figure 6: pointwise-error comparison of unit SLE vs original linear
//! merging on the fine level (unit 16). The paper shows an error-slice
//! visualization; this harness reports the same comparison numerically
//! (CR, mean/max error, and error concentration at unit-block boundaries)
//! and dumps a mid-plane error slice as CSV for plotting.

use amric::config::MergePolicy;
use amric::pipeline::{compress_field_units, decompress_field_units};
use amric_bench::{amric_lr, level_units, print_table, section3_nyx};
use std::io::Write;

/// Mean absolute error, split into unit-boundary cells (any local
/// coordinate on the block face) and interior cells.
fn boundary_interior_error(
    orig: &[sz_codec::Buffer3],
    recon: &[sz_codec::Buffer3],
) -> (f64, f64, f64) {
    let mut b_sum = 0.0;
    let mut b_n = 0u64;
    let mut i_sum = 0.0;
    let mut i_n = 0u64;
    let mut max_err = 0.0f64;
    for (o, r) in orig.iter().zip(recon) {
        let d = o.dims();
        for k in 0..d.nz {
            for j in 0..d.ny {
                for i in 0..d.nx {
                    let e = (o.get(i, j, k) - r.get(i, j, k)).abs();
                    max_err = max_err.max(e);
                    let on_face = i == 0
                        || j == 0
                        || k == 0
                        || i == d.nx - 1
                        || j == d.ny - 1
                        || k == d.nz - 1;
                    if on_face {
                        b_sum += e;
                        b_n += 1;
                    } else {
                        i_sum += e;
                        i_n += 1;
                    }
                }
            }
        }
    }
    (
        b_sum / b_n.max(1) as f64,
        i_sum / i_n.max(1) as f64,
        max_err,
    )
}

fn dump_slice(path: &str, units: &[sz_codec::Buffer3], recon: &[sz_codec::Buffer3]) {
    // One representative unit's mid-plane |error| grid.
    if let (Some(o), Some(r)) = (units.first(), recon.first()) {
        let d = o.dims();
        let k = d.nz / 2;
        let mut f = std::fs::File::create(path).expect("slice file");
        for j in 0..d.ny {
            let row: Vec<String> = (0..d.nx)
                .map(|i| format!("{:.6e}", (o.get(i, j, k) - r.get(i, j, k)).abs()))
                .collect();
            writeln!(f, "{}", row.join(",")).expect("write row");
        }
        eprintln!("[fig6] wrote error slice to {path}");
    }
}

fn main() {
    let h = section3_nyx(64);
    let units = level_units(&h, 1, 16, 0);
    let orig_bytes: usize = units.iter().map(|u| u.dims().len() * 8).sum();
    let rel_eb = 2e-3;
    let mut rows = Vec::new();
    for (label, merge) in [
        ("LinearMerge", MergePolicy::LinearMerge),
        ("Unit SLE", MergePolicy::SharedEncoding),
    ] {
        let cfg = amric_lr(rel_eb)
            .with_merge(merge)
            .with_adaptive_block_size(false);
        let stream = compress_field_units(&units, &cfg, 16);
        let recon = decompress_field_units(&stream).expect("decode");
        let (b_err, i_err, max_err) = boundary_interior_error(&units, &recon);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", orig_bytes as f64 / stream.len() as f64),
            format!("{b_err:.3e}"),
            format!("{i_err:.3e}"),
            format!("{:.2}", b_err / i_err.max(f64::MIN_POSITIVE)),
            format!("{max_err:.3e}"),
        ]);
        dump_slice(
            &format!("/tmp/amric-fig6-{}.csv", label.replace(' ', "-")),
            &units,
            &recon,
        );
    }
    print_table(
        "Figure 6: unit SLE vs linear merging (fine level, unit 16, rel_eb 2e-3)",
        &[
            "Variant",
            "CR",
            "boundary |err|",
            "interior |err|",
            "ratio",
            "max |err|",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 6): SLE's boundary/interior error ratio is\nsmaller than LM's — LM concentrates error at unit-block boundaries where\nthe Lorenzo stencil crosses unrelated blocks."
    );
}
