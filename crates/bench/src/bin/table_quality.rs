//! Quality evaluation: fixed vs gradient-adaptive error bounds at
//! **equal stored bytes**, scored with the `amr-quality` metrics.
//!
//! For each scenario (Nyx clumpy cosmology, WarpX smooth laser pulse):
//!
//! 1. write a near-lossless reference plotfile (rel 1e-12);
//! 2. write the adaptive plotfile (`GradientAdaptive { tight, loose }`);
//! 3. binary-search a fixed `rel_eb` whose plotfile stores the same
//!    bytes (±5%), so the comparison is rate-matched;
//! 4. score both against the reference: whole-domain PSNR/SSIM per field
//!    (worst level, mid-plane slices — `QualityReport`), plus PSNR over
//!    the **tagged region** (the cells the adaptive writer bounded
//!    tight, recovered from the streams via
//!    `QualityReport::tight_unit_regions`).
//!
//! The acceptance inequality — adaptive ≥ fixed PSNR on the tagged Nyx
//! region at equal bytes — is asserted here, so smoke runs fail loudly.
//! Whole-domain PSNR is *expected* to favor fixed (a uniform bound is
//! MSE-optimal for a uniform metric); both numbers are reported.
//!
//! Emits `BENCH_quality.json` (`AMRIC_BENCH_OUT` overrides the path).
//! `--smoke` (or `AMRIC_QUALITY_SMOKE=1`) shrinks the domains for CI.

use amr_apps::prelude::*;
use amr_quality::{Psnr, QualityReport};
use amr_query::QueryEngine;
use amric::config::BoundPolicy;
use amric::prelude::*;
use amric_bench::print_table;
use std::io::Write;

const TIGHT: f64 = 1e-4;
const LOOSE: f64 = 8e-3;
const REFERENCE_EB: f64 = 1e-12;

struct FieldRow {
    scenario: &'static str,
    field: String,
    psnr_adaptive: Psnr,
    psnr_fixed: Psnr,
    ssim_adaptive: f64,
    ssim_fixed: f64,
    tagged_psnr_adaptive: Option<Psnr>,
    tagged_psnr_fixed: Option<Psnr>,
}

struct ScenarioResult {
    scenario: &'static str,
    stored_bytes: u64,
    fixed_bytes: u64,
    fixed_eb: f64,
    tagged_cells: u64,
    /// 10·log10(SSE_fixed / SSE_adaptive) over the tagged region,
    /// range-normalized per (level, field). Positive = adaptive wins.
    tagged_gap_db: f64,
    rows: Vec<FieldRow>,
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("table-quality-{}-{name}.h5l", std::process::id()));
    p
}

fn stored(path: &std::path::Path, h: &amr_mesh::AmrHierarchy, cfg: &AmricConfig, bf: i64) -> u64 {
    write_amric(path, h, cfg, bf)
        .expect("write plotfile")
        .stored_bytes
}

/// Binary-search a fixed `rel_eb` storing (about) `target` bytes.
fn match_bytes(
    path: &std::path::Path,
    h: &amr_mesh::AmrHierarchy,
    bf: i64,
    target: u64,
    iters: usize,
) -> (f64, u64) {
    let (mut lo, mut hi) = (TIGHT, LOOSE);
    let mut best = (lo, u64::MAX);
    for _ in 0..iters {
        let eb = (lo * hi).sqrt();
        let bytes = stored(path, h, &AmricConfig::lr(eb), bf);
        if bytes.abs_diff(target) < best.1.abs_diff(target) {
            best = (eb, bytes);
        }
        if bytes > target {
            lo = eb;
        } else {
            hi = eb;
        }
    }
    stored(path, h, &AmricConfig::lr(best.0), bf);
    best
}

fn run_scenario(
    scenario: &'static str,
    s: &dyn Scenario,
    cfg: AmrRunConfig,
    bf: i64,
    iters: usize,
) -> ScenarioResult {
    let h = build_hierarchy(s, &cfg, 0.0);
    let reference = tmp(&format!("{scenario}-ref"));
    let adaptive = tmp(&format!("{scenario}-adaptive"));
    let fixed = tmp(&format!("{scenario}-fixed"));
    stored(&reference, &h, &AmricConfig::lr(REFERENCE_EB), bf);
    let adaptive_cfg = AmricConfig::lr(1e-3).with_bound_policy(BoundPolicy::GradientAdaptive {
        tight: TIGHT,
        loose: LOOSE,
    });
    let stored_bytes = stored(&adaptive, &h, &adaptive_cfg, bf);
    let (fixed_eb, fixed_bytes) = match_bytes(&fixed, &h, bf, stored_bytes, iters);
    let skew = fixed_bytes.abs_diff(stored_bytes) as f64 / stored_bytes as f64;
    assert!(
        skew < 0.05,
        "{scenario}: rate matching failed (adaptive {stored_bytes} B, fixed {fixed_bytes} B)"
    );

    let re = QueryEngine::open(&reference).expect("open reference");
    let ea = QueryEngine::open(&adaptive).expect("open adaptive");
    let ef = QueryEngine::open(&fixed).expect("open fixed");
    let ra = QualityReport::compare(&re, &ea).expect("compare adaptive");
    let rf = QualityReport::compare(&re, &ef).expect("compare fixed");

    // Tagged-region score: gather the tight-bounded cells through the
    // query engines, per field (concatenated across levels).
    let tight = QualityReport::tight_unit_regions(&adaptive).expect("tight regions");
    let nfields = h.field_names().len();
    let mut tagged_cells = 0u64;
    let (mut sse_ad, mut sse_fx) = (0.0f64, 0.0f64);
    let mut per_field: Vec<Option<(Psnr, Psnr)>> = Vec::with_capacity(nfields);
    for field in 0..nfields {
        let (mut vref, mut vad, mut vfx) = (Vec::new(), Vec::new(), Vec::new());
        for (level, fields) in tight.iter().enumerate() {
            if fields[field].is_empty() {
                continue;
            }
            let domain = re.meta().levels[level].domain;
            let full = re.level_region(field, level, domain).expect("ref range");
            let (lo, hi) = full.data.min_max();
            let range = (hi - lo).max(f64::MIN_POSITIVE);
            for region in &fields[field] {
                let r = re.level_region(field, level, *region).expect("ref region");
                let a = ea.level_region(field, level, *region).expect("ad region");
                let f = ef.level_region(field, level, *region).expect("fx region");
                for ((&x, &y), &z) in r.data.data().iter().zip(a.data.data()).zip(f.data.data()) {
                    let (da, df) = ((x - y) / range, (x - z) / range);
                    sse_ad += da * da;
                    sse_fx += df * df;
                    tagged_cells += 1;
                }
                vref.extend_from_slice(r.data.data());
                vad.extend_from_slice(a.data.data());
                vfx.extend_from_slice(f.data.data());
            }
        }
        per_field.push(
            (!vref.is_empty()).then(|| (Psnr::compute(&vref, &vad), Psnr::compute(&vref, &vfx))),
        );
    }
    let tagged_gap_db = if sse_ad > 0.0 && sse_fx > 0.0 {
        10.0 * (sse_fx / sse_ad).log10()
    } else {
        0.0
    };

    let rows = (0..nfields)
        .map(|f| FieldRow {
            scenario,
            field: h.field_names()[f].clone(),
            psnr_adaptive: ra.fields[f].min_psnr(),
            psnr_fixed: rf.fields[f].min_psnr(),
            ssim_adaptive: ra.fields[f].min_ssim(),
            ssim_fixed: rf.fields[f].min_ssim(),
            tagged_psnr_adaptive: per_field[f].map(|(a, _)| a),
            tagged_psnr_fixed: per_field[f].map(|(_, x)| x),
        })
        .collect();

    for p in [&reference, &adaptive, &fixed] {
        std::fs::remove_file(p).ok();
    }
    ScenarioResult {
        scenario,
        stored_bytes,
        fixed_bytes,
        fixed_eb,
        tagged_cells,
        tagged_gap_db,
        rows,
    }
}

fn jnum(p: Option<Psnr>) -> String {
    match p {
        Some(p) if p.db().is_finite() => format!("{:.3}", p.db()),
        Some(_) => "1e9".into(), // exact reconstruction; JSON has no inf
        None => "null".into(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("AMRIC_QUALITY_SMOKE").is_ok_and(|v| v == "1");
    let (nyx_edge, iters) = if smoke { (16, 8) } else { (32, 12) };

    let nyx_cfg = AmrRunConfig {
        coarse_dims: (nyx_edge, nyx_edge, nyx_edge),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let warpx_cfg = AmrRunConfig {
        coarse_dims: (8, 8, if smoke { 32 } else { 64 }),
        max_grid_size: 16,
        blocking_factor: 4,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.03,
        grid_eff: 0.7,
    };
    let results = vec![
        run_scenario("nyx", &NyxScenario::new(11), nyx_cfg, 8, iters),
        run_scenario("warpx", &WarpXScenario::new(4), warpx_cfg, 4, iters),
    ];

    let rows: Vec<Vec<String>> = results
        .iter()
        .flat_map(|r| &r.rows)
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.field.clone(),
                format!("{}", r.psnr_adaptive),
                format!("{}", r.psnr_fixed),
                format!("{:.4}", r.ssim_adaptive),
                format!("{:.4}", r.ssim_fixed),
                r.tagged_psnr_adaptive
                    .map_or("-".into(), |p| format!("{p}")),
                r.tagged_psnr_fixed.map_or("-".into(), |p| format!("{p}")),
            ]
        })
        .collect();
    print_table(
        &format!("Fixed vs adaptive bounds at equal stored bytes (tight {TIGHT}, loose {LOOSE})"),
        &[
            "scenario",
            "field",
            "psnr ad",
            "psnr fx",
            "ssim ad",
            "ssim fx",
            "tag-psnr ad",
            "tag-psnr fx",
        ],
        &rows,
    );
    for r in &results {
        println!(
            "{}: {} B adaptive vs {} B fixed (eb {:.2e}); tagged region: {} cells, gap {:+.2} dB",
            r.scenario, r.stored_bytes, r.fixed_bytes, r.fixed_eb, r.tagged_cells, r.tagged_gap_db
        );
    }

    // Acceptance: on the tagged Nyx region, adaptive ≥ fixed PSNR at
    // equal stored bytes.
    let nyx = &results[0];
    assert!(nyx.tagged_cells > 0, "nyx: classifier tagged no cells");
    assert!(
        nyx.tagged_gap_db >= 0.0,
        "nyx: adaptive must not lose on the tagged region (gap {:.2} dB)",
        nyx.tagged_gap_db
    );

    let mut json = String::from("{\n  \"bench\": \"quality\",\n");
    json.push_str(&format!(
        "  \"tight\": {TIGHT}, \"loose\": {LOOSE}, \"smoke\": {smoke}, \"cores\": {},\n  \"scenarios\": [\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    for (si, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"stored_bytes\": {}, \"fixed_bytes\": {}, \"fixed_eb\": {:.6e}, \"tagged_cells\": {}, \"tagged_gap_db\": {:.3}, \"fields\": [\n",
            r.scenario, r.stored_bytes, r.fixed_bytes, r.fixed_eb, r.tagged_cells, r.tagged_gap_db
        ));
        for (fi, f) in r.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"field\": \"{}\", \"psnr_adaptive\": {}, \"psnr_fixed\": {}, \"ssim_adaptive\": {:.5}, \"ssim_fixed\": {:.5}, \"tagged_psnr_adaptive\": {}, \"tagged_psnr_fixed\": {}}}{}\n",
                f.field,
                jnum(Some(f.psnr_adaptive)),
                jnum(Some(f.psnr_fixed)),
                f.ssim_adaptive,
                f.ssim_fixed,
                jnum(f.tagged_psnr_adaptive),
                jnum(f.tagged_psnr_fixed),
                if fi + 1 < r.rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("AMRIC_BENCH_OUT").unwrap_or_else(|_| "BENCH_quality.json".into());
    std::fs::File::create(&out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write quality trajectory");
    println!("wrote {out}");
}
