//! Network load study for the `amr-serve` query service: throughput and
//! tail latency versus concurrent clients and request mix, against an
//! in-process loopback server (default) or an external `amr_served`
//! (`--addr HOST:PORT`). Emits `BENCH_serve.json` for the trajectory
//! tracker.
//!
//! Mixes:
//! * `points` — 100% point samples (the interactive workload),
//! * `mixed`  — 90% points / 10% full-domain ROI scans (the contended
//!   case admission control exists for),
//! * `scans`  — 100% full-domain ROI scans (bulk throughput).
//!
//! Environment knobs: `AMRIC_SERVE_SECS` (measure seconds per config,
//! default 1.0), `AMRIC_SERVE_CLIENTS` (comma list, default `1,2,4,8`),
//! `AMRIC_BENCH_OUT` (output path).

use amr_serve::prelude::*;
use amric::prelude::*;
use amric_bench::{print_table, scratch, table1_runs};
use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct MixResult {
    clients: usize,
    mix: &'static str,
    requests: u64,
    rps: f64,
    point_p50_ms: f64,
    point_p95_ms: f64,
    point_p99_ms: f64,
    scan_p95_ms: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// One client thread: drive `mix` against both files until the deadline,
/// returning (point latencies ms, scan latencies ms).
fn client_loop(
    addr: SocketAddr,
    paths: &[String],
    scan_pct: usize,
    stop: &AtomicBool,
    seed: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let handles: Vec<u32> = paths
        .iter()
        .map(|p| client.open(p).expect("open").handle)
        .collect();
    let (mut points, mut scans) = (Vec::new(), Vec::new());
    let mut i = seed; // offset per client so request streams differ
    while !stop.load(Ordering::Relaxed) {
        let h = handles[i % handles.len()];
        let t = Instant::now();
        if i % 100 < scan_pct {
            client
                .roi(h, 0, [0, 0, 0], [31, 31, 31], WireSelect::All)
                .expect("roi");
            scans.push(t.elapsed().as_secs_f64() * 1000.0);
        } else {
            let p = [
                (7 * i as i64) % 32,
                (3 * i as i64) % 32,
                (11 * i as i64) % 32,
            ];
            client.point(h, 0, p).expect("point");
            points.push(t.elapsed().as_secs_f64() * 1000.0);
        }
        i += 1;
    }
    (points, scans)
}

fn run_mix(
    addr: SocketAddr,
    paths: &[String],
    clients: usize,
    mix: &'static str,
    scan_pct: usize,
    secs: f64,
) -> MixResult {
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let paths = paths.to_vec();
            std::thread::spawn(move || client_loop(addr, &paths, scan_pct, &stop, c * 37))
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let (mut points, mut scans) = (Vec::new(), Vec::new());
    for w in workers {
        let (p, s) = w.join().expect("client thread");
        points.extend(p);
        scans.extend(s);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let requests = (points.len() + scans.len()) as u64;
    points.sort_by(f64::total_cmp);
    scans.sort_by(f64::total_cmp);
    MixResult {
        clients,
        mix,
        requests,
        rps: requests as f64 / elapsed,
        point_p50_ms: quantile(&points, 0.50),
        point_p95_ms: quantile(&points, 0.95),
        point_p99_ms: quantile(&points, 0.99),
        scan_p95_ms: quantile(&scans, 0.95),
    }
}

fn main() {
    let secs: f64 = std::env::var("AMRIC_SERVE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let client_counts: Vec<usize> = std::env::var("AMRIC_SERVE_CLIENTS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let external: Option<SocketAddr> = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .map(|a| a.parse().expect("--addr HOST:PORT"));

    // Two distinct snapshots of the Nyx_1 run — the multi-tenant case.
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let file_a = scratch("serve-load-a");
    let file_b = scratch("serve-load-b");
    for (path, t) in [(&file_a, 0.0), (&file_b, 1.0)] {
        let h = spec.build(t);
        write_amric(
            path,
            &h,
            &AmricConfig::lr(spec.amric_rel_eb),
            spec.blocking_factor,
        )
        .expect("write plotfile");
    }
    let paths: Vec<String> = [&file_a, &file_b]
        .iter()
        .map(|p| p.to_str().expect("utf8 path").to_string())
        .collect();

    // In-process loopback server unless --addr points elsewhere. The
    // thresholds put full-domain ROIs on the scan path so the bench
    // exercises admission control, not just the socket loop.
    let mut local = None;
    let addr = match external {
        Some(a) => a,
        None => {
            let mut server = Server::new(ServeConfig {
                cache_bytes: 128 << 20,
                max_open_files: 16,
                workers: 2,
                admission: AdmissionConfig {
                    max_request_bytes: 1 << 30,
                    scan_threshold_bytes: 256 << 10,
                    scan_slab_bytes: 128 << 10,
                    scan_slots: 1,
                },
            });
            let addr = server.listen_tcp("127.0.0.1:0").expect("bind loopback");
            local = Some(server);
            addr
        }
    };

    let mixes: [(&'static str, usize); 3] = [("points", 0), ("mixed", 10), ("scans", 100)];
    let mut results = Vec::new();
    for &clients in &client_counts {
        for (mix, scan_pct) in mixes {
            results.push(run_mix(addr, &paths, clients, mix, scan_pct, secs));
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cell = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.3}")
        }
    };
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                r.mix.to_string(),
                r.requests.to_string(),
                format!("{:.0}", r.rps),
                cell(r.point_p50_ms),
                cell(r.point_p95_ms),
                cell(r.point_p99_ms),
                cell(r.scan_p95_ms),
            ]
        })
        .collect();
    print_table(
        &format!("amr-serve load (2 plotfiles, {secs:.1}s/config, {cores} cores)"),
        &[
            "clients",
            "mix",
            "requests",
            "req/s",
            "pt p50 ms",
            "pt p95 ms",
            "pt p99 ms",
            "scan p95 ms",
        ],
        &rows,
    );

    // Fairness headline: interactive p95 with scans stealing 10% of the
    // mix, relative to the uncontended single-client baseline.
    let solo = results
        .iter()
        .find(|r| r.clients == client_counts[0] && r.mix == "points");
    let contended = results
        .iter()
        .filter(|r| r.mix == "mixed")
        .max_by_key(|r| r.clients);
    if let (Some(s), Some(c)) = (solo, contended) {
        println!(
            "\nfairness: point p95 {:.3} ms solo -> {:.3} ms with {} mixed clients ({:.2}x)",
            s.point_p95_ms,
            c.point_p95_ms,
            c.clients,
            c.point_p95_ms / s.point_p95_ms
        );
    }

    let mut json = String::from("{\n  \"bench\": \"serve\",\n  \"run\": \"Nyx_1 x2 snapshots\",\n");
    json.push_str(&format!(
        "  \"cores\": {cores},\n  \"secs_per_config\": {secs:.3},\n  \"transport\": \"{}\",\n  \"configs\": [\n",
        if external.is_some() { "external-tcp" } else { "loopback-tcp" }
    ));
    let fmt = |v: f64| {
        if v.is_nan() {
            "null".to_string()
        } else {
            format!("{v:.4}")
        }
    };
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"mix\": \"{}\", \"requests\": {}, \"rps\": {:.1}, \
             \"point_p50_ms\": {}, \"point_p95_ms\": {}, \"point_p99_ms\": {}, \"scan_p95_ms\": {}}}{}\n",
            r.clients,
            r.mix,
            r.requests,
            r.rps,
            fmt(r.point_p50_ms),
            fmt(r.point_p95_ms),
            fmt(r.point_p99_ms),
            fmt(r.scan_p95_ms),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]");
    if let (Some(s), Some(c)) = (solo, contended) {
        json.push_str(&format!(
            ",\n  \"point_p95_solo_ms\": {},\n  \"point_p95_contended_ms\": {},\n  \"fairness_p95_ratio\": {}\n",
            fmt(s.point_p95_ms),
            fmt(c.point_p95_ms),
            fmt(c.point_p95_ms / s.point_p95_ms)
        ));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    let out = std::env::var("AMRIC_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let mut f = std::fs::File::create(&out).expect("create trajectory file");
    f.write_all(json.as_bytes()).expect("write trajectory file");
    println!("wrote {out}");

    if let Some(server) = local {
        server.state().request_shutdown();
        server.shutdown_and_join();
    }
    std::fs::remove_file(&file_a).ok();
    std::fs::remove_file(&file_b).ok();
}
